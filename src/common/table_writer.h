// TableWriter: aligned-column console tables and CSV export.
//
// The benchmark harnesses use TableWriter to print rows shaped like the
// paper's Tables II-V and to persist the same rows as CSV next to the
// binary for plotting.

#ifndef DIGFL_COMMON_TABLE_WRITER_H_
#define DIGFL_COMMON_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace digfl {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  // Adds a row; pads/truncates to the header width mismatch is a caller bug
  // and is rejected.
  Status AddRow(std::vector<std::string> row);

  // Convenience for mixed numeric/string rows.
  static std::string FormatDouble(double value, int precision = 4);
  static std::string FormatScientific(double value, int precision = 2);

  // Renders an aligned ASCII table with a separator under the header.
  void Print(std::ostream& os) const;

  // Writes RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace digfl

#endif  // DIGFL_COMMON_TABLE_WRITER_H_
