// Wall-clock timing utilities used by the benchmark harnesses to report
// computation cost (the paper's T_DIG-FL / T_Actual columns).

#ifndef DIGFL_COMMON_TIMER_H_
#define DIGFL_COMMON_TIMER_H_

#include <cassert>
#include <chrono>
#include <cstdint>

namespace digfl {

// Simple wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates elapsed time across multiple timed regions. Also the
// accumulator behind telemetry span nodes (telemetry/trace.h), so the repo
// has exactly one cumulative-timing code path.
class CumulativeTimer {
 public:
  // RAII guard; adds the guarded region's duration on destruction.
  class Scope {
   public:
    explicit Scope(CumulativeTimer* owner) : owner_(owner) {
      assert(owner != nullptr && "CumulativeTimer::Scope requires an owner");
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { owner_->Add(timer_.ElapsedSeconds()); }

    double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

   private:
    CumulativeTimer* owner_;
    Timer timer_;
  };

  Scope Measure() { return Scope(this); }
  // Folds an externally measured duration into the total (the span tree
  // records through this after measuring with its own Timer).
  void Add(double seconds) { total_seconds_ += seconds; }
  double TotalSeconds() const { return total_seconds_; }
  void Reset() { total_seconds_ = 0.0; }

 private:
  double total_seconds_ = 0.0;
};

}  // namespace digfl

#endif  // DIGFL_COMMON_TIMER_H_
