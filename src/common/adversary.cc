#include "common/adversary.h"

#include <algorithm>
#include <iterator>

#include "telemetry/telemetry.h"

namespace digfl {

namespace {

const AttackSpec kHonestSpec{};

const AttackType kAllAttacks[] = {
    AttackType::kSignFlip, AttackType::kScale, AttackType::kNoise,
    AttackType::kFreeRiderZero, AttackType::kFreeRiderReplay,
};

}  // namespace

const char* AttackTypeToString(AttackType type) {
  switch (type) {
    case AttackType::kNone:
      return "None";
    case AttackType::kSignFlip:
      return "SignFlip";
    case AttackType::kScale:
      return "Scale";
    case AttackType::kNoise:
      return "Noise";
    case AttackType::kFreeRiderZero:
      return "FreeRiderZero";
    case AttackType::kFreeRiderReplay:
      return "FreeRiderReplay";
  }
  return "Unknown";
}

const char* AttackTypeCode(AttackType type) {
  switch (type) {
    case AttackType::kNone:
      return "none";
    case AttackType::kSignFlip:
      return "sign_flip";
    case AttackType::kScale:
      return "scale";
    case AttackType::kNoise:
      return "noise";
    case AttackType::kFreeRiderZero:
      return "free_rider_zero";
    case AttackType::kFreeRiderReplay:
      return "free_rider_replay";
  }
  return "unknown";
}

Result<AdversaryPlan> AdversaryPlan::Generate(
    size_t num_participants, const AdversaryPlanConfig& config) {
  if (config.attacker_fraction < 0.0 || config.attacker_fraction > 1.0) {
    return Status::InvalidArgument("attacker_fraction must be in [0, 1]");
  }
  if (config.collusion_probability < 0.0 ||
      config.collusion_probability > 1.0) {
    return Status::InvalidArgument("collusion_probability must be in [0, 1]");
  }
  if (config.scale <= 0.0) {
    return Status::InvalidArgument("attack scale must be > 0");
  }
  if (config.noise_stddev <= 0.0) {
    return Status::InvalidArgument("noise_stddev must be > 0");
  }
  for (AttackType type : config.palette) {
    if (type == AttackType::kNone) {
      return Status::InvalidArgument("palette may not contain kNone");
    }
  }

  AdversaryPlan plan;
  plan.config_ = config;
  plan.specs_.assign(num_participants, kHonestSpec);
  const size_t num_attackers = static_cast<size_t>(
      config.attacker_fraction * static_cast<double>(num_participants));
  if (num_attackers == 0) return plan;

  std::vector<AttackType> palette = config.palette;
  if (palette.empty()) {
    palette.assign(std::begin(kAllAttacks), std::end(kAllAttacks));
  }

  // Fixed fork ids keep every decision its own stream: adding participants
  // or palette entries never reshuffles unrelated draws.
  const Rng root(config.seed);
  Rng member_rng = root.Fork(0);
  Rng collusion_rng = root.Fork(1);
  Rng type_rng = root.Fork(2);

  const std::vector<size_t> order = member_rng.Permutation(num_participants);
  std::vector<size_t> attackers(order.begin(),
                                order.begin() + num_attackers);
  std::sort(attackers.begin(), attackers.end());

  plan.colluding_ = num_attackers > 1 &&
                    collusion_rng.Bernoulli(config.collusion_probability);
  auto draw_spec = [&]() {
    AttackSpec spec;
    spec.type = palette[type_rng.UniformInt(palette.size())];
    spec.scale = config.scale;
    spec.noise_stddev = config.noise_stddev;
    return spec;
  };
  if (plan.colluding_) {
    AttackSpec shared = draw_spec();
    shared.collusion_group = 1;
    for (size_t i : attackers) plan.specs_[i] = shared;
  } else {
    for (size_t i : attackers) plan.specs_[i] = draw_spec();
  }
  return plan;
}

const AttackSpec& AdversaryPlan::SpecFor(size_t participant) const {
  if (participant >= specs_.size()) return kHonestSpec;
  return specs_[participant];
}

size_t AdversaryPlan::num_attackers() const {
  size_t count = 0;
  for (const AttackSpec& spec : specs_) {
    if (spec.type != AttackType::kNone) ++count;
  }
  return count;
}

Rng AdversaryPlan::AttackRng(size_t epoch, size_t participant) const {
  // Fork ids 0..2 are burned by Generate; offset past them and lay the
  // (epoch, participant) grid out disjointly.
  return Rng(config_.seed)
      .Fork(3 + epoch * specs_.size() + participant);
}

std::vector<double> ApplyAttack(const std::vector<double>& update,
                                const AttackSpec& spec, Rng& rng,
                                const std::vector<double>* last_update) {
  if (spec.type == AttackType::kNone) return update;
  DIGFL_COUNTER_ADD_LABELED("adv.attack_total", 1,
                            {"attack", AttackTypeCode(spec.type)});
  std::vector<double> attacked = update;
  switch (spec.type) {
    case AttackType::kNone:
      break;
    case AttackType::kSignFlip:
      for (double& v : attacked) v = -v;
      break;
    case AttackType::kScale:
      for (double& v : attacked) v *= spec.scale;
      break;
    case AttackType::kNoise:
      for (double& v : attacked) v += rng.Gaussian(0.0, spec.noise_stddev);
      break;
    case AttackType::kFreeRiderZero:
      std::fill(attacked.begin(), attacked.end(), 0.0);
      break;
    case AttackType::kFreeRiderReplay:
      if (last_update != nullptr && last_update->size() == update.size()) {
        attacked = *last_update;
      } else {
        std::fill(attacked.begin(), attacked.end(), 0.0);
      }
      break;
  }
  return attacked;
}

}  // namespace digfl
