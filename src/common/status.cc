#include "common/status.h"

namespace digfl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace digfl
