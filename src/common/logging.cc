#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace digfl {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

// Basename of a path, for compact log prefixes.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace digfl
