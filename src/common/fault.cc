#include "common/fault.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>

#include "telemetry/telemetry.h"

namespace digfl {

const char* FaultTypeToString(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "None";
    case FaultType::kDropout:
      return "Dropout";
    case FaultType::kStraggler:
      return "Straggler";
    case FaultType::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

const char* QuarantineReasonToString(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kAccepted:
      return "Accepted";
    case QuarantineReason::kNonFinite:
      return "NonFinite";
    case QuarantineReason::kNormExploded:
      return "NormExploded";
    case QuarantineReason::kPhiScore:
      return "PhiScore";
  }
  return "Unknown";
}

const char* QuarantineReasonCode(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kAccepted:
      return "accepted";
    case QuarantineReason::kNonFinite:
      return "non_finite";
    case QuarantineReason::kNormExploded:
      return "norm_exploded";
    case QuarantineReason::kPhiScore:
      return "phi_score";
  }
  return "unknown";
}

Result<FaultPlan> FaultPlan::Generate(size_t num_epochs,
                                      size_t num_participants,
                                      const FaultPlanConfig& config) {
  for (double rate : {config.dropout_rate, config.straggler_rate,
                      config.corruption_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      return Status::InvalidArgument("fault rates must be in [0, 1]");
    }
  }
  if (config.dropout_rate + config.straggler_rate + config.corruption_rate >
      1.0) {
    return Status::InvalidArgument("fault rates must sum to <= 1");
  }
  if (config.explode_factor <= 1.0) {
    return Status::InvalidArgument("explode_factor must be > 1");
  }

  FaultPlan plan(num_epochs, num_participants, config);
  plan.events_.assign(num_epochs * num_participants, FaultEvent{});
  // One independent stream per grid cell: the plan for epoch t is unchanged
  // by how many epochs or participants the grid has beyond (t, i).
  const Rng root(config.seed);
  size_t corrupt_count = 0;
  for (size_t t = 0; t < num_epochs; ++t) {
    for (size_t i = 0; i < num_participants; ++i) {
      Rng cell = root.Fork(t * num_participants + i);
      FaultEvent& event = plan.events_[t * num_participants + i];
      // Disjoint-interval draw: a single uniform decides which (if any)
      // fault fires, so the rates are exact marginals.
      const double u = cell.Uniform();
      if (u < config.dropout_rate) {
        event.type = FaultType::kDropout;
      } else if (u < config.dropout_rate + config.straggler_rate) {
        event.type = FaultType::kStraggler;
      } else if (u < config.dropout_rate + config.straggler_rate +
                         config.corruption_rate) {
        event.type = FaultType::kCorruption;
        event.corruption = static_cast<CorruptionKind>(corrupt_count++ % 3);
      }
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlan::FromSchedule(size_t num_epochs,
                                          size_t num_participants,
                                          std::vector<FaultEvent> events,
                                          const FaultPlanConfig& config) {
  if (events.size() != num_epochs * num_participants) {
    return Status::InvalidArgument(
        "fault schedule size does not match the epoch x participant grid");
  }
  if (config.explode_factor <= 1.0) {
    return Status::InvalidArgument("explode_factor must be > 1");
  }
  FaultPlan plan(num_epochs, num_participants, config);
  plan.events_ = std::move(events);
  return plan;
}

FaultEvent FaultPlan::At(size_t epoch, size_t participant) const {
  if (epoch >= num_epochs_ || participant >= num_participants_) {
    return FaultEvent{};
  }
  return events_[epoch * num_participants_ + participant];
}

size_t FaultPlan::CountType(FaultType type) const {
  size_t count = 0;
  for (const FaultEvent& event : events_) {
    if (event.type == type) ++count;
  }
  return count;
}

Rng FaultPlan::CorruptionRng(size_t epoch, size_t participant) const {
  // Offset the stream ids so corruption payloads are independent of the
  // schedule draws above.
  return Rng(config_.seed)
      .Fork(num_epochs_ * num_participants_ + epoch * num_participants_ +
            participant + 1);
}

std::vector<double> CorruptUpdate(const std::vector<double>& update,
                                  CorruptionKind kind, double explode_factor,
                                  Rng& rng) {
  std::vector<double> corrupted = update;
  if (corrupted.empty()) return corrupted;
  switch (kind) {
    case CorruptionKind::kNaN:
    case CorruptionKind::kInf: {
      const double poison = kind == CorruptionKind::kNaN
                                ? std::numeric_limits<double>::quiet_NaN()
                                : std::numeric_limits<double>::infinity();
      // Poison a non-empty random subset (~25% of coordinates, at least 1).
      size_t poisoned = 0;
      for (double& v : corrupted) {
        if (rng.Bernoulli(0.25)) {
          v = rng.Bernoulli(0.5) ? poison : -poison;
          ++poisoned;
        }
      }
      if (poisoned == 0) {
        corrupted[rng.UniformInt(corrupted.size())] = poison;
      }
      break;
    }
    case CorruptionKind::kExplode:
      for (double& v : corrupted) v *= explode_factor;
      break;
  }
  return corrupted;
}

namespace {

// L2 norm of the finite part; sets *all_finite on the way.
double FiniteNorm(const std::vector<double>& update, bool* all_finite) {
  double sum_sq = 0.0;
  *all_finite = true;
  for (double v : update) {
    if (!std::isfinite(v)) {
      *all_finite = false;
    } else {
      sum_sq += v * v;
    }
  }
  return std::sqrt(sum_sq);
}

}  // namespace

QuarantineReason InspectUpdate(const std::vector<double>& update,
                               const QuarantineConfig& config,
                               double epoch_median_norm) {
  bool all_finite = true;
  const double norm = FiniteNorm(update, &all_finite);
  if (!all_finite) return QuarantineReason::kNonFinite;
  if (config.max_update_norm > 0.0 && norm > config.max_update_norm) {
    return QuarantineReason::kNormExploded;
  }
  if (config.median_factor > 0.0 && epoch_median_norm > 0.0 &&
      norm > config.median_factor * epoch_median_norm) {
    return QuarantineReason::kNormExploded;
  }
  return QuarantineReason::kAccepted;
}

void FaultStats::RecordQuarantine(size_t epoch, size_t participant,
                                  QuarantineReason reason, double norm) {
  if (reason == QuarantineReason::kNonFinite) {
    ++quarantined_non_finite;
  } else if (reason == QuarantineReason::kNormExploded) {
    ++quarantined_norm;
  } else if (reason == QuarantineReason::kPhiScore) {
    ++quarantined_phi;
  }
  quarantine_events.push_back(QuarantineEvent{
      static_cast<uint32_t>(epoch), static_cast<uint32_t>(participant),
      reason, norm});
  // Every rejection is also a typed telemetry signal: a reason-code counter
  // for dashboards plus a timeline event carrying the rejected norm.
  DIGFL_COUNTER_ADD_LABELED("fault.quarantine_total", 1,
                            {"reason", QuarantineReasonCode(reason)});
  DIGFL_EMIT_EVENT("fault.quarantine", norm,
                   {"epoch", std::to_string(epoch)},
                   {"participant", std::to_string(participant)},
                   {"reason", QuarantineReasonCode(reason)});
}

// ---------------------------------------------------------------------------
// Byzantine quarantine escalation.

bool QuarantineLedger::Mark(size_t participant, size_t epoch,
                            QuarantineReason reason) {
  if (participant >= entries_.size() ||
      reason == QuarantineReason::kAccepted) {
    return false;
  }
  Entry& entry = entries_[participant];
  if (entry.quarantined) return false;  // first reason wins
  entry.quarantined = true;
  entry.reason = reason;
  entry.epoch = static_cast<uint32_t>(epoch);
  DIGFL_COUNTER_ADD_LABELED("adv.quarantine_total", 1,
                            {"reason", QuarantineReasonCode(reason)});
  DIGFL_EMIT_EVENT("adv.quarantine", static_cast<double>(epoch),
                   {"participant", std::to_string(participant)},
                   {"reason", QuarantineReasonCode(reason)});
  return true;
}

size_t QuarantineLedger::num_quarantined() const {
  size_t count = 0;
  for (const Entry& entry : entries_) {
    if (entry.quarantined) ++count;
  }
  return count;
}

QuarantineEscalator::QuarantineEscalator(size_t num_participants,
                                         const EscalationConfig& config)
    : config_(config),
      ledger_(num_participants),
      ewma_(num_participants, 0.0),
      present_epochs_(num_participants, 0),
      flag_streak_(num_participants, 0),
      gate_rejections_(num_participants, 0) {
  // min_active == 0 means "strict majority of the federation".
  if (config_.min_active == 0) {
    config_.min_active = num_participants / 2 + 1;
  }
}

bool QuarantineEscalator::RecordGateRejection(size_t participant, size_t epoch,
                                              QuarantineReason reason) {
  if (participant >= gate_rejections_.size() ||
      reason == QuarantineReason::kAccepted) {
    return false;
  }
  DIGFL_COUNTER_ADD_LABELED("adv.gate_rejection_total", 1,
                            {"reason", QuarantineReasonCode(reason)});
  const size_t count = ++gate_rejections_[participant];
  if (config_.max_gate_rejections == 0 ||
      count < config_.max_gate_rejections ||
      ledger_.IsQuarantined(participant)) {
    return false;
  }
  // Respect the active floor: keep letting the per-epoch gate reject the
  // updates round by round rather than shrinking the federation too far.
  const size_t active = ledger_.size() - ledger_.num_quarantined();
  if (active <= config_.min_active) return false;
  return ledger_.Mark(participant, epoch, reason);
}

std::vector<size_t> QuarantineEscalator::ObservePhi(
    size_t epoch, const std::vector<double>& phi,
    const std::vector<uint8_t>& present) {
  const size_t n = ewma_.size();
  std::vector<size_t> quarantined;
  if (phi.size() != n || present.size() != n) return quarantined;

  // EWMA update on present epochs only; absence freezes the score, so a
  // dropout never launders a bad history (and a quarantined participant's
  // score stays where escalation left it).
  for (size_t i = 0; i < n; ++i) {
    if (!present[i] || ledger_.IsQuarantined(i)) continue;
    if (present_epochs_[i] == 0) {
      ewma_[i] = phi[i];
    } else {
      ewma_[i] = (1.0 - config_.ewma_alpha) * ewma_[i] +
                 config_.ewma_alpha * phi[i];
    }
    ++present_epochs_[i];
  }

  // Median EWMA over the active (non-quarantined, observed) participants.
  std::vector<double> active_scores;
  for (size_t i = 0; i < n; ++i) {
    if (!ledger_.IsQuarantined(i) && present_epochs_[i] > 0) {
      active_scores.push_back(ewma_[i]);
    }
  }
  if (active_scores.empty()) return quarantined;
  const size_t mid = active_scores.size() / 2;
  std::nth_element(active_scores.begin(), active_scores.begin() + mid,
                   active_scores.end());
  const double median = active_scores[mid];
  const double floor = config_.relative_floor * std::max(median, 0.0);

  // Hysteresis: a participant must sit below the floor for `hysteresis`
  // consecutive present epochs past warmup before it escalates.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < n; ++i) {
    if (!present[i] || ledger_.IsQuarantined(i)) continue;
    if (present_epochs_[i] >= config_.warmup_epochs && ewma_[i] < floor) {
      ++flag_streak_[i];
      DIGFL_COUNTER_ADD("adv.phi_flag_total", 1);
      if (flag_streak_[i] >= config_.hysteresis) candidates.push_back(i);
    } else {
      flag_streak_[i] = 0;
    }
  }
  if (candidates.empty()) return quarantined;

  // Worst score first, and never below the active floor.
  std::sort(candidates.begin(), candidates.end(),
            [&](size_t a, size_t b) { return ewma_[a] < ewma_[b]; });
  size_t active = ledger_.size() - ledger_.num_quarantined();
  for (size_t i : candidates) {
    if (active <= config_.min_active) break;
    if (ledger_.Mark(i, epoch, QuarantineReason::kPhiScore)) {
      quarantined.push_back(i);
      --active;
    }
  }
  return quarantined;
}

// ---------------------------------------------------------------------------
// Crash-point injection.

namespace {

// The armed plan. Site/exit_code are only mutated under the install mutex
// and read on the (rare) kill path; the hot path is one relaxed atomic
// increment plus one relaxed load of the kill ordinal.
std::mutex g_crash_mutex;
std::string g_crash_site;            // guarded by g_crash_mutex
int g_crash_exit_code = 42;          // guarded by g_crash_mutex
std::atomic<uint64_t> g_crash_kill_ordinal{0};
std::atomic<uint64_t> g_crash_hits{0};

// SplitMix64 finalizer (same mixer as Rng::Fork) for PickCrashOrdinal.
uint64_t MixOrdinal(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void InstallCrashPlan(const CrashPlanConfig& config) {
  std::lock_guard<std::mutex> lock(g_crash_mutex);
  g_crash_site = config.site;
  g_crash_exit_code = config.exit_code;
  g_crash_hits.store(0, std::memory_order_relaxed);
  g_crash_kill_ordinal.store(config.kill_ordinal, std::memory_order_relaxed);
}

Status InstallCrashPlanFromEnv() {
  const char* raw = std::getenv("DIGFL_CRASH_AT");
  if (raw == nullptr || raw[0] == '\0') {
    InstallCrashPlan(CrashPlanConfig{});
    return Status::OK();
  }
  const std::string value(raw);
  CrashPlanConfig config;
  const size_t colon = value.rfind(':');
  const std::string ordinal_text =
      colon == std::string::npos ? value : value.substr(colon + 1);
  if (colon != std::string::npos) config.site = value.substr(0, colon);
  if (ordinal_text.empty()) {
    return Status::InvalidArgument("DIGFL_CRASH_AT: missing kill ordinal in '" +
                                   value + "'");
  }
  uint64_t ordinal = 0;
  for (char c : ordinal_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          "DIGFL_CRASH_AT: kill ordinal must be a positive integer, got '" +
          value + "'");
    }
    ordinal = ordinal * 10 + static_cast<uint64_t>(c - '0');
  }
  if (ordinal == 0) {
    return Status::InvalidArgument("DIGFL_CRASH_AT: kill ordinal must be >= 1");
  }
  config.kill_ordinal = ordinal;
  InstallCrashPlan(config);
  return Status::OK();
}

void MaybeCrash(const char* site) {
  const uint64_t kill_at = g_crash_kill_ordinal.load(std::memory_order_relaxed);
  if (kill_at == 0) {
    g_crash_hits.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(g_crash_mutex);
  if (!g_crash_site.empty() && g_crash_site != site) return;
  const uint64_t hit = g_crash_hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit == kill_at) {
    // A real crash: no unwinding, no flushing, no atexit handlers.
    ::_exit(g_crash_exit_code);
  }
}

uint64_t CrashPointHits() {
  return g_crash_hits.load(std::memory_order_relaxed);
}

uint64_t PickCrashOrdinal(uint64_t seed, uint64_t max_points) {
  if (max_points == 0) return 1;
  return 1 + MixOrdinal(seed) % max_points;
}

}  // namespace digfl
