// Deterministic fault injection and server-side update quarantine.
//
// Real federated fleets are defined by stragglers, dropouts, and malformed
// updates. This module makes those failure modes first-class and — crucially
// for a reproduction — *deterministic*: a FaultPlan is a seeded per-epoch,
// per-participant schedule of faults, so every chaos experiment replays
// bit-for-bit. The quarantine gate is the server-side defense: it inspects
// each arriving update before aggregation and rejects non-finite or
// norm-exploded payloads with a typed reason code (never a silent drop).
//
// Fault taxonomy (see DESIGN.md "Fault model & graceful degradation"):
//   kDropout    — the participant misses the round entirely (no upload).
//   kStraggler  — the update misses the deadline; the server retries
//                 `straggler_max_retries` times (traffic is accounted in the
//                 trainer's CommMeter) and then drops the participant for
//                 the round.
//   kCorruption — the update arrives but is malformed: NaN, Inf, or a
//                 magnitude-exploded delta. The quarantine gate must catch
//                 these before they poison G_t.

#ifndef DIGFL_COMMON_FAULT_H_
#define DIGFL_COMMON_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace digfl {

enum class FaultType : uint8_t {
  kNone = 0,
  kDropout = 1,
  kStraggler = 2,
  kCorruption = 3,
};

const char* FaultTypeToString(FaultType type);

// How a corrupt update is malformed. Cycled deterministically by the plan.
enum class CorruptionKind : uint8_t {
  kNaN = 0,      // a subset of coordinates becomes NaN
  kInf = 1,      // a subset of coordinates becomes ±Inf
  kExplode = 2,  // the whole update is scaled by `explode_factor`
};

struct FaultEvent {
  FaultType type = FaultType::kNone;
  // Valid only when type == kCorruption.
  CorruptionKind corruption = CorruptionKind::kNaN;
};

struct FaultPlanConfig {
  // Independent per-(epoch, participant) Bernoulli rates. At most one fault
  // fires per cell; dropout is sampled first, then straggler, then
  // corruption, each from the cell's own deterministic stream.
  double dropout_rate = 0.0;
  double straggler_rate = 0.0;
  double corruption_rate = 0.0;
  // A straggler's update is retried this many times before the server gives
  // up on the round (each retry is charged to the CommMeter by the trainer).
  size_t straggler_max_retries = 3;
  // Magnitude multiplier for CorruptionKind::kExplode.
  double explode_factor = 1e9;
  uint64_t seed = 0xfa01;
};

// A deterministic, replayable schedule of faults over a training run.
class FaultPlan {
 public:
  // Samples the full epoch × participant grid from `config.seed`.
  static Result<FaultPlan> Generate(size_t num_epochs, size_t num_participants,
                                    const FaultPlanConfig& config);

  // Builds a plan from an explicit epoch-major grid (`events.size()` must be
  // `num_epochs * num_participants`). This is how a harness reproduces an
  // *observed* failure pattern in-process — e.g. the distributed-runtime
  // tests replay "participant k died after epoch e" as a deterministic
  // dropout schedule and compare φ̂ against the real-socket run.
  static Result<FaultPlan> FromSchedule(size_t num_epochs,
                                        size_t num_participants,
                                        std::vector<FaultEvent> events,
                                        const FaultPlanConfig& config = {});

  // The fault scheduled for (epoch, participant); kNone outside the grid, so
  // a plan generated for fewer epochs than the trainer runs degrades to
  // fault-free tail epochs instead of aborting.
  FaultEvent At(size_t epoch, size_t participant) const;

  // Total number of cells scheduled with `type`.
  size_t CountType(FaultType type) const;

  size_t num_epochs() const { return num_epochs_; }
  size_t num_participants() const { return num_participants_; }
  const FaultPlanConfig& config() const { return config_; }

  // The deterministic RNG a trainer should use to materialize the
  // corruption payload for cell (epoch, participant).
  Rng CorruptionRng(size_t epoch, size_t participant) const;

 private:
  FaultPlan(size_t num_epochs, size_t num_participants,
            const FaultPlanConfig& config)
      : num_epochs_(num_epochs),
        num_participants_(num_participants),
        config_(config) {}

  size_t num_epochs_ = 0;
  size_t num_participants_ = 0;
  FaultPlanConfig config_;
  std::vector<FaultEvent> events_;  // epoch-major grid
};

// Returns a corrupted copy of `update` (which trainers then submit in place
// of the true update). kNaN/kInf hit a random non-empty coordinate subset;
// kExplode scales the whole vector by `explode_factor`.
std::vector<double> CorruptUpdate(const std::vector<double>& update,
                                  CorruptionKind kind, double explode_factor,
                                  Rng& rng);

// ---------------------------------------------------------------------------
// Server-side quarantine gate.

enum class QuarantineReason : uint8_t {
  kAccepted = 0,
  kNonFinite = 1,     // NaN or ±Inf anywhere in the payload
  kNormExploded = 2,  // L2 norm above the configured ceiling
  kPhiScore = 3,      // EWMA-smoothed DIG-FL score below the floor
};

const char* QuarantineReasonToString(QuarantineReason reason);

// snake_case code used as the telemetry `reason` label value and in JSONL
// run reports ("accepted", "non_finite", "norm_exploded", "phi_score").
const char* QuarantineReasonCode(QuarantineReason reason);

struct QuarantineConfig {
  // Absolute L2 ceiling on a single update; <= 0 disables the norm check
  // (non-finite payloads are always rejected).
  double max_update_norm = 1e6;
  // > 0: additionally reject updates whose norm exceeds `median_factor` ×
  // the median norm of the updates that arrived this epoch. Catches exploded
  // deltas that stay under the absolute ceiling.
  double median_factor = 0.0;
};

// Inspects one update. `epoch_median_norm` is the median L2 norm of the
// epoch's arrived updates (pass 0 when unknown; the relative check is then
// skipped).
QuarantineReason InspectUpdate(const std::vector<double>& update,
                               const QuarantineConfig& config,
                               double epoch_median_norm = 0.0);

// One rejected update, with enough context to audit the decision.
struct QuarantineEvent {
  uint32_t epoch = 0;
  uint32_t participant = 0;
  QuarantineReason reason = QuarantineReason::kAccepted;
  // L2 norm of the rejected payload (NaN-safe: non-finite payloads record
  // the norm of their finite part).
  double norm = 0.0;
};

// Fault bookkeeping accumulated by a trainer over a run. Rejections are
// logged (with reason codes), never silently dropped.
struct FaultStats {
  size_t dropouts = 0;
  size_t stragglers_dropped = 0;
  size_t straggler_retries = 0;
  size_t quarantined_non_finite = 0;
  size_t quarantined_norm = 0;
  size_t quarantined_phi = 0;
  std::vector<QuarantineEvent> quarantine_events;

  size_t total_quarantined() const {
    return quarantined_non_finite + quarantined_norm + quarantined_phi;
  }
  void RecordQuarantine(size_t epoch, size_t participant,
                        QuarantineReason reason, double norm);
};

// ---------------------------------------------------------------------------
// Byzantine quarantine escalation.
//
// The per-epoch gate above is stateless: a rejected update is dropped for
// the round and the participant retries next epoch. Against *adversarial*
// participants (see common/adversary.h) that is not enough — a sign-flipper
// submits perfectly finite, norm-respecting poison forever. The escalation
// layer adds per-run memory: a QuarantineLedger of permanently excluded
// participants (first recorded reason wins, so later crashes never
// overwrite the original verdict), fed by two signals:
//
//   1. Repeated admission-gate rejections (a participant whose updates keep
//      failing the finite/norm checks is excluded with its original gate
//      reason), and
//   2. An EWMA-smoothed per-participant DIG-FL score φ̂ with a relative
//      floor and hysteresis — arXiv 2405.08044 shows raw per-round
//      contribution scores are too volatile to threshold directly, so the
//      monitor only escalates after `hysteresis` consecutive flagged
//      *present* epochs past a warmup, and never shrinks the active set
//      below a majority floor.

struct EscalationConfig {
  bool enabled = false;
  // φ̂-EWMA monitor: s_i ← (1-α)·s_i + α·φ̂_{t,i}, updated only on epochs
  // where participant i is present (absence freezes the score).
  double ewma_alpha = 0.3;
  // Flag participant i when s_i < relative_floor × max(median_active_s, 0).
  // With a non-positive median only negative scores can be flagged.
  double relative_floor = 0.25;
  // Minimum number of *present* epochs observed before i may be flagged.
  size_t warmup_epochs = 3;
  // Consecutive flagged present-epochs required before escalation fires.
  size_t hysteresis = 2;
  // Never quarantine below this many active participants; 0 = majority
  // floor (n/2 + 1), the safe default for n known only at run time.
  size_t min_active = 0;
  // Admission-gate escalation: permanently quarantine after this many gate
  // rejections (with the first rejection's reason); 0 disables.
  size_t max_gate_rejections = 2;
};

// Per-run record of permanently excluded participants. First reason wins:
// once marked, every later Mark is a no-op, so an already-quarantined
// participant that subsequently crashes or corrupts keeps its original
// reason code in reports.
class QuarantineLedger {
 public:
  struct Entry {
    bool quarantined = false;
    QuarantineReason reason = QuarantineReason::kAccepted;
    uint32_t epoch = 0;  // epoch of the *first* (winning) mark
  };

  explicit QuarantineLedger(size_t num_participants)
      : entries_(num_participants) {}

  // Returns true if this call quarantined `participant` (false when out of
  // range, reason == kAccepted, or already quarantined — first wins).
  bool Mark(size_t participant, size_t epoch, QuarantineReason reason);

  bool IsQuarantined(size_t participant) const {
    return participant < entries_.size() && entries_[participant].quarantined;
  }
  // kAccepted when not quarantined.
  QuarantineReason ReasonFor(size_t participant) const {
    return participant < entries_.size() ? entries_[participant].reason
                                         : QuarantineReason::kAccepted;
  }
  size_t num_quarantined() const;
  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

// The shared escalation engine used by the in-process trainer and the
// distributed coordinator. Not thread-safe; drive it from the training
// thread only.
class QuarantineEscalator {
 public:
  QuarantineEscalator(size_t num_participants, const EscalationConfig& config);

  // Reports one admission-gate rejection for `participant`. Returns true
  // when the rejection count reaches the ceiling and the participant is now
  // permanently quarantined (ledger marked with this first gate `reason` if
  // it is the first mark).
  bool RecordGateRejection(size_t participant, size_t epoch,
                           QuarantineReason reason);

  // Feeds one epoch of masked per-participant DIG-FL estimates (phi[i] is
  // meaningful only where present[i] != 0). Updates the EWMA scores, applies
  // floor + warmup + hysteresis + min-active, marks escalated participants
  // in the ledger with kPhiScore, and returns the newly quarantined indices
  // (worst score first).
  std::vector<size_t> ObservePhi(size_t epoch, const std::vector<double>& phi,
                                 const std::vector<uint8_t>& present);

  const QuarantineLedger& ledger() const { return ledger_; }
  QuarantineLedger& ledger() { return ledger_; }
  // Current EWMA score per participant (0 until first present epoch).
  const std::vector<double>& phi_ewma() const { return ewma_; }
  const EscalationConfig& config() const { return config_; }

 private:
  EscalationConfig config_;
  QuarantineLedger ledger_;
  std::vector<double> ewma_;
  std::vector<size_t> present_epochs_;   // #present epochs observed per i
  std::vector<size_t> flag_streak_;      // consecutive flagged present epochs
  std::vector<size_t> gate_rejections_;  // admission-gate rejection count
};

// ---------------------------------------------------------------------------
// Seeded crash-point injection (process faults).
//
// Participant faults above degrade a round; process faults kill the server
// outright. The checkpoint subsystem (src/ckpt/) threads named crash points
// through its commit protocol and the trainers mark every epoch boundary, so
// a seeded CrashPlan can deterministically kill the process at the k-th
// crash point it reaches — mid checkpoint write, between rename and manifest
// update, at an epoch boundary, anywhere. The kill is _exit: no stack
// unwinding, no stream flushing, exactly what a SIGKILL'd server leaves
// behind. The kill/resume harness (tests/ckpt_crash_test.cc,
// scripts/run_checks.sh --crash) arms a plan in a child process and verifies
// that resuming from the surviving checkpoints reproduces the uninterrupted
// run bit for bit.

struct CrashPlanConfig {
  // Die at the k-th qualifying crash point; 0 disarms.
  uint64_t kill_ordinal = 0;
  // Optional: only crash points with exactly this site name qualify. Empty
  // means every site qualifies.
  std::string site;
  // Process exit code of the injected crash (distinguishes an injected kill
  // from a real failure in harnesses).
  int exit_code = 42;
};

// Installs (or, with a default-constructed config, disarms) the
// process-global crash plan and resets the qualifying-hit counter, so
// ordinals always count from the installation point.
void InstallCrashPlan(const CrashPlanConfig& config);

// Arms the plan from $DIGFL_CRASH_AT: "<k>" or "<site>:<k>". Unset or empty
// leaves the plan disarmed; a malformed value is a typed error.
Status InstallCrashPlanFromEnv();

// Declares a crash point. Always counts the hit (so ordinals are stable
// whether or not a plan is armed); if the armed plan's ordinal is reached,
// the process dies immediately.
void MaybeCrash(const char* site);

// Crash-point hits since the last InstallCrashPlan (armed or not). Harnesses
// use a counting dry run to learn how many kill points a workload exposes.
uint64_t CrashPointHits();

// Uniform kill ordinal in [1, max_points] derived from `seed`; the harness
// helper for picking randomized-but-reproducible kill points.
uint64_t PickCrashOrdinal(uint64_t seed, uint64_t max_points);

}  // namespace digfl

#endif  // DIGFL_COMMON_FAULT_H_
