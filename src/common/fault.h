// Deterministic fault injection and server-side update quarantine.
//
// Real federated fleets are defined by stragglers, dropouts, and malformed
// updates. This module makes those failure modes first-class and — crucially
// for a reproduction — *deterministic*: a FaultPlan is a seeded per-epoch,
// per-participant schedule of faults, so every chaos experiment replays
// bit-for-bit. The quarantine gate is the server-side defense: it inspects
// each arriving update before aggregation and rejects non-finite or
// norm-exploded payloads with a typed reason code (never a silent drop).
//
// Fault taxonomy (see DESIGN.md "Fault model & graceful degradation"):
//   kDropout    — the participant misses the round entirely (no upload).
//   kStraggler  — the update misses the deadline; the server retries
//                 `straggler_max_retries` times (traffic is accounted in the
//                 trainer's CommMeter) and then drops the participant for
//                 the round.
//   kCorruption — the update arrives but is malformed: NaN, Inf, or a
//                 magnitude-exploded delta. The quarantine gate must catch
//                 these before they poison G_t.

#ifndef DIGFL_COMMON_FAULT_H_
#define DIGFL_COMMON_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace digfl {

enum class FaultType : uint8_t {
  kNone = 0,
  kDropout = 1,
  kStraggler = 2,
  kCorruption = 3,
};

const char* FaultTypeToString(FaultType type);

// How a corrupt update is malformed. Cycled deterministically by the plan.
enum class CorruptionKind : uint8_t {
  kNaN = 0,      // a subset of coordinates becomes NaN
  kInf = 1,      // a subset of coordinates becomes ±Inf
  kExplode = 2,  // the whole update is scaled by `explode_factor`
};

struct FaultEvent {
  FaultType type = FaultType::kNone;
  // Valid only when type == kCorruption.
  CorruptionKind corruption = CorruptionKind::kNaN;
};

struct FaultPlanConfig {
  // Independent per-(epoch, participant) Bernoulli rates. At most one fault
  // fires per cell; dropout is sampled first, then straggler, then
  // corruption, each from the cell's own deterministic stream.
  double dropout_rate = 0.0;
  double straggler_rate = 0.0;
  double corruption_rate = 0.0;
  // A straggler's update is retried this many times before the server gives
  // up on the round (each retry is charged to the CommMeter by the trainer).
  size_t straggler_max_retries = 3;
  // Magnitude multiplier for CorruptionKind::kExplode.
  double explode_factor = 1e9;
  uint64_t seed = 0xfa01;
};

// A deterministic, replayable schedule of faults over a training run.
class FaultPlan {
 public:
  // Samples the full epoch × participant grid from `config.seed`.
  static Result<FaultPlan> Generate(size_t num_epochs, size_t num_participants,
                                    const FaultPlanConfig& config);

  // Builds a plan from an explicit epoch-major grid (`events.size()` must be
  // `num_epochs * num_participants`). This is how a harness reproduces an
  // *observed* failure pattern in-process — e.g. the distributed-runtime
  // tests replay "participant k died after epoch e" as a deterministic
  // dropout schedule and compare φ̂ against the real-socket run.
  static Result<FaultPlan> FromSchedule(size_t num_epochs,
                                        size_t num_participants,
                                        std::vector<FaultEvent> events,
                                        const FaultPlanConfig& config = {});

  // The fault scheduled for (epoch, participant); kNone outside the grid, so
  // a plan generated for fewer epochs than the trainer runs degrades to
  // fault-free tail epochs instead of aborting.
  FaultEvent At(size_t epoch, size_t participant) const;

  // Total number of cells scheduled with `type`.
  size_t CountType(FaultType type) const;

  size_t num_epochs() const { return num_epochs_; }
  size_t num_participants() const { return num_participants_; }
  const FaultPlanConfig& config() const { return config_; }

  // The deterministic RNG a trainer should use to materialize the
  // corruption payload for cell (epoch, participant).
  Rng CorruptionRng(size_t epoch, size_t participant) const;

 private:
  FaultPlan(size_t num_epochs, size_t num_participants,
            const FaultPlanConfig& config)
      : num_epochs_(num_epochs),
        num_participants_(num_participants),
        config_(config) {}

  size_t num_epochs_ = 0;
  size_t num_participants_ = 0;
  FaultPlanConfig config_;
  std::vector<FaultEvent> events_;  // epoch-major grid
};

// Returns a corrupted copy of `update` (which trainers then submit in place
// of the true update). kNaN/kInf hit a random non-empty coordinate subset;
// kExplode scales the whole vector by `explode_factor`.
std::vector<double> CorruptUpdate(const std::vector<double>& update,
                                  CorruptionKind kind, double explode_factor,
                                  Rng& rng);

// ---------------------------------------------------------------------------
// Server-side quarantine gate.

enum class QuarantineReason : uint8_t {
  kAccepted = 0,
  kNonFinite = 1,     // NaN or ±Inf anywhere in the payload
  kNormExploded = 2,  // L2 norm above the configured ceiling
};

const char* QuarantineReasonToString(QuarantineReason reason);

// snake_case code used as the telemetry `reason` label value and in JSONL
// run reports ("accepted", "non_finite", "norm_exploded").
const char* QuarantineReasonCode(QuarantineReason reason);

struct QuarantineConfig {
  // Absolute L2 ceiling on a single update; <= 0 disables the norm check
  // (non-finite payloads are always rejected).
  double max_update_norm = 1e6;
  // > 0: additionally reject updates whose norm exceeds `median_factor` ×
  // the median norm of the updates that arrived this epoch. Catches exploded
  // deltas that stay under the absolute ceiling.
  double median_factor = 0.0;
};

// Inspects one update. `epoch_median_norm` is the median L2 norm of the
// epoch's arrived updates (pass 0 when unknown; the relative check is then
// skipped).
QuarantineReason InspectUpdate(const std::vector<double>& update,
                               const QuarantineConfig& config,
                               double epoch_median_norm = 0.0);

// One rejected update, with enough context to audit the decision.
struct QuarantineEvent {
  uint32_t epoch = 0;
  uint32_t participant = 0;
  QuarantineReason reason = QuarantineReason::kAccepted;
  // L2 norm of the rejected payload (NaN-safe: non-finite payloads record
  // the norm of their finite part).
  double norm = 0.0;
};

// Fault bookkeeping accumulated by a trainer over a run. Rejections are
// logged (with reason codes), never silently dropped.
struct FaultStats {
  size_t dropouts = 0;
  size_t stragglers_dropped = 0;
  size_t straggler_retries = 0;
  size_t quarantined_non_finite = 0;
  size_t quarantined_norm = 0;
  std::vector<QuarantineEvent> quarantine_events;

  size_t total_quarantined() const {
    return quarantined_non_finite + quarantined_norm;
  }
  void RecordQuarantine(size_t epoch, size_t participant,
                        QuarantineReason reason, double norm);
};

// ---------------------------------------------------------------------------
// Seeded crash-point injection (process faults).
//
// Participant faults above degrade a round; process faults kill the server
// outright. The checkpoint subsystem (src/ckpt/) threads named crash points
// through its commit protocol and the trainers mark every epoch boundary, so
// a seeded CrashPlan can deterministically kill the process at the k-th
// crash point it reaches — mid checkpoint write, between rename and manifest
// update, at an epoch boundary, anywhere. The kill is _exit: no stack
// unwinding, no stream flushing, exactly what a SIGKILL'd server leaves
// behind. The kill/resume harness (tests/ckpt_crash_test.cc,
// scripts/run_checks.sh --crash) arms a plan in a child process and verifies
// that resuming from the surviving checkpoints reproduces the uninterrupted
// run bit for bit.

struct CrashPlanConfig {
  // Die at the k-th qualifying crash point; 0 disarms.
  uint64_t kill_ordinal = 0;
  // Optional: only crash points with exactly this site name qualify. Empty
  // means every site qualifies.
  std::string site;
  // Process exit code of the injected crash (distinguishes an injected kill
  // from a real failure in harnesses).
  int exit_code = 42;
};

// Installs (or, with a default-constructed config, disarms) the
// process-global crash plan and resets the qualifying-hit counter, so
// ordinals always count from the installation point.
void InstallCrashPlan(const CrashPlanConfig& config);

// Arms the plan from $DIGFL_CRASH_AT: "<k>" or "<site>:<k>". Unset or empty
// leaves the plan disarmed; a malformed value is a typed error.
Status InstallCrashPlanFromEnv();

// Declares a crash point. Always counts the hit (so ordinals are stable
// whether or not a plan is armed); if the armed plan's ordinal is reached,
// the process dies immediately.
void MaybeCrash(const char* site);

// Crash-point hits since the last InstallCrashPlan (armed or not). Harnesses
// use a counting dry run to learn how many kill points a workload exposes.
uint64_t CrashPointHits();

// Uniform kill ordinal in [1, max_points] derived from `seed`; the harness
// helper for picking randomized-but-reproducible kill points.
uint64_t PickCrashOrdinal(uint64_t seed, uint64_t max_points);

}  // namespace digfl

#endif  // DIGFL_COMMON_FAULT_H_
