// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so experiments are reproducible bit-for-bit. Rng also supports
// splitting (`Fork`) to hand independent, deterministic streams to
// sub-components (participants, datasets, baselines) without sharing state.

#ifndef DIGFL_COMMON_RNG_H_
#define DIGFL_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace digfl {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  // Standard normal scaled/shifted: mean + stddev * N(0,1).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  // Raw 64 uniformly random bits.
  uint64_t NextBits();

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Returns a random permutation of {0, 1, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  // Deterministically derives an independent child stream. Forks with
  // different `stream_id`s are independent of each other and of the parent.
  Rng Fork(uint64_t stream_id) const;

  // Serializes the complete stream state (seed + engine position) to a
  // portable ASCII token string; RestoreState resumes the stream exactly, so
  // a checkpointed run draws the same tail of values an uninterrupted run
  // would. RestoreState rejects malformed state with a typed error and
  // leaves the stream untouched.
  std::string SaveState() const;
  Status RestoreState(const std::string& state);

  uint64_t seed() const { return seed_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace digfl

#endif  // DIGFL_COMMON_RNG_H_
