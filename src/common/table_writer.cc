#include "common/table_writer.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace digfl {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Status TableWriter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != header width " +
        std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string TableWriter::FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TableWriter::FormatScientific(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

Status TableWriter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return Status::OK();
}

}  // namespace digfl
