// Minimal leveled logger for library diagnostics.
//
// Usage:
//   DIGFL_LOG(INFO) << "epoch " << t << " loss " << loss;
//
// The default threshold is kWarning so library code stays quiet in tests;
// benches and examples raise it to kInfo. kFatal messages abort the process
// after printing (used by DIGFL_CHECK for internal invariants).

#ifndef DIGFL_COMMON_LOGGING_H_
#define DIGFL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace digfl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global log threshold; messages below it are dropped (kFatal cannot be
// suppressed).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace digfl

#define DIGFL_LOG(severity)                                               \
  ::digfl::internal::LogMessage(::digfl::LogLevel::k##severity, __FILE__, \
                                __LINE__)                                 \
      .stream()

// Fatal assertion for internal invariants (programming errors, not user
// input; user input is validated with Status). Aborts when violated.
#define DIGFL_CHECK(condition) \
  if (!(condition)) DIGFL_LOG(Fatal) << "Check failed: " #condition " "

#endif  // DIGFL_COMMON_LOGGING_H_
