// CommMeter: accounting of simulated network traffic.
//
// The paper reports communication cost as the number of bytes exchanged
// between the server/third party and the participants. All simulated
// message sends in the HFL/VFL substrates record their payload size here so
// the benchmark harnesses can report the same metric.

#ifndef DIGFL_COMMON_COMM_METER_H_
#define DIGFL_COMMON_COMM_METER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <map>

namespace digfl {

class CommMeter {
 public:
  // Records `bytes` of traffic under a human-readable channel label,
  // e.g. "participant->server:local_model".
  void Record(const std::string& channel, uint64_t bytes);

  // Convenience: payload of `count` doubles.
  void RecordDoubles(const std::string& channel, uint64_t count) {
    Record(channel, count * sizeof(double));
  }

  uint64_t TotalBytes() const { return total_bytes_; }
  double TotalMegabytes() const {
    return static_cast<double>(total_bytes_) / (1024.0 * 1024.0);
  }

  // Per-channel breakdown, keyed by label.
  const std::map<std::string, uint64_t>& ByChannel() const {
    return by_channel_;
  }

  void Reset();

 private:
  uint64_t total_bytes_ = 0;
  std::map<std::string, uint64_t> by_channel_;
};

}  // namespace digfl

#endif  // DIGFL_COMMON_COMM_METER_H_
