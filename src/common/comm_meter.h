// CommMeter: accounting of simulated network traffic.
//
// The paper reports communication cost as the number of bytes exchanged
// between the server/third party and the participants. All simulated
// message sends in the HFL/VFL substrates record their payload size here so
// the benchmark harnesses can report the same metric.
//
// Hot-path discipline: channels are interned once into dense ChannelIds
// (`Channel()`), and per-message Record(ChannelId, ...) is a plain array
// add — no string hashing or tree walk per send. The string overloads
// remain as a compatibility wrapper for call sites that record rarely.
// For machine-readable reports, `ExportTo()` mirrors the per-channel totals
// into a telemetry MetricsRegistry as a labeled byte-counter family.

#ifndef DIGFL_COMMON_COMM_METER_H_
#define DIGFL_COMMON_COMM_METER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace digfl {

class CommMeter {
 public:
  using ChannelId = size_t;

  // Interns a human-readable channel label, e.g.
  // "participant->server:local_model". Idempotent; O(1) amortized. Hoist
  // out of per-epoch loops.
  ChannelId Channel(std::string_view name);

  // Records `bytes` of traffic on an interned channel. O(1), no hashing.
  void Record(ChannelId channel, uint64_t bytes) {
    total_bytes_ += bytes;
    channels_[channel].second += bytes;
  }

  // Convenience: payload of `count` doubles.
  void RecordDoubles(ChannelId channel, uint64_t count) {
    Record(channel, count * sizeof(double));
  }

  // Compatibility wrappers: intern-on-record (one hash lookup per call).
  void Record(const std::string& channel, uint64_t bytes) {
    Record(Channel(channel), bytes);
  }
  void RecordDoubles(const std::string& channel, uint64_t count) {
    Record(Channel(channel), count * sizeof(double));
  }

  uint64_t TotalBytes() const { return total_bytes_; }
  double TotalMegabytes() const {
    return static_cast<double>(total_bytes_) / (1024.0 * 1024.0);
  }

  // Per-channel breakdown, keyed by label (materialized view; the meter no
  // longer stores a std::map internally).
  std::map<std::string, uint64_t> ByChannel() const;

  // Mirrors every channel into `registry` as counters named `metric_name`
  // with labels {channel=<label>} ∪ base_labels. Additive: exporting the
  // same meter twice doubles the counters, so export once per run.
  void ExportTo(telemetry::MetricsRegistry& registry,
                std::string_view metric_name,
                telemetry::LabelSet base_labels = {}) const;

  void Reset();

 private:
  // Heterogeneous lookup so the string_view path never allocates.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  uint64_t total_bytes_ = 0;
  // Dense channel table; index == ChannelId.
  std::vector<std::pair<std::string, uint64_t>> channels_;
  std::unordered_map<std::string, ChannelId, StringHash, std::equal_to<>>
      index_;
};

}  // namespace digfl

#endif  // DIGFL_COMMON_COMM_METER_H_
