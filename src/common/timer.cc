// Timer is header-only; this translation unit exists so the target has a
// symbol for every header and stays a normal static library.
#include "common/timer.h"

namespace digfl {
namespace internal {
// Anchor to keep the object file non-empty under all toolchains.
int timer_module_anchor = 0;
}  // namespace internal
}  // namespace digfl
