// Deterministic adversarial (Byzantine) participant behavior.
//
// The fault machinery in common/fault.h models *honest* failures: crashes,
// dropouts, corrupted-in-transit payloads. This module models participants
// that misbehave on purpose — they compute the honest local update and then
// submit something else. Like FaultPlan, everything here is a pure function
// of the run seed, so the simulation swarm (src/sim/) replays every attack
// bit-for-bit.
//
// Attack taxonomy:
//   kSignFlip       — submit -δ (model poisoning; drives training backward).
//   kScale          — submit k·δ (amplifies the attacker's influence; the
//                     admission gate's norm checks are the intended defense).
//   kNoise          — submit δ + N(0, σ²) per coordinate (disruptive noise).
//   kFreeRiderZero  — submit 0 (takes the model, contributes nothing).
//   kFreeRiderReplay— resubmit the previous epoch's honest δ (stale update;
//                     degenerates to kFreeRiderZero on the first epoch).
//
// Colluding groups: a plan may assign all its attackers one shared spec and
// a common collusion_group id, modeling coordinated attacks (e.g. every
// attacker sign-flips) rather than independent misbehavior.

#ifndef DIGFL_COMMON_ADVERSARY_H_
#define DIGFL_COMMON_ADVERSARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace digfl {

enum class AttackType : uint8_t {
  kNone = 0,
  kSignFlip = 1,
  kScale = 2,
  kNoise = 3,
  kFreeRiderZero = 4,
  kFreeRiderReplay = 5,
};

const char* AttackTypeToString(AttackType type);
// snake_case code used as the telemetry `attack` label value.
const char* AttackTypeCode(AttackType type);

// How one attacker misbehaves, every epoch, for the whole run.
struct AttackSpec {
  AttackType type = AttackType::kNone;
  double scale = 10.0;         // multiplier for kScale
  double noise_stddev = 1.0;   // per-coordinate σ for kNoise
  uint32_t collusion_group = 0;  // 0 = acting alone; >0 = coordinated group
};

struct AdversaryPlanConfig {
  // floor(attacker_fraction × n) participants become attackers.
  double attacker_fraction = 0.0;
  // Attack types drawn for independent attackers (and for the shared spec
  // of a colluding group). Empty = all five types.
  std::vector<AttackType> palette;
  // Probability that the attackers collude: one shared spec + group id 1
  // for all of them instead of independent per-attacker draws.
  double collusion_probability = 0.0;
  double scale = 10.0;
  double noise_stddev = 1.0;
  uint64_t seed = 0xadf1;
};

// A deterministic, replayable assignment of attack behaviors to
// participants. Which participants attack, and how, depends only on
// (num_participants, config) — never on wall-clock or call order.
class AdversaryPlan {
 public:
  static Result<AdversaryPlan> Generate(size_t num_participants,
                                        const AdversaryPlanConfig& config);

  // The behavior of `participant`; type == kNone for honest participants
  // and out-of-range indices.
  const AttackSpec& SpecFor(size_t participant) const;
  bool IsAttacker(size_t participant) const {
    return SpecFor(participant).type != AttackType::kNone;
  }
  size_t num_attackers() const;
  size_t num_participants() const { return specs_.size(); }
  // true when the plan's attackers share one colluding group.
  bool colluding() const { return colluding_; }
  const AdversaryPlanConfig& config() const { return config_; }

  // The deterministic RNG stream backing participant `participant`'s attack
  // payload at `epoch` (kNoise draws). Independent across cells.
  Rng AttackRng(size_t epoch, size_t participant) const;

 private:
  AdversaryPlanConfig config_;
  std::vector<AttackSpec> specs_;
  bool colluding_ = false;
};

// Returns the update the attacker submits in place of the honest `update`.
// `rng` must come from AdversaryPlan::AttackRng for replayability.
// `last_update` backs kFreeRiderReplay (the previous epoch's submitted
// honest update); nullptr or a size mismatch degrades to the zero update.
std::vector<double> ApplyAttack(const std::vector<double>& update,
                                const AttackSpec& spec, Rng& rng,
                                const std::vector<double>* last_update =
                                    nullptr);

}  // namespace digfl

#endif  // DIGFL_COMMON_ADVERSARY_H_
