#include "common/comm_meter.h"

namespace digfl {

void CommMeter::Record(const std::string& channel, uint64_t bytes) {
  total_bytes_ += bytes;
  by_channel_[channel] += bytes;
}

void CommMeter::Reset() {
  total_bytes_ = 0;
  by_channel_.clear();
}

}  // namespace digfl
