#include "common/comm_meter.h"

namespace digfl {

CommMeter::ChannelId CommMeter::Channel(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const ChannelId id = channels_.size();
  channels_.emplace_back(std::string(name), 0);
  index_.emplace(std::string(name), id);
  return id;
}

std::map<std::string, uint64_t> CommMeter::ByChannel() const {
  std::map<std::string, uint64_t> view;
  for (const auto& [name, bytes] : channels_) {
    if (bytes > 0) view[name] += bytes;
  }
  return view;
}

void CommMeter::ExportTo(telemetry::MetricsRegistry& registry,
                         std::string_view metric_name,
                         telemetry::LabelSet base_labels) const {
  for (const auto& [name, bytes] : channels_) {
    if (bytes == 0) continue;
    telemetry::LabelSet labels = base_labels;
    labels.push_back({"channel", name});
    registry.GetCounter(metric_name, std::move(labels)).Increment(bytes);
  }
}

void CommMeter::Reset() {
  total_bytes_ = 0;
  for (auto& [name, bytes] : channels_) bytes = 0;
}

}  // namespace digfl
