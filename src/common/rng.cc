#include "common/rng.h"

#include <locale>
#include <sstream>

namespace digfl {
namespace {

// SplitMix64 finalizer; used to decorrelate fork seeds.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t Rng::UniformInt(uint64_t n) {
  std::uniform_int_distribution<uint64_t> dist(0, n - 1);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

uint64_t Rng::NextBits() { return engine_(); }

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

Rng Rng::Fork(uint64_t stream_id) const {
  return Rng(Mix(seed_ ^ Mix(stream_id + 1)));
}

std::string Rng::SaveState() const {
  // Classic locale so the token stream never picks up digit grouping.
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << seed_ << ' ' << engine_;
  return out.str();
}

Status Rng::RestoreState(const std::string& state) {
  std::istringstream in(state);
  in.imbue(std::locale::classic());
  uint64_t seed = 0;
  std::mt19937_64 engine;
  if (!(in >> seed >> engine)) {
    return Status::InvalidArgument("malformed Rng state");
  }
  seed_ = seed;
  engine_ = engine;
  return Status::OK();
}

}  // namespace digfl
