// Status: lightweight error propagation without exceptions.
//
// Follows the Arrow/RocksDB idiom: every fallible operation in the library
// returns a Status (or a Result<T>, see result.h) instead of throwing.
// Statuses are cheap to copy in the OK case (no allocation) and carry a
// code + message otherwise.

#ifndef DIGFL_COMMON_STATUS_H_
#define DIGFL_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace digfl {

// Error taxonomy, deliberately small. Mirrors the subset of Arrow/absl codes
// this library actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kUnimplemented = 5,
  kInternal = 6,
  // Networking (src/net/): a peer or deadline failed, not the request
  // itself. kDeadlineExceeded = the operation timed out and may be retried;
  // kUnavailable = the connection is gone (EOF, reset, refused).
  kDeadlineExceeded = 7,
  kUnavailable = 8,
};

// Human-readable name of a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

class Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so that Status copies are cheap; OK carries no allocation at all.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace digfl

// Propagates a non-OK Status to the caller.
#define DIGFL_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::digfl::Status _digfl_status = (expr);        \
    if (!_digfl_status.ok()) return _digfl_status; \
  } while (false)

#endif  // DIGFL_COMMON_STATUS_H_
