// Result<T>: value-or-Status, the companion of status.h.
//
// A Result<T> holds either a T or a non-OK Status. Accessing the value of a
// failed Result aborts (programming error), mirroring arrow::Result /
// absl::StatusOr semantics.

#ifndef DIGFL_COMMON_RESULT_H_
#define DIGFL_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace digfl {

template <typename T>
class Result {
 public:
  // Implicit from a value: `return some_t;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  // Implicit from a non-OK status: `return Status::InvalidArgument(...);`
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result<T> constructed from OK Status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Accessed value of failed Result: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace digfl

// DIGFL_ASSIGN_OR_RETURN(lhs, rexpr): evaluates `rexpr` (a Result<T>); on
// error returns the Status, otherwise move-assigns the value into `lhs`.
#define DIGFL_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  DIGFL_ASSIGN_OR_RETURN_IMPL_(                                     \
      DIGFL_STATUS_MACROS_CONCAT_(_digfl_result, __LINE__), lhs, rexpr)

#define DIGFL_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

#define DIGFL_STATUS_MACROS_CONCAT_(x, y) DIGFL_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define DIGFL_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // DIGFL_COMMON_RESULT_H_
