// EncryptedVflParticipant: one party in the Paillier-based vertical linear
// regression protocol (paper Sec. IV-B, running example of Yang et al. [3]).
//
// Each participant holds a private feature slice and its parameter block.
// All cross-party values it emits are Paillier ciphertexts; gradients come
// back from the third party masked with a random element of Z_n that only
// this participant knows (step 4/5 of the protocol).

#ifndef DIGFL_VFL_VFL_PARTICIPANT_H_
#define DIGFL_VFL_VFL_PARTICIPANT_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/fixed_point.h"
#include "crypto/paillier.h"
#include "data/dataset.h"

namespace digfl {

class EncryptedVflParticipant {
 public:
  // `features` is this party's private vertical *training* slice
  // (rows = samples). Validation-slice passes supply rows explicitly.
  EncryptedVflParticipant(size_t id, Matrix features, uint64_t seed)
      : id_(id),
        features_(std::move(features)),
        params_(features_.cols(), 0.0),
        rng_(seed) {}

  size_t id() const { return id_; }
  size_t num_features() const { return features_.cols(); }
  const Vec& params() const { return params_; }

  void ReceivePublicKey(const PaillierPublicKey& key, int fraction_bits);

  // Local linear scores u_i[j] = <θ_i, x_i[j]> over `rows` (the party's
  // training or validation slice); plaintext, stays local.
  Vec ComputeScores(const Matrix& rows) const { return rows.MatVec(params_); }

  // Step 2/3: encrypt this party's per-sample contribution to the residual
  //   share[j] = score_scale · u_i[j] + offset + label_scale · y[j],
  // where the label terms apply only to the label holder (`labels` non-null;
  // other parties pass nullptr and contribute score_scale · u_i[j]).
  // Linear regression uses (1, −1, 0); the Taylor-approximated logistic
  // protocol uses (1/4, −1, 1/2) so that Σ_i share = σ̃(z) − y with
  // σ̃(z) = 1/2 + z/4.
  Result<std::vector<PaillierCiphertext>> EncryptResidualShare(
      const Vec& scores, const Vec* labels, double score_scale = 1.0,
      double label_scale = -1.0, double offset = 0.0);

  // Step 4: from the encrypted residual [[d]] compute this party's encrypted
  // gradient block [[g_i]] = [[ gradient_scale · Σ_j d[j]·x_i[j] ]] over
  // `rows` (the training or validation slice), then add a fresh random
  // mask. Returns the masked ciphertexts; the masks are retained internally
  // for Unmask(). gradient_scale is 2/m for squared loss, 1/m for logistic.
  Result<std::vector<PaillierCiphertext>> ComputeMaskedGradient(
      const std::vector<PaillierCiphertext>& encrypted_residual,
      const Matrix& rows, double gradient_scale);

  // Step 5 (participant side): remove the stored mask from the decrypted
  // plaintexts and decode to real gradients.
  Result<Vec> Unmask(const std::vector<BigInt>& masked_plaintexts) const;

  // Local SGD step on this block.
  void ApplyGradient(const Vec& gradient, double learning_rate);

  // Eq. 27 restricted to this block: <validation-gradient block, α·g block>.
  static double BlockContribution(const Vec& validation_grad_block,
                                  const Vec& scaled_grad_block);

  const Matrix& features() const { return features_; }

 private:
  size_t id_;
  Matrix features_;
  Vec params_;
  Rng rng_;
  std::optional<PaillierPublicKey> public_key_;
  std::optional<FixedPointCodec> codec_;
  std::vector<BigInt> last_masks_;
  double last_scale_ = 1.0;  // gradient_scale factor folded into Unmask
};

}  // namespace digfl

#endif  // DIGFL_VFL_VFL_PARTICIPANT_H_
