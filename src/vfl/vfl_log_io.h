// Persistence for VFL training logs ("DIGFLOG2" binary format), the
// vertical counterpart of hfl/log_io.h: a deployment records
// (θ_{t-1}, G_t, α_t, weights) during training and settles contributions
// offline with core/digfl_vfl.h. The CommMeter is transient and not
// persisted.

#ifndef DIGFL_VFL_VFL_LOG_IO_H_
#define DIGFL_VFL_VFL_LOG_IO_H_

#include <string>

#include "common/result.h"
#include "vfl/plain_trainer.h"

namespace digfl {

// Writes `log` to `path`, overwriting. Fails on I/O errors or ragged
// records.
Status SaveVflTrainingLog(const VflTrainingLog& log, const std::string& path);

// Reads a log previously written by SaveVflTrainingLog.
Result<VflTrainingLog> LoadVflTrainingLog(const std::string& path);

}  // namespace digfl

#endif  // DIGFL_VFL_VFL_LOG_IO_H_
