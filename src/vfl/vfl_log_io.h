// Persistence for VFL training logs, the vertical counterpart of
// hfl/log_io.h: a deployment records (θ_{t-1}, G_t, α_t, weights, and the
// participation mask) during training and settles contributions offline
// with core/digfl_vfl.h. The CommMeter is transient and not persisted.
//
// Format: versioned little-endian binary. v2 ("DVFLLOG2") adds the
// per-epoch participation mask and fault statistics; v1 ("DIGFLOG2") files
// remain loadable. Deserialization is defensive (typed Status errors for
// truncation/bad magic/non-finite payloads) and SalvageVflTrainingLog
// recovers the longest valid epoch prefix of a damaged file.

#ifndef DIGFL_VFL_VFL_LOG_IO_H_
#define DIGFL_VFL_VFL_LOG_IO_H_

#include <string>

#include "common/result.h"
#include "vfl/plain_trainer.h"

namespace digfl {

// Serializes `log` to the v2 byte layout (the exact bytes
// SaveVflTrainingLog writes). Fails on ragged records. Exposed so
// checkpoints can embed a training log inside a larger framed record.
Result<std::string> SerializeVflTrainingLog(const VflTrainingLog& log);

// Parses a v1/v2 byte image previously produced by SerializeVflTrainingLog /
// SaveVflTrainingLog. `name` labels error messages.
Result<VflTrainingLog> ParseVflTrainingLog(const std::string& data,
                                           const std::string& name);

// Writes `log` to `path` (v2 layout) via the crash-safe atomic writer
// (ckpt/atomic_file.h): a crash mid-save leaves the previous file intact,
// never a torn one. Fails on I/O errors or ragged records.
Status SaveVflTrainingLog(const VflTrainingLog& log, const std::string& path);

// Reads a log previously written by SaveVflTrainingLog (v1 or v2). Fails on
// missing file, bad magic/version, truncated or dimensionally inconsistent
// payload, or non-finite model data.
Result<VflTrainingLog> LoadVflTrainingLog(const std::string& path);

// Best-effort recovery of a damaged VFL log (see hfl/log_io.h for the
// semantics of the fields).
struct VflLogSalvage {
  VflTrainingLog log;
  size_t epochs_recovered = 0;
  size_t epochs_declared = 0;
  bool trailer_intact = false;
};

// Recovers the longest valid epoch prefix of `path`. Requires an intact
// magic/header and at least one clean epoch.
Result<VflLogSalvage> SalvageVflTrainingLog(const std::string& path);

}  // namespace digfl

#endif  // DIGFL_VFL_VFL_LOG_IO_H_
