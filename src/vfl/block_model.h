// VflBlockModel: the participant/parameter-block structure of a vertical FL
// system.
//
// In VFL each participant owns a contiguous block of feature columns and
// the matching block of the global parameter vector (for the linear and
// logistic models of the paper, parameter index == feature index). This
// class owns that mapping and the masking operations of Lemma 2:
// diag(v_z) (zero the removed block) and E − diag(v_z) (keep only it).

#ifndef DIGFL_VFL_BLOCK_MODEL_H_
#define DIGFL_VFL_BLOCK_MODEL_H_

#include <vector>

#include "common/result.h"
#include "data/partition.h"
#include "tensor/vec.h"

namespace digfl {

class VflBlockModel {
 public:
  // `blocks` must tile [0, num_params) contiguously in order.
  static Result<VflBlockModel> Create(std::vector<FeatureBlock> blocks,
                                      size_t num_params);

  size_t num_participants() const { return blocks_.size(); }
  size_t num_params() const { return num_params_; }
  const FeatureBlock& block(size_t participant) const {
    return blocks_[participant];
  }
  const std::vector<FeatureBlock>& blocks() const { return blocks_; }

  // (E − diag(v_z)) x : keeps only participant z's block.
  Vec KeepBlock(size_t participant, const Vec& x) const;

  // diag(v_z) x : zeroes participant z's block.
  Vec DropBlock(size_t participant, const Vec& x) const;

  // Applies per-participant weights to the matching blocks of x (Eq. 31).
  Result<Vec> ScaleBlocks(const Vec& x,
                          const std::vector<double>& weights) const;

  // <a, b> restricted to participant z's block — the inner product behind
  // Eq. 27.
  double BlockDot(size_t participant, const Vec& a, const Vec& b) const;

 private:
  VflBlockModel(std::vector<FeatureBlock> blocks, size_t num_params)
      : blocks_(std::move(blocks)), num_params_(num_params) {}

  std::vector<FeatureBlock> blocks_;
  size_t num_params_;
};

}  // namespace digfl

#endif  // DIGFL_VFL_BLOCK_MODEL_H_
