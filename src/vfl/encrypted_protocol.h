// The Paillier-encrypted vertical linear regression protocol — the paper's
// running example (Sec. IV-B / Algorithm 3), generalized from 2 to n
// participants.
//
// Per epoch:
//   1. every participant computes local scores u_i = X_i θ_i;
//   2. the label holder encrypts (u_1 − y) and the encrypted residual [[d]]
//      is accumulated homomorphically along the participant chain, then
//      broadcast;
//   3. each participant computes its *encrypted* gradient block
//      [[g_i]] = [[(2/m) Σ_j d_j x_ij]] and adds a fresh random mask M_i;
//   4. the trusted third party decrypts the masked blocks (learning nothing:
//      the mask is uniform in Z_n) and returns them;
//   5. each participant removes its mask and steps its block parameters.
//
// With DIG-FL enabled the same machinery runs once more per epoch on the
// validation slice to obtain ∇loss^v(θ_{t-1}), and each participant reports
// the scalar φ̂_{t,i} = α_t · <v_i, g_i> (Eq. 27) to the third party.
//
// This path is numerically identical to vfl/plain_trainer.h up to
// fixed-point quantization — asserted by the integration tests.

#ifndef DIGFL_VFL_ENCRYPTED_PROTOCOL_H_
#define DIGFL_VFL_ENCRYPTED_PROTOCOL_H_

#include <vector>

#include "common/comm_meter.h"
#include "common/result.h"
#include "data/dataset.h"
#include "tensor/matrix.h"
#include "vfl/block_model.h"

namespace digfl {

struct EncryptedVflConfig {
  size_t epochs = 5;
  double learning_rate = 0.1;
  size_t key_bits = 256;    // paper: 1024; tests/benches use smaller keys
  int fraction_bits = 24;   // fixed-point precision
  uint64_t seed = 11;
  bool evaluate_contributions = true;  // run DIG-FL (Eq. 27) alongside
};

struct EncryptedVflResult {
  // Concatenated final parameters (exists only for verification against the
  // plaintext trainer; no real party ever assembles this).
  Vec final_params;
  // Per-epoch DIG-FL contributions (epochs x participants) held by the
  // third party; empty when evaluate_contributions is false.
  std::vector<std::vector<double>> per_epoch_contributions;
  std::vector<double> total_contributions;
  CommMeter comm;
};

// Trains vertical linear regression over `train` (feature columns split per
// `blocks`; labels held by participant 0) and evaluates contributions
// against `validation`.
Result<EncryptedVflResult> RunEncryptedVflLinReg(const Dataset& train,
                                                 const Dataset& validation,
                                                 const VflBlockModel& blocks,
                                                 const EncryptedVflConfig& config);

// Vertical logistic regression under the same encrypted exchange, using the
// degree-1 Taylor surrogate σ̃(z) = 1/2 + z/4 (Hardy et al. [34]) so the
// residual stays linear in the per-party scores — the standard trick for
// Paillier-based VFL-LogReg. Exact at θ = 0 and accurate while |z| is
// moderate; the tests quantify the gap against the exact-sigmoid plaintext
// trainer. Labels must be 0/1 (num_classes == 2).
Result<EncryptedVflResult> RunEncryptedVflLogReg(const Dataset& train,
                                                 const Dataset& validation,
                                                 const VflBlockModel& blocks,
                                                 const EncryptedVflConfig& config);

}  // namespace digfl

#endif  // DIGFL_VFL_ENCRYPTED_PROTOCOL_H_
