#include "vfl/block_model.h"

#include "common/logging.h"

namespace digfl {

Result<VflBlockModel> VflBlockModel::Create(std::vector<FeatureBlock> blocks,
                                            size_t num_params) {
  if (blocks.empty()) return Status::InvalidArgument("no blocks");
  size_t cursor = 0;
  for (const FeatureBlock& block : blocks) {
    if (block.begin != cursor || block.end <= block.begin) {
      return Status::InvalidArgument("blocks must tile the parameter space");
    }
    cursor = block.end;
  }
  if (cursor != num_params) {
    return Status::InvalidArgument(
        "blocks cover " + std::to_string(cursor) + " of " +
        std::to_string(num_params) + " parameters");
  }
  return VflBlockModel(std::move(blocks), num_params);
}

Vec VflBlockModel::KeepBlock(size_t participant, const Vec& x) const {
  DIGFL_CHECK(participant < blocks_.size());
  return vec::MaskedToBlock(x, blocks_[participant].begin,
                            blocks_[participant].end);
}

Vec VflBlockModel::DropBlock(size_t participant, const Vec& x) const {
  DIGFL_CHECK(participant < blocks_.size());
  return vec::MaskedOutBlock(x, blocks_[participant].begin,
                             blocks_[participant].end);
}

Result<Vec> VflBlockModel::ScaleBlocks(
    const Vec& x, const std::vector<double>& weights) const {
  if (weights.size() != blocks_.size()) {
    return Status::InvalidArgument("weight count != participant count");
  }
  if (x.size() != num_params_) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  Vec out = x;
  for (size_t p = 0; p < blocks_.size(); ++p) {
    for (size_t j = blocks_[p].begin; j < blocks_[p].end; ++j) {
      out[j] *= weights[p];
    }
  }
  return out;
}

double VflBlockModel::BlockDot(size_t participant, const Vec& a,
                               const Vec& b) const {
  DIGFL_CHECK(participant < blocks_.size());
  DIGFL_CHECK(a.size() == num_params_ && b.size() == num_params_);
  double sum = 0.0;
  for (size_t j = blocks_[participant].begin; j < blocks_[participant].end;
       ++j) {
    sum += a[j] * b[j];
  }
  return sum;
}

}  // namespace digfl
