#include "vfl/vfl_log_io.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "ckpt/atomic_file.h"

namespace digfl {
namespace {

constexpr char kMagicV1[8] = {'D', 'I', 'G', 'F', 'L', 'O', 'G', '2'};
constexpr char kMagicV2[8] = {'D', 'V', 'F', 'L', 'L', 'O', 'G', '2'};

void WriteU64(std::ostream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteDoubles(std::ostream& out, const Vec& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
}

void WriteBytes(std::ostream& out, const std::vector<uint8_t>& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size()));
}

bool ReadU64(std::istream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.gcount() == sizeof(*value);
}

bool ReadDoubles(std::istream& in, size_t count, Vec* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return in.gcount() == static_cast<std::streamsize>(count * sizeof(double));
}

bool ReadBytes(std::istream& in, size_t count, std::vector<uint8_t>* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count));
  return in.gcount() == static_cast<std::streamsize>(count);
}

bool AllFinite(const Vec& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

struct VflLogHeader {
  int version = 0;
  uint64_t epochs = 0;
  uint64_t n = 0;
  uint64_t p = 0;
  uint64_t trace_len = 0;
};

Status ReadHeader(std::istream& in, const std::string& path,
                  VflLogHeader* header) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic)) {
    return Status::InvalidArgument(path + " is not a DIG-FL VFL log");
  }
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
    header->version = 1;
  } else if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
    header->version = 2;
  } else {
    return Status::InvalidArgument(path + " is not a DIG-FL VFL log");
  }
  if (!ReadU64(in, &header->epochs) || !ReadU64(in, &header->n) ||
      !ReadU64(in, &header->p) || !ReadU64(in, &header->trace_len)) {
    return Status::InvalidArgument("truncated log header");
  }
  if (header->epochs > (1u << 24) || header->n > (1u << 20) ||
      header->p > (1ull << 32) || header->trace_len > (1u << 24)) {
    return Status::InvalidArgument("implausible log header");
  }
  return Status::OK();
}

Status ReadEpochRecord(std::istream& in, const VflLogHeader& header,
                       VflEpochRecord* record) {
  Vec lr, weights;
  if (!ReadDoubles(in, 1, &lr) ||
      !ReadDoubles(in, header.p, &record->params_before) ||
      !ReadDoubles(in, header.p, &record->scaled_gradient) ||
      !ReadDoubles(in, header.n, &weights)) {
    return Status::InvalidArgument("truncated epoch record");
  }
  record->learning_rate = lr[0];
  record->weights.assign(weights.begin(), weights.end());
  if (header.version >= 2) {
    if (!ReadBytes(in, header.n, &record->present)) {
      return Status::InvalidArgument("truncated epoch record");
    }
    for (uint8_t flag : record->present) {
      if (flag > 1) {
        return Status::InvalidArgument("invalid participation mask");
      }
    }
  }
  if (!std::isfinite(record->learning_rate) ||
      !AllFinite(record->params_before) ||
      !AllFinite(record->scaled_gradient) || !AllFinite(weights)) {
    return Status::InvalidArgument("non-finite payload in epoch record");
  }
  return Status::OK();
}

Status ReadTrailer(std::istream& in, const VflLogHeader& header,
                   VflTrainingLog* log) {
  Vec losses;
  if (!ReadDoubles(in, header.p, &log->final_params)) {
    return Status::InvalidArgument("truncated trailer");
  }
  if (!AllFinite(log->final_params)) {
    return Status::InvalidArgument("non-finite final parameters");
  }
  if (!ReadDoubles(in, header.trace_len, &losses)) {
    return Status::InvalidArgument("truncated trailer");
  }
  log->validation_loss.assign(losses.begin(), losses.end());
  if (header.version >= 2) {
    uint64_t dropouts = 0, stragglers = 0, retries = 0, non_finite = 0,
             norm = 0, num_events = 0;
    if (!ReadU64(in, &dropouts) || !ReadU64(in, &stragglers) ||
        !ReadU64(in, &retries) || !ReadU64(in, &non_finite) ||
        !ReadU64(in, &norm) || !ReadU64(in, &num_events)) {
      return Status::InvalidArgument("truncated fault statistics");
    }
    if (num_events > header.epochs * header.n) {
      return Status::InvalidArgument("implausible quarantine event count");
    }
    log->faults.dropouts = dropouts;
    log->faults.stragglers_dropped = stragglers;
    log->faults.straggler_retries = retries;
    log->faults.quarantined_non_finite = non_finite;
    log->faults.quarantined_norm = norm;
    log->faults.quarantine_events.clear();
    for (uint64_t e = 0; e < num_events; ++e) {
      uint64_t epoch = 0, participant = 0, reason = 0;
      Vec event_norm;
      if (!ReadU64(in, &epoch) || !ReadU64(in, &participant) ||
          !ReadU64(in, &reason) || !ReadDoubles(in, 1, &event_norm)) {
        return Status::InvalidArgument("truncated quarantine events");
      }
      if (reason == 0 ||
          reason > static_cast<uint64_t>(QuarantineReason::kPhiScore) ||
          epoch >= header.epochs || participant >= header.n) {
        return Status::InvalidArgument("invalid quarantine event");
      }
      log->faults.quarantine_events.push_back(QuarantineEvent{
          static_cast<uint32_t>(epoch), static_cast<uint32_t>(participant),
          static_cast<QuarantineReason>(reason), event_norm[0]});
    }
    // The phi counter is not part of the v2 trailer; every phi quarantine
    // records an event, so the counter is recoverable exactly.
    log->faults.quarantined_phi = 0;
    for (const QuarantineEvent& event : log->faults.quarantine_events) {
      if (event.reason == QuarantineReason::kPhiScore) {
        ++log->faults.quarantined_phi;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> SerializeVflTrainingLog(const VflTrainingLog& log) {
  const size_t epochs = log.epochs.size();
  const size_t p = log.final_params.size();
  const size_t n = epochs == 0 ? 0 : log.epochs[0].weights.size();
  for (const VflEpochRecord& record : log.epochs) {
    if (record.params_before.size() != p ||
        record.scaled_gradient.size() != p || record.weights.size() != n ||
        (!record.present.empty() && record.present.size() != n)) {
      return Status::InvalidArgument("ragged VFL training log");
    }
  }
  std::ostringstream out(std::ios::binary);
  out.write(kMagicV2, sizeof(kMagicV2));
  WriteU64(out, epochs);
  WriteU64(out, n);
  WriteU64(out, p);
  WriteU64(out, log.validation_loss.size());
  for (const VflEpochRecord& record : log.epochs) {
    WriteDoubles(out, Vec{record.learning_rate});
    WriteDoubles(out, record.params_before);
    WriteDoubles(out, record.scaled_gradient);
    WriteDoubles(out, record.weights);
    if (record.present.empty()) {
      WriteBytes(out, std::vector<uint8_t>(n, 1));
    } else {
      WriteBytes(out, record.present);
    }
  }
  WriteDoubles(out, log.final_params);
  WriteDoubles(out, log.validation_loss);
  WriteU64(out, log.faults.dropouts);
  WriteU64(out, log.faults.stragglers_dropped);
  WriteU64(out, log.faults.straggler_retries);
  WriteU64(out, log.faults.quarantined_non_finite);
  WriteU64(out, log.faults.quarantined_norm);
  WriteU64(out, log.faults.quarantine_events.size());
  for (const QuarantineEvent& event : log.faults.quarantine_events) {
    WriteU64(out, event.epoch);
    WriteU64(out, event.participant);
    WriteU64(out, static_cast<uint64_t>(event.reason));
    WriteDoubles(out, Vec{event.norm});
  }
  if (!out) return Status::Internal("VFL log serialization failed");
  return std::move(out).str();
}

Result<VflTrainingLog> ParseVflTrainingLog(const std::string& data,
                                           const std::string& name) {
  std::istringstream in(data, std::ios::binary);
  VflLogHeader header;
  DIGFL_RETURN_IF_ERROR(ReadHeader(in, name, &header));
  VflTrainingLog log;
  log.epochs.reserve(header.epochs);
  for (uint64_t t = 0; t < header.epochs; ++t) {
    VflEpochRecord record;
    DIGFL_RETURN_IF_ERROR(ReadEpochRecord(in, header, &record));
    log.epochs.push_back(std::move(record));
  }
  DIGFL_RETURN_IF_ERROR(ReadTrailer(in, header, &log));
  return log;
}

Status SaveVflTrainingLog(const VflTrainingLog& log, const std::string& path) {
  DIGFL_ASSIGN_OR_RETURN(std::string blob, SerializeVflTrainingLog(log));
  return ckpt::AtomicWriteFile(path, blob);
}

Result<VflTrainingLog> LoadVflTrainingLog(const std::string& path) {
  DIGFL_ASSIGN_OR_RETURN(std::string data, ckpt::ReadFileToString(path));
  return ParseVflTrainingLog(data, path);
}

Result<VflLogSalvage> SalvageVflTrainingLog(const std::string& path) {
  DIGFL_ASSIGN_OR_RETURN(std::string data, ckpt::ReadFileToString(path));
  std::istringstream in(data, std::ios::binary);
  VflLogSalvage salvage;
  VflLogHeader header;
  DIGFL_RETURN_IF_ERROR(ReadHeader(in, path, &header));
  salvage.epochs_declared = header.epochs;

  for (uint64_t t = 0; t < header.epochs; ++t) {
    VflEpochRecord record;
    if (!ReadEpochRecord(in, header, &record).ok()) break;
    salvage.log.epochs.push_back(std::move(record));
  }
  salvage.epochs_recovered = salvage.log.epochs.size();
  if (salvage.epochs_recovered == 0) {
    return Status::InvalidArgument("no recoverable epochs in " + path);
  }

  if (salvage.epochs_recovered == header.epochs &&
      ReadTrailer(in, header, &salvage.log).ok()) {
    salvage.trailer_intact = true;
  } else {
    salvage.log.final_params = salvage.log.epochs.back().params_before;
    salvage.log.validation_loss.clear();
    salvage.log.faults = FaultStats{};
  }
  return salvage;
}

}  // namespace digfl
