#include "vfl/vfl_log_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace digfl {
namespace {

constexpr char kMagic[8] = {'D', 'I', 'G', 'F', 'L', 'O', 'G', '2'};

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteDoubles(std::ofstream& out, const Vec& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
}

bool ReadU64(std::ifstream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

bool ReadDoubles(std::ifstream& in, size_t count, Vec* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return in.good() || (in.eof() && in.gcount() ==
                       static_cast<std::streamsize>(count * sizeof(double)));
}

}  // namespace

Status SaveVflTrainingLog(const VflTrainingLog& log, const std::string& path) {
  const size_t epochs = log.epochs.size();
  const size_t p = log.final_params.size();
  const size_t n = epochs == 0 ? 0 : log.epochs[0].weights.size();
  for (const VflEpochRecord& record : log.epochs) {
    if (record.params_before.size() != p ||
        record.scaled_gradient.size() != p || record.weights.size() != n) {
      return Status::InvalidArgument("ragged VFL training log");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, epochs);
  WriteU64(out, n);
  WriteU64(out, p);
  WriteU64(out, log.validation_loss.size());
  for (const VflEpochRecord& record : log.epochs) {
    WriteDoubles(out, Vec{record.learning_rate});
    WriteDoubles(out, record.params_before);
    WriteDoubles(out, record.scaled_gradient);
    WriteDoubles(out, record.weights);
  }
  WriteDoubles(out, log.final_params);
  WriteDoubles(out, log.validation_loss);
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<VflTrainingLog> LoadVflTrainingLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a DIG-FL VFL log");
  }
  uint64_t epochs = 0, n = 0, p = 0, trace_len = 0;
  if (!ReadU64(in, &epochs) || !ReadU64(in, &n) || !ReadU64(in, &p) ||
      !ReadU64(in, &trace_len)) {
    return Status::InvalidArgument("truncated log header");
  }
  if (epochs > (1u << 24) || n > (1u << 20) || p > (1ull << 32)) {
    return Status::InvalidArgument("implausible log header");
  }
  VflTrainingLog log;
  log.epochs.reserve(epochs);
  for (uint64_t t = 0; t < epochs; ++t) {
    VflEpochRecord record;
    Vec lr, weights;
    if (!ReadDoubles(in, 1, &lr) ||
        !ReadDoubles(in, p, &record.params_before) ||
        !ReadDoubles(in, p, &record.scaled_gradient) ||
        !ReadDoubles(in, n, &weights)) {
      return Status::InvalidArgument("truncated epoch record");
    }
    record.learning_rate = lr[0];
    record.weights.assign(weights.begin(), weights.end());
    log.epochs.push_back(std::move(record));
  }
  Vec losses;
  if (!ReadDoubles(in, p, &log.final_params) ||
      !ReadDoubles(in, trace_len, &losses)) {
    return Status::InvalidArgument("truncated trailer");
  }
  log.validation_loss.assign(losses.begin(), losses.end());
  return log;
}

}  // namespace digfl
