#include "vfl/encrypted_protocol.h"

#include "crypto/paillier.h"
#include "vfl/vfl_participant.h"

namespace digfl {
namespace {

// Loss-specific coefficients of the shared exchange. The encrypted residual
// is d[j] = Σ_i score_scale·u_i[j] + offset + label_scale·y[j] and the
// gradient block is gradient_scale(m) · Σ_j d[j]·x_i[j].
struct LossSpec {
  double score_scale;
  double label_scale;
  double offset;
  double (*gradient_scale)(size_t m);
};

// Squared loss: d = Σu − y, ∇ = (2/m) X^T d.
constexpr LossSpec kSquaredLoss = {
    1.0, -1.0, 0.0, [](size_t m) { return 2.0 / static_cast<double>(m); }};

// Taylor logistic loss: d = σ̃(Σu) − y with σ̃(z) = 1/2 + z/4,
// ∇ ≈ (1/m) X^T d.
constexpr LossSpec kTaylorLogisticLoss = {
    0.25, -1.0, 0.5, [](size_t m) { return 1.0 / static_cast<double>(m); }};

// One full residual-aggregation + masked-gradient exchange over the given
// per-participant slices: returns each participant's decrypted gradient
// block. `labels` belongs to participant 0 and never leaves its local
// computation.
Result<std::vector<Vec>> ExchangeGradients(
    std::vector<EncryptedVflParticipant>& participants,
    const PaillierPublicKey& public_key, const PaillierPrivateKey& private_key,
    const std::vector<Matrix>& slices, const Vec& labels, const LossSpec& loss,
    CommMeter& comm) {
  const size_t n = participants.size();
  const size_t m = slices[0].rows();
  const size_t ct_bytes = public_key.CiphertextBytes();

  // Steps 1-3: label holder seeds [[d]] with its share (score, offset and
  // label terms); the chain homomorphically adds the other score shares.
  DIGFL_ASSIGN_OR_RETURN(
      std::vector<PaillierCiphertext> residual,
      participants[0].EncryptResidualShare(
          participants[0].ComputeScores(slices[0]), &labels,
          loss.score_scale, loss.label_scale, loss.offset));
  for (size_t i = 1; i < n; ++i) {
    comm.Record("chain:encrypted_residual", m * ct_bytes);
    DIGFL_ASSIGN_OR_RETURN(
        std::vector<PaillierCiphertext> share,
        participants[i].EncryptResidualShare(
            participants[i].ComputeScores(slices[i]), nullptr,
            loss.score_scale, loss.label_scale, loss.offset));
    for (size_t j = 0; j < m; ++j) {
      residual[j] = Paillier::Add(public_key, residual[j], share[j]);
    }
  }
  // Broadcast the final [[d]] back to everyone.
  if (n > 1) {
    comm.Record("broadcast:encrypted_residual", (n - 1) * m * ct_bytes);
  }

  // Steps 3-5 per participant: masked encrypted gradient to the third
  // party, masked plaintext back, local unmasking.
  std::vector<Vec> gradients(n);
  for (size_t i = 0; i < n; ++i) {
    DIGFL_ASSIGN_OR_RETURN(
        std::vector<PaillierCiphertext> masked,
        participants[i].ComputeMaskedGradient(residual, slices[i],
                                              loss.gradient_scale(m)));
    comm.Record("participant->thirdparty:masked_gradient",
                masked.size() * ct_bytes);
    std::vector<BigInt> plaintexts;
    plaintexts.reserve(masked.size());
    for (const PaillierCiphertext& c : masked) {
      DIGFL_ASSIGN_OR_RETURN(BigInt p,
                             Paillier::Decrypt(public_key, private_key, c));
      plaintexts.push_back(std::move(p));
    }
    comm.Record("thirdparty->participant:masked_plaintext",
                plaintexts.size() * public_key.n.ByteLength());
    DIGFL_ASSIGN_OR_RETURN(gradients[i], participants[i].Unmask(plaintexts));
  }
  return gradients;
}

Result<EncryptedVflResult> RunEncryptedVfl(const Dataset& train,
                                           const Dataset& validation,
                                           const VflBlockModel& blocks,
                                           const EncryptedVflConfig& config,
                                           const LossSpec& loss) {
  if (blocks.num_params() != train.num_features() ||
      train.num_features() != validation.num_features()) {
    return Status::InvalidArgument("block/feature structure mismatch");
  }
  if (config.epochs == 0) return Status::InvalidArgument("epochs == 0");
  const size_t n = blocks.num_participants();

  // Trusted third party: key generation and distribution.
  Rng tp_rng(config.seed);
  DIGFL_ASSIGN_OR_RETURN(PaillierKeyPair keys,
                         Paillier::GenerateKeyPair(config.key_bits, tp_rng));

  EncryptedVflResult result;
  result.comm.Record("thirdparty->participants:public_key",
                     n * keys.public_key.n.ByteLength());

  // Participants with private vertical slices. Participant 0 additionally
  // holds the training and validation labels.
  std::vector<EncryptedVflParticipant> participants;
  std::vector<Matrix> train_slices(n), validation_slices(n);
  participants.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const FeatureBlock& block = blocks.block(i);
    DIGFL_ASSIGN_OR_RETURN(train_slices[i],
                           train.x.SelectColumns(block.begin, block.end));
    DIGFL_ASSIGN_OR_RETURN(validation_slices[i],
                           validation.x.SelectColumns(block.begin, block.end));
    participants.emplace_back(i, train_slices[i], config.seed + 1000 + i);
    participants[i].ReceivePublicKey(keys.public_key, config.fraction_bits);
  }

  if (config.evaluate_contributions) {
    result.per_epoch_contributions.reserve(config.epochs);
    result.total_contributions.assign(n, 0.0);
  }

  double lr = config.learning_rate;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Training gradient G_t/α_t at θ_{t-1}.
    DIGFL_ASSIGN_OR_RETURN(
        std::vector<Vec> train_grads,
        ExchangeGradients(participants, keys.public_key, keys.private_key,
                          train_slices, train.y, loss, result.comm));

    if (config.evaluate_contributions) {
      // Validation gradient at the same θ_{t-1} (Eq. 27 needs both).
      DIGFL_ASSIGN_OR_RETURN(
          std::vector<Vec> validation_grads,
          ExchangeGradients(participants, keys.public_key, keys.private_key,
                            validation_slices, validation.y, loss,
                            result.comm));
      std::vector<double> phi(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        // φ̂_{t,i} = <∇loss^v block, α_t ∇loss block>.
        phi[i] = lr * EncryptedVflParticipant::BlockContribution(
                          validation_grads[i], train_grads[i]);
        // One scalar per participant to the third party.
        result.comm.Record("participant->thirdparty:contribution",
                           sizeof(double));
        result.total_contributions[i] += phi[i];
      }
      result.per_epoch_contributions.push_back(std::move(phi));
    }

    // Step 5: local parameter updates.
    for (size_t i = 0; i < n; ++i) {
      participants[i].ApplyGradient(train_grads[i], lr);
    }
  }

  // Assemble the logical global parameter vector for verification.
  result.final_params = vec::Zeros(blocks.num_params());
  for (size_t i = 0; i < n; ++i) {
    const FeatureBlock& block = blocks.block(i);
    const Vec& p = participants[i].params();
    for (size_t k = 0; k < p.size(); ++k) {
      result.final_params[block.begin + k] = p[k];
    }
  }
  return result;
}

}  // namespace

Result<EncryptedVflResult> RunEncryptedVflLinReg(
    const Dataset& train, const Dataset& validation,
    const VflBlockModel& blocks, const EncryptedVflConfig& config) {
  if (train.num_classes != 0 || validation.num_classes != 0) {
    return Status::InvalidArgument("encrypted LinReg expects regression data");
  }
  return RunEncryptedVfl(train, validation, blocks, config, kSquaredLoss);
}

Result<EncryptedVflResult> RunEncryptedVflLogReg(
    const Dataset& train, const Dataset& validation,
    const VflBlockModel& blocks, const EncryptedVflConfig& config) {
  if (train.num_classes != 2 || validation.num_classes != 2) {
    return Status::InvalidArgument("encrypted LogReg expects binary labels");
  }
  return RunEncryptedVfl(train, validation, blocks, config,
                         kTaylorLogisticLoss);
}

}  // namespace digfl
