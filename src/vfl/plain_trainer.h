// Plaintext VFL trainer.
//
// Trains the vertically-partitioned model by full-batch gradient descent on
// the logical global model (paper Sec. II: "we focus on the model training
// process and ignore the encryption details"). The ciphertext path that
// produces numerically identical results for the running example lives in
// encrypted_protocol.h; this fast path powers the large experiment sweeps.
//
// Lemma 2 semantics are enforced here: parameters start at 0, and removing
// a participant set S == keeping their blocks pinned at 0 while zeroing
// their gradient blocks (`active` mask), which is what the exact-Shapley
// retraining oracle calls with every coalition.

#ifndef DIGFL_VFL_PLAIN_TRAINER_H_
#define DIGFL_VFL_PLAIN_TRAINER_H_

#include <optional>
#include <vector>

#include "common/comm_meter.h"
#include "common/fault.h"
#include "common/result.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "vfl/block_model.h"

namespace digfl {

struct VflEpochRecord {
  Vec params_before;    // θ_{t-1}
  Vec scaled_gradient;  // G_t = α_t ∇loss(θ_{t-1}), after masking/weights
  double learning_rate; // α_t
  std::vector<double> weights;  // per-participant block weights applied
  // Participation mask: present[i] == 0 means participant i's block result
  // was missing (dropout/straggler) or quarantined this epoch — its block
  // of scaled_gradient is zero. Empty means "everyone present" (the
  // pre-fault-tolerance log layout).
  std::vector<uint8_t> present;

  bool IsPresent(size_t i) const {
    return present.empty() || (i < present.size() && present[i] != 0);
  }
  size_t NumPresent() const {
    if (present.empty()) return weights.size();
    size_t count = 0;
    for (uint8_t p : present) count += (p != 0);
    return count;
  }
};

struct VflTrainingLog {
  std::vector<VflEpochRecord> epochs;
  Vec final_params;
  std::vector<double> validation_loss;
  CommMeter comm;
  // Fault bookkeeping for the run (see common/fault.h).
  FaultStats faults;

  size_t num_epochs() const { return epochs.size(); }
};

// Per-epoch block weights; core/reweight.h supplies the DIG-FL policy.
class VflAggregationPolicy {
 public:
  virtual ~VflAggregationPolicy() = default;
  virtual Result<std::vector<double>> Weights(size_t epoch,
                                              const Vec& params_before,
                                              double learning_rate,
                                              const Vec& scaled_gradient) = 0;
};

// Read-only view of the trainer's resumable state at an epoch boundary
// (the VFL counterpart of HflTrainerView; the VFL loop holds no RNG state —
// corruption payload streams are derived per cell from the FaultPlan).
struct VflTrainerView {
  uint64_t next_epoch = 0;
  double learning_rate = 0.0;
  const VflTrainingLog& log;
};

// Called after every epoch fully commits; non-OK aborts training. See
// ckpt/vfl_resume.h for the crash-safe store-backed implementation.
class VflCheckpointHook {
 public:
  virtual ~VflCheckpointHook() = default;
  virtual Status OnEpoch(const VflTrainerView& view) = 0;
};

// Warm-start state for RunVflTraining, decoded from a checkpoint.
struct VflResumePoint {
  uint64_t start_epoch = 0;
  double learning_rate = 0.0;
  VflTrainingLog log;
};

struct VflTrainConfig {
  size_t epochs = 50;
  double learning_rate = 0.1;
  double lr_decay = 1.0;
  bool record_log = true;
  // Optional seeded fault schedule (dropouts / stragglers / corruption of a
  // participant's block result). Not owned; must outlive the call.
  const FaultPlan* fault_plan = nullptr;
  // Third-party-side quarantine gate over each participant's gradient
  // block. Non-finite blocks are always rejected.
  QuarantineConfig quarantine;
  // Admission-gate escalation (common/fault.h): a block that keeps failing
  // the gate is permanently dropped, keeping its first rejection reason in
  // the ledger (a later crash or different corruption never overwrites it).
  // The φ̂-EWMA monitor half of EscalationConfig is HFL-only — the VFL
  // estimator has no per-epoch masked score to feed it — so only the
  // max_gate_rejections/min_active fields apply here. Disabled by default;
  // escalation.enabled excludes resume (the ledger is transient state).
  EscalationConfig escalation;
  // Crash-safe checkpointing (see ckpt/vfl_resume.h). Both optional,
  // neither owned; resume requires record_log.
  VflCheckpointHook* checkpoint_hook = nullptr;
  const VflResumePoint* resume = nullptr;
};

// Trains over `train` with the block structure `blocks`. `active[i]==false`
// freezes participant i at zero (coalition training; Lemma 2). `policy` may
// be null (all-ones weights). θ_0 = 0 always.
Result<VflTrainingLog> RunVflTraining(
    const Model& model, const VflBlockModel& blocks, const Dataset& train,
    const Dataset& validation, const VflTrainConfig& config,
    const std::vector<bool>* active = nullptr,
    VflAggregationPolicy* policy = nullptr);

}  // namespace digfl

#endif  // DIGFL_VFL_PLAIN_TRAINER_H_
