// Plaintext VFL trainer.
//
// Trains the vertically-partitioned model by full-batch gradient descent on
// the logical global model (paper Sec. II: "we focus on the model training
// process and ignore the encryption details"). The ciphertext path that
// produces numerically identical results for the running example lives in
// encrypted_protocol.h; this fast path powers the large experiment sweeps.
//
// Lemma 2 semantics are enforced here: parameters start at 0, and removing
// a participant set S == keeping their blocks pinned at 0 while zeroing
// their gradient blocks (`active` mask), which is what the exact-Shapley
// retraining oracle calls with every coalition.

#ifndef DIGFL_VFL_PLAIN_TRAINER_H_
#define DIGFL_VFL_PLAIN_TRAINER_H_

#include <optional>
#include <vector>

#include "common/comm_meter.h"
#include "common/result.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "vfl/block_model.h"

namespace digfl {

struct VflEpochRecord {
  Vec params_before;    // θ_{t-1}
  Vec scaled_gradient;  // G_t = α_t ∇loss(θ_{t-1}), after masking/weights
  double learning_rate; // α_t
  std::vector<double> weights;  // per-participant block weights applied
};

struct VflTrainingLog {
  std::vector<VflEpochRecord> epochs;
  Vec final_params;
  std::vector<double> validation_loss;
  CommMeter comm;

  size_t num_epochs() const { return epochs.size(); }
};

// Per-epoch block weights; core/reweight.h supplies the DIG-FL policy.
class VflAggregationPolicy {
 public:
  virtual ~VflAggregationPolicy() = default;
  virtual Result<std::vector<double>> Weights(size_t epoch,
                                              const Vec& params_before,
                                              double learning_rate,
                                              const Vec& scaled_gradient) = 0;
};

struct VflTrainConfig {
  size_t epochs = 50;
  double learning_rate = 0.1;
  double lr_decay = 1.0;
  bool record_log = true;
};

// Trains over `train` with the block structure `blocks`. `active[i]==false`
// freezes participant i at zero (coalition training; Lemma 2). `policy` may
// be null (all-ones weights). θ_0 = 0 always.
Result<VflTrainingLog> RunVflTraining(
    const Model& model, const VflBlockModel& blocks, const Dataset& train,
    const Dataset& validation, const VflTrainConfig& config,
    const std::vector<bool>* active = nullptr,
    VflAggregationPolicy* policy = nullptr);

}  // namespace digfl

#endif  // DIGFL_VFL_PLAIN_TRAINER_H_
