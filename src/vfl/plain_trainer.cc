#include "vfl/plain_trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "telemetry/telemetry.h"

namespace digfl {
namespace {

// L2 norm of one participant's block of `x`, ignoring non-finite entries.
double BlockFiniteNorm(const VflBlockModel& blocks, size_t participant,
                       const Vec& x, bool* all_finite) {
  const FeatureBlock& block = blocks.block(participant);
  double sum_sq = 0.0;
  *all_finite = true;
  for (size_t k = block.begin; k < block.end; ++k) {
    if (!std::isfinite(x[k])) {
      *all_finite = false;
    } else {
      sum_sq += x[k] * x[k];
    }
  }
  return std::sqrt(sum_sq);
}

// Median finite block norm over present participants (the relative
// quarantine baseline); 0 when none.
double MedianPresentBlockNorm(const VflBlockModel& blocks, const Vec& x,
                              const std::vector<uint8_t>& present) {
  std::vector<double> norms;
  for (size_t i = 0; i < blocks.num_participants(); ++i) {
    if (!present[i]) continue;
    bool finite = true;
    const double norm = BlockFiniteNorm(blocks, i, x, &finite);
    if (finite) norms.push_back(norm);
  }
  if (norms.empty()) return 0.0;
  std::nth_element(norms.begin(), norms.begin() + norms.size() / 2,
                   norms.end());
  return norms[norms.size() / 2];
}

}  // namespace

Result<VflTrainingLog> RunVflTraining(const Model& model,
                                      const VflBlockModel& blocks,
                                      const Dataset& train,
                                      const Dataset& validation,
                                      const VflTrainConfig& config,
                                      const std::vector<bool>* active,
                                      VflAggregationPolicy* policy) {
  if (config.epochs == 0) return Status::InvalidArgument("epochs == 0");
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (blocks.num_params() != model.NumParams()) {
    return Status::InvalidArgument("block structure does not match model");
  }
  if (active != nullptr && active->size() != blocks.num_participants()) {
    return Status::InvalidArgument("active mask size mismatch");
  }
  if (active != nullptr) {
    bool any = false;
    for (bool a : *active) any = any || a;
    if (!any) return Status::InvalidArgument("empty coalition");
  }

  DIGFL_TRACE_SPAN("vfl.run");

  VflTrainingLog log;
  // Lemma 2 requires θ_0 = 0 so that an absent participant's block stays
  // exactly at f(0, x) = 0 throughout training.
  log.final_params = vec::Zeros(model.NumParams());
  double lr = config.learning_rate;
  size_t start_epoch = 0;
  const size_t n = blocks.num_participants();
  const FaultPlan* plan = config.fault_plan;

  if (config.resume != nullptr && config.escalation.enabled) {
    return Status::InvalidArgument(
        "resume is not supported with quarantine escalation");
  }

  if (config.resume != nullptr) {
    const VflResumePoint& resume = *config.resume;
    if (!config.record_log) {
      return Status::InvalidArgument("resume requires record_log");
    }
    if (resume.start_epoch != resume.log.num_epochs()) {
      return Status::InvalidArgument(
          "resume point epoch does not match its log prefix");
    }
    if (resume.start_epoch > 0 && resume.log.epochs[0].weights.size() != n) {
      return Status::InvalidArgument(
          "resume point participant count mismatch");
    }
    if (resume.log.final_params.size() != model.NumParams()) {
      return Status::InvalidArgument("resume point parameter size mismatch");
    }
    log = resume.log;
    lr = resume.learning_rate;
    start_epoch = resume.start_epoch;
    if (start_epoch >= config.epochs) return log;
  }

  // Gate-rejection escalation: a block that keeps tripping the admission
  // gate gets quarantined for the rest of the run (first reason wins in the
  // ledger). The φ̂ monitor half of the escalator is HFL-only.
  std::unique_ptr<QuarantineEscalator> escalator;
  if (config.escalation.enabled) {
    escalator = std::make_unique<QuarantineEscalator>(n, config.escalation);
  }

  // Interned comm channels so the epoch loop records by dense id.
  const CommMeter::ChannelId ch_straggler = log.comm.Channel(
      "thirdparty->participants:straggler_retry");
  const CommMeter::ChannelId ch_local_results =
      log.comm.Channel("participants->thirdparty:local_results");
  const CommMeter::ChannelId ch_grad_blocks =
      log.comm.Channel("thirdparty->participants:gradient_blocks");

  for (size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    DIGFL_TRACE_SPAN("vfl.epoch");
    Timer epoch_timer;
    Vec grad;
    {
      DIGFL_TRACE_SPAN("vfl.gradient");
      DIGFL_ASSIGN_OR_RETURN(grad, model.Gradient(log.final_params, train));
    }
    Vec scaled = vec::Scaled(lr, grad);

    // Remove the gradient blocks of absent participants (diag(v_S) G_t).
    if (active != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (!(*active)[i]) scaled = blocks.DropBlock(i, scaled);
      }
    }

    // Fault injection: a faulty participant this epoch either never
    // delivers its block result (dropout/straggler → the block is zeroed,
    // exactly Lemma 2's removal semantics for one round) or delivers a
    // corrupted one (caught by the quarantine gate below).
    std::vector<uint8_t> present(n, 1);
    if (active != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (!(*active)[i]) present[i] = 0;  // coalition-absent, not a fault
      }
    }
    // Quarantined participants stay excluded for the rest of the run: their
    // block is dropped up front and their absence is not counted as a
    // dropout (they are banned, not faulty-this-epoch).
    if (escalator != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (present[i] && escalator->ledger().IsQuarantined(i)) {
          present[i] = 0;
          scaled = blocks.DropBlock(i, scaled);
        }
      }
    }
    if (plan != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (!present[i]) continue;
        const FaultEvent event = plan->At(epoch, i);
        switch (event.type) {
          case FaultType::kNone:
            break;
          case FaultType::kDropout:
            present[i] = 0;
            scaled = blocks.DropBlock(i, scaled);
            ++log.faults.dropouts;
            DIGFL_COUNTER_ADD_LABELED("fault.dropout_total", 1,
                                      {"protocol", "vfl"});
            break;
          case FaultType::kStraggler: {
            const size_t retries = plan->config().straggler_max_retries;
            const FeatureBlock& block = blocks.block(i);
            log.comm.RecordDoubles(ch_straggler, retries * block.width());
            log.faults.straggler_retries += retries;
            ++log.faults.stragglers_dropped;
            DIGFL_COUNTER_ADD_LABELED("fault.straggler_dropped_total", 1,
                                      {"protocol", "vfl"});
            present[i] = 0;
            scaled = blocks.DropBlock(i, scaled);
            break;
          }
          case FaultType::kCorruption: {
            const FeatureBlock& block = blocks.block(i);
            Rng corruption_rng = plan->CorruptionRng(epoch, i);
            Vec block_values(scaled.begin() + block.begin,
                             scaled.begin() + block.end);
            block_values =
                CorruptUpdate(block_values, event.corruption,
                              plan->config().explode_factor, corruption_rng);
            std::copy(block_values.begin(), block_values.end(),
                      scaled.begin() + block.begin);
            break;
          }
        }
      }

      // Third-party quarantine gate over each arrived block.
      DIGFL_TRACE_SPAN("vfl.quarantine_gate");
      const double median_norm =
          MedianPresentBlockNorm(blocks, scaled, present);
      for (size_t i = 0; i < n; ++i) {
        if (!present[i]) continue;
        const FeatureBlock& block = blocks.block(i);
        const Vec block_values(scaled.begin() + block.begin,
                               scaled.begin() + block.end);
        const QuarantineReason reason =
            InspectUpdate(block_values, config.quarantine, median_norm);
        if (reason != QuarantineReason::kAccepted) {
          bool finite = true;
          const double norm = BlockFiniteNorm(blocks, i, scaled, &finite);
          log.faults.RecordQuarantine(epoch, i, reason, norm);
          present[i] = 0;
          scaled = blocks.DropBlock(i, scaled);
          if (escalator != nullptr) {
            escalator->RecordGateRejection(i, epoch, reason);
          }
        }
      }
    }

    std::vector<double> weights(n, 1.0);
    for (size_t i = 0; i < n; ++i) {
      if (!present[i]) weights[i] = 0.0;
    }
    if (policy != nullptr) {
      DIGFL_ASSIGN_OR_RETURN(
          weights, policy->Weights(epoch, log.final_params, lr, scaled));
      if (weights.size() != n) {
        return Status::Internal("VFL policy returned bad weight count");
      }
      // An absent participant's block is already zero; force its weight to
      // zero too so the record reflects what was applied.
      for (size_t i = 0; i < n; ++i) {
        if (!present[i]) weights[i] = 0.0;
      }
      DIGFL_ASSIGN_OR_RETURN(scaled, blocks.ScaleBlocks(scaled, weights));
    }

    // Per-epoch traffic of the generic VFL protocol: each present
    // participant sends its local result per sample to the third party and
    // receives its gradient block back (plaintext accounting; the encrypted
    // path prices ciphertexts instead).
    for (size_t i = 0; i < n; ++i) {
      if (!present[i]) continue;
      log.comm.RecordDoubles(ch_local_results, train.size());
      log.comm.RecordDoubles(ch_grad_blocks, blocks.block(i).width());
    }

    if (config.record_log) {
      VflEpochRecord record;
      record.params_before = log.final_params;
      record.scaled_gradient = scaled;
      record.learning_rate = lr;
      record.weights = weights;
      record.present = present;
      log.epochs.push_back(std::move(record));
    }

    vec::Axpy(-1.0, scaled, log.final_params);

    double val_loss = 0.0;
    {
      DIGFL_TRACE_SPAN("vfl.validate");
      DIGFL_ASSIGN_OR_RETURN(val_loss, model.Loss(log.final_params, validation));
    }
    log.validation_loss.push_back(val_loss);

    DIGFL_EMIT_EVENT("vfl.epoch_seconds", epoch_timer.ElapsedSeconds(),
                     {"epoch", std::to_string(epoch)});

    lr *= config.lr_decay;

    // Epoch committed; see the HFL trainer for the checkpoint contract.
    if (config.checkpoint_hook != nullptr) {
      const VflTrainerView view{epoch + 1, lr, log};
      DIGFL_RETURN_IF_ERROR(config.checkpoint_hook->OnEpoch(view));
    }
    MaybeCrash("vfl.epoch.end");
  }
  return log;
}

}  // namespace digfl
