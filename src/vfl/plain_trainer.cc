#include "vfl/plain_trainer.h"

namespace digfl {

Result<VflTrainingLog> RunVflTraining(const Model& model,
                                      const VflBlockModel& blocks,
                                      const Dataset& train,
                                      const Dataset& validation,
                                      const VflTrainConfig& config,
                                      const std::vector<bool>* active,
                                      VflAggregationPolicy* policy) {
  if (config.epochs == 0) return Status::InvalidArgument("epochs == 0");
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (blocks.num_params() != model.NumParams()) {
    return Status::InvalidArgument("block structure does not match model");
  }
  if (active != nullptr && active->size() != blocks.num_participants()) {
    return Status::InvalidArgument("active mask size mismatch");
  }
  if (active != nullptr) {
    bool any = false;
    for (bool a : *active) any = any || a;
    if (!any) return Status::InvalidArgument("empty coalition");
  }

  VflTrainingLog log;
  // Lemma 2 requires θ_0 = 0 so that an absent participant's block stays
  // exactly at f(0, x) = 0 throughout training.
  log.final_params = vec::Zeros(model.NumParams());
  double lr = config.learning_rate;
  const size_t n = blocks.num_participants();

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    DIGFL_ASSIGN_OR_RETURN(Vec grad, model.Gradient(log.final_params, train));
    Vec scaled = vec::Scaled(lr, grad);

    // Remove the gradient blocks of absent participants (diag(v_S) G_t).
    if (active != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (!(*active)[i]) scaled = blocks.DropBlock(i, scaled);
      }
    }

    std::vector<double> weights(n, 1.0);
    if (policy != nullptr) {
      DIGFL_ASSIGN_OR_RETURN(
          weights, policy->Weights(epoch, log.final_params, lr, scaled));
      if (weights.size() != n) {
        return Status::Internal("VFL policy returned bad weight count");
      }
      DIGFL_ASSIGN_OR_RETURN(scaled, blocks.ScaleBlocks(scaled, weights));
    }

    // Per-epoch traffic of the generic VFL protocol: each participant sends
    // its local result per sample to the third party and receives its
    // gradient block back (plaintext accounting; the encrypted path prices
    // ciphertexts instead).
    log.comm.RecordDoubles("participants->thirdparty:local_results",
                           train.size() * n);
    log.comm.RecordDoubles("thirdparty->participants:gradient_blocks",
                           model.NumParams());

    if (config.record_log) {
      VflEpochRecord record;
      record.params_before = log.final_params;
      record.scaled_gradient = scaled;
      record.learning_rate = lr;
      record.weights = weights;
      log.epochs.push_back(std::move(record));
    }

    vec::Axpy(-1.0, scaled, log.final_params);

    DIGFL_ASSIGN_OR_RETURN(double val_loss,
                           model.Loss(log.final_params, validation));
    log.validation_loss.push_back(val_loss);
    lr *= config.lr_decay;
  }
  return log;
}

}  // namespace digfl
