#include "vfl/vfl_participant.h"

#include "common/logging.h"

namespace digfl {

void EncryptedVflParticipant::ReceivePublicKey(const PaillierPublicKey& key,
                                               int fraction_bits) {
  public_key_ = key;
  codec_.emplace(key.n, fraction_bits);
}

Result<std::vector<PaillierCiphertext>>
EncryptedVflParticipant::EncryptResidualShare(const Vec& scores,
                                              const Vec* labels,
                                              double score_scale,
                                              double label_scale,
                                              double offset) {
  if (!public_key_.has_value()) {
    return Status::FailedPrecondition("public key not received");
  }
  if (labels != nullptr && scores.size() != labels->size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  std::vector<PaillierCiphertext> out;
  out.reserve(scores.size());
  for (size_t j = 0; j < scores.size(); ++j) {
    double value = score_scale * scores[j];
    if (labels != nullptr) value += offset + label_scale * (*labels)[j];
    DIGFL_ASSIGN_OR_RETURN(BigInt encoded, codec_->Encode(value));
    DIGFL_ASSIGN_OR_RETURN(PaillierCiphertext c,
                           Paillier::Encrypt(*public_key_, encoded, rng_));
    out.push_back(std::move(c));
  }
  return out;
}

Result<std::vector<PaillierCiphertext>>
EncryptedVflParticipant::ComputeMaskedGradient(
    const std::vector<PaillierCiphertext>& encrypted_residual,
    const Matrix& rows, double gradient_scale) {
  if (!public_key_.has_value()) {
    return Status::FailedPrecondition("public key not received");
  }
  if (encrypted_residual.size() != rows.rows()) {
    return Status::InvalidArgument("residual/sample count mismatch");
  }
  if (rows.cols() != num_features()) {
    return Status::InvalidArgument("feature width mismatch");
  }
  const size_t m = rows.rows();
  last_scale_ = gradient_scale;
  last_masks_.clear();
  last_masks_.reserve(num_features());

  std::vector<PaillierCiphertext> out;
  out.reserve(num_features());
  for (size_t k = 0; k < num_features(); ++k) {
    // [[ Σ_j d_j · x_jk ]] at plaintext scale 2^{2f}.
    bool have_term = false;
    PaillierCiphertext acc;
    for (size_t j = 0; j < m; ++j) {
      DIGFL_ASSIGN_OR_RETURN(BigInt factor, codec_->Encode(rows(j, k)));
      if (factor.IsZero()) continue;
      PaillierCiphertext term =
          Paillier::ScalarMul(*public_key_, encrypted_residual[j], factor);
      acc = have_term ? Paillier::Add(*public_key_, acc, term) : term;
      have_term = true;
    }
    if (!have_term) {
      DIGFL_ASSIGN_OR_RETURN(BigInt zero, codec_->Encode(0.0));
      DIGFL_ASSIGN_OR_RETURN(acc, Paillier::Encrypt(*public_key_, zero, rng_));
    }
    // Fresh uniform mask in Z_n, remembered for Unmask().
    BigInt mask = BigInt::RandomBelow(public_key_->n, rng_);
    DIGFL_ASSIGN_OR_RETURN(
        acc, Paillier::AddPlain(*public_key_, acc, mask, rng_));
    last_masks_.push_back(std::move(mask));
    out.push_back(std::move(acc));
  }
  return out;
}

Result<Vec> EncryptedVflParticipant::Unmask(
    const std::vector<BigInt>& masked_plaintexts) const {
  if (masked_plaintexts.size() != last_masks_.size()) {
    return Status::InvalidArgument("masked plaintext count mismatch");
  }
  if (!codec_.has_value()) {
    return Status::FailedPrecondition("public key not received");
  }
  // The homomorphic product d_j * x_jk carries scale 2^{2f}.
  const FixedPointCodec product_codec(public_key_->n,
                                      2 * codec_->fraction_bits());
  Vec out(masked_plaintexts.size());
  const BigInt& n = public_key_->n;
  for (size_t k = 0; k < masked_plaintexts.size(); ++k) {
    BigInt residue = masked_plaintexts[k] % n;
    const BigInt mask = last_masks_[k] % n;
    // (residue - mask) mod n without going negative.
    residue = residue >= mask ? residue - mask : residue + n - mask;
    out[k] = last_scale_ * product_codec.Decode(residue);
  }
  return out;
}

void EncryptedVflParticipant::ApplyGradient(const Vec& gradient,
                                            double learning_rate) {
  DIGFL_CHECK(gradient.size() == params_.size());
  vec::Axpy(-learning_rate, gradient, params_);
}

double EncryptedVflParticipant::BlockContribution(
    const Vec& validation_grad_block, const Vec& scaled_grad_block) {
  return vec::Dot(validation_grad_block, scaled_grad_block);
}

}  // namespace digfl
