// Dense row-major matrix with the small set of kernels the models need:
// matvec, transposed matvec, gemm, and row views. Feature matrices and
// analytic Hessians use this type.

#ifndef DIGFL_TENSOR_MATRIX_H_
#define DIGFL_TENSOR_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/result.h"
#include "tensor/vec.h"

namespace digfl {

class Matrix {
 public:
  Matrix() = default;

  // rows x cols, zero-initialised.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  // From nested initializer list; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  // Contiguous view of row r.
  std::span<const double> Row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> MutableRow(size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  const Vec& data() const { return data_; }
  Vec& mutable_data() { return data_; }

  // y = A x. Requires x.size() == cols().
  Vec MatVec(const Vec& x) const;

  // y = A^T x. Requires x.size() == rows().
  Vec TransposedMatVec(const Vec& x) const;

  // C = A * B; shape mismatch returns InvalidArgument.
  Result<Matrix> MatMul(const Matrix& other) const;

  Matrix Transposed() const;

  // Keeps rows whose indices are listed (in order); indices must be in range.
  Result<Matrix> SelectRows(const std::vector<size_t>& indices) const;

  // Keeps the half-open column range [begin, end).
  Result<Matrix> SelectColumns(size_t begin, size_t end) const;

  bool AllClose(const Matrix& other, double rtol = 1e-9,
                double atol = 1e-12) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Vec data_;
};

}  // namespace digfl

#endif  // DIGFL_TENSOR_MATRIX_H_
