#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace digfl {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    DIGFL_CHECK(row.size() == cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vec Matrix::MatVec(const Vec& x) const {
  DIGFL_CHECK(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vec Matrix::TransposedMatVec(const Vec& x) const {
  DIGFL_CHECK(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Result<Matrix> Matrix::MatMul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(
        "MatMul shape mismatch: " + std::to_string(cols_) + " vs " +
        std::to_string(other.rows_));
  }
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + r * other.cols_;
      for (size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Result<Matrix> Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) {
      return Status::OutOfRange("row index " + std::to_string(indices[i]) +
                                " >= " + std::to_string(rows_));
    }
    auto src = Row(indices[i]);
    std::copy(src.begin(), src.end(), out.MutableRow(i).begin());
  }
  return out;
}

Result<Matrix> Matrix::SelectColumns(size_t begin, size_t end) const {
  if (begin > end || end > cols_) {
    return Status::OutOfRange("column range [" + std::to_string(begin) + ", " +
                              std::to_string(end) + ") out of [0, " +
                              std::to_string(cols_) + ")");
  }
  Matrix out(rows_, end - begin);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_ + begin;
    std::copy(src, src + (end - begin), out.MutableRow(r).begin());
  }
  return out;
}

bool Matrix::AllClose(const Matrix& other, double rtol, double atol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return vec::AllClose(data_, other.data_, rtol, atol);
}

}  // namespace digfl
