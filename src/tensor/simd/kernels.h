// Internal per-tier kernel entry points (see simd.h for the bit-exact
// contract). Each tier lives in its own translation unit so it can carry
// its own -m flags; dispatch.cc is the only includer.

#ifndef DIGFL_TENSOR_SIMD_KERNELS_H_
#define DIGFL_TENSOR_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace digfl {
namespace simd {
namespace internal {

double DotScalar(const double* a, const double* b, size_t n);
void AxpyScalar(double alpha, const double* x, double* y, size_t n);
void ScaleScalar(double* x, double alpha, size_t n);
double QDot8Scalar(const double* scales, const uint8_t* codes, uint32_t block,
                   const double* v, size_t n);
double QDot4Scalar(const double* scales, const uint8_t* packed, uint32_t block,
                   const double* v, size_t n);

#if defined(DIGFL_HAVE_AVX2)
double DotAvx2(const double* a, const double* b, size_t n);
void AxpyAvx2(double alpha, const double* x, double* y, size_t n);
void ScaleAvx2(double* x, double alpha, size_t n);
double QDot8Avx2(const double* scales, const uint8_t* codes, uint32_t block,
                 const double* v, size_t n);
double QDot4Avx2(const double* scales, const uint8_t* packed, uint32_t block,
                 const double* v, size_t n);
#endif

#if defined(DIGFL_HAVE_AVX512)
double DotAvx512(const double* a, const double* b, size_t n);
void AxpyAvx512(double alpha, const double* x, double* y, size_t n);
void ScaleAvx512(double* x, double alpha, size_t n);
double QDot8Avx512(const double* scales, const uint8_t* codes, uint32_t block,
                   const double* v, size_t n);
double QDot4Avx512(const double* scales, const uint8_t* packed, uint32_t block,
                   const double* v, size_t n);
#endif

}  // namespace internal
}  // namespace simd
}  // namespace digfl

#endif  // DIGFL_TENSOR_SIMD_KERNELS_H_
