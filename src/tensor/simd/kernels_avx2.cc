// AVX2 tier. Compiled with -mavx2 -ffp-contract=off (never -mfma): every
// multiply and add is a separately rounded instruction, and the reduction
// lanes map exactly onto the scalar tier's 8 accumulators — lanes 0–3 of
// the low register are accumulators 0–3, lanes 0–3 of the high register
// are accumulators 4–7 — so the results are bitwise equal to
// kernels_scalar.cc on every input.

#include "tensor/simd/kernels.h"

#if defined(DIGFL_HAVE_AVX2)

#include <immintrin.h>

#include <cstring>

namespace digfl {
namespace simd {
namespace internal {

namespace {

// Pinned left-to-right fold of the 8 lane accumulators.
double Combine8(__m256d acc_lo, __m256d acc_hi) {
  double lanes[8];
  _mm256_storeu_pd(lanes, acc_lo);
  _mm256_storeu_pd(lanes + 4, acc_hi);
  double s = lanes[0];
  for (size_t j = 1; j < 8; ++j) s += lanes[j];
  return s;
}

inline int CodeQ8(const uint8_t* codes, size_t i) {
  return static_cast<int8_t>(codes[i]);
}

inline int CodeQ4(const uint8_t* packed, size_t i) {
  const uint8_t byte = packed[i / 2];
  return static_cast<int>((i % 2 == 0) ? (byte & 0x0f) : (byte >> 4)) - 8;
}

// 8 consecutive q8 codes (int8) → two 4-lane double vectors.
inline void LoadCodesQ8(const uint8_t* codes, __m256d* lo, __m256d* hi) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes));
  *lo = _mm256_cvtepi32_pd(_mm_cvtepi8_epi32(bytes));
  *hi = _mm256_cvtepi32_pd(_mm_cvtepi8_epi32(_mm_srli_si128(bytes, 4)));
}

// 8 consecutive q4 codes (4 packed bytes) → two 4-lane double vectors.
inline void LoadCodesQ4(const uint8_t* packed, __m256d* lo, __m256d* hi) {
  uint32_t word = 0;
  std::memcpy(&word, packed, sizeof(word));
  alignas(16) int32_t c[8];
  for (size_t k = 0; k < 4; ++k) {
    const uint32_t byte = (word >> (8 * k)) & 0xffu;
    c[2 * k] = static_cast<int32_t>(byte & 0x0fu) - 8;
    c[2 * k + 1] = static_cast<int32_t>(byte >> 4) - 8;
  }
  *lo = _mm256_cvtepi32_pd(
      _mm_load_si128(reinterpret_cast<const __m128i*>(c)));
  *hi = _mm256_cvtepi32_pd(
      _mm_load_si128(reinterpret_cast<const __m128i*>(c + 4)));
}

}  // namespace

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc_hi = _mm256_add_pd(
        acc_hi,
        _mm256_mul_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4)));
  }
  double s = Combine8(acc_lo, acc_hi);
  for (size_t i = main; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (size_t i = main; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(double* x, double alpha, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (size_t i = main; i < n; ++i) x[i] *= alpha;
}

double QDot8Avx2(const double* scales, const uint8_t* codes, uint32_t block,
                 const double* v, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    const __m256d vs = _mm256_set1_pd(scales[i / block]);
    __m256d c_lo, c_hi;
    LoadCodesQ8(codes + i, &c_lo, &c_hi);
    const __m256d dq_lo = _mm256_mul_pd(vs, c_lo);
    const __m256d dq_hi = _mm256_mul_pd(vs, c_hi);
    acc_lo = _mm256_add_pd(acc_lo,
                           _mm256_mul_pd(dq_lo, _mm256_loadu_pd(v + i)));
    acc_hi = _mm256_add_pd(acc_hi,
                           _mm256_mul_pd(dq_hi, _mm256_loadu_pd(v + i + 4)));
  }
  double s = Combine8(acc_lo, acc_hi);
  for (size_t i = main; i < n; ++i) {
    const double dq = scales[i / block] * static_cast<double>(CodeQ8(codes, i));
    s += dq * v[i];
  }
  return s;
}

double QDot4Avx2(const double* scales, const uint8_t* packed, uint32_t block,
                 const double* v, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    const __m256d vs = _mm256_set1_pd(scales[i / block]);
    __m256d c_lo, c_hi;
    LoadCodesQ4(packed + i / 2, &c_lo, &c_hi);
    const __m256d dq_lo = _mm256_mul_pd(vs, c_lo);
    const __m256d dq_hi = _mm256_mul_pd(vs, c_hi);
    acc_lo = _mm256_add_pd(acc_lo,
                           _mm256_mul_pd(dq_lo, _mm256_loadu_pd(v + i)));
    acc_hi = _mm256_add_pd(acc_hi,
                           _mm256_mul_pd(dq_hi, _mm256_loadu_pd(v + i + 4)));
  }
  double s = Combine8(acc_lo, acc_hi);
  for (size_t i = main; i < n; ++i) {
    const double dq =
        scales[i / block] * static_cast<double>(CodeQ4(packed, i));
    s += dq * v[i];
  }
  return s;
}

}  // namespace internal
}  // namespace simd
}  // namespace digfl

#endif  // DIGFL_HAVE_AVX2
