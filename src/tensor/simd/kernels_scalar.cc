// Scalar reference tier. This TU is compiled with -ffp-contract=off and
// -fno-tree-vectorize (see src/CMakeLists.txt): no fused multiply-add and
// no compiler vectorization, so these loops are the portable definition of
// every kernel's bit pattern — the parity tests hold the other tiers to
// exactly these bits, and the kernel bench measures honest speedups
// against them.

#include "tensor/simd/kernels.h"

namespace digfl {
namespace simd {
namespace internal {

namespace {

// Left-to-right fold of the 8 partial accumulators — the pinned combine
// every tier replicates.
double Combine8(const double* acc) {
  double s = acc[0];
  for (size_t j = 1; j < 8; ++j) s += acc[j];
  return s;
}

// One q8 code: int8 bit pattern → int.
inline int CodeQ8(const uint8_t* codes, size_t i) {
  return static_cast<int8_t>(codes[i]);
}

// One q4 code: offset-binary nibble (low nibble first) → int in [-8, 7].
inline int CodeQ4(const uint8_t* packed, size_t i) {
  const uint8_t byte = packed[i / 2];
  return static_cast<int>((i % 2 == 0) ? (byte & 0x0f) : (byte >> 4)) - 8;
}

}  // namespace

double DotScalar(const double* a, const double* b, size_t n) {
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    for (size_t j = 0; j < 8; ++j) acc[j] += a[i + j] * b[i + j];
  }
  double s = Combine8(acc);
  for (size_t i = main; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(double* x, double alpha, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double QDot8Scalar(const double* scales, const uint8_t* codes, uint32_t block,
                   const double* v, size_t n) {
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    // block % 8 == 0, so the whole 8-group shares one scale.
    const double scale = scales[i / block];
    for (size_t j = 0; j < 8; ++j) {
      const double dq = scale * static_cast<double>(CodeQ8(codes, i + j));
      acc[j] += dq * v[i + j];
    }
  }
  double s = Combine8(acc);
  for (size_t i = main; i < n; ++i) {
    const double dq = scales[i / block] * static_cast<double>(CodeQ8(codes, i));
    s += dq * v[i];
  }
  return s;
}

double QDot4Scalar(const double* scales, const uint8_t* packed, uint32_t block,
                   const double* v, size_t n) {
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    const double scale = scales[i / block];
    for (size_t j = 0; j < 8; ++j) {
      const double dq = scale * static_cast<double>(CodeQ4(packed, i + j));
      acc[j] += dq * v[i + j];
    }
  }
  double s = Combine8(acc);
  for (size_t i = main; i < n; ++i) {
    const double dq = scales[i / block] * static_cast<double>(CodeQ4(packed, i));
    s += dq * v[i];
  }
  return s;
}

}  // namespace internal
}  // namespace simd
}  // namespace digfl
