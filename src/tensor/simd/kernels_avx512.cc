// AVX-512 tier. Compiled with -mavx512f -ffp-contract=off (never FMA):
// one 8-lane register holds the 8 pinned accumulators directly, so the
// reduction order — and therefore every bit — matches kernels_scalar.cc.

#include "tensor/simd/kernels.h"

#if defined(DIGFL_HAVE_AVX512)

#include <immintrin.h>

#include <cstring>

namespace digfl {
namespace simd {
namespace internal {

namespace {

// Pinned left-to-right fold of the 8 lane accumulators.
double Combine8(__m512d acc) {
  double lanes[8];
  _mm512_storeu_pd(lanes, acc);
  double s = lanes[0];
  for (size_t j = 1; j < 8; ++j) s += lanes[j];
  return s;
}

inline int CodeQ8(const uint8_t* codes, size_t i) {
  return static_cast<int8_t>(codes[i]);
}

inline int CodeQ4(const uint8_t* packed, size_t i) {
  const uint8_t byte = packed[i / 2];
  return static_cast<int>((i % 2 == 0) ? (byte & 0x0f) : (byte >> 4)) - 8;
}

// 8 consecutive q8 codes (int8) → one 8-lane double vector.
inline __m512d LoadCodesQ8(const uint8_t* codes) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes));
  return _mm512_cvtepi32_pd(_mm256_cvtepi8_epi32(bytes));
}

// Spreads the 4 bytes in the low half of `x` to every other byte of a
// 64-bit word (byte k → byte 2k).
inline uint64_t SpreadBytes(uint64_t x) {
  x = (x | (x << 16)) & 0x0000ffff0000ffffull;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
  return x;
}

// 8 consecutive q4 codes (4 packed bytes) → one 8-lane double vector.
// Branch-free shift-and-mask nibble spread: the scalar unpack loop the
// other tiers use compiles to a store-forwarding stall in this TU, which
// made the AVX-512 qdot4 slower than scalar (caught by the
// bench_micro_kernels perf gate). Same integer codes either way, so the
// bitwise parity contract is untouched.
inline __m512d LoadCodesQ4(const uint8_t* packed) {
  uint32_t word = 0;
  std::memcpy(&word, packed, sizeof(word));
  const uint64_t even = SpreadBytes(word & 0x0f0f0f0fu);         // 0,2,4,6
  const uint64_t odd = SpreadBytes((word >> 4) & 0x0f0f0f0fu);   // 1,3,5,7
  const uint64_t nibbles = even | (odd << 8);  // byte i = offset code i
  const __m128i bytes =
      _mm_cvtsi64_si128(static_cast<long long>(nibbles));
  const __m256i codes = _mm256_sub_epi32(_mm256_cvtepu8_epi32(bytes),
                                         _mm256_set1_epi32(8));
  return _mm512_cvtepi32_pd(codes);
}

}  // namespace

double DotAvx512(const double* a, const double* b, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    acc = _mm512_add_pd(
        acc, _mm512_mul_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i)));
  }
  double s = Combine8(acc);
  for (size_t i = main; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AxpyAvx512(double alpha, const double* x, double* y, size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    const __m512d prod = _mm512_mul_pd(va, _mm512_loadu_pd(x + i));
    _mm512_storeu_pd(y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), prod));
  }
  for (size_t i = main; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx512(double* x, double alpha, size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
  }
  for (size_t i = main; i < n; ++i) x[i] *= alpha;
}

double QDot8Avx512(const double* scales, const uint8_t* codes, uint32_t block,
                   const double* v, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    const __m512d vs = _mm512_set1_pd(scales[i / block]);
    const __m512d dq = _mm512_mul_pd(vs, LoadCodesQ8(codes + i));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(dq, _mm512_loadu_pd(v + i)));
  }
  double s = Combine8(acc);
  for (size_t i = main; i < n; ++i) {
    const double dq = scales[i / block] * static_cast<double>(CodeQ8(codes, i));
    s += dq * v[i];
  }
  return s;
}

double QDot4Avx512(const double* scales, const uint8_t* packed, uint32_t block,
                   const double* v, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  const size_t main = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < main; i += 8) {
    const __m512d vs = _mm512_set1_pd(scales[i / block]);
    const __m512d dq = _mm512_mul_pd(vs, LoadCodesQ4(packed + i / 2));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(dq, _mm512_loadu_pd(v + i)));
  }
  double s = Combine8(acc);
  for (size_t i = main; i < n; ++i) {
    const double dq =
        scales[i / block] * static_cast<double>(CodeQ4(packed, i));
    s += dq * v[i];
  }
  return s;
}

}  // namespace internal
}  // namespace simd
}  // namespace digfl

#endif  // DIGFL_HAVE_AVX512
