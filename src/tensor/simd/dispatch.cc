// Tier selection and dispatch (see simd.h for the bit-exact contract).
// The active tier is decided once per process: the highest tier that is
// both compiled in and supported by this CPU, unless DIGFL_FORCE_SCALAR
// pins everything to the scalar reference.

#include "tensor/simd/simd.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "tensor/simd/kernels.h"

namespace digfl {
namespace simd {

namespace {

bool ReadForcedScalar() {
  const char* value = std::getenv("DIGFL_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

Tier PickActiveTier() {
  if (ForcedScalar()) return Tier::kScalar;
  if (TierUsable(Tier::kAvx512)) return Tier::kAvx512;
  if (TierUsable(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool TierCompiled(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(DIGFL_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(DIGFL_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool TierUsable(Tier tier) {
  if (!TierCompiled(tier)) return false;
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(DIGFL_HAVE_AVX2)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(DIGFL_HAVE_AVX512)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

bool ForcedScalar() {
  static const bool forced = ReadForcedScalar();
  return forced;
}

Tier ActiveTier() {
  static const Tier active = PickActiveTier();
  return active;
}

double Dot(const double* a, const double* b, size_t n) {
  return DotTier(ActiveTier(), a, b, n);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  AxpyTier(ActiveTier(), alpha, x, y, n);
}

void Scale(double* x, double alpha, size_t n) {
  ScaleTier(ActiveTier(), x, alpha, n);
}

double QDot8(const double* scales, const uint8_t* codes, uint32_t block,
             const double* v, size_t n) {
  return QDot8Tier(ActiveTier(), scales, codes, block, v, n);
}

double QDot4(const double* scales, const uint8_t* packed, uint32_t block,
             const double* v, size_t n) {
  return QDot4Tier(ActiveTier(), scales, packed, block, v, n);
}

double DotTier(Tier tier, const double* a, const double* b, size_t n) {
  DIGFL_CHECK(TierUsable(tier));
  switch (tier) {
#if defined(DIGFL_HAVE_AVX512)
    case Tier::kAvx512:
      return internal::DotAvx512(a, b, n);
#endif
#if defined(DIGFL_HAVE_AVX2)
    case Tier::kAvx2:
      return internal::DotAvx2(a, b, n);
#endif
    default:
      return internal::DotScalar(a, b, n);
  }
}

void AxpyTier(Tier tier, double alpha, const double* x, double* y, size_t n) {
  DIGFL_CHECK(TierUsable(tier));
  switch (tier) {
#if defined(DIGFL_HAVE_AVX512)
    case Tier::kAvx512:
      internal::AxpyAvx512(alpha, x, y, n);
      return;
#endif
#if defined(DIGFL_HAVE_AVX2)
    case Tier::kAvx2:
      internal::AxpyAvx2(alpha, x, y, n);
      return;
#endif
    default:
      internal::AxpyScalar(alpha, x, y, n);
      return;
  }
}

void ScaleTier(Tier tier, double* x, double alpha, size_t n) {
  DIGFL_CHECK(TierUsable(tier));
  switch (tier) {
#if defined(DIGFL_HAVE_AVX512)
    case Tier::kAvx512:
      internal::ScaleAvx512(x, alpha, n);
      return;
#endif
#if defined(DIGFL_HAVE_AVX2)
    case Tier::kAvx2:
      internal::ScaleAvx2(x, alpha, n);
      return;
#endif
    default:
      internal::ScaleScalar(x, alpha, n);
      return;
  }
}

double QDot8Tier(Tier tier, const double* scales, const uint8_t* codes,
                 uint32_t block, const double* v, size_t n) {
  DIGFL_CHECK(TierUsable(tier));
  switch (tier) {
#if defined(DIGFL_HAVE_AVX512)
    case Tier::kAvx512:
      return internal::QDot8Avx512(scales, codes, block, v, n);
#endif
#if defined(DIGFL_HAVE_AVX2)
    case Tier::kAvx2:
      return internal::QDot8Avx2(scales, codes, block, v, n);
#endif
    default:
      return internal::QDot8Scalar(scales, codes, block, v, n);
  }
}

double QDot4Tier(Tier tier, const double* scales, const uint8_t* packed,
                 uint32_t block, const double* v, size_t n) {
  DIGFL_CHECK(TierUsable(tier));
  switch (tier) {
#if defined(DIGFL_HAVE_AVX512)
    case Tier::kAvx512:
      return internal::QDot4Avx512(scales, packed, block, v, n);
#endif
#if defined(DIGFL_HAVE_AVX2)
    case Tier::kAvx2:
      return internal::QDot4Avx2(scales, packed, block, v, n);
#endif
    default:
      return internal::QDot4Scalar(scales, packed, block, v, n);
  }
}

}  // namespace simd
}  // namespace digfl
