// Runtime-dispatched SIMD kernels for the Vec hot paths (DESIGN.md §16).
//
// Three tiers — scalar, AVX2, AVX-512 (when the toolchain can build it) —
// share one bit-exact contract: every kernel produces the SAME doubles on
// every tier, so runtime dispatch can never change a training log, a φ̂
// estimate, or a golden file. The rules that make that possible:
//
//   * Elementwise kernels (Axpy, Scale) round every element independently
//     (separate multiply and add, never FMA), exactly like the scalar
//     loops vec.cc has always run — so vec::Axpy/vec::Scale dispatch here
//     with bitwise-identical results.
//   * Reductions are order-sensitive, so Dot/QDot define a PINNED
//     accumulation order: 8 independent accumulators, accumulator j sums
//     the terms at indices ≡ j (mod 8) in ascending order; the 8 partials
//     are then folded left-to-right and the non-multiple-of-8 tail is
//     added sequentially. Scalar implements that order directly; AVX2 uses
//     two 4-lane registers (lanes = accumulators 0–3 and 4–7); AVX-512
//     uses one 8-lane register. Same order ⇒ same bits.
//   * vec::Dot does NOT dispatch here: its simple sequential order is the
//     φ̂ wire/golden contract (see vec.h). simd::Dot is a different, also
//     pinned, order for callers that choose it (benches, quantized paths).
//
// DIGFL_FORCE_SCALAR=1 (any value but "0") in the environment pins
// ActiveTier() to scalar for the whole process — the one-switch test mode.
// The per-tier entry points (*Tier) bypass dispatch for parity tests.
//
// QDot8/QDot4 are the quantized-domain inner products: ⟨Dequantize(q), v⟩
// computed without materializing the dequantized vector, term by term as
// (scale_b · code_i) · v_i with both products rounded — bitwise equal to
// simd::Dot(Dequantize(q), v). `block` must be a positive multiple of 8
// (compress::Quantize enforces this) so a block never splits an 8-group.

#ifndef DIGFL_TENSOR_SIMD_SIMD_H_
#define DIGFL_TENSOR_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace digfl {
namespace simd {

enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* TierName(Tier tier);

// True when the tier was compiled into this binary (toolchain support).
bool TierCompiled(Tier tier);
// True when the tier is compiled in AND this CPU can run it.
bool TierUsable(Tier tier);

// The tier every dispatched kernel below uses: the highest usable tier,
// or kScalar when DIGFL_FORCE_SCALAR is set. Decided once per process.
Tier ActiveTier();
bool ForcedScalar();

// Dispatched kernels.
double Dot(const double* a, const double* b, size_t n);
void Axpy(double alpha, const double* x, double* y, size_t n);
void Scale(double* x, double alpha, size_t n);
// q8: codes are int8 bit patterns, one per value. q4: offset-binary
// nibbles (code + 8), two values per byte, low nibble first.
double QDot8(const double* scales, const uint8_t* codes, uint32_t block,
             const double* v, size_t n);
double QDot4(const double* scales, const uint8_t* packed, uint32_t block,
             const double* v, size_t n);

// Per-tier entry points for parity tests and the kernel bench. Calling a
// tier that is not usable on this machine is a checked error.
double DotTier(Tier tier, const double* a, const double* b, size_t n);
void AxpyTier(Tier tier, double alpha, const double* x, double* y, size_t n);
void ScaleTier(Tier tier, double* x, double alpha, size_t n);
double QDot8Tier(Tier tier, const double* scales, const uint8_t* codes,
                 uint32_t block, const double* v, size_t n);
double QDot4Tier(Tier tier, const double* scales, const uint8_t* packed,
                 uint32_t block, const double* v, size_t n);

}  // namespace simd
}  // namespace digfl

#endif  // DIGFL_TENSOR_SIMD_SIMD_H_
