#include "tensor/vec.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/simd/simd.h"

namespace digfl {
namespace vec {

Vec Zeros(size_t n) { return Vec(n, 0.0); }

// Axpy and Scale dispatch to the SIMD tiers: both are elementwise with one
// rounding per element, so every tier produces the same bits as the plain
// loops these used to be. Dot must NOT dispatch — its sequential
// accumulation order is part of the φ̂/golden bitwise contract.
void Axpy(double alpha, const Vec& x, Vec& y) {
  DIGFL_CHECK(x.size() == y.size());
  simd::Axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(double alpha, Vec& x) {
  simd::Scale(x.data(), alpha, x.size());
}

Vec Add(const Vec& a, const Vec& b) {
  DIGFL_CHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  DIGFL_CHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Scaled(double alpha, const Vec& x) {
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = alpha * x[i];
  return out;
}

double Dot(const Vec& a, const Vec& b) {
  DIGFL_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const Vec& x) { return std::sqrt(SquaredNorm2(x)); }

double SquaredNorm2(const Vec& x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return sum;
}

double NormInf(const Vec& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

bool AllClose(const Vec& a, const Vec& b, double rtol, double atol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

Vec MaskedToBlock(const Vec& x, size_t begin, size_t end) {
  DIGFL_CHECK(begin <= end && end <= x.size());
  Vec out(x.size(), 0.0);
  std::copy(x.begin() + begin, x.begin() + end, out.begin() + begin);
  return out;
}

Vec MaskedOutBlock(const Vec& x, size_t begin, size_t end) {
  DIGFL_CHECK(begin <= end && end <= x.size());
  Vec out = x;
  std::fill(out.begin() + begin, out.begin() + end, 0.0);
  return out;
}

}  // namespace vec
}  // namespace digfl
