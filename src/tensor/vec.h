// Flat dense vector operations.
//
// Model parameters, gradients, and local updates are represented as flat
// `Vec`s (std::vector<double>). These free functions are the BLAS-1 style
// kernels everything else builds on. Size mismatches are internal invariant
// violations (the shapes are fixed by the model), so they DIGFL_CHECK.

#ifndef DIGFL_TENSOR_VEC_H_
#define DIGFL_TENSOR_VEC_H_

#include <cstddef>
#include <vector>

namespace digfl {

using Vec = std::vector<double>;

namespace vec {

// Returns a zero vector of dimension n.
Vec Zeros(size_t n);

// y += alpha * x.
void Axpy(double alpha, const Vec& x, Vec& y);

// x *= alpha.
void Scale(double alpha, Vec& x);

// Element-wise sum: returns a + b.
Vec Add(const Vec& a, const Vec& b);

// Element-wise difference: returns a - b.
Vec Sub(const Vec& a, const Vec& b);

// Returns alpha * x.
Vec Scaled(double alpha, const Vec& x);

// Inner product <a, b>.
double Dot(const Vec& a, const Vec& b);

// Euclidean norm ||x||_2.
double Norm2(const Vec& x);

// Squared Euclidean norm ||x||_2^2.
double SquaredNorm2(const Vec& x);

// Max-abs (infinity) norm.
double NormInf(const Vec& x);

// True if every |a_i - b_i| <= atol + rtol * |b_i|.
bool AllClose(const Vec& a, const Vec& b, double rtol = 1e-9,
              double atol = 1e-12);

// Zeroes every entry outside [begin, end); used for VFL block masking
// ((E - diag(v_z)) and diag(v_z) applications).
Vec MaskedToBlock(const Vec& x, size_t begin, size_t end);

// Zeroes every entry inside [begin, end).
Vec MaskedOutBlock(const Vec& x, size_t begin, size_t end);

}  // namespace vec
}  // namespace digfl

#endif  // DIGFL_TENSOR_VEC_H_
