// Replicated epoch log for coordinator high availability (DESIGN.md §14).
//
// After every committed epoch the primary coordinator ships one
// EpochLogAppend record to the hot standby: the full DIGFLCKP1 checkpoint
// image for that round boundary (θ, the per-epoch δ/present/weights log,
// RNG cursors, comm-ledger totals, φ̂ accumulator) plus this epoch's φ̂
// row as an explicit accumulator delta. The standby applies records into
// an in-memory EpochLogBuffer — a CheckpointStore-equivalent — so
// promotion needs no disk replay: the newest applied record IS the last
// durable round boundary.
//
// Every record carries the primary's leader generation; the buffer rejects
// records from a generation lower than the highest it has seen, so a
// fenced ex-primary that keeps streaming can never roll the standby back.

#ifndef DIGFL_NET_EPOCH_LOG_H_
#define DIGFL_NET_EPOCH_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ckpt/hfl_resume.h"
#include "common/result.h"
#include "tensor/vec.h"

namespace digfl {
namespace net {

// Primary → standby: one write-ahead record per committed epoch.
struct EpochLogAppendMsg {
  uint64_t generation = 0;     // sender's leader generation (never 0)
  uint64_t config_digest = 0;  // same digest the handshake pins
  uint64_t epoch = 0;          // epochs completed after this record
  // Complete DIGFLCKP1 checkpoint image at this round boundary — the same
  // bytes ckpt::EncodeHflCheckpoint produces, CRC framing included, so the
  // record reuses the checkpoint container's corruption detection.
  std::string image;
  // This epoch's masked φ̂ row (the accumulator delta). Redundant with the
  // image's phi record by construction; the receiver cross-checks them
  // bitwise, so corruption that slips past one encoding trips the other.
  Vec phi_epoch;
};

// Standby → primary: record durably applied through `epoch`.
struct EpochLogAckMsg {
  uint64_t epoch = 0;
};

std::string EncodeEpochLogAppend(const EpochLogAppendMsg& msg);
std::string EncodeEpochLogAck(const EpochLogAckMsg& msg);

// Strict decoders. DecodeEpochLogAppend validates the embedded image's
// container framing (magic, per-record CRCs, terminator), so a truncated
// or bit-flipped log record is rejected at the trust boundary.
Result<EpochLogAppendMsg> DecodeEpochLogAppend(std::string_view payload);
Result<EpochLogAckMsg> DecodeEpochLogAck(std::string_view payload);

// In-memory replica of the primary's durable state. Single-threaded (the
// standby applies records from one replication connection at a time).
class EpochLogBuffer {
 public:
  explicit EpochLogBuffer(uint64_t config_digest)
      : config_digest_(config_digest) {}

  // Validates and applies one record: the generation must not regress, the
  // digest must match, the epoch must advance, the image must decode to a
  // coherent checkpoint whose boundary and φ̂ row agree with the record's
  // own fields. On success the buffer holds the decoded state.
  Status Apply(const EpochLogAppendMsg& msg);

  bool has_state() const { return has_state_; }
  const ckpt::HflCheckpointState& state() const { return state_; }
  // Highest generation observed across applied records (0 = none yet).
  uint64_t generation() const { return generation_; }
  // Epochs completed at the newest applied record (0 = none yet).
  uint64_t epoch() const { return epoch_; }
  uint64_t records_applied() const { return records_applied_; }
  uint64_t records_rejected() const { return records_rejected_; }

 private:
  uint64_t config_digest_ = 0;
  uint64_t generation_ = 0;
  uint64_t epoch_ = 0;
  uint64_t records_applied_ = 0;
  uint64_t records_rejected_ = 0;
  bool has_state_ = false;
  ckpt::HflCheckpointState state_;
};

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_EPOCH_LOG_H_
