#include "net/reactor.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "net/socket.h"

namespace digfl {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

bool ForcePollBackend() {
  const char* env = std::getenv("DIGFL_NET_FORCE_POLL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

Status ErrnoInternal(const char* op, int err) {
  return Status::Internal(std::string(op) + ": " + std::strerror(err));
}

#ifdef __linux__
uint32_t EpollEventsFor(ReactorInterest interest) {
  switch (interest) {
    case ReactorInterest::kRead:
      return EPOLLIN;
    case ReactorInterest::kWrite:
      return EPOLLOUT;
    case ReactorInterest::kReadWrite:
      return EPOLLIN | EPOLLOUT;
  }
  return EPOLLIN;
}
#endif

short PollEventsFor(ReactorInterest interest) {
  switch (interest) {
    case ReactorInterest::kRead:
      return POLLIN;
    case ReactorInterest::kWrite:
      return POLLOUT;
    case ReactorInterest::kReadWrite:
      return POLLIN | POLLOUT;
  }
  return POLLIN;
}

}  // namespace

Result<Reactor> Reactor::Create(size_t expected_connections) {
  Reactor reactor;
  if (expected_connections > 0) {
    // Margin for the listener, the parent link, stdio, and checkpoint fds.
    DIGFL_RETURN_IF_ERROR(EnsureFdCapacity(expected_connections + 64));
    reactor.entries_.reserve(expected_connections);
  }
#ifdef __linux__
  if (!ForcePollBackend()) {
    reactor.epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (reactor.epoll_fd_ < 0) {
      return ErrnoInternal("epoll_create1", errno);
    }
  }
#endif
  return reactor;
}

Reactor::Reactor(Reactor&& other) noexcept
    : epoll_fd_(other.epoll_fd_), entries_(std::move(other.entries_)) {
  other.epoll_fd_ = -1;
  other.entries_.clear();
}

Reactor& Reactor::operator=(Reactor&& other) noexcept {
  if (this != &other) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = other.epoll_fd_;
    entries_ = std::move(other.entries_);
    other.epoll_fd_ = -1;
    other.entries_.clear();
  }
  return *this;
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

Status Reactor::Add(int fd, uint64_t tag, ReactorInterest interest) {
  if (fd < 0) return Status::InvalidArgument("reactor add: negative fd");
  if (entries_.count(fd) > 0) {
    return Status::InvalidArgument("reactor add: fd already registered");
  }
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    struct epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EpollEventsFor(interest);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      return ErrnoInternal("epoll_ctl(ADD)", errno);
    }
  }
#endif
  entries_[fd] = Entry{tag, interest};
  return Status::OK();
}

Status Reactor::Modify(int fd, uint64_t tag, ReactorInterest interest) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) {
    return Status::InvalidArgument("reactor modify: fd not registered");
  }
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    struct epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EpollEventsFor(interest);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
      return ErrnoInternal("epoll_ctl(MOD)", errno);
    }
  }
#endif
  it->second = Entry{tag, interest};
  return Status::OK();
}

Status Reactor::Remove(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return Status::OK();
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    // The fd may already be closed (the kernel then removed it for us);
    // only a live-but-unremovable fd is a real error.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0 &&
        errno != EBADF && errno != ENOENT) {
      return ErrnoInternal("epoll_ctl(DEL)", errno);
    }
  }
#endif
  entries_.erase(it);
  return Status::OK();
}

Result<size_t> Reactor::Wait(int timeout_ms, std::vector<ReactorEvent>* out) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    std::vector<struct epoll_event> events(
        entries_.empty() ? 16 : entries_.size());
    for (;;) {
      const int rc = ::epoll_wait(epoll_fd_, events.data(),
                                  static_cast<int>(events.size()),
                                  RemainingMs(deadline));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return ErrnoInternal("epoll_wait", errno);
      }
      size_t appended = 0;
      for (int i = 0; i < rc; ++i) {
        const auto it = entries_.find(events[i].data.fd);
        if (it == entries_.end()) continue;  // removed since registration
        ReactorEvent event;
        event.tag = it->second.tag;
        event.readable = (events[i].events & EPOLLIN) != 0;
        event.writable = (events[i].events & EPOLLOUT) != 0;
        event.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        out->push_back(event);
        ++appended;
      }
      return appended;
    }
  }
#endif
  // poll(2) fallback: O(table) per wakeup, same semantics.
  std::vector<struct pollfd> pfds;
  pfds.reserve(entries_.size());
  for (const auto& [fd, entry] : entries_) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = PollEventsFor(entry.interest);
    pfd.revents = 0;
    pfds.push_back(pfd);
  }
  for (;;) {
    const int rc = ::poll(pfds.data(), pfds.size(), RemainingMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoInternal("poll", errno);
    }
    size_t appended = 0;
    for (const struct pollfd& pfd : pfds) {
      if (pfd.revents == 0) continue;
      const auto it = entries_.find(pfd.fd);
      if (it == entries_.end()) continue;
      ReactorEvent event;
      event.tag = it->second.tag;
      event.readable = (pfd.revents & POLLIN) != 0;
      event.writable = (pfd.revents & POLLOUT) != 0;
      event.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(event);
      ++appended;
    }
    return appended;
  }
}

void WriteQueue::Push(std::string data) {
  pending_bytes_ += data.size();
  queue_.push_back(std::move(data));
}

Result<bool> WriteQueue::Flush(int fd) {
  while (!queue_.empty()) {
    const std::string& front = queue_.front();
    const ssize_t n = ::send(fd, front.data() + offset_,
                             front.size() - offset_, MSG_NOSIGNAL);
    if (n > 0) {
      offset_ += static_cast<size_t>(n);
      pending_bytes_ -= static_cast<size_t>(n);
      if (offset_ == front.size()) {
        queue_.pop_front();
        offset_ = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    if (n < 0 && errno == EINTR) continue;
    const int err = errno;
    const std::string what =
        std::string("write-queue send: ") + std::strerror(err);
    if (err == ECONNRESET || err == EPIPE || err == ENOTCONN) {
      return Status::Unavailable(what);
    }
    return Status::Internal(what);
  }
  return true;
}

}  // namespace net
}  // namespace digfl
