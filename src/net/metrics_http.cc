#include "net/metrics_http.h"

#include <string>
#include <utility>

#include "telemetry/exposition.h"
#include "telemetry/metrics.h"

namespace digfl {
namespace net {
namespace {

// Accept poll interval; bounds how long Stop() can block.
constexpr int kAcceptTimeoutMs = 100;
// Per-request I/O deadline — a scraper that stalls longer loses the
// connection rather than wedging the accept thread.
constexpr int kIoTimeoutMs = 2000;
// A GET request line plus a few headers; anything bigger is not a scrape.
constexpr size_t kMaxRequestBytes = 8192;

}  // namespace

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(
    uint16_t port, Transport* transport) {
  if (transport == nullptr) transport = TcpTransport();
  auto server = std::unique_ptr<MetricsHttpServer>(new MetricsHttpServer());
  DIGFL_ASSIGN_OR_RETURN(server->listener_, transport->Listen(port));
  server->port_ = server->listener_->port();
  server->thread_ = std::thread([raw = server.get()] { raw->ServeLoop(); });
  return server;
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Stop() {
  if (stop_.exchange(true)) {
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listener_) listener_->Close();
}

void MetricsHttpServer::ServeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<std::unique_ptr<Conn>> accepted = listener_->Accept(kAcceptTimeoutMs);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) continue;
      return;  // listener closed or broken; nothing to serve anymore
    }
    ServeOne(accepted.value().get());
  }
}

void MetricsHttpServer::ServeOne(Conn* conn) {
  std::string head;
  char buf[1024];
  // Read until the header terminator. A client that closes after a bare
  // request line (no blank line) still gets served: the router only looks
  // at the request line.
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < kMaxRequestBytes) {
    Result<size_t> n = conn->RecvSome(buf, sizeof(buf), kIoTimeoutMs);
    if (!n.ok()) break;
    head.append(buf, n.value());
  }
  if (head.empty()) {
    conn->Close();
    return;
  }
  const std::string response = telemetry::HandleMetricsHttpRequest(
      head, telemetry::MetricsRegistry::Global().Snapshot());
  (void)conn->SendAll(response, kIoTimeoutMs);
  conn->Close();
}

}  // namespace net
}  // namespace digfl
