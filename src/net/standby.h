// Hot-standby coordinator: lease-driven promotion (DESIGN.md §14).
//
// The standby listens on the replication port and applies the primary's
// EpochLogAppend stream into an in-memory EpochLogBuffer. The leader lease
// is implicit in the stream itself: an absolute deadline on the
// transport's clock (virtual milliseconds under SimNet, wall-clock over
// TCP), reset only by replication evidence — an applied record or the
// primary's farewell. `lease_timeout_ms` without such evidence means the
// primary is dead or partitioned and the standby promotes; connections
// that carry no evidence (a failing-over participant's Hello gets a typed
// rejection ack) spend the lease, they do not extend it. Because a record
// can land just before the silence starts, the worst-case promotion delay
// is twice the lease.
//
// Promotion returns (it does not start serving): the caller re-creates a
// Coordinator on the failover port with `outcome.generation` — one more
// than the highest generation the standby has ever seen, so fencing holds
// even if the ex-primary is still alive — and warm-starts it from
// `outcome.state` via ckpt::ResumeFromState.

#ifndef DIGFL_NET_STANDBY_H_
#define DIGFL_NET_STANDBY_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "ckpt/hfl_resume.h"
#include "common/result.h"
#include "net/epoch_log.h"
#include "net/transport.h"
#include "net/wire.h"

namespace digfl {
namespace net {

struct StandbyOptions {
  // nullptr = TcpTransport(). Not owned; must outlive the standby.
  Transport* transport = nullptr;
  uint16_t port = 0;               // replication listen port
  uint64_t config_digest = 0;      // same digest the handshake pins
  // Generation the current primary leads with; promotion picks
  // max(primary_generation, highest generation seen on the stream) + 1.
  uint64_t primary_generation = 1;
  // Silence threshold: no replication traffic for this long ⇒ promote.
  int lease_timeout_ms = 1000;
  WireLimits limits;
};

// How a standby's watch ended.
struct StandbyOutcome {
  bool stopped = false;            // Stop() ended the watch; no verdict
  bool primary_completed = false;  // primary sent its farewell; run is done
  // Promotion verdict (when neither flag is set): the generation the
  // promoted coordinator must lead with, and the last durable round
  // boundary to resume from (has_state == false ⇒ cold start at epoch 0).
  uint64_t generation = 0;
  bool has_state = false;
  ckpt::HflCheckpointState state;
  uint64_t records_applied = 0;
  uint64_t records_rejected = 0;

  bool promoted() const { return !stopped && !primary_completed; }
};

class StandbyCoordinator {
 public:
  static Result<std::unique_ptr<StandbyCoordinator>> Create(
      const StandbyOptions& options);

  // The replication port actually bound (reads back an ephemeral choice);
  // participants put this in their failover endpoint list.
  uint16_t port() const { return listener_ != nullptr ? listener_->port() : 0; }

  // Blocks until the primary completes, the lease expires (promotion), or
  // Stop() is called. Statuses are reserved for environment failures (e.g.
  // the simulated horizon); every protocol-level outcome is typed in the
  // returned StandbyOutcome.
  Result<StandbyOutcome> Run();

  // Thread-safe; wakes Run() by closing the replication listener.
  void Stop();

 private:
  explicit StandbyCoordinator(const StandbyOptions& options)
      : options_(options), buffer_(options.config_digest) {}

  StandbyOutcome Promoted();

  StandbyOptions options_;
  EpochLogBuffer buffer_;
  std::unique_ptr<Listener> listener_;
  std::atomic<bool> stop_{false};
};

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_STANDBY_H_
