#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace digfl {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

// Absolute deadline arithmetic so a retried poll/read loop shares one
// budget instead of restarting the clock on every partial operation.
Clock::time_point DeadlineFrom(int timeout_ms) {
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

Status ErrnoStatus(const char* op, int err) {
  const std::string what = std::string(op) + ": " + std::strerror(err);
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ENOTCONN:
    case ENETUNREACH:
    case EHOSTUNREACH:
      return Status::Unavailable(what);
    case ETIMEDOUT:
      return Status::DeadlineExceeded(what);
    case EMFILE:
    case ENFILE:
      // Typed so callers can tell "fd table full" from a programming error:
      // retrying without raising RLIMIT_NOFILE (EnsureFdCapacity) cannot
      // succeed.
      return Status::FailedPrecondition("fd table full: " + what);
    default:
      return Status::Internal(what);
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  const int one = 1;
  // Best-effort: latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Polls `fd` for `events` until the deadline. OK = ready.
Status PollFor(int fd, short events, Clock::time_point deadline,
               const char* op) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int remaining = RemainingMs(deadline);
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(op, errno);
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out");
    }
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      return ErrnoStatus(op, err != 0 ? err : ECONNRESET);
    }
    // POLLHUP with readable data still delivers the data; the read itself
    // reports EOF once drained.
    return Status::OK();
  }
}

}  // namespace

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConn> TcpConn::Connect(const std::string& host, uint16_t port,
                                 int timeout_ms) {
  const auto deadline = DeadlineFrom(timeout_ms);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                &result);
  if (gai != 0) {
    return Status::InvalidArgument("cannot resolve " + host + ": " +
                                   ::gai_strerror(gai));
  }

  Status last = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    TcpConn conn(fd);
    if (Status status = SetNonBlocking(fd); !status.ok()) {
      last = status;
      continue;
    }
    // EINPROGRESS is the normal nonblocking path; EINTR means the connect
    // was interrupted but proceeds in the background — both complete (or
    // fail) via the POLLOUT wait below.
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) < 0 &&
        errno != EINPROGRESS && errno != EINTR) {
      last = ErrnoStatus("connect", errno);
      continue;
    }
    if (Status status = PollFor(fd, POLLOUT, deadline, "connect");
        !status.ok()) {
      last = status;
      continue;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      last = ErrnoStatus("connect", err != 0 ? err : errno);
      continue;
    }
    SetNoDelay(fd);
    ::freeaddrinfo(result);
    return conn;
  }
  ::freeaddrinfo(result);
  return last;
}

Status TcpConn::SendAll(std::string_view data, int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("send on closed connection");
  const auto deadline = DeadlineFrom(timeout_ms);
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      DIGFL_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Result<size_t> TcpConn::RecvSome(char* buf, size_t len, int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("recv on closed connection");
  const auto deadline = DeadlineFrom(timeout_ms);
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return Status::Unavailable("peer closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DIGFL_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
}

Status TcpConn::RecvExact(char* buf, size_t len, int timeout_ms) {
  const auto deadline = DeadlineFrom(timeout_ms);
  size_t got = 0;
  while (got < len) {
    DIGFL_ASSIGN_OR_RETURN(
        size_t n, RecvSome(buf + got, len - got, RemainingMs(deadline)));
    got += n;
  }
  return Status::OK();
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Listen(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  TcpListener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  DIGFL_RETURN_IF_ERROR(SetNonBlocking(fd));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd, backlog) < 0) return ErrnoStatus("listen", errno);

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    return ErrnoStatus("getsockname", errno);
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpConn> TcpListener::Accept(int timeout_ms) {
  if (!valid()) {
    return Status::FailedPrecondition("accept on closed listener");
  }
  const auto deadline = DeadlineFrom(timeout_ms);
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      TcpConn conn(fd);
      DIGFL_RETURN_IF_ERROR(SetNonBlocking(fd));
      SetNoDelay(fd);
      return conn;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DIGFL_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "accept"));
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return ErrnoStatus("accept", errno);
  }
}

size_t FdSoftLimit() {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 0;
  if (limit.rlim_cur == RLIM_INFINITY) return SIZE_MAX;
  return static_cast<size_t>(limit.rlim_cur);
}

Status EnsureFdCapacity(size_t needed) {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) {
    return ErrnoStatus("getrlimit(RLIMIT_NOFILE)", errno);
  }
  if (limit.rlim_cur == RLIM_INFINITY ||
      static_cast<size_t>(limit.rlim_cur) >= needed) {
    return Status::OK();
  }
  if (limit.rlim_max != RLIM_INFINITY &&
      static_cast<size_t>(limit.rlim_max) < needed) {
    return Status::FailedPrecondition(
        "RLIMIT_NOFILE hard limit " + std::to_string(limit.rlim_max) +
        " is below the " + std::to_string(needed) +
        " descriptors this topology needs; raise it (ulimit -Hn) and rerun");
  }
  limit.rlim_cur = static_cast<rlim_t>(needed);
  if (::setrlimit(RLIMIT_NOFILE, &limit) != 0) {
    return ErrnoStatus("setrlimit(RLIMIT_NOFILE)", errno);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace digfl
