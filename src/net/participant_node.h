// ParticipantNode: the client role of the distributed HFL runtime.
//
// Wraps one HflParticipant in a connect-and-serve event loop: dial the
// coordinator (bounded retries with backoff + jitter), handshake, then
// answer RoundRequests with local updates and HvpRequests with local
// Hessian-vector products until a Shutdown message or a fatal error. A
// dropped connection triggers a reconnect — the coordinator treats the gap
// as a dropout and the node rejoins at the next epoch boundary.
//
// The node is deliberately stateless across rounds: every RoundRequest
// carries θ_{t-1} and α_t, so a node that missed ten epochs serves epoch
// t+10 exactly like one that never left. That statelessness is what makes
// the coordinator's dropout-and-rejoin semantics (and its crash-resume)
// correct without any distributed snapshot protocol.

#ifndef DIGFL_NET_PARTICIPANT_NODE_H_
#define DIGFL_NET_PARTICIPANT_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/adversary.h"
#include "common/result.h"
#include "compress/quantize.h"
#include "hfl/participant.h"
#include "net/backoff.h"
#include "net/channel.h"
#include "net/transport.h"
#include "net/wire.h"
#include "nn/model.h"
#include "telemetry/federation.h"

namespace digfl {
namespace net {

// One coordinator address a node may serve (DESIGN.md §14). Under SimNet
// the host is the *dialer's* fault-schedule label, so a simulated node's
// endpoints share its own label and differ only in port.
struct ParticipantEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct ParticipantNodeOptions {
  // Byte-stream layer to dial through. nullptr = TcpTransport(). Not
  // owned; must outlive the node. Simulated nodes set this to their SimNet
  // and use `host` as their per-node label in the fault schedule.
  Transport* transport = nullptr;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Failover endpoint list in priority order: primary first, then each
  // standby. Empty = the single {host, port} above (the pre-HA behavior).
  // Connect attempts rotate round-robin through the list, so a dead primary
  // costs one refused dial before the node tries the standby; a handshake
  // rejection is only fatal when there is no other endpoint to try.
  std::vector<ParticipantEndpoint> endpoints;
  uint64_t participant_id = 0;
  // Must match the coordinator's digest or the handshake is rejected.
  uint64_t config_digest = 0;
  int connect_timeout_ms = 2000;
  int handshake_timeout_ms = 5000;
  // One Recv poll while idle between rounds; expiry is not an error, the
  // node just keeps waiting (see max_idle_polls).
  int io_timeout_ms = 30000;
  // Consecutive idle polls before giving up on a silent coordinator;
  // 0 = wait forever (until Shutdown or connection loss).
  size_t max_idle_polls = 0;
  // Dial attempts per (re)connect episode before Run() fails.
  size_t max_connect_attempts = 20;
  BackoffPolicy connect_backoff;
  // 0 = derive the jitter stream from participant_id.
  uint64_t jitter_seed = 0;
  WireLimits limits;
  // Optional seeded Byzantine behavior (common/adversary.h): when set and
  // this node's participant_id is an attacker in the plan, every served
  // round computes the honest δ and uploads ApplyAttack(δ) instead. Not
  // owned; must outlive the node. This is where distributed attacks live —
  // the coordinator never injects them.
  const AdversaryPlan* adversary = nullptr;
};

class ParticipantNode {
 public:
  struct Stats {
    uint64_t rounds_served = 0;
    uint64_t hvps_served = 0;
    uint64_t reconnects = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    // Leader fencing (DESIGN.md §14): handshakes refused because the
    // coordinator led a generation below the highest this node accepted,
    // and round requests refused mid-connection for the same reason.
    uint64_t stale_leaders_rejected = 0;
    uint64_t stale_rounds_rejected = 0;
    // Successful handshakes that landed on a different endpoint than the
    // previous one (primary -> standby moves and back).
    uint64_t failovers = 0;
  };

  // `model` is not owned and must outlive the node.
  ParticipantNode(const Model& model, HflParticipant participant,
                  ParticipantNodeOptions options)
      : model_(model),
        participant_(std::move(participant)),
        options_(std::move(options)) {}

  // Connects and serves until the coordinator says Shutdown (OK), the
  // coordinator stays unreachable through a full connect episode
  // (kUnavailable / kDeadlineExceeded), or a protocol error (anything
  // else).
  Status Run();

  const Stats& stats() const { return stats_; }

 private:
  Result<MsgChannel> ConnectAndHandshake();
  // Serves one connection. OK = clean shutdown; kUnavailable = connection
  // lost, caller should reconnect; other codes are fatal.
  Status Serve(MsgChannel& channel);

  const Model& model_;
  HflParticipant participant_;
  ParticipantNodeOptions options_;
  Stats stats_;
  // Highest leader generation accepted in a handshake; anything lower is a
  // stale ex-primary and gets refused (0 until a generation is seen).
  uint64_t max_seen_generation_ = 0;
  // Endpoint bookkeeping for Stats::failovers.
  size_t last_endpoint_ = 0;
  bool ever_connected_ = false;
  // Span/metric buffer shipped piggyback on epoch-end replies when
  // telemetry is on (DESIGN.md §13). Owned by the serve loop's thread.
  telemetry::NodeTelemetry node_telemetry_;
  // Previous round's honest update (free-rider replay attack state);
  // survives reconnects like any other attacker memory would.
  std::vector<double> last_honest_;
  // Update compression negotiated at handshake (DESIGN.md §16). The
  // error-feedback residual survives reconnects — the stream of uploads is
  // what telescopes, not the connection — but is reset if a new leader
  // announces a different mode or block size. The per-epoch cache makes
  // round retries idempotent: a resent RoundRequest gets the cached
  // quantized upload instead of advancing the residual twice.
  compress::Mode quant_mode_ = compress::Mode::kLossless;
  uint32_t quant_block_ = compress::kQuantBlock;
  std::unique_ptr<compress::ErrorFeedback> quant_ef_;
  bool has_cached_quant_ = false;
  uint64_t cached_quant_epoch_ = 0;
  compress::QuantizedVec cached_quant_;
};

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_PARTICIPANT_NODE_H_
