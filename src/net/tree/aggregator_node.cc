#include "net/tree/aggregator_node.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "net/tree/collect.h"
#include "telemetry/telemetry.h"
#include "tensor/vec.h"

namespace digfl {
namespace net {
namespace tree {

namespace {
constexpr int kShutdownSendTimeoutMs = 1000;
}  // namespace

AggregatorNode::AggregatorNode(TreeTopology topology,
                               const AggregatorNodeOptions& options)
    : topology_(std::move(topology)), options_(options) {}

Result<std::unique_ptr<AggregatorNode>> AggregatorNode::Create(
    TreeTopology topology, const AggregatorNodeOptions& options) {
  if (options.level >= topology.num_levels()) {
    return Status::InvalidArgument("aggregator level out of range");
  }
  if (options.index >= topology.WidthAt(options.level)) {
    return Status::InvalidArgument("aggregator index out of range");
  }
  if (options.num_params == 0) {
    return Status::InvalidArgument("num_params must be > 0");
  }
  if (options.round_timeout_ms <= 0 || options.handshake_timeout_ms <= 0 ||
      options.io_timeout_ms <= 0) {
    return Status::InvalidArgument("timeouts must be > 0");
  }
  std::unique_ptr<AggregatorNode> node(
      new AggregatorNode(std::move(topology), options));
  node->covered_ = node->topology_.Covered(options.level, options.index);
  node->leaf_ = node->topology_.IsLeafLevel(options.level);
  node->child_ids_ =
      node->leaf_ ? node->covered_
                  : node->topology_.ChildAggregators(options.level,
                                                     options.index);
  node->num_children_ = node->child_ids_.size();
  node->max_seen_generation_.store(options.leader_generation,
                                   std::memory_order_relaxed);
  Transport* transport =
      options.transport != nullptr ? options.transport : TcpTransport();
  if (options.transport == nullptr) {
    DIGFL_RETURN_IF_ERROR(EnsureFdCapacity(node->num_children_ + 64));
  }
  DIGFL_ASSIGN_OR_RETURN(node->listener_,
                         transport->Listen(options.listen_port));
  node->slots_.resize(node->num_children_);
  node->accept_thread_ =
      std::thread(&AggregatorNode::AcceptLoop, node.get());
  return node;
}

AggregatorNode::~AggregatorNode() { Shutdown("aggregator destroyed"); }

void AggregatorNode::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<std::unique_ptr<Conn>> conn =
        listener_->Accept(options_.accept_poll_ms);
    if (!conn.ok()) continue;  // timeout = stop-flag heartbeat
    HandleChild(std::move(*conn));
  }
}

void AggregatorNode::HandleChild(std::unique_ptr<Conn> conn) {
  auto channel =
      std::make_unique<MsgChannel>(std::move(conn), options_.limits);
  Result<HelloMsg> hello =
      ServerHandshakeBegin(*channel, options_.handshake_timeout_ms);
  if (!hello.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.handshakes_rejected;
    return;
  }

  HelloAckMsg ack;
  ack.next_epoch = next_epoch_hint_.load(std::memory_order_relaxed);
  const uint64_t generation =
      max_seen_generation_.load(std::memory_order_relaxed);
  if (generation > 0) ack.generation = generation;

  const uint64_t id = hello->participant_id;
  size_t slot = 0;
  if (hello->config_digest != options_.config_digest) {
    ack.message = "federation config digest mismatch";
  } else if (leaf_ && hello->tree.has_value()) {
    ack.message = "participant hello carries a tree block";
  } else if (!leaf_ && !hello->tree.has_value()) {
    ack.message = "aggregator hello missing its tree block";
  } else if (id < child_ids_.begin || id >= child_ids_.end) {
    ack.message = leaf_ ? "participant id outside this shard"
                        : "child aggregator index outside this subtree";
  } else {
    slot = static_cast<size_t>(id) - child_ids_.begin;
    if (!leaf_) {
      // A child aggregator must cover exactly the shard the topology
      // assigns to its index, one level down.
      const TreeTopology::Range expected =
          topology_.Covered(options_.level + 1, static_cast<size_t>(id));
      const TreeHello& tree = *hello->tree;
      if (tree.level != options_.level + 1 ||
          tree.child_begin != expected.begin ||
          tree.child_end != expected.end) {
        ack.message = "child aggregator range does not match the topology";
      }
    }
    if (ack.message.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (slots_[slot] != nullptr) {
        ack.message = "child already connected";
      } else {
        ack.accepted = 1;
      }
    }
  }

  const Status finish =
      ServerHandshakeFinish(*channel, ack, options_.handshake_timeout_ms);
  std::lock_guard<std::mutex> lock(mu_);
  if (ack.accepted == 0 || !finish.ok()) {
    ++stats_.handshakes_rejected;
    return;
  }
  if (slots_[slot] != nullptr) {
    // Refilled while Finish was on the wire; the incumbent wins.
    ++stats_.handshakes_rejected;
    return;
  }
  slots_[slot] = std::move(channel);
  ++stats_.handshakes_accepted;
  slot_cv_.notify_all();
}

size_t AggregatorNode::num_children_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& slot : slots_) count += (slot != nullptr);
  return count;
}

Status AggregatorNode::WaitForChildren(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool all = slot_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [this] {
        for (const auto& slot : slots_) {
          if (slot == nullptr) return false;
        }
        return true;
      });
  if (all) return Status::OK();
  size_t missing = 0;
  for (const auto& slot : slots_) missing += (slot == nullptr);
  return Status::DeadlineExceeded(std::to_string(missing) +
                                  " children not connected");
}

Result<MsgChannel> AggregatorNode::ConnectParent() {
  DIGFL_TRACE_SPAN("tree.connect_parent");
  const uint64_t seed =
      options_.jitter_seed != 0
          ? options_.jitter_seed
          : 0xa66ul ^ ((options_.level << 20) + options_.index + 1);
  Rng jitter(seed);
  Transport* transport =
      options_.transport != nullptr ? options_.transport : TcpTransport();
  Status last = Status::Unavailable("no connect attempt made");
  for (size_t attempt = 0; attempt < options_.max_connect_attempts;
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          BackoffDelayMs(options_.connect_backoff, attempt - 1, jitter)));
    }
    Result<std::unique_ptr<Conn>> conn =
        transport->Connect(options_.parent_host, options_.parent_port,
                           options_.connect_timeout_ms);
    if (!conn.ok()) {
      last = conn.status();
      continue;
    }
    MsgChannel channel(std::move(*conn), options_.limits);
    HelloMsg hello;
    hello.participant_id = options_.index;
    hello.num_params = options_.num_params;
    hello.config_digest = options_.config_digest;
    const uint64_t generation =
        max_seen_generation_.load(std::memory_order_relaxed);
    if (generation > 0) hello.generation = generation;
    hello.tree = TreeHello{static_cast<uint32_t>(options_.level),
                           covered_.begin, covered_.end};
    Result<HelloAckMsg> ack =
        ClientHandshake(channel, hello, options_.handshake_timeout_ms);
    if (!ack.ok()) {
      // A rejection is a configuration error with a single parent; it will
      // not heal by retrying.
      if (ack.status().code() == StatusCode::kFailedPrecondition) {
        return ack.status();
      }
      last = ack.status();
      continue;
    }
    const uint64_t ack_generation = ack->generation.value_or(0);
    if (ack_generation > generation) {
      max_seen_generation_.store(ack_generation, std::memory_order_relaxed);
    }
    return channel;
  }
  return last;
}

Status AggregatorNode::ServeRound(MsgChannel& parent,
                                  const RoundRequestMsg& request) {
  DIGFL_TRACE_SPAN(leaf_ ? "tree.leaf_round" : "tree.inner_round");
  if (!request.tree.has_value()) {
    return Status::InvalidArgument(
        "aggregator round request missing its TREE1 block");
  }
  const Vec& v = request.tree->validation_gradient;
  if (request.params.size() != options_.num_params ||
      v.size() != options_.num_params) {
    return Status::InvalidArgument(
        "round request vector sizes do not match the model");
  }

  // Take the child channels out of their slots for the duration of the
  // round (a channel is owned by one thread at a time).
  std::vector<std::unique_ptr<MsgChannel>> channels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    channels.swap(slots_);
    slots_.resize(channels.size());
  }

  // Forward the request downstream. The leaf → participant hop strips the
  // TREE1 block so participants see the flat wire format bit for bit;
  // aggregator-level hops forward the request unchanged (same θ, same v,
  // same generation).
  RoundRequestMsg down = request;
  if (leaf_) down.tree.reset();
  const std::string payload = EncodeRoundRequest(down);

  CollectOptions collect_options;
  collect_options.epoch = request.epoch;
  collect_options.round_timeout_ms = options_.round_timeout_ms;
  collect_options.max_retries = options_.max_round_retries;
  collect_options.num_params = options_.num_params;
  std::vector<std::optional<RoundReplyMsg>> replies;
  CollectStats collect_stats;
  CollectRound(&channels, payload, collect_options, &replies,
               &collect_stats);

  // Fold the replies in ascending child order, each into this node's own
  // zero-initialized partial — the reference arithmetic of
  // MakeTreeAggregator, performed on the same doubles.
  RoundReplyMsg up;
  up.epoch = request.epoch;
  up.participant_id = options_.index;
  up.delta = vec::Zeros(options_.num_params);
  TreeRoundReply tree;
  tree.child_begin = covered_.begin;
  tree.child_end = covered_.end;
  tree.present.assign(covered_.size(), 0);
  tree.dots.assign(covered_.size(), 0.0);

  for (size_t s = 0; s < replies.size(); ++s) {
    if (!replies[s].has_value()) continue;
    const RoundReplyMsg& reply = *replies[s];
    const uint64_t expected_id = child_ids_.begin + s;
    bool valid = reply.participant_id == expected_id;
    if (leaf_) {
      valid = valid && !reply.tree.has_value();
      if (valid) {
        const size_t offset = (child_ids_.begin + s) - covered_.begin;
        tree.present[offset] = 1;
        tree.dots[offset] = vec::Dot(v, reply.delta);
        vec::Axpy(1.0, reply.delta, up.delta);
      }
    } else {
      const TreeTopology::Range expected = topology_.Covered(
          options_.level + 1, static_cast<size_t>(expected_id));
      valid = valid && reply.tree.has_value() &&
              reply.tree->child_begin == expected.begin &&
              reply.tree->child_end == expected.end &&
              reply.tree->present.size() == expected.size() &&
              reply.tree->dots.size() == expected.size();
      if (valid) {
        size_t shard_present = 0;
        for (size_t k = 0; k < expected.size(); ++k) {
          const size_t offset = (expected.begin + k) - covered_.begin;
          tree.present[offset] = reply.tree->present[k];
          tree.dots[offset] = reply.tree->dots[k];
          shard_present += (reply.tree->present[k] != 0);
        }
        // Empty subtrees contribute nothing — skipping them (instead of
        // adding their zero vector) preserves -0.0 exactly like the
        // reference does.
        if (shard_present > 0) vec::Axpy(1.0, reply.delta, up.delta);
      }
    }
    if (!valid) {
      // Protocol violation: drop the child and treat it absent.
      if (channels[s] != nullptr) {
        channels[s]->Close();
        channels[s].reset();
      }
      ++collect_stats.dropouts;
      const size_t base = leaf_ ? (child_ids_.begin + s) - covered_.begin
                                : topology_.Covered(options_.level + 1,
                                                    child_ids_.begin + s)
                                          .begin -
                                      covered_.begin;
      const size_t span =
          leaf_ ? 1
                : topology_.Covered(options_.level + 1, child_ids_.begin + s)
                      .size();
      for (size_t k = 0; k < span; ++k) {
        tree.present[base + k] = 0;
        tree.dots[base + k] = 0.0;
      }
    }
  }
  up.tree = std::move(tree);

  // Return the surviving channels to their slots; a child that reconnected
  // mid-round owns the slot already (prefer the fresh connection).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 0; s < channels.size(); ++s) {
      if (channels[s] == nullptr) continue;
      if (slots_[s] == nullptr) {
        slots_[s] = std::move(channels[s]);
      } else {
        channels[s]->Close();
      }
    }
    stats_.child_dropouts += collect_stats.dropouts;
    stats_.child_retries += collect_stats.retries;
    stats_.stale_replies += collect_stats.stale_replies;
    stats_.bytes_sent += collect_stats.bytes_sent;
    stats_.bytes_received += collect_stats.bytes_received;
  }

  DIGFL_RETURN_IF_ERROR(parent.Send(MsgType::kRoundReply,
                                    EncodeRoundReply(up),
                                    options_.io_timeout_ms));
  next_epoch_hint_.store(request.epoch + 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rounds_served;
  }
  DIGFL_COUNTER_ADD("tree.rounds_served_total", 1);
  return Status::OK();
}

Status AggregatorNode::Serve(MsgChannel& parent) {
  size_t idle_polls = 0;
  for (;;) {
    Result<Frame> frame = parent.Recv(options_.io_timeout_ms);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        ++idle_polls;
        if (options_.max_idle_polls != 0 &&
            idle_polls >= options_.max_idle_polls) {
          return Status::DeadlineExceeded(
              "parent silent through max_idle_polls");
        }
        continue;
      }
      return frame.status();
    }
    idle_polls = 0;

    switch (static_cast<MsgType>(frame->type)) {
      case MsgType::kRoundRequest: {
        DIGFL_ASSIGN_OR_RETURN(RoundRequestMsg request,
                               DecodeRoundRequest(frame->payload));
        const uint64_t request_generation = request.generation.value_or(0);
        const uint64_t seen =
            max_seen_generation_.load(std::memory_order_relaxed);
        if (seen > 0 && request_generation < seen) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.stale_rounds_rejected;
          return Status::Unavailable(
              "round request from stale leader generation " +
              std::to_string(request_generation) + " (highest accepted " +
              std::to_string(seen) + ")");
        }
        if (request_generation > seen) {
          max_seen_generation_.store(request_generation,
                                     std::memory_order_relaxed);
        }
        if (request.epoch >= options_.halt_epoch) {
          // Kill drill: die silently mid-federation. The parent sees the
          // whole shard drop; the children see a bare connection loss.
          Kill();
          return Status::FailedPrecondition(
              "aggregator halted for kill drill at epoch " +
              std::to_string(request.epoch));
        }
        DIGFL_RETURN_IF_ERROR(ServeRound(parent, request));
        break;
      }
      case MsgType::kShutdown:
        CloseChildren(/*send_farewell=*/true, "federation shutdown");
        return Status::OK();
      case MsgType::kHvpRequest:
        return Status::Unimplemented(
            "hierarchical HVP fan-out is not supported; dial participants "
            "directly for Algorithm #1");
      default:
        return Status::InvalidArgument("unexpected frame type " +
                                       std::to_string(frame->type));
    }
  }
}

Status AggregatorNode::Run() {
  DIGFL_TRACE_SPAN("tree.aggregator_run");
  if (options_.child_wait_timeout_ms > 0) {
    // Best effort: a child that never shows up is a dropout, not an error.
    (void)WaitForChildren(options_.child_wait_timeout_ms);
  }
  for (;;) {
    Result<MsgChannel> parent = ConnectParent();
    if (!parent.ok()) return parent.status();
    Status served = Serve(*parent);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.bytes_sent += parent->TakeBytesSent();
      stats_.bytes_received += parent->TakeBytesReceived();
    }
    if (served.ok()) return Status::OK();
    if (served.code() == StatusCode::kUnavailable) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.parent_reconnects;
      continue;
    }
    return served;
  }
}

void AggregatorNode::CloseChildren(bool send_farewell,
                                   const std::string& reason) {
  ShutdownMsg message;
  message.reason = reason;
  const std::string payload = EncodeShutdown(message);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot == nullptr) continue;
    if (send_farewell) {
      // Best-effort cascade; children also handle a bare close.
      (void)slot->Send(MsgType::kShutdown, payload, kShutdownSendTimeoutMs);
    }
    slot->Close();
    slot.reset();
  }
}

void AggregatorNode::Shutdown(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  // Close before joining: the accept thread may be blocked in Accept with
  // no dial coming, and the close is what wakes it.
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseChildren(/*send_farewell=*/true, reason);
}

void AggregatorNode::Kill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseChildren(/*send_farewell=*/false, "");
}

AggregatorNode::Stats AggregatorNode::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tree
}  // namespace net
}  // namespace digfl
