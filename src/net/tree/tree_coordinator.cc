#include "net/tree/tree_coordinator.h"

#include <chrono>
#include <utility>

#include "net/tree/collect.h"
#include "telemetry/telemetry.h"
#include "tensor/vec.h"

namespace digfl {
namespace net {
namespace tree {

namespace {
constexpr int kShutdownSendTimeoutMs = 1000;
}  // namespace

TreeCoordinator::TreeCoordinator(TreeTopology topology,
                                 const TreeCoordinatorOptions& options)
    : topology_(std::move(topology)), options_(options) {}

Result<std::unique_ptr<TreeCoordinator>> TreeCoordinator::Create(
    TreeTopology topology, const TreeCoordinatorOptions& options) {
  if (options.num_params == 0) {
    return Status::InvalidArgument("num_params must be > 0");
  }
  if (options.round_timeout_ms <= 0 || options.handshake_timeout_ms <= 0) {
    return Status::InvalidArgument("timeouts must be > 0");
  }
  std::unique_ptr<TreeCoordinator> coordinator(
      new TreeCoordinator(std::move(topology), options));
  Transport* transport =
      options.transport != nullptr ? options.transport : TcpTransport();
  if (options.transport == nullptr) {
    DIGFL_RETURN_IF_ERROR(
        EnsureFdCapacity(coordinator->topology_.WidthAt(0) + 64));
  }
  DIGFL_ASSIGN_OR_RETURN(coordinator->listener_,
                         transport->Listen(options.port));
  coordinator->slots_.resize(coordinator->topology_.WidthAt(0));
  coordinator->accept_thread_ =
      std::thread(&TreeCoordinator::AcceptLoop, coordinator.get());
  return coordinator;
}

TreeCoordinator::~TreeCoordinator() { Shutdown("tree coordinator destroyed"); }

void TreeCoordinator::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<std::unique_ptr<Conn>> conn =
        listener_->Accept(options_.accept_poll_ms);
    if (!conn.ok()) continue;  // timeout = stop-flag heartbeat
    HandleConnection(std::move(*conn));
  }
}

void TreeCoordinator::HandleConnection(std::unique_ptr<Conn> conn) {
  auto channel =
      std::make_unique<MsgChannel>(std::move(conn), options_.limits);
  Result<HelloMsg> hello =
      ServerHandshakeBegin(*channel, options_.handshake_timeout_ms);
  if (!hello.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.handshakes_rejected;
    return;
  }

  HelloAckMsg ack;
  ack.next_epoch = next_epoch_hint_.load(std::memory_order_relaxed);
  if (options_.leader_generation > 0) {
    ack.generation = options_.leader_generation;
  }
  const uint64_t id = hello->participant_id;
  if (hello->config_digest != options_.config_digest) {
    ack.message = "federation config digest mismatch";
  } else if (!hello->tree.has_value()) {
    ack.message = "tree root only accepts aggregator hellos";
  } else if (id >= topology_.WidthAt(0)) {
    ack.message = "aggregator index out of range";
  } else {
    const TreeTopology::Range expected =
        topology_.Covered(0, static_cast<size_t>(id));
    const TreeHello& tree = *hello->tree;
    if (tree.level != 0 || tree.child_begin != expected.begin ||
        tree.child_end != expected.end) {
      ack.message = "aggregator range does not match the topology";
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      if (slots_[id] != nullptr) {
        ack.message = "aggregator already connected";
      } else {
        ack.accepted = 1;
      }
    }
  }

  const Status finish =
      ServerHandshakeFinish(*channel, ack, options_.handshake_timeout_ms);
  std::lock_guard<std::mutex> lock(mu_);
  if (ack.accepted == 0 || !finish.ok()) {
    ++stats_.handshakes_rejected;
    return;
  }
  if (slots_[id] != nullptr) {
    ++stats_.handshakes_rejected;
    return;
  }
  slots_[id] = std::move(channel);
  ++stats_.handshakes_accepted;
  slot_cv_.notify_all();
}

size_t TreeCoordinator::num_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& slot : slots_) count += (slot != nullptr);
  return count;
}

Status TreeCoordinator::WaitForAggregators(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool all = slot_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [this] {
        for (const auto& slot : slots_) {
          if (slot == nullptr) return false;
        }
        return true;
      });
  if (all) return Status::OK();
  size_t missing = 0;
  for (const auto& slot : slots_) missing += (slot == nullptr);
  return Status::DeadlineExceeded(std::to_string(missing) +
                                  " aggregators not connected");
}

Result<TreeTrainingResult> TreeCoordinator::RunTreeTraining(
    HflServer& server, const Vec& init_params, const FedSgdConfig& config) {
  DIGFL_TRACE_SPAN("tree.train");
  if (config.epochs == 0) {
    return Status::InvalidArgument("epochs must be > 0");
  }
  if (!(config.learning_rate > 0.0)) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (config.batch_fraction != 1.0) {
    return Status::InvalidArgument(
        "tree runs require batch_fraction == 1 (participant minibatch "
        "streams live in other processes)");
  }
  if (config.fault_plan != nullptr || config.adversary != nullptr) {
    return Status::InvalidArgument(
        "tree runs take faults from the real network, not an injected plan");
  }
  if (config.aggregator != nullptr) {
    return Status::InvalidArgument(
        "the tree is the aggregator; a custom one cannot be plugged in");
  }
  if (config.escalation.enabled || config.checkpoint_hook != nullptr ||
      config.resume != nullptr) {
    return Status::InvalidArgument(
        "escalation/checkpointing are flat-coordinator features");
  }
  if (init_params.size() != options_.num_params) {
    return Status::InvalidArgument(
        "init_params size does not match num_params");
  }

  const size_t n = topology_.num_participants;
  const size_t num_shards = topology_.WidthAt(0);
  const uint64_t p = options_.num_params;

  TreeTrainingResult result;
  result.final_params = init_params;
  result.phi_total.assign(n, 0.0);

  double learning_rate = config.learning_rate;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    DIGFL_TRACE_SPAN("tree.root_round");
    next_epoch_hint_.store(epoch, std::memory_order_relaxed);

    // v_t = ∇L_V(θ_{t-1}) — computed here once and shipped down so the
    // leaves can fold the φ̂ dot products (the same doubles
    // HflPhiAccumulator::Consume would compute from the log).
    DIGFL_ASSIGN_OR_RETURN(Vec validation_gradient,
                           server.ValidationGradient(result.final_params));

    RoundRequestMsg request;
    request.epoch = epoch;
    request.learning_rate = learning_rate;
    request.local_steps = config.local_steps;
    request.params = result.final_params;
    if (options_.leader_generation > 0) {
      request.generation = options_.leader_generation;
    }
    request.tree = TreeRoundRequest{validation_gradient};
    const std::string payload = EncodeRoundRequest(request);

    std::vector<std::unique_ptr<MsgChannel>> channels;
    {
      std::lock_guard<std::mutex> lock(mu_);
      channels.swap(slots_);
      slots_.resize(channels.size());
    }

    CollectOptions collect_options;
    collect_options.epoch = epoch;
    collect_options.round_timeout_ms = options_.round_timeout_ms;
    collect_options.max_retries = options_.max_round_retries;
    collect_options.num_params = p;
    std::vector<std::optional<RoundReplyMsg>> replies;
    CollectStats collect_stats;
    CollectRound(&channels, payload, collect_options, &replies,
                 &collect_stats);

    // Validate the replies and build the global participation mask; a dead
    // or malformed child degrades to its whole shard absent.
    std::vector<uint8_t> present(n, 0);
    std::vector<double> dots(n, 0.0);
    for (size_t j = 0; j < num_shards; ++j) {
      if (!replies[j].has_value()) continue;
      const RoundReplyMsg& reply = *replies[j];
      const TreeTopology::Range expected = topology_.Covered(0, j);
      const bool valid = reply.participant_id == j &&
                         reply.tree.has_value() &&
                         reply.tree->child_begin == expected.begin &&
                         reply.tree->child_end == expected.end &&
                         reply.tree->present.size() == expected.size() &&
                         reply.tree->dots.size() == expected.size();
      if (!valid) {
        if (channels[j] != nullptr) {
          channels[j]->Close();
          channels[j].reset();
        }
        replies[j].reset();
        ++collect_stats.dropouts;
        continue;
      }
      for (size_t k = 0; k < expected.size(); ++k) {
        present[expected.begin + k] = reply.tree->present[k];
        dots[expected.begin + k] = reply.tree->dots[k];
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t j = 0; j < channels.size(); ++j) {
        if (channels[j] == nullptr) continue;
        if (slots_[j] == nullptr) {
          slots_[j] = std::move(channels[j]);
        } else {
          channels[j]->Close();
        }
      }
      stats_.shard_dropouts += collect_stats.dropouts;
      stats_.child_retries += collect_stats.retries;
      stats_.stale_replies += collect_stats.stale_replies;
      stats_.bytes_sent += collect_stats.bytes_sent;
      stats_.bytes_received += collect_stats.bytes_received;
    }

    size_t num_present = 0;
    for (uint8_t flag : present) num_present += (flag != 0);

    // The root's fold: its own zero accumulator, shard partials added in
    // ascending child order, empty shards skipped — then one scale by the
    // uniform weight. Identical doubles to MakeTreeAggregator under
    // UniformAggregation.
    Vec global_gradient = vec::Zeros(p);
    std::vector<double> phi_row(n, 0.0);
    if (num_present > 0) {
      for (size_t j = 0; j < num_shards; ++j) {
        if (!replies[j].has_value()) continue;
        size_t shard_present = 0;
        for (uint8_t flag : replies[j]->tree->present) {
          shard_present += (flag != 0);
        }
        if (shard_present == 0) continue;
        vec::Axpy(1.0, replies[j]->delta, global_gradient);
      }
      const double weight = 1.0 / static_cast<double>(num_present);
      global_gradient = vec::Scaled(weight, global_gradient);
      // The φ̂ row, exactly as HflPhiAccumulator::Consume computes it:
      // dots[i]/m for present i, 0.0 otherwise, totals += row.
      for (size_t i = 0; i < n; ++i) {
        phi_row[i] = present[i] != 0
                         ? dots[i] / static_cast<double>(num_present)
                         : 0.0;
        result.phi_total[i] += phi_row[i];
      }
    }
    // An epoch with nobody present: zero gradient, all-zero φ̂ row, totals
    // untouched — Consume's m == 0 early-out.
    result.phi_per_epoch.push_back(std::move(phi_row));
    result.present.push_back(std::move(present));

    vec::Axpy(-1.0, global_gradient, result.final_params);
    DIGFL_ASSIGN_OR_RETURN(const double loss,
                           server.ValidationLoss(result.final_params));
    result.validation_loss.push_back(loss);
    DIGFL_ASSIGN_OR_RETURN(const double accuracy,
                           server.ValidationAccuracy(result.final_params));
    result.validation_accuracy.push_back(accuracy);
    learning_rate *= config.lr_decay;
    next_epoch_hint_.store(epoch + 1, std::memory_order_relaxed);
  }

  Shutdown("training complete");
  return result;
}

void TreeCoordinator::Shutdown(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  // Close before joining: the accept thread may be blocked in Accept with
  // no dial coming, and the close is what wakes it.
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  ShutdownMsg message;
  message.reason = reason;
  const std::string payload = EncodeShutdown(message);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot == nullptr) continue;
    // Best-effort farewell; each aggregator cascades it to its children.
    (void)slot->Send(MsgType::kShutdown, payload, kShutdownSendTimeoutMs);
    slot->Close();
    slot.reset();
  }
}

TreeCoordinatorStats TreeCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tree
}  // namespace net
}  // namespace digfl
