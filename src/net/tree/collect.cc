#include "net/tree/collect.h"

#include <chrono>
#include <utility>

#include "net/reactor.h"
#include "net/wire.h"
#include "telemetry/telemetry.h"

namespace digfl {
namespace net {
namespace tree {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

// Closes and clears a child's channel, draining its byte accounting.
void DropChild(std::vector<std::unique_ptr<MsgChannel>>* channels, size_t i,
               CollectStats* stats) {
  MsgChannel* channel = (*channels)[i].get();
  if (channel != nullptr) {
    channel->Close();
    stats->bytes_sent += channel->TakeBytesSent();
    stats->bytes_received += channel->TakeBytesReceived();
    (*channels)[i].reset();
  }
  ++stats->dropouts;
  DIGFL_COUNTER_ADD("tree.child_dropouts_total", 1);
}

// Reads frames off `channel` until a RoundReply for `epoch` arrives (stale
// replies from prior rounds are discarded), the deadline expires, or the
// stream errors.
Result<RoundReplyMsg> AwaitReply(MsgChannel& channel,
                                 const CollectOptions& options,
                                 int timeout_ms, CollectStats* stats) {
  // The await budget lives on the channel's clock (steady for TCP, virtual
  // for SimNet), so a loaded host cannot burn a simulated child's budget in
  // real time while the virtual clock stands still. The stale-reply drain
  // loop still consumes budget: each discarded frame costs whatever clock
  // time its recv took.
  const uint64_t deadline =
      channel.NowMs() + static_cast<uint64_t>(timeout_ms > 0 ? timeout_ms : 0);
  for (;;) {
    const uint64_t now = channel.NowMs();
    const int remaining =
        deadline > now ? static_cast<int>(deadline - now) : 0;
    if (remaining <= 0) {
      return Status::DeadlineExceeded("round reply timed out");
    }
    DIGFL_ASSIGN_OR_RETURN(Frame frame, channel.Recv(remaining));
    if (static_cast<MsgType>(frame.type) != MsgType::kRoundReply) {
      return Status::InvalidArgument("unexpected frame type " +
                                     std::to_string(frame.type) +
                                     " while awaiting a round reply");
    }
    DIGFL_ASSIGN_OR_RETURN(RoundReplyMsg reply,
                           DecodeRoundReply(frame.payload));
    if (reply.epoch < options.epoch) {
      // A straggler's upload for a round we already closed; drain and keep
      // waiting for the current epoch's reply.
      ++stats->stale_replies;
      continue;
    }
    if (reply.epoch != options.epoch) {
      return Status::InvalidArgument("round reply from future epoch " +
                                     std::to_string(reply.epoch));
    }
    if (reply.delta.size() != options.num_params) {
      return Status::InvalidArgument(
          "round reply delta size does not match the model");
    }
    return reply;
  }
}

// Blocking one-child-at-a-time path (SimNet, or a transport without native
// fds). Each child gets its own full round budget so one dead child cannot
// starve the ones after it.
void CollectSerial(std::vector<std::unique_ptr<MsgChannel>>* channels,
                   const std::string& request_payload,
                   const CollectOptions& options,
                   std::vector<std::optional<RoundReplyMsg>>* replies,
                   CollectStats* stats) {
  for (size_t i = 0; i < channels->size(); ++i) {
    MsgChannel* channel = (*channels)[i].get();
    if (channel == nullptr || !channel->valid()) continue;
    if (!channel
             ->Send(MsgType::kRoundRequest, request_payload,
                    options.round_timeout_ms)
             .ok()) {
      DropChild(channels, i, stats);
    }
  }
  for (size_t i = 0; i < channels->size(); ++i) {
    MsgChannel* channel = (*channels)[i].get();
    if (channel == nullptr || !channel->valid()) continue;
    size_t attempts = 0;
    for (;;) {
      Result<RoundReplyMsg> reply =
          AwaitReply(*channel, options, options.round_timeout_ms, stats);
      if (reply.ok()) {
        (*replies)[i] = std::move(*reply);
        break;
      }
      if (reply.status().code() == StatusCode::kDeadlineExceeded &&
          attempts < options.max_retries) {
        ++attempts;
        ++stats->retries;
        if (channel
                ->Send(MsgType::kRoundRequest, request_payload,
                       options.round_timeout_ms)
                .ok()) {
          continue;
        }
      }
      DropChild(channels, i, stats);
      break;
    }
  }
}

// Event-driven path over native fds: WriteQueues push the broadcast,
// Reactor readiness drives the reads.
void CollectReactor(Reactor& reactor,
                    std::vector<std::unique_ptr<MsgChannel>>* channels,
                    const std::string& request_payload,
                    const CollectOptions& options,
                    std::vector<std::optional<RoundReplyMsg>>* replies,
                    CollectStats* stats) {
  const size_t n = channels->size();
  std::string framed;
  AppendFrame(&framed, static_cast<uint32_t>(MsgType::kRoundRequest),
              request_payload);

  std::vector<WriteQueue> queues(n);
  std::vector<int> fds(n, -1);
  size_t awaiting = 0;
  for (size_t i = 0; i < n; ++i) {
    MsgChannel* channel = (*channels)[i].get();
    if (channel == nullptr || !channel->valid()) continue;
    const int fd = channel->NativeHandle();
    queues[i].Push(framed);
    if (!reactor.Add(fd, i, ReactorInterest::kReadWrite).ok()) {
      DropChild(channels, i, stats);
      continue;
    }
    // The queue bypasses MsgChannel's send accounting; count here.
    stats->bytes_sent += framed.size();
    fds[i] = fd;
    ++awaiting;
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.round_timeout_ms);
  std::vector<ReactorEvent> events;
  while (awaiting > 0) {
    const int remaining = RemainingMs(deadline);
    if (remaining <= 0) break;
    events.clear();
    Result<size_t> got = reactor.Wait(remaining, &events);
    if (!got.ok() || *got == 0) break;  // reactor error or deadline
    for (const ReactorEvent& event : events) {
      const size_t i = static_cast<size_t>(event.tag);
      MsgChannel* channel = (*channels)[i].get();
      if (channel == nullptr || (*replies)[i].has_value()) continue;
      if (event.error) {
        (void)reactor.Remove(fds[i]);
        DropChild(channels, i, stats);
        --awaiting;
        continue;
      }
      if (event.writable && !queues[i].empty()) {
        Result<bool> drained = queues[i].Flush(fds[i]);
        if (!drained.ok()) {
          (void)reactor.Remove(fds[i]);
          DropChild(channels, i, stats);
          --awaiting;
          continue;
        }
        if (*drained) {
          (void)reactor.Modify(fds[i], i, ReactorInterest::kRead);
        }
      }
      if (event.readable) {
        Result<RoundReplyMsg> reply =
            AwaitReply(*channel, options, RemainingMs(deadline) + 1, stats);
        if (reply.ok()) {
          (*replies)[i] = std::move(*reply);
          (void)reactor.Remove(fds[i]);
          --awaiting;
        } else if (reply.status().code() != StatusCode::kDeadlineExceeded) {
          (void)reactor.Remove(fds[i]);
          DropChild(channels, i, stats);
          --awaiting;
        }
        // A deadline inside AwaitReply (partial frame, budget gone) falls
        // through; the outer loop expires naturally.
      }
    }
  }
  // Whatever never replied inside the budget is a dropout for this epoch.
  for (size_t i = 0; i < n; ++i) {
    if ((*channels)[i] != nullptr && !(*replies)[i].has_value()) {
      (void)reactor.Remove(fds[i]);
      DropChild(channels, i, stats);
    } else if ((*channels)[i] != nullptr) {
      (void)reactor.Remove(fds[i]);
      stats->bytes_sent += (*channels)[i]->TakeBytesSent();
      stats->bytes_received += (*channels)[i]->TakeBytesReceived();
    }
  }
}

}  // namespace

void CollectRound(std::vector<std::unique_ptr<MsgChannel>>* channels,
                  const std::string& request_payload,
                  const CollectOptions& options,
                  std::vector<std::optional<RoundReplyMsg>>* replies,
                  CollectStats* stats) {
  replies->assign(channels->size(), std::nullopt);

  bool all_native = true;
  size_t num_valid = 0;
  for (const auto& channel : *channels) {
    if (channel == nullptr || !channel->valid()) continue;
    ++num_valid;
    if (channel->NativeHandle() < 0) all_native = false;
  }
  if (num_valid == 0) return;

  if (all_native) {
    Result<Reactor> reactor = Reactor::Create(num_valid);
    if (reactor.ok()) {
      CollectReactor(*reactor, channels, request_payload, options, replies,
                     stats);
      return;
    }
    // A reactor that cannot be built (fd pressure) still leaves the
    // blocking path available.
  }
  CollectSerial(channels, request_payload, options, replies, stats);

  // Serial path: drain the surviving channels' byte accounting too.
  for (const auto& channel : *channels) {
    if (channel == nullptr) continue;
    stats->bytes_sent += channel->TakeBytesSent();
    stats->bytes_received += channel->TakeBytesReceived();
  }
}

}  // namespace tree
}  // namespace net
}  // namespace digfl
