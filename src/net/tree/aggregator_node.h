// AggregatorNode: the mid-tier role of the hierarchical aggregation tree
// (DESIGN.md §15). One process per aggregator; child-facing it is a small
// coordinator (listener + accept thread + one channel slot per child),
// parent-facing it is a participant (dial, handshake, serve rounds).
//
// A leaf aggregator's children are the participants with global ids in
// Covered(level, index); an inner aggregator's children are the
// aggregators one level down whose shards tile its own. Per round it:
//
//   1. receives RoundRequest + TREE1 (θ_{t-1}, α_t, and the root's
//      validation gradient v_t) from its parent,
//   2. forwards the request to its children — stripping the TREE1 block on
//      the leaf → participant hop, so participants see the flat wire
//      format bit for bit,
//   3. folds the replies exactly as MakeTreeAggregator's reference
//      arithmetic: its own zero-initialized partial Σ δ, children added in
//      ascending order, absent/empty subtrees skipped; a leaf also folds
//      ⟨v_t, δ_{t,i}⟩ per present child,
//   4. replies upward with the partial sum plus a TREE1 block carrying the
//      covered range, the realized present mask, and the dot products.
//
// A child that misses the round deadline is a dropout for that epoch
// (mask bit 0, nothing folded) and may rejoin through the accept thread at
// the next epoch boundary — the same semantics as the flat coordinator, so
// a whole-subtree failure degrades to a whole-shard dropout at the root.
//
// Leader generations (DESIGN.md §14) propagate down: the generation on the
// parent's RoundRequest is forwarded verbatim, a request from a stale
// generation is refused, and HelloAcks to children carry the highest
// generation seen so the fence reaches the leaves.

#ifndef DIGFL_NET_TREE_AGGREGATOR_NODE_H_
#define DIGFL_NET_TREE_AGGREGATOR_NODE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/backoff.h"
#include "net/channel.h"
#include "net/transport.h"
#include "net/tree/topology.h"
#include "net/wire.h"

namespace digfl {
namespace net {
namespace tree {

struct AggregatorNodeOptions {
  // Byte-stream layer for both the child listener and the parent dial.
  // nullptr = TcpTransport(). Not owned; must outlive the node.
  Transport* transport = nullptr;
  // Child-facing listener port; 0 = ephemeral (read back from port()).
  uint16_t listen_port = 0;
  // Parent endpoint (the root or the aggregator one level up). Under
  // SimNet `parent_host` is this node's own fault-schedule label.
  std::string parent_host = "127.0.0.1";
  uint16_t parent_port = 0;
  size_t level = 0;  // 0 = directly under the root
  size_t index = 0;  // index within the level
  uint64_t num_params = 0;
  uint64_t config_digest = 0;
  int connect_timeout_ms = 2000;
  int handshake_timeout_ms = 5000;
  // One parent Recv poll while idle; expiry just polls again (see
  // max_idle_polls).
  int io_timeout_ms = 30000;
  size_t max_idle_polls = 0;
  size_t max_connect_attempts = 20;
  BackoffPolicy connect_backoff;
  // Budget for one child round trip (per child on the serial path, overall
  // on the reactor path), and resends after a child timeout.
  int round_timeout_ms = 10000;
  size_t max_round_retries = 2;
  // Granularity of the accept loop's stop-flag polling.
  int accept_poll_ms = 100;
  // How long Run() waits for the full child set before dialing the parent.
  // Expiry is not an error — missing children are dropouts — but waiting
  // first means a connected root implies a connected tree on the happy
  // path. 0 = do not wait.
  int child_wait_timeout_ms = 10000;
  uint64_t jitter_seed = 0;
  WireLimits limits;
  // Initial leader generation (0 = HA off); newer generations learned from
  // the parent's requests supersede it and flow into child HelloAcks.
  uint64_t leader_generation = 0;
  // Kill drill: on receiving a RoundRequest for this epoch, die silently
  // (close everything, no farewell) and return kFailedPrecondition — the
  // swarm's "aggregator process dies at epoch k" fate. SIZE_MAX = off.
  size_t halt_epoch = static_cast<size_t>(-1);
};

class AggregatorNode {
 public:
  struct Stats {
    uint64_t rounds_served = 0;
    uint64_t handshakes_accepted = 0;
    uint64_t handshakes_rejected = 0;
    uint64_t child_dropouts = 0;
    uint64_t child_retries = 0;
    uint64_t stale_replies = 0;        // prior-epoch child uploads drained
    uint64_t stale_rounds_rejected = 0;  // parent requests from stale leaders
    uint64_t parent_reconnects = 0;
    uint64_t bytes_sent = 0;      // child-facing + parent-facing
    uint64_t bytes_received = 0;
  };

  // Binds the child-facing listener and starts the accept thread; the
  // parent is not dialed until Run().
  static Result<std::unique_ptr<AggregatorNode>> Create(
      TreeTopology topology, const AggregatorNodeOptions& options);

  ~AggregatorNode();
  AggregatorNode(const AggregatorNode&) = delete;
  AggregatorNode& operator=(const AggregatorNode&) = delete;

  uint16_t port() const { return listener_ != nullptr ? listener_->port() : 0; }
  size_t num_children() const { return num_children_; }
  size_t num_children_connected() const;

  // Blocks until every child slot is connected or the deadline expires
  // (kDeadlineExceeded names the missing count).
  Status WaitForChildren(int timeout_ms);

  // Waits for children (child_wait_timeout_ms), dials the parent, and
  // serves rounds until the parent says Shutdown (OK; the shutdown is
  // cascaded to the children), the parent stays unreachable through a full
  // connect episode, or a protocol error / kill drill (typed non-OK).
  Status Run();

  // Broadcasts Shutdown to the children and closes everything. Idempotent;
  // also invoked by the destructor.
  void Shutdown(const std::string& reason);

  // Dies silently — no farewell to children or parent (kill drills).
  void Kill();

  Stats stats() const;

 private:
  AggregatorNode(TreeTopology topology, const AggregatorNodeOptions& options);

  void AcceptLoop();
  void HandleChild(std::unique_ptr<Conn> conn);
  Result<MsgChannel> ConnectParent();
  Status Serve(MsgChannel& parent);
  // One round: forward to children, collect, fold, reply upward.
  Status ServeRound(MsgChannel& parent, const RoundRequestMsg& request);
  void CloseChildren(bool send_farewell, const std::string& reason);

  const TreeTopology topology_;
  const AggregatorNodeOptions options_;
  TreeTopology::Range covered_;      // global participant range
  TreeTopology::Range child_ids_;    // child index range (participant ids at
                                     // a leaf, child aggregator indices else)
  size_t num_children_ = 0;
  bool leaf_ = false;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_epoch_hint_{0};
  std::atomic<uint64_t> max_seen_generation_{0};

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  // slots_[s] holds the channel of child `child_ids_.begin + s`.
  std::vector<std::unique_ptr<MsgChannel>> slots_;
  Stats stats_;
  bool shut_down_ = false;
};

}  // namespace tree
}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_TREE_AGGREGATOR_NODE_H_
