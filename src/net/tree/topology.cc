#include "net/tree/topology.h"

#include <cstdint>
#include <utility>

#include "tensor/vec.h"

namespace digfl {
namespace net {
namespace tree {

Result<TreeTopology> TreeTopology::Create(size_t num_participants,
                                          std::vector<size_t> level_widths) {
  if (num_participants == 0) {
    return Status::InvalidArgument("tree topology needs participants");
  }
  if (level_widths.empty()) {
    return Status::InvalidArgument(
        "tree topology needs at least one aggregator level");
  }
  for (size_t level = 0; level < level_widths.size(); ++level) {
    if (level_widths[level] == 0) {
      return Status::InvalidArgument("tree level width must be >= 1");
    }
    if (level > 0 && level_widths[level] % level_widths[level - 1] != 0) {
      return Status::InvalidArgument(
          "each tree level width must be a multiple of the level above "
          "(shards must nest exactly)");
    }
  }
  if (level_widths.back() > num_participants) {
    return Status::InvalidArgument(
        "more leaf aggregators than participants");
  }
  TreeTopology topology;
  topology.num_participants = num_participants;
  topology.level_widths = std::move(level_widths);
  return topology;
}

size_t TreeTopology::NumAggregators() const {
  size_t total = 0;
  for (size_t width : level_widths) total += width;
  return total;
}

TreeTopology::Range TreeTopology::Covered(size_t level, size_t index) const {
  const uint64_t n = num_participants;
  const uint64_t width = level_widths[level];
  Range range;
  range.begin = static_cast<size_t>(index * n / width);
  range.end = static_cast<size_t>((index + 1) * n / width);
  return range;
}

TreeTopology::Range TreeTopology::ChildAggregators(size_t level,
                                                   size_t index) const {
  const size_t fan = level_widths[level + 1] / level_widths[level];
  return Range{index * fan, (index + 1) * fan};
}

Result<std::vector<size_t>> ParseLevelWidths(const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty tree width list");
  }
  std::vector<size_t> widths;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (token.empty()) {
      return Status::InvalidArgument("empty entry in tree width list: " +
                                     spec);
    }
    uint64_t value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("tree width is not a number: " + token);
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
      if (value > (1u << 20)) {
        return Status::InvalidArgument("tree width too large: " + token);
      }
    }
    widths.push_back(static_cast<size_t>(value));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return widths;
}

namespace {

class TreeAggregator : public Aggregator {
 public:
  explicit TreeAggregator(TreeTopology topology)
      : topology_(std::move(topology)) {}

  const char* name() const override { return "tree"; }

  Result<Vec> Aggregate(const std::vector<Vec>& deltas,
                        const std::vector<double>& weights,
                        const std::vector<uint8_t>& present) override {
    if (deltas.size() != topology_.num_participants ||
        weights.size() != deltas.size() || present.size() != deltas.size()) {
      return Status::InvalidArgument(
          "tree aggregation arity does not match the topology");
    }
    const size_t dim = deltas.empty() ? 0 : deltas[0].size();
    // The common present weight; w·Σδ is only exactly Σw_iδ_i when every
    // present weight is the same double.
    double common_weight = 0.0;
    bool have_weight = false;
    size_t num_present = 0;
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (present[i] == 0) continue;
      ++num_present;
      if (!have_weight) {
        common_weight = weights[i];
        have_weight = true;
      } else if (weights[i] != common_weight) {
        return Status::InvalidArgument(
            "tree aggregation requires uniform present weights");
      }
    }
    if (num_present == 0) return vec::Zeros(dim);

    // The root's own fold: one zero-initialized accumulator, each level-0
    // aggregator's partial added in ascending child index, empty subtrees
    // skipped — exactly the arithmetic the distributed root performs over
    // the uploads it receives.
    Vec sum = vec::Zeros(dim);
    for (size_t index = 0; index < topology_.WidthAt(0); ++index) {
      if (!AnyPresent(present, topology_.Covered(0, index))) continue;
      const Vec partial = AggregatorSum(deltas, present, dim, 0, index);
      vec::Axpy(1.0, partial, sum);
    }
    return vec::Scaled(common_weight, sum);
  }

 private:
  // The partial sum aggregator (level, index) uploads: its own
  // zero-initialized accumulator, children folded in ascending order (id
  // order at a leaf, child index order at an inner node), subtrees with no
  // present participants skipped. Every aggregator starting from its own
  // zeros — rather than one flat accumulator per level — is what the
  // distributed runtime does, and under floating point the two differ, so
  // the reference must nest the same way.
  Vec AggregatorSum(const std::vector<Vec>& deltas,
                    const std::vector<uint8_t>& present, size_t dim,
                    size_t level, size_t index) const {
    Vec sum = vec::Zeros(dim);
    if (topology_.IsLeafLevel(level)) {
      const TreeTopology::Range covered = topology_.Covered(level, index);
      for (size_t i = covered.begin; i < covered.end; ++i) {
        if (present[i] != 0) vec::Axpy(1.0, deltas[i], sum);
      }
    } else {
      const TreeTopology::Range children =
          topology_.ChildAggregators(level, index);
      for (size_t child = children.begin; child < children.end; ++child) {
        if (!AnyPresent(present, topology_.Covered(level + 1, child))) {
          continue;
        }
        const Vec partial =
            AggregatorSum(deltas, present, dim, level + 1, child);
        vec::Axpy(1.0, partial, sum);
      }
    }
    return sum;
  }

  static bool AnyPresent(const std::vector<uint8_t>& present,
                         TreeTopology::Range range) {
    for (size_t i = range.begin; i < range.end; ++i) {
      if (present[i] != 0) return true;
    }
    return false;
  }

  TreeTopology topology_;
};

}  // namespace

std::unique_ptr<Aggregator> MakeTreeAggregator(TreeTopology topology) {
  return std::make_unique<TreeAggregator>(std::move(topology));
}

}  // namespace tree
}  // namespace net
}  // namespace digfl
