// TreeCoordinator: the root of the hierarchical aggregation tree
// (DESIGN.md §15). Listens for the level-0 aggregators, then drives the
// same epoch arithmetic as the flat Coordinator / in-process RunFedSgd —
// broadcast θ_{t-1} (plus the validation gradient v_t in the TREE1 block),
// collect the per-shard partial sums, fold them in ascending child order,
// θ_t = θ_{t-1} − (1/m_t)·Σ δ — and computes the DIG-FL φ̂ rows on the fly
// from the dot products the leaves fold (Lemma 1/3 additivity): exactly
// HflPhiAccumulator::Consume's doubles, so a tree run's φ̂ is bitwise
// identical to the flat run's on the same realized participation masks.
//
// What the root does NOT do, by design: no quarantine escalation, no
// checkpoint/resume, no standby replication, no custom aggregation policy
// — a tree run is the scale path; those features stay on the flat
// coordinator. Uniform-over-present weighting is structural (the shard
// partials are unweighted sums, scaled once at the root), which is also
// the only weighting whose tree evaluation is exact.

#ifndef DIGFL_NET_TREE_TREE_COORDINATOR_H_
#define DIGFL_NET_TREE_TREE_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "hfl/fed_sgd.h"
#include "hfl/server.h"
#include "net/channel.h"
#include "net/transport.h"
#include "net/tree/topology.h"
#include "net/wire.h"

namespace digfl {
namespace net {
namespace tree {

struct TreeCoordinatorOptions {
  // nullptr = TcpTransport(). Not owned; must outlive the coordinator.
  Transport* transport = nullptr;
  uint16_t port = 0;  // 0 = ephemeral; read back from port()
  uint64_t num_params = 0;
  uint64_t config_digest = 0;
  int handshake_timeout_ms = 5000;
  // Budget for one child round trip (per child on the serial path, overall
  // on the reactor path).
  int round_timeout_ms = 10000;
  size_t max_round_retries = 2;
  int accept_poll_ms = 100;
  WireLimits limits;
  // Leader generation stamped on every request (0 = HA off); propagates
  // down the levels to the participants.
  uint64_t leader_generation = 0;
};

struct TreeCoordinatorStats {
  uint64_t handshakes_accepted = 0;
  uint64_t handshakes_rejected = 0;
  uint64_t shard_dropouts = 0;  // child subtrees absent for an epoch
  uint64_t child_retries = 0;
  uint64_t stale_replies = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

// Everything a tree run produces. `phi_total` / `phi_per_epoch` follow
// HflPhiAccumulator's contract exactly: per-epoch rows are 0.0 for absent
// participants, an epoch with nobody present contributes an all-zero row
// and leaves the totals untouched.
struct TreeTrainingResult {
  Vec final_params;
  std::vector<double> validation_loss;
  std::vector<double> validation_accuracy;
  // Realized participation mask per epoch (one flag per participant); a
  // dead subtree shows up as its whole shard absent.
  std::vector<std::vector<uint8_t>> present;
  std::vector<double> phi_total;
  std::vector<std::vector<double>> phi_per_epoch;
};

class TreeCoordinator {
 public:
  // Binds the listener and starts the accept thread for the level-0
  // aggregators.
  static Result<std::unique_ptr<TreeCoordinator>> Create(
      TreeTopology topology, const TreeCoordinatorOptions& options);

  ~TreeCoordinator();
  TreeCoordinator(const TreeCoordinator&) = delete;
  TreeCoordinator& operator=(const TreeCoordinator&) = delete;

  uint16_t port() const { return listener_ != nullptr ? listener_->port() : 0; }
  const TreeTopology& topology() const { return topology_; }

  size_t num_connected() const;
  // Blocks until every level-0 aggregator is connected (kDeadlineExceeded
  // names the missing count). Aggregators dial upward only after their own
  // children connected, so on the happy path this implies the whole tree.
  Status WaitForAggregators(int timeout_ms);

  // Runs federated training over the tree. Accepts the FedSgdConfig subset
  // a tree run supports and rejects the rest with kInvalidArgument:
  // batch_fraction must be 1, and fault_plan / adversary / aggregator /
  // escalation / checkpoint_hook / resume must be unset.
  Result<TreeTrainingResult> RunTreeTraining(HflServer& server,
                                             const Vec& init_params,
                                             const FedSgdConfig& config);

  // Broadcasts Shutdown to the level-0 aggregators (each cascades it down)
  // and closes everything. Idempotent; also invoked by the destructor.
  void Shutdown(const std::string& reason);

  TreeCoordinatorStats stats() const;

 private:
  TreeCoordinator(TreeTopology topology,
                  const TreeCoordinatorOptions& options);

  void AcceptLoop();
  void HandleConnection(std::unique_ptr<Conn> conn);

  const TreeTopology topology_;
  const TreeCoordinatorOptions options_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_epoch_hint_{0};

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  // slots_[j] holds level-0 aggregator j's channel.
  std::vector<std::unique_ptr<MsgChannel>> slots_;
  TreeCoordinatorStats stats_;
  bool shut_down_ = false;
};

}  // namespace tree
}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_TREE_TREE_COORDINATOR_H_
