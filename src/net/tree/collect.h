// Round fan-out/fan-in shared by the tree root and the aggregator nodes
// (DESIGN.md §15): broadcast one encoded RoundRequest to every connected
// child channel and collect their RoundReplies within the round deadline.
//
// Two execution paths behind one contract:
//
//   reactor — when every child channel exposes a native fd (real sockets),
//     the broadcast is pushed through per-connection WriteQueues and the
//     replies are drained by readiness events from an epoll/poll Reactor
//     (net/reactor.h). One thread handles thousands of children; a slow
//     child never blocks a fast one, and because the broadcast itself is
//     queued per connection, epoch t+1's downstream bytes interleave with
//     epoch t stragglers' upstream bytes instead of waiting behind them.
//
//   serial — when any channel lacks a native fd (SimNet), children are
//     served one at a time with blocking Send/Recv and a per-child budget.
//     Deterministic by construction; this is the path the simulator swarm
//     exercises. Only this path retries on a round-trip timeout (the
//     reactor path treats deadline expiry as a dropout).
//
// Replies tagged with an older epoch are discarded and the channel keeps
// being read — that is how a straggler's late upload from the previous
// round drains without poisoning the current one. A child that fails
// (connection error, malformed frame, exhausted deadline) has its channel
// closed and reset to nullptr; the caller treats the slot as a dropout and
// the accept thread may refill it at the next epoch boundary.

#ifndef DIGFL_NET_TREE_COLLECT_H_
#define DIGFL_NET_TREE_COLLECT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/channel.h"

namespace digfl {
namespace net {
namespace tree {

struct CollectOptions {
  uint64_t epoch = 0;
  // Overall reactor-path deadline, and the per-child round-trip budget on
  // the serial path.
  int round_timeout_ms = 10000;
  // Serial path only: resends after a kDeadlineExceeded round trip.
  size_t max_retries = 0;
  // Expected delta length; replies with a different size are protocol
  // errors and drop the child.
  uint64_t num_params = 0;
};

struct CollectStats {
  uint64_t dropouts = 0;       // children that failed or timed out
  uint64_t retries = 0;        // serial-path resends after a timeout
  uint64_t stale_replies = 0;  // prior-epoch replies discarded
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

// Runs one round over `channels`. On return `replies` has one entry per
// slot: the decoded reply, or nullopt for a slot that was empty or whose
// child dropped (its channel is closed and reset). Counters accumulate
// into `stats`. Never fails as a whole — child failures are dropouts, not
// errors.
void CollectRound(std::vector<std::unique_ptr<MsgChannel>>* channels,
                  const std::string& request_payload,
                  const CollectOptions& options,
                  std::vector<std::optional<RoundReplyMsg>>* replies,
                  CollectStats* stats);

}  // namespace tree
}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_TREE_COLLECT_H_
