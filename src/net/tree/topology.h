// Hierarchical aggregation topology (DESIGN.md §15).
//
// A tree run partitions the flat participant index space [0, n) into
// contiguous shards, one per leaf aggregator, with inner aggregator levels
// regrouping whole shards. Lemma 1/3 additivity makes the per-epoch DIG-FL
// sums Σ δ_{t,i} (and the per-participant dot products ⟨v_t, δ_{t,i}⟩)
// exactly decomposable along any such partition — no approximation — so the
// only thing standing between a tree run and bitwise φ̂-equality with a flat
// run is floating-point summation *order*. TreeTopology pins that order:
//
//   leaf j   sums its present children's δ in ascending participant id;
//   inner k  sums its children's partial sums in ascending child index,
//            skipping subtrees with zero present participants (they send
//            nothing, and x + 0.0 is not an identity for x = -0.0);
//   root     scales the final sum once by the common present weight.
//
// MakeTreeAggregator packages exactly that order as an hfl::Aggregator, so
// the in-process RunFedSgd and the flat Coordinator can run *tree
// arithmetic* without any sockets — that is the reference every distributed
// tree run is bitwise-tested against.
//
// Widths are listed root-down and each level's width must be a multiple of
// the one above; with the shard formula [j·n/K, (j+1)·n/K) this guarantees
// every child range nests exactly inside its parent's.

#ifndef DIGFL_NET_TREE_TOPOLOGY_H_
#define DIGFL_NET_TREE_TOPOLOGY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hfl/aggregator.h"

namespace digfl {
namespace net {
namespace tree {

struct TreeTopology {
  size_t num_participants = 0;
  // Aggregators per level, root-down: {4} is a 2-level tree (root + 4 leaf
  // aggregators), {5, 25} is 3-level (root + 5 inner + 25 leaves).
  std::vector<size_t> level_widths;

  // Validates the shape: at least one level, every width >= 1, each width a
  // multiple of the level above, and the leaf width <= num_participants so
  // every leaf owns at least one participant.
  static Result<TreeTopology> Create(size_t num_participants,
                                     std::vector<size_t> level_widths);

  size_t num_levels() const { return level_widths.size(); }
  bool IsLeafLevel(size_t level) const {
    return level + 1 == level_widths.size();
  }
  size_t WidthAt(size_t level) const { return level_widths[level]; }
  // Total aggregator count across all levels.
  size_t NumAggregators() const;

  struct Range {
    size_t begin = 0;
    size_t end = 0;
    size_t size() const { return end - begin; }
  };

  // Global participant range [begin, end) covered by aggregator `index` at
  // `level` (0 = directly under the root).
  Range Covered(size_t level, size_t index) const;

  // Child aggregator indices at level+1 feeding aggregator (level, index).
  // Only valid for non-leaf levels.
  Range ChildAggregators(size_t level, size_t index) const;
};

// Parses the --tree flag grammar: comma-separated widths root-down, e.g.
// "4" or "5,25". Typed kInvalidArgument on junk, zeros, or empty input.
Result<std::vector<size_t>> ParseLevelWidths(const std::string& spec);

// The tree-order aggregation rule (see the file comment). Requires the
// present entries of `weights` to share one bitwise-identical value (true
// for UniformAggregation's 1/m); anything else is kInvalidArgument because
// w·Σδ only equals Σw_iδ_i exactly when the weights are uniform.
std::unique_ptr<Aggregator> MakeTreeAggregator(TreeTopology topology);

}  // namespace tree
}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_TREE_TOPOLOGY_H_
