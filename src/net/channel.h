// MsgChannel: framed, CRC-checked message exchange over one TcpConn,
// plus the DIGFLNET1 connection handshake.
//
// The channel is the single place where bytes actually cross the wire, so
// it is also where the *real* traffic accounting lives: bytes_sent /
// bytes_received count every preamble and frame byte (header + payload +
// CRC), and the coordinator drains them into the training log's CommMeter
// per round — the paper's communication metric, measured instead of
// simulated.
//
// Threading: a channel is owned by one thread at a time (the coordinator
// hands a channel from its accept thread to a round worker under a mutex);
// it is not internally synchronized.

#ifndef DIGFL_NET_CHANNEL_H_
#define DIGFL_NET_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "net/messages.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"

namespace digfl {
namespace net {

class MsgChannel {
 public:
  MsgChannel() = default;
  explicit MsgChannel(std::unique_ptr<Conn> conn, WireLimits limits = {})
      : conn_(std::move(conn)), decoder_(limits), limits_(limits) {}
  // Convenience for the real-socket paths and tests.
  explicit MsgChannel(TcpConn conn, WireLimits limits = {})
      : MsgChannel(WrapTcpConn(std::move(conn)), limits) {}

  bool valid() const { return conn_ != nullptr && conn_->valid(); }
  void Close() {
    if (conn_ != nullptr) conn_->Close();
  }

  // Native fd of the underlying byte stream, -1 when the transport has none
  // (SimNet). The reactor seam (net/reactor.h): callers that see -1 must
  // fall back to blocking Send/Recv.
  int NativeHandle() const {
    return conn_ != nullptr ? conn_->NativeHandle() : -1;
  }

  // Monotonic milliseconds on the underlying connection's clock
  // (Conn::NowMs): steady for TCP, virtual for SimNet. Budget loops above
  // the channel (handshakes, round collection) must split multi-recv
  // deadlines with this so a simulated step never inherits a real-time
  // shortfall from host scheduling delays.
  uint64_t NowMs() const { return conn_ != nullptr ? conn_->NowMs() : 0; }

  // Sends one framed message within the deadline.
  Status Send(MsgType type, std::string_view payload, int timeout_ms);

  // Receives the next complete frame. kDeadlineExceeded on timeout,
  // kUnavailable when the peer is gone, kInvalidArgument on a malformed
  // stream (the channel is then poisoned and must be closed).
  Result<Frame> Recv(int timeout_ms);

  // Raw byte exchange for the pre-frame preamble; counted like frames.
  Status SendRaw(std::string_view bytes, int timeout_ms);
  Status RecvRaw(char* buf, size_t len, int timeout_ms);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  // Returns and zeroes a direction's byte count (the coordinator transfers
  // per-round deltas into the log's CommMeter).
  uint64_t TakeBytesSent();
  uint64_t TakeBytesReceived();

 private:
  std::unique_ptr<Conn> conn_;
  FrameDecoder decoder_;
  WireLimits limits_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

// Client (participant) side: preamble exchange, Hello up, HelloAck down.
// A rejected handshake surfaces as kFailedPrecondition carrying the
// coordinator's reject reason.
Result<HelloAckMsg> ClientHandshake(MsgChannel& channel,
                                    const HelloMsg& hello, int timeout_ms);

// Server (coordinator) side, split so the caller can validate the Hello
// before deciding the verdict: Begin exchanges preambles and returns the
// peer's Hello; Finish sends the verdict.
Result<HelloMsg> ServerHandshakeBegin(MsgChannel& channel, int timeout_ms);
Status ServerHandshakeFinish(MsgChannel& channel, const HelloAckMsg& ack,
                             int timeout_ms);

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_CHANNEL_H_
