#include "net/participant_node.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/rng.h"
#include "telemetry/telemetry.h"

namespace digfl {
namespace net {

Result<MsgChannel> ParticipantNode::ConnectAndHandshake() {
  DIGFL_TRACE_SPAN("net.connect");
  const uint64_t seed = options_.jitter_seed != 0
                            ? options_.jitter_seed
                            : 0xc0ffee ^ (options_.participant_id + 1);
  Rng jitter(seed);
  Transport* transport = options_.transport != nullptr ? options_.transport
                                                       : TcpTransport();
  // Round-robin over the failover list; a single implicit endpoint when no
  // list was given (the pre-HA behavior, including fatal rejections).
  std::vector<ParticipantEndpoint> endpoints = options_.endpoints;
  if (endpoints.empty()) {
    endpoints.push_back(ParticipantEndpoint{options_.host, options_.port});
  }
  Status last = Status::Unavailable("no connect attempt made");
  for (size_t attempt = 0; attempt < options_.max_connect_attempts;
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          BackoffDelayMs(options_.connect_backoff, attempt - 1, jitter)));
    }
    const size_t endpoint_index = attempt % endpoints.size();
    const ParticipantEndpoint& endpoint = endpoints[endpoint_index];
    Result<std::unique_ptr<Conn>> conn = transport->Connect(
        endpoint.host, endpoint.port, options_.connect_timeout_ms);
    if (!conn.ok()) {
      last = conn.status();
      continue;
    }
    MsgChannel channel(std::move(*conn), options_.limits);
    HelloMsg hello;
    hello.participant_id = options_.participant_id;
    hello.num_params = model_.NumParams();
    hello.config_digest = options_.config_digest;
    if (max_seen_generation_ > 0) hello.generation = max_seen_generation_;
    if (telemetry::ObservabilityEnabled()) {
      hello.obs_clock_seconds = telemetry::ObsNow();
    }
    Result<HelloAckMsg> ack =
        ClientHandshake(channel, hello, options_.handshake_timeout_ms);
    if (!ack.ok()) {
      // With a single endpoint a rejection (kFailedPrecondition) is a
      // configuration error and will not heal by retrying. With a failover
      // list it may just be the wrong coordinator for this moment (a fenced
      // ex-primary, a standby that has not promoted), so keep rotating.
      if (ack.status().code() == StatusCode::kFailedPrecondition &&
          endpoints.size() <= 1) {
        return ack.status();
      }
      last = ack.status();
      continue;
    }
    const uint64_t ack_generation = ack->generation.value_or(0);
    if (max_seen_generation_ > 0 && ack_generation < max_seen_generation_) {
      // A stale leader (or one that stopped carrying a generation at all):
      // refuse to serve it — fencing is only as strong as the participants'
      // memory of the highest generation they accepted.
      ++stats_.stale_leaders_rejected;
      DIGFL_COUNTER_ADD("net.stale_leaders_rejected_total", 1);
      channel.Close();
      last = Status::FailedPrecondition(
          "coordinator at " + endpoint.host + ":" +
          std::to_string(endpoint.port) + " leads generation " +
          std::to_string(ack_generation) + " below highest accepted " +
          std::to_string(max_seen_generation_));
      continue;
    }
    if (ack_generation > max_seen_generation_) {
      max_seen_generation_ = ack_generation;
    }
    // Adopt the announced compression (absent block = lossless). A change —
    // e.g. a failover to a coordinator configured differently — invalidates
    // the error-feedback residual and the retry cache.
    const compress::Mode ack_mode =
        ack->quant.has_value() ? ack->quant->mode : compress::Mode::kLossless;
    const uint32_t ack_block =
        ack->quant.has_value() ? ack->quant->block_size : compress::kQuantBlock;
    if (ack_mode != quant_mode_ || ack_block != quant_block_) {
      quant_mode_ = ack_mode;
      quant_block_ = ack_block;
      has_cached_quant_ = false;
      quant_ef_ =
          quant_mode_ == compress::Mode::kLossless
              ? nullptr
              : std::make_unique<compress::ErrorFeedback>(quant_mode_,
                                                          quant_block_);
    }
    if (ever_connected_ && endpoint_index != last_endpoint_) {
      ++stats_.failovers;
      DIGFL_COUNTER_ADD("net.failovers_total", 1);
    }
    ever_connected_ = true;
    last_endpoint_ = endpoint_index;
    return channel;
  }
  return last;
}

Status ParticipantNode::Serve(MsgChannel& channel) {
  size_t idle_polls = 0;
  for (;;) {
    Result<Frame> frame = channel.Recv(options_.io_timeout_ms);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        ++idle_polls;
        if (options_.max_idle_polls != 0 &&
            idle_polls >= options_.max_idle_polls) {
          return Status::DeadlineExceeded(
              "coordinator silent through max_idle_polls");
        }
        continue;
      }
      return frame.status();
    }
    idle_polls = 0;

    switch (static_cast<MsgType>(frame->type)) {
      case MsgType::kRoundRequest: {
        DIGFL_TRACE_SPAN("net.serve_round");
        // p0 of the NTP sample: the instant the request was received.
        const bool obs = telemetry::ObservabilityEnabled();
        const double p0 = obs ? telemetry::ObsNow() : 0.0;
        DIGFL_ASSIGN_OR_RETURN(RoundRequestMsg request,
                               DecodeRoundRequest(frame->payload));
        const uint64_t request_generation = request.generation.value_or(0);
        if (max_seen_generation_ > 0 &&
            request_generation < max_seen_generation_) {
          // A round from a leader below the highest accepted generation:
          // never compute for it. kUnavailable sends Run() back through
          // the failover list toward the real leader.
          ++stats_.stale_rounds_rejected;
          DIGFL_COUNTER_ADD("net.stale_rounds_rejected_total", 1);
          return Status::Unavailable(
              "round request from stale leader generation " +
              std::to_string(request_generation) + " (highest accepted " +
              std::to_string(max_seen_generation_) + ")");
        }
        if (request_generation > max_seen_generation_) {
          max_seen_generation_ = request_generation;
        }
        if (request.params.size() != model_.NumParams()) {
          return Status::InvalidArgument(
              "round request parameter size does not match the local model");
        }
        if (obs) {
          node_telemetry_.OnRequest(
              request.trace.value_or(telemetry::TraceContext{}), p0);
        }
        RoundReplyMsg reply;
        reply.epoch = request.epoch;
        reply.participant_id = options_.participant_id;
        const double compute_start = obs ? telemetry::ObsNow() : 0.0;
        DIGFL_ASSIGN_OR_RETURN(
            reply.delta,
            participant_.ComputeLocalUpdate(model_, request.params,
                                            request.learning_rate,
                                            request.local_steps));
        if (obs) {
          const double compute_seconds =
              telemetry::ObsNow() - compute_start;
          node_telemetry_.RecordSpan("participant.compute", compute_start,
                                     compute_seconds);
          node_telemetry_.Observe(
              "node.compute_seconds", compute_seconds,
              {0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0});
        }
        if (options_.adversary != nullptr &&
            options_.adversary->IsAttacker(options_.participant_id)) {
          // Byzantine behavior: upload the attacked update, remember the
          // honest one (free-rider replay resubmits it next round).
          Rng attack_rng = options_.adversary->AttackRng(
              request.epoch, options_.participant_id);
          Vec honest = reply.delta;
          reply.delta = ApplyAttack(
              reply.delta, options_.adversary->SpecFor(options_.participant_id),
              attack_rng, &last_honest_);
          last_honest_ = std::move(honest);
        }
        if (quant_ef_ != nullptr) {
          // Quantize the upload (the coordinator announced a lossy mode at
          // handshake). A resent request for the same epoch reuses the
          // cached quantized update — re-encoding would fold the residual
          // twice and break the error-feedback telescoping.
          if (has_cached_quant_ && cached_quant_epoch_ == request.epoch) {
            reply.quantized = cached_quant_;
          } else {
            DIGFL_ASSIGN_OR_RETURN(compress::QuantizedVec q,
                                   quant_ef_->Encode(reply.delta));
            cached_quant_ = q;
            cached_quant_epoch_ = request.epoch;
            has_cached_quant_ = true;
            reply.quantized = std::move(q);
          }
          reply.delta.clear();
        }
        if (obs) {
          node_telemetry_.AddCounter("node.rounds_served_total", 1);
          // p1 of the NTP sample: as close to the send as possible, and
          // also the end of this round's participant-side span.
          const double p1 = telemetry::ObsNow();
          node_telemetry_.RecordSpan("participant.round", p0, p1 - p0);
          reply.telemetry =
              node_telemetry_.TakeDelta(options_.participant_id, p1);
        }
        DIGFL_RETURN_IF_ERROR(channel.Send(MsgType::kRoundReply,
                                           EncodeRoundReply(reply),
                                           options_.io_timeout_ms));
        ++stats_.rounds_served;
        DIGFL_COUNTER_ADD("net.rounds_served_total", 1);
        // Kill point for the fault harness: "participant dies after
        // serving round k" — the reply is already on the wire, so the
        // coordinator sees this round complete and the *next* round drop.
        MaybeCrash("net.round.served");
        break;
      }
      case MsgType::kHvpRequest: {
        DIGFL_TRACE_SPAN("net.serve_hvp");
        DIGFL_ASSIGN_OR_RETURN(HvpRequestMsg request,
                               DecodeHvpRequest(frame->payload));
        if (request.params.size() != model_.NumParams()) {
          return Status::InvalidArgument(
              "hvp request parameter size does not match the local model");
        }
        HvpReplyMsg reply;
        reply.request_id = request.request_id;
        reply.participant_id = options_.participant_id;
        const bool obs = telemetry::ObservabilityEnabled();
        const double hvp_start = obs ? telemetry::ObsNow() : 0.0;
        DIGFL_ASSIGN_OR_RETURN(
            reply.hvp,
            participant_.ComputeLocalHvp(model_, request.params, request.v));
        if (obs) {
          // HVP replies carry no delta block; the span and counter ride
          // along with the next round's shipment.
          node_telemetry_.RecordSpan("participant.hvp", hvp_start,
                                     telemetry::ObsNow() - hvp_start);
          node_telemetry_.AddCounter("node.hvps_served_total", 1);
        }
        DIGFL_RETURN_IF_ERROR(channel.Send(MsgType::kHvpReply,
                                           EncodeHvpReply(reply),
                                           options_.io_timeout_ms));
        ++stats_.hvps_served;
        break;
      }
      case MsgType::kShutdown:
        return Status::OK();
      default:
        return Status::InvalidArgument("unexpected frame type " +
                                       std::to_string(frame->type));
    }
  }
}

Status ParticipantNode::Run() {
  DIGFL_TRACE_SPAN("net.participant_run");
  for (;;) {
    Result<MsgChannel> channel = ConnectAndHandshake();
    if (!channel.ok()) return channel.status();
    Status served = Serve(*channel);
    stats_.bytes_sent += channel->TakeBytesSent();
    stats_.bytes_received += channel->TakeBytesReceived();
    if (served.ok()) return Status::OK();
    if (served.code() == StatusCode::kUnavailable ||
        (served.code() == StatusCode::kDeadlineExceeded &&
         options_.endpoints.size() > 1)) {
      // The coordinator vanished mid-stream (restart, crash-resume, or a
      // round it abandoned); dial again and rejoin at the next epoch. With
      // a failover list, a coordinator silent through max_idle_polls gets
      // the same treatment — a partitioned primary dies quietly, and the
      // promoted standby is one rotation away.
      ++stats_.reconnects;
      DIGFL_COUNTER_ADD("net.reconnects_total", 1);
      continue;
    }
    return served;
  }
}

}  // namespace net
}  // namespace digfl
