#include "net/messages.h"

#include <cmath>
#include <cstring>

#include "ckpt/frame.h"
#include "compress/quantize.h"

namespace digfl {
namespace net {
namespace {

using ckpt::ByteSink;
using ckpt::ByteSource;

// Every payload must be fully consumed; leftover bytes mean the sender and
// receiver disagree about the schema, which is never ignorable.
Status RequireExhausted(const ByteSource& source, const char* what) {
  if (!source.Exhausted()) {
    return Status::InvalidArgument(std::string("trailing bytes in ") + what +
                                   " payload");
  }
  return Status::OK();
}

// NaN/Inf never appear in honest traffic, so a non-finite vector is either
// corruption that survived the CRC or a hostile peer; reject it at the
// trust boundary instead of letting it reach the aggregation path.
Status RequireFinite(const std::vector<double>& values, const char* what) {
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(std::string("non-finite value in ") +
                                     what);
    }
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Optional observability blocks (DESIGN.md §13).
//
// An optional block is a u32 magic tag followed by its fields, appended
// after a message's mandatory fields. Absent blocks add zero bytes, so a
// sender with telemetry off produces payloads bitwise identical to the
// pre-observability format; a decoder that finds leftover bytes which do
// not start with the expected magic still rejects them as trailing junk.

constexpr uint32_t kClockBlockMagic = 0x314b4c43u;      // "CLK1" (LE)
constexpr uint32_t kRunBlockMagic = 0x314e5552u;        // "RUN1"
constexpr uint32_t kTraceBlockMagic = 0x31435254u;      // "TRC1"
constexpr uint32_t kTelemetryBlockMagic = 0x3153424fu;  // "OBS1"
constexpr uint32_t kGenerationBlockMagic = 0x314e4547u; // "GEN1"
constexpr uint32_t kTreeBlockMagic = 0x31455254u;       // "TRE1"
constexpr uint32_t kQuantBlockMagic = 0x31544e51u;      // "QNT1"

// Hostile-peer bound for a QNT1 block's value count — the same generous
// ceiling the primitive codec puts on any length-prefixed sequence.
constexpr uint64_t kMaxQuantValues = 1ull << 32;

// Hostile-peer bounds for the shipped telemetry delta: a delta covers one
// epoch of one participant, so honest traffic is far below these.
constexpr uint64_t kMaxDeltaSpans = 4096;
constexpr uint64_t kMaxDeltaMetrics = 1024;
constexpr uint64_t kMaxMetricLabels = 32;
constexpr uint64_t kMaxHistogramBuckets = 256;
constexpr uint64_t kMaxTelemetryName = 4096;

// Hostile-peer bounds for TREE1 blocks: a subtree covers at most this many
// participants and the tree is at most this deep. Both sit far above any
// deployable topology while keeping a forged range from driving a huge
// allocation.
constexpr uint64_t kMaxTreeSpan = 1u << 20;
constexpr uint32_t kMaxTreeLevel = 16;

// Shared range validation for TreeHello / TreeRoundReply.
Status RequireTreeRange(uint64_t begin, uint64_t end, const char* what) {
  if (end <= begin) {
    return Status::InvalidArgument(std::string(what) +
                                   " covers an empty participant range");
  }
  if (end - begin > kMaxTreeSpan) {
    return Status::InvalidArgument(std::string(what) +
                                   " participant range is implausibly large");
  }
  return Status::OK();
}

// Reads the next trailing-block magic, or 0 at clean end-of-payload (no
// block magic is 0 — every tag spells four ASCII characters). Lets a
// decoder dispatch across several optional blocks in their fixed order.
Result<uint32_t> NextBlockMagic(ByteSource* source) {
  if (source->Exhausted()) return static_cast<uint32_t>(0);
  uint32_t magic = 0;
  DIGFL_RETURN_IF_ERROR(source->GetU32(&magic));
  return magic;
}

// Body of a GEN1 block (magic already consumed). Generation 0 is reserved
// for "HA off" and is never put on the wire; decoding it means rollback or
// corruption, both fatal.
Result<uint64_t> GetGeneration(ByteSource* source, const char* what) {
  uint64_t generation = 0;
  DIGFL_RETURN_IF_ERROR(source->GetU64(&generation));
  if (generation == 0) {
    return Status::InvalidArgument(std::string(what) +
                                   " carries reserved leader generation 0");
  }
  return generation;
}

Status RequireFiniteScalar(double value, const char* what) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(std::string("non-finite value in ") + what);
  }
  return Status::OK();
}

Result<std::string> GetBoundedString(ByteSource* source, const char* what) {
  std::string out;
  DIGFL_RETURN_IF_ERROR(source->GetString(&out));
  if (out.size() > kMaxTelemetryName) {
    return Status::InvalidArgument(std::string("oversized string in ") + what);
  }
  return out;
}

void EncodeMetricDelta(const telemetry::MetricDelta& metric, ByteSink* sink) {
  sink->PutString(metric.name);
  sink->PutU32(static_cast<uint32_t>(metric.kind));
  sink->PutU32(static_cast<uint32_t>(metric.labels.size()));
  for (const telemetry::Label& label : metric.labels) {
    sink->PutString(label.key);
    sink->PutString(label.value);
  }
  if (metric.kind == telemetry::MetricKind::kHistogram) {
    sink->PutDoubles(metric.bounds);
    sink->PutU32(static_cast<uint32_t>(metric.bucket_deltas.size()));
    for (uint64_t count : metric.bucket_deltas) sink->PutU64(count);
    sink->PutDouble(metric.sum_delta);
    sink->PutDouble(metric.max_value);
    sink->PutU64(metric.count_delta);
  } else {
    sink->PutU64(metric.counter_delta);
  }
}

Result<telemetry::MetricDelta> DecodeMetricDelta(ByteSource* source) {
  telemetry::MetricDelta metric;
  DIGFL_ASSIGN_OR_RETURN(metric.name,
                         GetBoundedString(source, "telemetry metric name"));
  uint32_t kind = 0;
  DIGFL_RETURN_IF_ERROR(source->GetU32(&kind));
  if (kind != static_cast<uint32_t>(telemetry::MetricKind::kCounter) &&
      kind != static_cast<uint32_t>(telemetry::MetricKind::kHistogram)) {
    return Status::InvalidArgument("telemetry metric kind out of range");
  }
  metric.kind = static_cast<telemetry::MetricKind>(kind);
  uint32_t num_labels = 0;
  DIGFL_RETURN_IF_ERROR(source->GetU32(&num_labels));
  if (num_labels > kMaxMetricLabels) {
    return Status::InvalidArgument("telemetry metric has too many labels");
  }
  metric.labels.reserve(num_labels);
  for (uint32_t i = 0; i < num_labels; ++i) {
    telemetry::Label label;
    DIGFL_ASSIGN_OR_RETURN(label.key,
                           GetBoundedString(source, "telemetry label key"));
    DIGFL_ASSIGN_OR_RETURN(label.value,
                           GetBoundedString(source, "telemetry label value"));
    metric.labels.push_back(std::move(label));
  }
  if (metric.kind == telemetry::MetricKind::kHistogram) {
    DIGFL_RETURN_IF_ERROR(source->GetDoubles(&metric.bounds));
    DIGFL_RETURN_IF_ERROR(
        RequireFinite(metric.bounds, "telemetry histogram bounds"));
    uint32_t num_buckets = 0;
    DIGFL_RETURN_IF_ERROR(source->GetU32(&num_buckets));
    if (num_buckets > kMaxHistogramBuckets ||
        num_buckets != metric.bounds.size() + 1) {
      return Status::InvalidArgument(
          "telemetry histogram bucket count mismatch");
    }
    metric.bucket_deltas.resize(num_buckets);
    for (uint32_t b = 0; b < num_buckets; ++b) {
      DIGFL_RETURN_IF_ERROR(source->GetU64(&metric.bucket_deltas[b]));
    }
    DIGFL_RETURN_IF_ERROR(source->GetDouble(&metric.sum_delta));
    DIGFL_RETURN_IF_ERROR(source->GetDouble(&metric.max_value));
    DIGFL_RETURN_IF_ERROR(source->GetU64(&metric.count_delta));
    DIGFL_RETURN_IF_ERROR(
        RequireFiniteScalar(metric.sum_delta, "telemetry histogram sum"));
    DIGFL_RETURN_IF_ERROR(
        RequireFiniteScalar(metric.max_value, "telemetry histogram max"));
  } else {
    DIGFL_RETURN_IF_ERROR(source->GetU64(&metric.counter_delta));
  }
  return metric;
}

void EncodeTelemetryDelta(const telemetry::TelemetryDelta& delta,
                          ByteSink* sink) {
  sink->PutU32(kTelemetryBlockMagic);
  sink->PutU64(delta.participant_id);
  sink->PutU64(delta.round);
  sink->PutDouble(delta.request_recv_seconds);
  sink->PutDouble(delta.reply_send_seconds);
  sink->PutU32(static_cast<uint32_t>(delta.spans.size()));
  for (const telemetry::RemoteSpan& span : delta.spans) {
    sink->PutString(span.name);
    sink->PutU64(span.round);
    sink->PutU64(span.parent_span_id);
    sink->PutDouble(span.start_seconds);
    sink->PutDouble(span.duration_seconds);
  }
  sink->PutU32(static_cast<uint32_t>(delta.metrics.size()));
  for (const telemetry::MetricDelta& metric : delta.metrics) {
    EncodeMetricDelta(metric, sink);
  }
}

Result<telemetry::TelemetryDelta> DecodeTelemetryDelta(ByteSource* source) {
  telemetry::TelemetryDelta delta;
  DIGFL_RETURN_IF_ERROR(source->GetU64(&delta.participant_id));
  DIGFL_RETURN_IF_ERROR(source->GetU64(&delta.round));
  DIGFL_RETURN_IF_ERROR(source->GetDouble(&delta.request_recv_seconds));
  DIGFL_RETURN_IF_ERROR(source->GetDouble(&delta.reply_send_seconds));
  DIGFL_RETURN_IF_ERROR(RequireFiniteScalar(delta.request_recv_seconds,
                                            "telemetry delta p0"));
  DIGFL_RETURN_IF_ERROR(
      RequireFiniteScalar(delta.reply_send_seconds, "telemetry delta p1"));
  uint32_t num_spans = 0;
  DIGFL_RETURN_IF_ERROR(source->GetU32(&num_spans));
  if (num_spans > kMaxDeltaSpans) {
    return Status::InvalidArgument("telemetry delta has too many spans");
  }
  delta.spans.reserve(num_spans);
  for (uint32_t i = 0; i < num_spans; ++i) {
    telemetry::RemoteSpan span;
    DIGFL_ASSIGN_OR_RETURN(span.name,
                           GetBoundedString(source, "telemetry span name"));
    DIGFL_RETURN_IF_ERROR(source->GetU64(&span.round));
    DIGFL_RETURN_IF_ERROR(source->GetU64(&span.parent_span_id));
    DIGFL_RETURN_IF_ERROR(source->GetDouble(&span.start_seconds));
    DIGFL_RETURN_IF_ERROR(source->GetDouble(&span.duration_seconds));
    DIGFL_RETURN_IF_ERROR(
        RequireFiniteScalar(span.start_seconds, "telemetry span start"));
    DIGFL_RETURN_IF_ERROR(
        RequireFiniteScalar(span.duration_seconds, "telemetry span duration"));
    delta.spans.push_back(std::move(span));
  }
  uint32_t num_metrics = 0;
  DIGFL_RETURN_IF_ERROR(source->GetU32(&num_metrics));
  if (num_metrics > kMaxDeltaMetrics) {
    return Status::InvalidArgument("telemetry delta has too many metrics");
  }
  delta.metrics.reserve(num_metrics);
  for (uint32_t i = 0; i < num_metrics; ++i) {
    DIGFL_ASSIGN_OR_RETURN(telemetry::MetricDelta metric,
                           DecodeMetricDelta(source));
    delta.metrics.push_back(std::move(metric));
  }
  return delta;
}

}  // namespace

const char* MsgTypeToString(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "Hello";
    case MsgType::kHelloAck:
      return "HelloAck";
    case MsgType::kRoundRequest:
      return "RoundRequest";
    case MsgType::kRoundReply:
      return "RoundReply";
    case MsgType::kHvpRequest:
      return "HvpRequest";
    case MsgType::kHvpReply:
      return "HvpReply";
    case MsgType::kShutdown:
      return "Shutdown";
    case MsgType::kEpochLogAppend:
      return "EpochLogAppend";
    case MsgType::kEpochLogAck:
      return "EpochLogAck";
  }
  return "Unknown";
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.participant_id);
  sink.PutU64(msg.num_params);
  sink.PutU64(msg.config_digest);
  if (msg.generation.has_value()) {
    sink.PutU32(kGenerationBlockMagic);
    sink.PutU64(*msg.generation);
  }
  if (msg.tree.has_value()) {
    sink.PutU32(kTreeBlockMagic);
    sink.PutU32(msg.tree->level);
    sink.PutU64(msg.tree->child_begin);
    sink.PutU64(msg.tree->child_end);
  }
  if (msg.obs_clock_seconds.has_value()) {
    sink.PutU32(kClockBlockMagic);
    sink.PutDouble(*msg.obs_clock_seconds);
  }
  return out;
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  ByteSource source(payload);
  HelloMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.participant_id));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.num_params));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.config_digest));
  DIGFL_ASSIGN_OR_RETURN(uint32_t magic, NextBlockMagic(&source));
  if (magic == kGenerationBlockMagic) {
    DIGFL_ASSIGN_OR_RETURN(uint64_t generation,
                           GetGeneration(&source, "Hello"));
    msg.generation = generation;
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kTreeBlockMagic) {
    TreeHello tree;
    DIGFL_RETURN_IF_ERROR(source.GetU32(&tree.level));
    DIGFL_RETURN_IF_ERROR(source.GetU64(&tree.child_begin));
    DIGFL_RETURN_IF_ERROR(source.GetU64(&tree.child_end));
    if (tree.level > kMaxTreeLevel) {
      return Status::InvalidArgument("Hello tree level out of range");
    }
    DIGFL_RETURN_IF_ERROR(
        RequireTreeRange(tree.child_begin, tree.child_end, "Hello tree"));
    msg.tree = tree;
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kClockBlockMagic) {
    double seconds = 0.0;
    DIGFL_RETURN_IF_ERROR(source.GetDouble(&seconds));
    DIGFL_RETURN_IF_ERROR(RequireFiniteScalar(seconds, "Hello clock"));
    msg.obs_clock_seconds = seconds;
  } else if (magic != 0) {
    return Status::InvalidArgument(
        "unrecognized trailing bytes in Hello payload");
  }
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "Hello"));
  return msg;
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU32(msg.accepted);
  sink.PutU64(msg.next_epoch);
  sink.PutString(msg.message);
  if (msg.generation.has_value()) {
    sink.PutU32(kGenerationBlockMagic);
    sink.PutU64(*msg.generation);
  }
  if (msg.quant.has_value()) {
    sink.PutU32(kQuantBlockMagic);
    sink.PutU32(static_cast<uint32_t>(msg.quant->mode));
    sink.PutU32(msg.quant->block_size);
  }
  if (msg.obs.has_value()) {
    sink.PutU32(kRunBlockMagic);
    sink.PutU64(msg.obs->run_id);
    sink.PutDouble(msg.obs->coordinator_seconds);
  }
  return out;
}

Result<HelloAckMsg> DecodeHelloAck(std::string_view payload) {
  ByteSource source(payload);
  HelloAckMsg msg;
  uint32_t accepted = 0;
  DIGFL_RETURN_IF_ERROR(source.GetU32(&accepted));
  if (accepted > 1) {
    return Status::InvalidArgument("HelloAck accepted flag out of range");
  }
  msg.accepted = static_cast<uint8_t>(accepted);
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.next_epoch));
  DIGFL_RETURN_IF_ERROR(source.GetString(&msg.message));
  DIGFL_ASSIGN_OR_RETURN(uint32_t magic, NextBlockMagic(&source));
  if (magic == kGenerationBlockMagic) {
    DIGFL_ASSIGN_OR_RETURN(uint64_t generation,
                           GetGeneration(&source, "HelloAck"));
    msg.generation = generation;
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kQuantBlockMagic) {
    HelloAckQuant quant;
    uint32_t mode = 0;
    DIGFL_RETURN_IF_ERROR(source.GetU32(&mode));
    if (mode > static_cast<uint32_t>(compress::Mode::kQ4)) {
      return Status::InvalidArgument(
          "HelloAck announces an unknown compression mode");
    }
    // Lossless is the absent-block default; spelling it out would give the
    // same federation two distinct handshake encodings.
    if (mode == static_cast<uint32_t>(compress::Mode::kLossless)) {
      return Status::InvalidArgument(
          "HelloAck announces lossless compression explicitly");
    }
    quant.mode = static_cast<compress::Mode>(mode);
    DIGFL_RETURN_IF_ERROR(source.GetU32(&quant.block_size));
    if (quant.block_size == 0 || quant.block_size % 8 != 0 ||
        quant.block_size > 65536) {
      return Status::InvalidArgument(
          "HelloAck announces a bad quantizer block size");
    }
    msg.quant = quant;
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kRunBlockMagic) {
    HelloAckObs obs;
    DIGFL_RETURN_IF_ERROR(source.GetU64(&obs.run_id));
    DIGFL_RETURN_IF_ERROR(source.GetDouble(&obs.coordinator_seconds));
    DIGFL_RETURN_IF_ERROR(
        RequireFiniteScalar(obs.coordinator_seconds, "HelloAck clock"));
    msg.obs = obs;
  } else if (magic != 0) {
    return Status::InvalidArgument(
        "unrecognized trailing bytes in HelloAck payload");
  }
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "HelloAck"));
  return msg;
}

std::string EncodeRoundRequest(const RoundRequestMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.epoch);
  sink.PutDouble(msg.learning_rate);
  sink.PutU64(msg.local_steps);
  sink.PutDoubles(msg.params);
  if (msg.generation.has_value()) {
    sink.PutU32(kGenerationBlockMagic);
    sink.PutU64(*msg.generation);
  }
  if (msg.tree.has_value()) {
    sink.PutU32(kTreeBlockMagic);
    sink.PutDoubles(msg.tree->validation_gradient);
  }
  if (msg.trace.has_value()) {
    sink.PutU32(kTraceBlockMagic);
    sink.PutU64(msg.trace->run_id);
    sink.PutU64(msg.trace->round);
    sink.PutU64(msg.trace->parent_span_id);
  }
  return out;
}

Result<RoundRequestMsg> DecodeRoundRequest(std::string_view payload) {
  ByteSource source(payload);
  RoundRequestMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.epoch));
  DIGFL_RETURN_IF_ERROR(source.GetDouble(&msg.learning_rate));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.local_steps));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.params));
  DIGFL_ASSIGN_OR_RETURN(uint32_t magic, NextBlockMagic(&source));
  if (magic == kGenerationBlockMagic) {
    DIGFL_ASSIGN_OR_RETURN(uint64_t generation,
                           GetGeneration(&source, "RoundRequest"));
    msg.generation = generation;
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kTreeBlockMagic) {
    TreeRoundRequest tree;
    DIGFL_RETURN_IF_ERROR(source.GetDoubles(&tree.validation_gradient));
    if (tree.validation_gradient.empty()) {
      return Status::InvalidArgument(
          "RoundRequest tree block has empty validation gradient");
    }
    DIGFL_RETURN_IF_ERROR(RequireFinite(tree.validation_gradient,
                                        "RoundRequest validation gradient"));
    msg.tree = std::move(tree);
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kTraceBlockMagic) {
    telemetry::TraceContext trace;
    DIGFL_RETURN_IF_ERROR(source.GetU64(&trace.run_id));
    DIGFL_RETURN_IF_ERROR(source.GetU64(&trace.round));
    DIGFL_RETURN_IF_ERROR(source.GetU64(&trace.parent_span_id));
    msg.trace = trace;
  } else if (magic != 0) {
    return Status::InvalidArgument(
        "unrecognized trailing bytes in RoundRequest payload");
  }
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "RoundRequest"));
  if (!std::isfinite(msg.learning_rate) || msg.learning_rate <= 0.0) {
    return Status::InvalidArgument("RoundRequest learning rate not positive");
  }
  if (msg.local_steps == 0) {
    return Status::InvalidArgument("RoundRequest local_steps == 0");
  }
  if (msg.params.empty()) {
    return Status::InvalidArgument("RoundRequest has empty parameters");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.params, "RoundRequest params"));
  return msg;
}

std::string EncodeRoundReply(const RoundReplyMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.epoch);
  sink.PutU64(msg.participant_id);
  if (msg.quantized.has_value()) {
    // Quantized upload: the mandatory delta field encodes empty and the
    // update travels in the QNT1 block (first in the trailing-block order).
    sink.PutDoubles(Vec{});
    sink.PutU32(kQuantBlockMagic);
    compress::EncodeQuantized(*msg.quantized, &sink);
  } else {
    sink.PutDoubles(msg.delta);
  }
  if (msg.tree.has_value()) {
    sink.PutU32(kTreeBlockMagic);
    sink.PutU64(msg.tree->child_begin);
    sink.PutU64(msg.tree->child_end);
    sink.PutBytes(msg.tree->present);
    sink.PutDoubles(msg.tree->dots);
  }
  if (msg.telemetry.has_value()) {
    EncodeTelemetryDelta(*msg.telemetry, &sink);
  }
  return out;
}

Result<RoundReplyMsg> DecodeRoundReply(std::string_view payload) {
  ByteSource source(payload);
  RoundReplyMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.epoch));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.participant_id));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.delta));
  DIGFL_ASSIGN_OR_RETURN(uint32_t magic, NextBlockMagic(&source));
  if (magic == kQuantBlockMagic) {
    if (!msg.delta.empty()) {
      return Status::InvalidArgument(
          "RoundReply carries both raw and quantized delta");
    }
    DIGFL_ASSIGN_OR_RETURN(compress::QuantizedVec quantized,
                           compress::DecodeQuantized(&source, kMaxQuantValues));
    // Receivers always see a dense delta; the wire form is kept alongside
    // for byte metering and diagnostics.
    msg.delta = compress::Dequantize(quantized);
    msg.quantized = std::move(quantized);
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kTreeBlockMagic) {
    TreeRoundReply tree;
    DIGFL_RETURN_IF_ERROR(source.GetU64(&tree.child_begin));
    DIGFL_RETURN_IF_ERROR(source.GetU64(&tree.child_end));
    DIGFL_RETURN_IF_ERROR(
        RequireTreeRange(tree.child_begin, tree.child_end, "RoundReply tree"));
    DIGFL_RETURN_IF_ERROR(source.GetBytes(&tree.present));
    DIGFL_RETURN_IF_ERROR(source.GetDoubles(&tree.dots));
    const uint64_t span = tree.child_end - tree.child_begin;
    if (tree.present.size() != span || tree.dots.size() != span) {
      return Status::InvalidArgument(
          "RoundReply tree mask/dots do not match the covered range");
    }
    for (uint8_t flag : tree.present) {
      if (flag > 1) {
        return Status::InvalidArgument(
            "RoundReply tree present flag out of range");
      }
    }
    DIGFL_RETURN_IF_ERROR(RequireFinite(tree.dots, "RoundReply tree dots"));
    msg.tree = std::move(tree);
    DIGFL_ASSIGN_OR_RETURN(magic, NextBlockMagic(&source));
  }
  if (magic == kTelemetryBlockMagic) {
    DIGFL_ASSIGN_OR_RETURN(telemetry::TelemetryDelta delta,
                           DecodeTelemetryDelta(&source));
    msg.telemetry = std::move(delta);
  } else if (magic != 0) {
    return Status::InvalidArgument(
        "unrecognized trailing bytes in RoundReply payload");
  }
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "RoundReply"));
  if (msg.delta.empty()) {
    return Status::InvalidArgument("RoundReply has empty delta");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.delta, "RoundReply delta"));
  return msg;
}

std::string EncodeHvpRequest(const HvpRequestMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.request_id);
  sink.PutDoubles(msg.params);
  sink.PutDoubles(msg.v);
  return out;
}

Result<HvpRequestMsg> DecodeHvpRequest(std::string_view payload) {
  ByteSource source(payload);
  HvpRequestMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.request_id));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.params));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.v));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "HvpRequest"));
  if (msg.params.size() != msg.v.size()) {
    return Status::InvalidArgument("HvpRequest params/v size mismatch");
  }
  if (msg.params.empty()) {
    return Status::InvalidArgument("HvpRequest has empty parameters");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.params, "HvpRequest params"));
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.v, "HvpRequest v"));
  return msg;
}

std::string EncodeHvpReply(const HvpReplyMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.request_id);
  sink.PutU64(msg.participant_id);
  sink.PutDoubles(msg.hvp);
  return out;
}

Result<HvpReplyMsg> DecodeHvpReply(std::string_view payload) {
  ByteSource source(payload);
  HvpReplyMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.request_id));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.participant_id));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.hvp));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "HvpReply"));
  if (msg.hvp.empty()) {
    return Status::InvalidArgument("HvpReply has empty vector");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.hvp, "HvpReply hvp"));
  return msg;
}

std::string EncodeShutdown(const ShutdownMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutString(msg.reason);
  return out;
}

Result<ShutdownMsg> DecodeShutdown(std::string_view payload) {
  ByteSource source(payload);
  ShutdownMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetString(&msg.reason));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "Shutdown"));
  return msg;
}

uint64_t FederationConfigDigest(uint64_t num_params, uint64_t epochs,
                                double learning_rate, double lr_decay,
                                uint64_t local_steps, uint64_t seed) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&hash](uint64_t value) {
    for (size_t byte = 0; byte < sizeof(value); ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 0x100000001b3ull;  // FNV prime
    }
  };
  uint64_t lr_bits = 0;
  uint64_t decay_bits = 0;
  std::memcpy(&lr_bits, &learning_rate, sizeof(lr_bits));
  std::memcpy(&decay_bits, &lr_decay, sizeof(decay_bits));
  mix(num_params);
  mix(epochs);
  mix(lr_bits);
  mix(decay_bits);
  mix(local_steps);
  mix(seed);
  return hash;
}

}  // namespace net
}  // namespace digfl
