#include "net/messages.h"

#include <cmath>
#include <cstring>

#include "ckpt/frame.h"

namespace digfl {
namespace net {
namespace {

using ckpt::ByteSink;
using ckpt::ByteSource;

// Every payload must be fully consumed; leftover bytes mean the sender and
// receiver disagree about the schema, which is never ignorable.
Status RequireExhausted(const ByteSource& source, const char* what) {
  if (!source.Exhausted()) {
    return Status::InvalidArgument(std::string("trailing bytes in ") + what +
                                   " payload");
  }
  return Status::OK();
}

// NaN/Inf never appear in honest traffic, so a non-finite vector is either
// corruption that survived the CRC or a hostile peer; reject it at the
// trust boundary instead of letting it reach the aggregation path.
Status RequireFinite(const std::vector<double>& values, const char* what) {
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(std::string("non-finite value in ") +
                                     what);
    }
  }
  return Status::OK();
}

}  // namespace

const char* MsgTypeToString(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "Hello";
    case MsgType::kHelloAck:
      return "HelloAck";
    case MsgType::kRoundRequest:
      return "RoundRequest";
    case MsgType::kRoundReply:
      return "RoundReply";
    case MsgType::kHvpRequest:
      return "HvpRequest";
    case MsgType::kHvpReply:
      return "HvpReply";
    case MsgType::kShutdown:
      return "Shutdown";
  }
  return "Unknown";
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.participant_id);
  sink.PutU64(msg.num_params);
  sink.PutU64(msg.config_digest);
  return out;
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  ByteSource source(payload);
  HelloMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.participant_id));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.num_params));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.config_digest));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "Hello"));
  return msg;
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU32(msg.accepted);
  sink.PutU64(msg.next_epoch);
  sink.PutString(msg.message);
  return out;
}

Result<HelloAckMsg> DecodeHelloAck(std::string_view payload) {
  ByteSource source(payload);
  HelloAckMsg msg;
  uint32_t accepted = 0;
  DIGFL_RETURN_IF_ERROR(source.GetU32(&accepted));
  if (accepted > 1) {
    return Status::InvalidArgument("HelloAck accepted flag out of range");
  }
  msg.accepted = static_cast<uint8_t>(accepted);
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.next_epoch));
  DIGFL_RETURN_IF_ERROR(source.GetString(&msg.message));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "HelloAck"));
  return msg;
}

std::string EncodeRoundRequest(const RoundRequestMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.epoch);
  sink.PutDouble(msg.learning_rate);
  sink.PutU64(msg.local_steps);
  sink.PutDoubles(msg.params);
  return out;
}

Result<RoundRequestMsg> DecodeRoundRequest(std::string_view payload) {
  ByteSource source(payload);
  RoundRequestMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.epoch));
  DIGFL_RETURN_IF_ERROR(source.GetDouble(&msg.learning_rate));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.local_steps));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.params));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "RoundRequest"));
  if (!std::isfinite(msg.learning_rate) || msg.learning_rate <= 0.0) {
    return Status::InvalidArgument("RoundRequest learning rate not positive");
  }
  if (msg.local_steps == 0) {
    return Status::InvalidArgument("RoundRequest local_steps == 0");
  }
  if (msg.params.empty()) {
    return Status::InvalidArgument("RoundRequest has empty parameters");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.params, "RoundRequest params"));
  return msg;
}

std::string EncodeRoundReply(const RoundReplyMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.epoch);
  sink.PutU64(msg.participant_id);
  sink.PutDoubles(msg.delta);
  return out;
}

Result<RoundReplyMsg> DecodeRoundReply(std::string_view payload) {
  ByteSource source(payload);
  RoundReplyMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.epoch));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.participant_id));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.delta));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "RoundReply"));
  if (msg.delta.empty()) {
    return Status::InvalidArgument("RoundReply has empty delta");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.delta, "RoundReply delta"));
  return msg;
}

std::string EncodeHvpRequest(const HvpRequestMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.request_id);
  sink.PutDoubles(msg.params);
  sink.PutDoubles(msg.v);
  return out;
}

Result<HvpRequestMsg> DecodeHvpRequest(std::string_view payload) {
  ByteSource source(payload);
  HvpRequestMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.request_id));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.params));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.v));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "HvpRequest"));
  if (msg.params.size() != msg.v.size()) {
    return Status::InvalidArgument("HvpRequest params/v size mismatch");
  }
  if (msg.params.empty()) {
    return Status::InvalidArgument("HvpRequest has empty parameters");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.params, "HvpRequest params"));
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.v, "HvpRequest v"));
  return msg;
}

std::string EncodeHvpReply(const HvpReplyMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.request_id);
  sink.PutU64(msg.participant_id);
  sink.PutDoubles(msg.hvp);
  return out;
}

Result<HvpReplyMsg> DecodeHvpReply(std::string_view payload) {
  ByteSource source(payload);
  HvpReplyMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.request_id));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.participant_id));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.hvp));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "HvpReply"));
  if (msg.hvp.empty()) {
    return Status::InvalidArgument("HvpReply has empty vector");
  }
  DIGFL_RETURN_IF_ERROR(RequireFinite(msg.hvp, "HvpReply hvp"));
  return msg;
}

std::string EncodeShutdown(const ShutdownMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutString(msg.reason);
  return out;
}

Result<ShutdownMsg> DecodeShutdown(std::string_view payload) {
  ByteSource source(payload);
  ShutdownMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetString(&msg.reason));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "Shutdown"));
  return msg;
}

uint64_t FederationConfigDigest(uint64_t num_params, uint64_t epochs,
                                double learning_rate, double lr_decay,
                                uint64_t local_steps, uint64_t seed) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&hash](uint64_t value) {
    for (size_t byte = 0; byte < sizeof(value); ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 0x100000001b3ull;  // FNV prime
    }
  };
  uint64_t lr_bits = 0;
  uint64_t decay_bits = 0;
  std::memcpy(&lr_bits, &learning_rate, sizeof(lr_bits));
  std::memcpy(&decay_bits, &lr_decay, sizeof(decay_bits));
  mix(num_params);
  mix(epochs);
  mix(lr_bits);
  mix(decay_bits);
  mix(local_steps);
  mix(seed);
  return hash;
}

}  // namespace net
}  // namespace digfl
