// Coordinator: the server role of the distributed HFL runtime.
//
// Owns the listening socket, an accept/handshake thread, and one channel
// slot per participant id. RunFederatedTraining drives the exact epoch
// structure of RunFedSgd (hfl/fed_sgd.h) over those channels: broadcast
// θ_{t-1}, collect δ_{t,i} with per-round deadlines and bounded
// retry/backoff, then quarantine-gate, aggregate, update, validate — the
// same operations in the same order on the same doubles, so a fault-free
// distributed run's log and φ̂ are bitwise identical to the in-process run.
//
// Failure semantics (DESIGN.md §10): a round timeout is retried up to
// max_round_retries times with exponential backoff + seeded jitter; a
// connection error (or exhausted retries) marks the participant absent for
// the epoch — exactly the dropout path of the fault-tolerance layer, so the
// masked φ̂ estimators and quarantine bookkeeping keep working unchanged. A
// participant may reconnect through the accept thread and rejoin at the
// next epoch boundary.
//
// Threading model: the accept thread fills `slots_` under `mu_`; each epoch
// the training loop moves every connected channel out of its slot, hands it
// to a dedicated round worker thread (a channel is owned by one thread at a
// time), joins all workers, and returns the surviving channels. Workers
// write only to their own index of the per-round result arrays; all byte
// accounting is drained into the log's CommMeter by the training thread
// after the join (CommMeter is not thread-safe).

#ifndef DIGFL_NET_COORDINATOR_H_
#define DIGFL_NET_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/hfl_resume.h"
#include "common/result.h"
#include "hfl/fed_sgd.h"
#include "hfl/server.h"
#include "net/backoff.h"
#include "net/channel.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "telemetry/federation.h"

namespace digfl {
namespace net {

struct CoordinatorOptions {
  // Byte-stream layer to listen on. nullptr = TcpTransport(). Not owned;
  // must outlive the coordinator (the simulator passes its SimNet here).
  Transport* transport = nullptr;
  uint16_t port = 0;  // 0 = ephemeral; read the choice back from port()
  size_t num_participants = 0;
  // Rejects Hellos whose digest differs (see FederationConfigDigest).
  uint64_t config_digest = 0;
  int handshake_timeout_ms = 5000;
  // Deadline for one send+recv round trip with one participant; a timeout
  // triggers a retry, retries_exhausted/connection loss triggers a dropout.
  int round_timeout_ms = 10000;
  size_t max_round_retries = 2;
  BackoffPolicy retry_backoff;
  uint64_t jitter_seed = 0x9e77;
  // Granularity of the accept loop's stop-flag polling.
  int accept_poll_ms = 100;
  WireLimits limits;
};

// Per-run connectivity statistics (telemetry counters mirror these).
struct CoordinatorStats {
  uint64_t handshakes_accepted = 0;
  uint64_t handshakes_rejected = 0;
  uint64_t reconnects = 0;       // accepted handshakes refilling a used slot
  uint64_t round_retries = 0;    // round-trip resends after a timeout
  uint64_t round_timeouts = 0;   // participants dropped for the epoch by
                                 // exhausted retries
  uint64_t conn_errors = 0;      // connections dropped mid-round
};

class Coordinator {
 public:
  // Binds the listener (loopback) and starts the accept thread.
  static Result<std::unique_ptr<Coordinator>> Create(
      const CoordinatorOptions& options);

  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  uint16_t port() const { return listener_ != nullptr ? listener_->port() : 0; }
  size_t num_participants() const { return options_.num_participants; }

  // Blocks until every participant slot is connected (or the deadline
  // expires — kDeadlineExceeded names the missing count).
  Status WaitForParticipants(int timeout_ms);

  size_t num_connected() const;
  CoordinatorStats stats() const;

  // Runs the federated training loop over the connected participants.
  // Mirrors RunFedSgd's contract, with two distributed-only restrictions:
  // batch_fraction must be 1 (participant minibatch streams live in other
  // processes and cannot be checkpointed here) and fault_plan must be null
  // (faults are real in this runtime, not injected).
  // config.resume/checkpoint_hook work exactly as in-process.
  Result<HflTrainingLog> RunFederatedTraining(HflServer& server,
                                              const Vec& init_params,
                                              const FedSgdConfig& config,
                                              AggregationPolicy* policy =
                                                  nullptr);

  // Algorithm #1 support: one Hessian-vector product RPC against a
  // connected participant. Serialized (no concurrent rounds); a failure
  // closes that participant's channel.
  Result<Vec> RequestHvp(size_t participant, const Vec& params, const Vec& v,
                         int timeout_ms);

  // Broadcasts Shutdown to every connected participant and closes the
  // channels. Idempotent; also invoked by the destructor.
  void Shutdown(const std::string& reason);

  // Federation-wide observability snapshot (DESIGN.md §13): the merger's
  // round spans, round trips, clock models, and everything participants
  // shipped, plus this process's local RunReport under `run_id`. Valid any
  // time; meaningful after RunFederatedTraining with telemetry enabled.
  telemetry::FederationReport CollectFederationReport(
      std::string run_id) const;

 private:
  explicit Coordinator(const CoordinatorOptions& options)
      : options_(options),
        merger_(options.config_digest, options.num_participants) {}

  void AcceptLoop();
  // Validates a Hello and, if acceptable, parks the channel in its slot.
  void HandleConnection(std::unique_ptr<Conn> conn);

  // One worker: round-trips one RoundRequest with retries. Writes only to
  // index `i` of the output arrays; closes the channel on failure.
  void RoundWorker(size_t i, MsgChannel* channel, uint64_t epoch,
                   const std::string& request_payload, size_t num_params,
                   std::vector<Vec>* deltas, std::vector<uint8_t>* present,
                   std::vector<uint64_t>* retries);

  CoordinatorOptions options_;
  // Thread-safe; round workers absorb shipped deltas concurrently.
  telemetry::FederationMerger merger_;
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  // Where the federation currently stands; reported to (re)connecting nodes.
  std::atomic<uint64_t> next_epoch_hint_{0};
  std::atomic<uint64_t> hvp_seq_{1};

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  // slots_[i] == nullptr: participant i not currently connected.
  std::vector<std::unique_ptr<MsgChannel>> slots_;
  std::vector<uint8_t> slot_ever_connected_;
  CoordinatorStats stats_;
  bool shut_down_ = false;
};

// Options for a crash-safe distributed run (superset pattern of
// ckpt::RunFedSgdWithCheckpoints): train through `coordinator`, checkpoint
// through a ckpt::CheckpointStore at `options.dir`, warm-start when
// options.resume is set. A killed coordinator process relaunched with the
// same store resumes at the last committed epoch boundary and produces
// bitwise-identical final parameters, log, and φ̂ to an uninterrupted run.
Result<ckpt::HflCheckpointedRun> RunDistributedFedSgdWithCheckpoints(
    Coordinator& coordinator, HflServer& server, const Vec& init_params,
    FedSgdConfig config, const ckpt::CheckpointRunOptions& options,
    AggregationPolicy* policy = nullptr);

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_COORDINATOR_H_
