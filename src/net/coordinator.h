// Coordinator: the server role of the distributed HFL runtime.
//
// Owns the listening socket, an accept/handshake thread, and one channel
// slot per participant id. RunFederatedTraining drives the exact epoch
// structure of RunFedSgd (hfl/fed_sgd.h) over those channels: broadcast
// θ_{t-1}, collect δ_{t,i} with per-round deadlines and bounded
// retry/backoff, then quarantine-gate, aggregate, update, validate — the
// same operations in the same order on the same doubles, so a fault-free
// distributed run's log and φ̂ are bitwise identical to the in-process run.
//
// Failure semantics (DESIGN.md §10): a round timeout is retried up to
// max_round_retries times with exponential backoff + seeded jitter; a
// connection error (or exhausted retries) marks the participant absent for
// the epoch — exactly the dropout path of the fault-tolerance layer, so the
// masked φ̂ estimators and quarantine bookkeeping keep working unchanged. A
// participant may reconnect through the accept thread and rejoin at the
// next epoch boundary.
//
// Threading model: the accept thread fills `slots_` under `mu_`; each epoch
// the training loop moves every connected channel out of its slot, hands it
// to a dedicated round worker thread (a channel is owned by one thread at a
// time), joins all workers, and returns the surviving channels. Workers
// write only to their own index of the per-round result arrays; all byte
// accounting is drained into the log's CommMeter by the training thread
// after the join (CommMeter is not thread-safe).

#ifndef DIGFL_NET_COORDINATOR_H_
#define DIGFL_NET_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/hfl_resume.h"
#include "common/result.h"
#include "compress/quantize.h"
#include "hfl/fed_sgd.h"
#include "hfl/server.h"
#include "net/backoff.h"
#include "net/channel.h"
#include "net/epoch_log.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "telemetry/federation.h"

namespace digfl {
namespace net {

// Deterministic kill points for the HA failover swarm (DESIGN.md §14): the
// training loop returns kFailedPrecondition at the named site of the named
// epoch, after which the harness Kill()s the coordinator — the sim-world
// equivalent of the primary process dying there.
enum class HaltSite {
  kNone = 0,
  kBeforeBroadcast,   // channels taken, θ_{t-1} never sent
  kAfterCollect,      // δ collected, aggregation never runs
  kAfterCheckpoint,   // checkpoint committed, replication record never sent
  kEpochEnd,          // everything committed and replicated for the epoch
};

struct HaltPlan {
  HaltSite site = HaltSite::kNone;
  size_t epoch = 0;  // epoch index the halt fires in
};

struct CoordinatorOptions {
  // Byte-stream layer to listen on. nullptr = TcpTransport(). Not owned;
  // must outlive the coordinator (the simulator passes its SimNet here).
  Transport* transport = nullptr;
  uint16_t port = 0;  // 0 = ephemeral; read the choice back from port()
  size_t num_participants = 0;
  // Rejects Hellos whose digest differs (see FederationConfigDigest).
  uint64_t config_digest = 0;
  int handshake_timeout_ms = 5000;
  // Deadline for one send+recv round trip with one participant; a timeout
  // triggers a retry, retries_exhausted/connection loss triggers a dropout.
  int round_timeout_ms = 10000;
  size_t max_round_retries = 2;
  BackoffPolicy retry_backoff;
  uint64_t jitter_seed = 0x9e77;
  // Granularity of the accept loop's stop-flag polling.
  int accept_poll_ms = 100;
  WireLimits limits;

  // Update compression (DESIGN.md §16). kLossless = no QNT1 blocks anywhere
  // — handshake and round bytes are bit for bit the uncompressed format. A
  // lossy mode is announced to every participant on its accepting HelloAck;
  // replies must then carry QNT1 uploads in exactly that mode.
  compress::Mode compress = compress::Mode::kLossless;

  // --- High availability (DESIGN.md §14). ---
  // This coordinator's leader generation. 0 = HA off: no GEN1 block on any
  // message, no fencing, the pre-HA wire format bit for bit. A promoted
  // standby leads with a strictly larger generation than its predecessor.
  uint64_t leader_generation = 0;
  // Hot standby to stream the replicated epoch log to; port 0 = no standby.
  // Requires leader_generation > 0 and config.record_log.
  std::string standby_host = "standby";
  uint16_t standby_port = 0;
  // Per-operation deadline on the replication channel (dial, send, ack).
  int replication_timeout_ms = 1000;
  // Deterministic kill point for failover drills; kNone in production.
  HaltPlan halt;
  // Partition-window drill: from this epoch on, every replication ship
  // (and the completion farewell) fails as if the link were partitioned —
  // the standby hears silence and promotes while the primary still leads.
  // SIZE_MAX (the default) = link healthy for the whole run.
  size_t replication_blackout_epoch = static_cast<size_t>(-1);
};

// Per-run connectivity statistics (telemetry counters mirror these).
struct CoordinatorStats {
  uint64_t handshakes_accepted = 0;
  uint64_t handshakes_rejected = 0;
  uint64_t reconnects = 0;       // accepted handshakes refilling a used slot
  uint64_t round_retries = 0;    // round-trip resends after a timeout
  uint64_t round_timeouts = 0;   // participants dropped for the epoch by
                                 // exhausted retries
  uint64_t conn_errors = 0;      // connections dropped mid-round
  uint64_t midround_rejoins = 0;    // reconnects served the in-flight round
  uint64_t replication_records = 0; // epoch-log records acked by the standby
  uint64_t replication_failures = 0;  // epochs whose record never got acked
  uint64_t fenced_hellos = 0;    // Hellos naming a newer leader generation
  uint64_t accept_fd_exhausted = 0;  // accepts refused by a full fd table
                                     // (RLIMIT_NOFILE); see EnsureFdCapacity
};

class Coordinator {
 public:
  // Binds the listener (loopback) and starts the accept thread.
  static Result<std::unique_ptr<Coordinator>> Create(
      const CoordinatorOptions& options);

  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  uint16_t port() const { return listener_ != nullptr ? listener_->port() : 0; }
  size_t num_participants() const { return options_.num_participants; }

  // Blocks until every participant slot is connected (or the deadline
  // expires — kDeadlineExceeded names the missing count).
  Status WaitForParticipants(int timeout_ms);

  size_t num_connected() const;
  CoordinatorStats stats() const;

  // Runs the federated training loop over the connected participants.
  // Mirrors RunFedSgd's contract, with two distributed-only restrictions:
  // batch_fraction must be 1 (participant minibatch streams live in other
  // processes and cannot be checkpointed here) and fault_plan must be null
  // (faults are real in this runtime, not injected).
  // config.resume/checkpoint_hook work exactly as in-process.
  Result<HflTrainingLog> RunFederatedTraining(HflServer& server,
                                              const Vec& init_params,
                                              const FedSgdConfig& config,
                                              AggregationPolicy* policy =
                                                  nullptr);

  // Algorithm #1 support: one Hessian-vector product RPC against a
  // connected participant. Serialized (no concurrent rounds); a failure
  // closes that participant's channel.
  Result<Vec> RequestHvp(size_t participant, const Vec& params, const Vec& v,
                         int timeout_ms);

  // Broadcasts Shutdown to every connected participant and closes the
  // channels. Idempotent; also invoked by the destructor.
  void Shutdown(const std::string& reason);

  // Dies silently: closes the listener and every channel without the
  // farewell broadcast — what a participant observes when the coordinator
  // process is killed. Idempotent with Shutdown; for failover drills.
  void Kill();

  // True once a Hello named a leader generation newer than ours; the
  // training loop refuses to start another epoch (DESIGN.md §14).
  bool fenced() const { return fenced_.load(std::memory_order_relaxed); }

  uint64_t leader_generation() const { return options_.leader_generation; }

  // Federation-wide observability snapshot (DESIGN.md §13): the merger's
  // round spans, round trips, clock models, and everything participants
  // shipped, plus this process's local RunReport under `run_id`. Valid any
  // time; meaningful after RunFederatedTraining with telemetry enabled.
  telemetry::FederationReport CollectFederationReport(
      std::string run_id) const;

 private:
  explicit Coordinator(const CoordinatorOptions& options)
      : options_(options),
        merger_(options.config_digest, options.num_participants) {}

  void AcceptLoop();
  // Validates a Hello and, if acceptable, parks the channel in its slot.
  void HandleConnection(std::unique_ptr<Conn> conn);

  // One worker: round-trips one RoundRequest with retries. Writes only to
  // index `i` of the output arrays; on failure closes the channel and (under
  // mu_) clears `(*channels)[i]` so a mid-round rejoin can take the index.
  void RoundWorker(size_t i, std::vector<std::unique_ptr<MsgChannel>>* channels,
                   uint64_t epoch, const std::string& request_payload,
                   size_t num_params, std::vector<Vec>* deltas,
                   std::vector<uint8_t>* present, std::vector<uint64_t>* retries,
                   std::vector<uint64_t>* bytes_out,
                   std::vector<uint64_t>* bytes_in);

  // Dials the standby and runs the client-side preamble exchange.
  Status DialStandby(std::unique_ptr<MsgChannel>* channel);
  // Ships one epoch record over `channel` (dialing it first if needed) and
  // waits for the ack; one redial retry on failure. `channel` is owned by
  // the training thread across epochs.
  Status ShipEpochRecord(std::unique_ptr<MsgChannel>* channel,
                         const EpochLogAppendMsg& record);

  CoordinatorOptions options_;
  // Thread-safe; round workers absorb shipped deltas concurrently.
  telemetry::FederationMerger merger_;
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> fenced_{false};
  // Where the federation currently stands; reported to (re)connecting nodes.
  std::atomic<uint64_t> next_epoch_hint_{0};
  std::atomic<uint64_t> hvp_seq_{1};

  // The round currently being collected, exposed (under mu_) to the accept
  // thread so a reconnecting participant can be served the in-flight
  // broadcast instead of stalling to the next epoch boundary. The pointers
  // alias the training loop's per-round arrays and are valid exactly while
  // `active` is set; `late_workers` is joined by the training thread after
  // it clears `active`.
  struct LiveRound {
    bool active = false;
    uint64_t epoch = 0;
    const std::string* request_payload = nullptr;
    size_t num_params = 0;
    std::vector<std::unique_ptr<MsgChannel>>* channels = nullptr;
    std::vector<Vec>* deltas = nullptr;
    std::vector<uint8_t>* present = nullptr;
    std::vector<uint64_t>* retries = nullptr;
    std::vector<uint64_t>* bytes_out = nullptr;
    std::vector<uint64_t>* bytes_in = nullptr;
    std::vector<std::thread> late_workers;
  };

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  // slots_[i] == nullptr: participant i not currently connected.
  std::vector<std::unique_ptr<MsgChannel>> slots_;
  std::vector<uint8_t> slot_ever_connected_;
  CoordinatorStats stats_;
  LiveRound live_round_;
  bool shut_down_ = false;
};

// Options for a crash-safe distributed run (superset pattern of
// ckpt::RunFedSgdWithCheckpoints): train through `coordinator`, checkpoint
// through a ckpt::CheckpointStore at `options.dir`, warm-start when
// options.resume is set. A killed coordinator process relaunched with the
// same store resumes at the last committed epoch boundary and produces
// bitwise-identical final parameters, log, and φ̂ to an uninterrupted run.
Result<ckpt::HflCheckpointedRun> RunDistributedFedSgdWithCheckpoints(
    Coordinator& coordinator, HflServer& server, const Vec& init_params,
    FedSgdConfig config, const ckpt::CheckpointRunOptions& options,
    AggregationPolicy* policy = nullptr);

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_COORDINATOR_H_
