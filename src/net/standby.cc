#include "net/standby.h"

#include <algorithm>
#include <utility>

#include "net/channel.h"
#include "net/messages.h"

namespace digfl {
namespace net {

Result<std::unique_ptr<StandbyCoordinator>> StandbyCoordinator::Create(
    const StandbyOptions& options) {
  if (options.primary_generation == 0) {
    return Status::InvalidArgument(
        "StandbyOptions.primary_generation must be positive (generation 0 "
        "is reserved)");
  }
  if (options.lease_timeout_ms <= 0) {
    return Status::InvalidArgument(
        "StandbyOptions.lease_timeout_ms must be positive");
  }
  StandbyOptions resolved = options;
  // nullptr = the process-wide TCP transport, as in Coordinator::Create.
  if (resolved.transport == nullptr) resolved.transport = TcpTransport();
  std::unique_ptr<StandbyCoordinator> standby(
      new StandbyCoordinator(resolved));
  DIGFL_ASSIGN_OR_RETURN(standby->listener_,
                         resolved.transport->Listen(resolved.port));
  return standby;
}

StandbyOutcome StandbyCoordinator::Promoted() {
  StandbyOutcome outcome;
  outcome.generation =
      std::max(buffer_.generation(), options_.primary_generation) + 1;
  outcome.has_state = buffer_.has_state();
  if (outcome.has_state) outcome.state = buffer_.state();
  outcome.records_applied = buffer_.records_applied();
  outcome.records_rejected = buffer_.records_rejected();
  return outcome;
}

Result<StandbyOutcome> StandbyCoordinator::Run() {
  const Transport& transport = *options_.transport;
  const uint64_t lease = static_cast<uint64_t>(options_.lease_timeout_ms);
  // Absolute lease deadline on the transport's clock, reset only by
  // replication evidence. Relative per-call timeouts would let a burst of
  // failing-over participants (whose Hellos we reject below) keep the
  // timer from ever expiring.
  uint64_t lease_deadline = transport.NowMs() + lease;
  // Milliseconds of lease left, clamped to [0, lease].
  const auto remaining = [&]() -> int {
    const uint64_t now = transport.NowMs();
    if (now >= lease_deadline) return 0;
    return static_cast<int>(std::min(lease_deadline - now, lease));
  };
  StandbyOutcome outcome;
  for (;;) {
    if (stop_.load()) {
      outcome.stopped = true;
      break;
    }
    const int accept_ms = remaining();
    if (accept_ms == 0) return Promoted();  // lease expired in silence
    Result<std::unique_ptr<Conn>> accepted = listener_->Accept(accept_ms);
    if (!accepted.ok()) {
      if (stop_.load()) {
        outcome.stopped = true;
        break;
      }
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // the top of the loop turns an expired lease into a verdict
      }
      return accepted.status();
    }
    MsgChannel channel(std::move(accepted).value(), options_.limits);
    // Raw preamble exchange, mirroring ServerHandshakeBegin's first step:
    // the replication stream speaks DIGFLNET1 like every other connection,
    // but skips Hello/HelloAck — the primary authenticates each record with
    // the config digest and its leader generation instead.
    char preamble[kPreambleLen];
    if (!channel.RecvRaw(preamble, kPreambleLen, options_.lease_timeout_ms)
             .ok() ||
        !ValidatePreamble(std::string_view(preamble, kPreambleLen)).ok() ||
        !channel.SendRaw(EncodePreamble(), options_.lease_timeout_ms).ok()) {
      channel.Close();
      continue;  // garbage dialer; the lease keeps counting
    }
    bool done = false;
    while (!done) {
      const int recv_ms = remaining();
      if (recv_ms == 0) return Promoted();  // lease expired mid-connection
      Result<Frame> frame = channel.Recv(recv_ms);
      if (!frame.ok()) {
        if (stop_.load()) {
          outcome.stopped = true;
          done = true;
          break;
        }
        if (frame.status().code() == StatusCode::kDeadlineExceeded) {
          continue;  // loop top re-checks the absolute deadline
        }
        channel.Close();  // connection lost; wait for the primary's redial
        break;
      }
      switch (static_cast<MsgType>(frame->type)) {
        case MsgType::kShutdown:
          outcome.primary_completed = true;
          done = true;
          break;
        case MsgType::kEpochLogAppend: {
          Result<EpochLogAppendMsg> record =
              DecodeEpochLogAppend(frame->payload);
          Status applied = record.ok() ? buffer_.Apply(*record)
                                       : record.status();
          if (!applied.ok()) {
            // A corrupt, stale, or incoherent record poisons the stream:
            // cut the connection so a fenced ex-primary sees kUnavailable
            // instead of an ack. A live primary redials and resumes.
            channel.Close();
            done = false;
            break;
          }
          // Replication evidence: the primary is alive; extend the lease.
          lease_deadline = transport.NowMs() + lease;
          EpochLogAckMsg ack;
          ack.epoch = record->epoch;
          if (!channel
                   .Send(MsgType::kEpochLogAck, EncodeEpochLogAck(ack),
                         options_.lease_timeout_ms)
                   .ok()) {
            channel.Close();
          }
          break;
        }
        case MsgType::kHello: {
          // A participant probing the failover endpoint before promotion.
          // Reject with a typed verdict so it keeps rotating — and do NOT
          // extend the lease: a node that cannot reach its leader is
          // evidence for promotion, never against it.
          HelloAckMsg ack;
          ack.accepted = false;
          ack.message = "standby has not been promoted";
          (void)channel.Send(MsgType::kHelloAck, EncodeHelloAck(ack),
                             options_.lease_timeout_ms);
          channel.Close();
          break;
        }
        default:
          channel.Close();  // protocol violation on the replication port
          break;
      }
      if (!channel.valid()) break;
    }
    if (done) break;
  }
  outcome.records_applied = buffer_.records_applied();
  outcome.records_rejected = buffer_.records_rejected();
  if (outcome.primary_completed && buffer_.has_state()) {
    // Informational on a completed run, but lets the harness cross-check
    // the replica against the primary's own final state.
    outcome.has_state = true;
    outcome.state = buffer_.state();
    outcome.generation = buffer_.generation();
  }
  return outcome;
}

void StandbyCoordinator::Stop() {
  stop_.store(true);
  if (listener_ != nullptr) listener_->Close();
}

}  // namespace net
}  // namespace digfl
