#include "net/wire.h"

#include <cstring>

#include "ckpt/crc32.h"

namespace digfl {
namespace net {
namespace {

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

}  // namespace

std::string EncodePreamble() {
  std::string out;
  out.append(kPreambleMagic, kPreambleMagicLen);
  const uint32_t version = kProtocolVersion;
  AppendRaw(&out, &version, sizeof(version));
  return out;
}

Status ValidatePreamble(std::string_view bytes) {
  if (bytes.size() != kPreambleLen) {
    return Status::InvalidArgument("preamble has wrong length");
  }
  if (std::memcmp(bytes.data(), kPreambleMagic, kPreambleMagicLen) != 0) {
    return Status::InvalidArgument("peer is not speaking DIGFLNET");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + kPreambleMagicLen, sizeof(version));
  if (version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: peer speaks v" + std::to_string(version) +
        ", this build speaks v" + std::to_string(kProtocolVersion));
  }
  return Status::OK();
}

void AppendFrame(std::string* out, uint32_t type, std::string_view payload) {
  const size_t header_offset = out->size();
  AppendRaw(out, &type, sizeof(type));
  const uint64_t length = payload.size();
  AppendRaw(out, &length, sizeof(length));
  out->append(payload);
  const uint32_t crc = ckpt::Crc32(std::string_view(
      out->data() + header_offset, out->size() - header_offset));
  AppendRaw(out, &crc, sizeof(crc));
}

Status FrameDecoder::Append(std::string_view bytes) {
  if (!poison_.ok()) return poison_;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
  return Status::OK();
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!poison_.ok()) return poison_;
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderLen) return std::optional<Frame>();

  uint32_t type = 0;
  uint64_t length = 0;
  std::memcpy(&type, buffer_.data() + pos_, sizeof(type));
  std::memcpy(&length, buffer_.data() + pos_ + sizeof(type), sizeof(length));
  // The bound check happens before any allocation sized by `length`.
  if (length > limits_.max_payload_bytes) {
    poison_ = Status::InvalidArgument(
        "frame payload length " + std::to_string(length) +
        " exceeds limit " + std::to_string(limits_.max_payload_bytes));
    return poison_;
  }
  const uint64_t wire_size = FrameWireSize(length);
  if (available < wire_size) return std::optional<Frame>();

  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc,
              buffer_.data() + pos_ + kFrameHeaderLen + length,
              sizeof(stored_crc));
  const uint32_t actual_crc = ckpt::Crc32(
      std::string_view(buffer_.data() + pos_, kFrameHeaderLen + length));
  if (stored_crc != actual_crc) {
    poison_ = Status::InvalidArgument("frame CRC mismatch");
    return poison_;
  }

  Frame frame;
  frame.type = type;
  frame.payload.assign(buffer_.data() + pos_ + kFrameHeaderLen, length);
  pos_ += wire_size;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace net
}  // namespace digfl
