// Readiness multiplexer for fan-out roles (DESIGN.md §15).
//
// The flat Coordinator dedicates one thread + poll(2) deadline loop to each
// participant channel, which tops out around a few hundred sockets. The
// tree runtime's collectors instead register every child connection with
// one Reactor and drain whichever sockets are ready: epoll(7) on Linux
// (O(ready) per wakeup, connection table sized for 10k+ fds), with a
// poll(2) fallback for other platforms and for builds that set
// DIGFL_NET_FORCE_POLL=1 (the fallback is also what the fallback-parity
// test pins against epoll).
//
// The reactor multiplexes *readiness only*; actual I/O stays in the caller
// so the typed Status taxonomy of socket.h is preserved. Connections that
// cannot expose an fd (SimNet's in-process streams, Conn::NativeHandle() ==
// -1) never reach a reactor — callers fall back to the blocking
// per-connection path, which is exactly the deterministic path the
// simulator wants anyway.
//
// WriteQueue is the companion piece: a per-connection outbound buffer that
// lets a broadcast be *enqueued* on every child at once and drained as each
// socket becomes writable, so the epoch-t+1 broadcast overlaps the last
// stragglers of epoch-t uploads instead of serializing behind them.

#ifndef DIGFL_NET_REACTOR_H_
#define DIGFL_NET_REACTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace digfl {
namespace net {

enum class ReactorInterest : uint8_t {
  kRead,
  kWrite,
  kReadWrite,
};

struct ReactorEvent {
  uint64_t tag = 0;        // the caller's tag from Add/Modify
  bool readable = false;
  bool writable = false;
  // POLLERR/POLLHUP (or their epoll twins): the caller should attempt the
  // read — a hangup with buffered data still delivers the data — and let
  // the resulting typed Status decide the connection's fate.
  bool error = false;
};

class Reactor {
 public:
  // `expected_connections` pre-sizes the table and, when > 0, raises
  // RLIMIT_NOFILE (EnsureFdCapacity) so an accept storm of that size cannot
  // hit EMFILE mid-assembly. The backend is epoll on Linux unless the
  // DIGFL_NET_FORCE_POLL environment variable is set to a nonzero value.
  static Result<Reactor> Create(size_t expected_connections = 0);

  Reactor(Reactor&& other) noexcept;
  Reactor& operator=(Reactor&& other) noexcept;
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;
  ~Reactor();

  // Registers `fd` with the given interest; events for it carry `tag`.
  Status Add(int fd, uint64_t tag, ReactorInterest interest);
  // Updates interest and/or tag for an already-registered fd.
  Status Modify(int fd, uint64_t tag, ReactorInterest interest);
  // Deregisters; OK even if the fd was never added (idempotent teardown).
  Status Remove(int fd);

  // Blocks up to `timeout_ms` for readiness, appends one ReactorEvent per
  // ready fd to `out`, and returns how many were appended (0 = timeout, a
  // normal outcome — not kDeadlineExceeded, because collectors poll in a
  // loop against their own round deadline). EINTR is retried against a
  // shared deadline.
  Result<size_t> Wait(int timeout_ms, std::vector<ReactorEvent>* out);

  size_t size() const { return entries_.size(); }
  const char* backend() const { return epoll_fd_ >= 0 ? "epoll" : "poll"; }

 private:
  Reactor() = default;

  struct Entry {
    uint64_t tag = 0;
    ReactorInterest interest = ReactorInterest::kRead;
  };

  int epoll_fd_ = -1;  // -1 = poll fallback
  std::unordered_map<int, Entry> entries_;
};

// Outbound byte buffer for one nonblocking connection. Push never blocks;
// Flush writes as much as the socket accepts right now and reports whether
// the queue drained. Not thread-safe — each connection is owned by the one
// collector loop that flushes it.
class WriteQueue {
 public:
  // Queues `data` (moved) for transmission.
  void Push(std::string data);

  // Attempts to write queued bytes to `fd` without blocking. Returns true
  // when the queue is empty afterwards, false when the socket went
  // write-blocked (EAGAIN) with bytes still pending — re-Flush when the
  // reactor reports the fd writable. Any other socket error surfaces as
  // the typed Status (kUnavailable for a dead peer, kFailedPrecondition
  // for fd-table exhaustion upstream, …).
  Result<bool> Flush(int fd);

  bool empty() const { return queue_.empty(); }
  size_t pending_bytes() const { return pending_bytes_; }

 private:
  std::deque<std::string> queue_;
  size_t offset_ = 0;  // bytes of queue_.front() already written
  size_t pending_bytes_ = 0;
};

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_REACTOR_H_
