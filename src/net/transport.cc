#include "net/transport.h"

#include <chrono>
#include <utility>

namespace digfl {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

class TcpConnAdapter : public Conn {
 public:
  explicit TcpConnAdapter(TcpConn conn) : conn_(std::move(conn)) {}

  bool valid() const override { return conn_.valid(); }
  void Close() override { conn_.Close(); }

  Status SendAll(std::string_view data, int timeout_ms) override {
    return conn_.SendAll(data, timeout_ms);
  }

  Result<size_t> RecvSome(char* buf, size_t len, int timeout_ms) override {
    return conn_.RecvSome(buf, len, timeout_ms);
  }

  Status RecvExact(char* buf, size_t len, int timeout_ms) override {
    return conn_.RecvExact(buf, len, timeout_ms);
  }

  int NativeHandle() const override { return conn_.fd(); }

 private:
  TcpConn conn_;
};

class TcpListenerAdapter : public Listener {
 public:
  explicit TcpListenerAdapter(TcpListener listener)
      : listener_(std::move(listener)) {}

  bool valid() const override { return listener_.valid(); }
  uint16_t port() const override { return listener_.port(); }
  void Close() override { listener_.Close(); }

  Result<std::unique_ptr<Conn>> Accept(int timeout_ms) override {
    DIGFL_ASSIGN_OR_RETURN(TcpConn conn, listener_.Accept(timeout_ms));
    return std::unique_ptr<Conn>(new TcpConnAdapter(std::move(conn)));
  }

 private:
  TcpListener listener_;
};

class TcpTransportImpl : public Transport {
 public:
  Result<std::unique_ptr<Listener>> Listen(uint16_t port) override {
    DIGFL_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
    return std::unique_ptr<Listener>(
        new TcpListenerAdapter(std::move(listener)));
  }

  Result<std::unique_ptr<Conn>> Connect(const std::string& host,
                                        uint16_t port,
                                        int timeout_ms) override {
    DIGFL_ASSIGN_OR_RETURN(TcpConn conn,
                           TcpConn::Connect(host, port, timeout_ms));
    return std::unique_ptr<Conn>(new TcpConnAdapter(std::move(conn)));
  }
};

}  // namespace

Status Conn::RecvExact(char* buf, size_t len, int timeout_ms) {
  // Budget on the connection's own clock, not steady_clock: for a simulated
  // conn the remaining budget must shrink with virtual time only.
  const uint64_t deadline =
      NowMs() + static_cast<uint64_t>(timeout_ms > 0 ? timeout_ms : 0);
  size_t done = 0;
  while (done < len) {
    const uint64_t now = NowMs();
    const int remaining =
        deadline > now ? static_cast<int>(deadline - now) : 0;
    DIGFL_ASSIGN_OR_RETURN(size_t n,
                           RecvSome(buf + done, len - done, remaining));
    done += n;
  }
  return Status::OK();
}

uint64_t Conn::NowMs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

std::unique_ptr<Conn> WrapTcpConn(TcpConn conn) {
  return std::unique_ptr<Conn>(new TcpConnAdapter(std::move(conn)));
}

uint64_t Transport::NowMs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

Transport* TcpTransport() {
  static TcpTransportImpl* transport = new TcpTransportImpl();
  return transport;
}

}  // namespace net
}  // namespace digfl
