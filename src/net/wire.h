// Wire framing for the distributed runtime (DESIGN.md §10).
//
// Every message on a federation connection is one frame:
//
//   u32 type | u64 payload_len | payload | u32 crc
//
// little-endian, with the CRC32 (ckpt/crc32.h) covering type, length, and
// payload — the same record discipline as the DIGFLCKP1 checkpoint
// container, so a bit flip anywhere in a frame (header included) is
// detected. Before any frame flows, each side sends a fixed 13-byte
// preamble
//
//   "DIGFLNET1" | u32 protocol_version
//
// so a non-protocol peer (or a version skew) is rejected before the
// decoder allocates anything.
//
// FrameDecoder is incremental and strictly bounded: bytes are appended as
// they arrive from the socket, complete frames are popped off the front,
// and a length prefix above WireLimits::max_payload_bytes is a typed error
// *before* any allocation happens. A decode error poisons the stream —
// framing offers no resynchronization, so the connection must be dropped.

#ifndef DIGFL_NET_WIRE_H_
#define DIGFL_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace digfl {
namespace net {

inline constexpr char kPreambleMagic[] = "DIGFLNET1";  // 9 bytes, no NUL
inline constexpr size_t kPreambleMagicLen = 9;
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kPreambleLen = kPreambleMagicLen + sizeof(uint32_t);

// The 13-byte connection preamble for kProtocolVersion.
std::string EncodePreamble();

// Validates a received preamble: magic then version, typed errors for each
// failure mode (so a handshake telemetry counter can distinguish them).
Status ValidatePreamble(std::string_view bytes);

// Frame header = type + payload length; the CRC trails the payload.
inline constexpr size_t kFrameHeaderLen = sizeof(uint32_t) + sizeof(uint64_t);
inline constexpr size_t kFrameCrcLen = sizeof(uint32_t);

// Total on-the-wire size of a frame with `payload_len` payload bytes.
constexpr uint64_t FrameWireSize(uint64_t payload_len) {
  return kFrameHeaderLen + payload_len + kFrameCrcLen;
}

struct WireLimits {
  // Ceiling on a single frame's payload. The decoder rejects a larger
  // length prefix before allocating; senders refuse to emit one. Generous
  // for this library's payloads (model parameter vectors).
  uint64_t max_payload_bytes = 64ull << 20;
};

struct Frame {
  uint32_t type = 0;
  std::string payload;
};

// Appends one framed message to `out` (for sending; the caller enforces
// its own WireLimits before calling).
void AppendFrame(std::string* out, uint32_t type, std::string_view payload);

// Incremental frame decoder over a byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(WireLimits limits = {}) : limits_(limits) {}

  // Buffers `bytes` received from the stream. Returns the poison status if
  // a previous Next() already failed (the stream is unrecoverable).
  Status Append(std::string_view bytes);

  // Pops the next complete frame:
  //   ok + frame    — a fully CRC-checked frame,
  //   ok + nullopt  — need more bytes,
  //   error         — malformed stream (oversized length, CRC mismatch);
  //                   the decoder is poisoned and the connection is dead.
  Result<std::optional<Frame>> Next();

  // Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  WireLimits limits_;
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_
  Status poison_;
};

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_WIRE_H_
