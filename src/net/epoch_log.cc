#include "net/epoch_log.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "ckpt/frame.h"

namespace digfl {
namespace net {
namespace {

using ckpt::ByteSink;
using ckpt::ByteSource;

Status RequireExhausted(const ByteSource& source, const char* what) {
  if (!source.Exhausted()) {
    return Status::InvalidArgument(std::string("trailing bytes in ") + what +
                                   " payload");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeEpochLogAppend(const EpochLogAppendMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.generation);
  sink.PutU64(msg.config_digest);
  sink.PutU64(msg.epoch);
  sink.PutString(msg.image);
  sink.PutDoubles(msg.phi_epoch);
  return out;
}

Result<EpochLogAppendMsg> DecodeEpochLogAppend(std::string_view payload) {
  ByteSource source(payload);
  EpochLogAppendMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.generation));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.config_digest));
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.epoch));
  DIGFL_RETURN_IF_ERROR(source.GetString(&msg.image));
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(&msg.phi_epoch));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "EpochLogAppend"));
  if (msg.generation == 0) {
    return Status::InvalidArgument(
        "EpochLogAppend carries reserved leader generation 0");
  }
  if (msg.epoch == 0) {
    return Status::InvalidArgument(
        "EpochLogAppend describes an empty round boundary");
  }
  // The image reuses the DIGFLCKP1 container; its framing (magic, record
  // CRCs, terminator) must check out before the record is worth keeping.
  DIGFL_RETURN_IF_ERROR(ckpt::ReadFramedFile(msg.image).status());
  for (double v : msg.phi_epoch) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "non-finite value in EpochLogAppend phi delta");
    }
  }
  return msg;
}

std::string EncodeEpochLogAck(const EpochLogAckMsg& msg) {
  std::string out;
  ByteSink sink(&out);
  sink.PutU64(msg.epoch);
  return out;
}

Result<EpochLogAckMsg> DecodeEpochLogAck(std::string_view payload) {
  ByteSource source(payload);
  EpochLogAckMsg msg;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&msg.epoch));
  DIGFL_RETURN_IF_ERROR(RequireExhausted(source, "EpochLogAck"));
  return msg;
}

Status EpochLogBuffer::Apply(const EpochLogAppendMsg& msg) {
  ++records_rejected_;  // un-counted below on success
  if (msg.generation < generation_) {
    return Status::FailedPrecondition(
        "epoch-log record from stale leader generation " +
        std::to_string(msg.generation) + " (highest seen " +
        std::to_string(generation_) + ")");
  }
  if (msg.config_digest != config_digest_) {
    return Status::FailedPrecondition(
        "epoch-log record for a different federation config");
  }
  if (msg.epoch <= epoch_) {
    return Status::FailedPrecondition(
        "epoch-log record does not advance the durable boundary (epoch " +
        std::to_string(msg.epoch) + " <= " + std::to_string(epoch_) + ")");
  }
  DIGFL_ASSIGN_OR_RETURN(ckpt::HflCheckpointState state,
                         ckpt::DecodeHflCheckpoint(msg.image));
  if (state.next_epoch != msg.epoch) {
    return Status::InvalidArgument(
        "epoch-log record epoch disagrees with its checkpoint image");
  }
  // Cross-check the explicit accumulator delta against the image's newest
  // φ̂ row, bitwise (both travelled as raw IEEE-754 bits).
  if (state.phi_per_epoch.empty()) {
    return Status::InvalidArgument("epoch-log checkpoint image has no phi rows");
  }
  const std::vector<double>& image_row = state.phi_per_epoch.back();
  if (image_row.size() != msg.phi_epoch.size() ||
      (!image_row.empty() &&
       std::memcmp(image_row.data(), msg.phi_epoch.data(),
                   image_row.size() * sizeof(double)) != 0)) {
    return Status::InvalidArgument(
        "epoch-log phi delta disagrees with its checkpoint image");
  }
  state_ = std::move(state);
  has_state_ = true;
  generation_ = msg.generation;
  epoch_ = msg.epoch;
  ++records_applied_;
  --records_rejected_;
  return Status::OK();
}

}  // namespace net
}  // namespace digfl
