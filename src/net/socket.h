// Thin RAII wrappers over POSIX TCP sockets with poll-based deadlines.
//
// No library beyond libc: nonblocking sockets driven by poll(2), typed
// Status errors in place of errno spelunking. The error taxonomy the rest
// of src/net/ relies on:
//
//   kDeadlineExceeded  the operation timed out (retryable; the federation
//                      layer turns repeated timeouts into a dropout),
//   kUnavailable       the peer is gone — EOF, reset, refused — and the
//                      connection must be replaced,
//   kFailedPrecondition  the process fd table is full (EMFILE/ENFILE) —
//                      not retryable until capacity is raised; see
//                      EnsureFdCapacity below,
//   kInvalidArgument / kInternal   caller or system programming errors.
//
// All sockets are nonblocking with TCP_NODELAY (round messages are
// latency-sensitive) and sends use MSG_NOSIGNAL so a dead peer surfaces as
// a Status, never SIGPIPE.

#ifndef DIGFL_NET_SOCKET_H_
#define DIGFL_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace digfl {
namespace net {

// A connected TCP stream. Move-only; the destructor closes the fd.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn() { Close(); }
  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  // Connects to host:port (numeric or resolvable host) within the
  // deadline. kDeadlineExceeded on timeout, kUnavailable on refusal.
  static Result<TcpConn> Connect(const std::string& host, uint16_t port,
                                 int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Writes all of `data` within the deadline (shared across the whole
  // write, not per chunk).
  Status SendAll(std::string_view data, int timeout_ms);

  // Reads up to `len` bytes into `buf`; returns the count actually read
  // (>= 1). kUnavailable on EOF/reset, kDeadlineExceeded on timeout.
  Result<size_t> RecvSome(char* buf, size_t len, int timeout_ms);

  // Reads exactly `len` bytes. The deadline covers the whole read.
  Status RecvExact(char* buf, size_t len, int timeout_ms);

 private:
  int fd_ = -1;
};

// A listening TCP socket bound to 127.0.0.1 (the runtime is a localhost /
// trusted-network federation; see DESIGN.md §10).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(TcpListener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens on `port` (0 = ephemeral; read the choice back from
  // port()). The default backlog absorbs the accept storm a whole shard
  // dialing at once produces; pass a smaller value only in tests that want
  // to provoke refusals.
  static Result<TcpListener> Listen(uint16_t port, int backlog = 128);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  void Close();

  // Accepts one connection; kDeadlineExceeded when none arrives in time.
  Result<TcpConn> Accept(int timeout_ms);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// The process's current RLIMIT_NOFILE soft limit (0 if it cannot be read).
size_t FdSoftLimit();

// Ensures the process may hold at least `needed` file descriptors, raising
// the RLIMIT_NOFILE soft limit toward the hard limit if necessary. Call at
// startup from any role that fans out to many sockets (coordinator roots,
// tree aggregators); a typed kFailedPrecondition here beats an accept loop
// silently failing with EMFILE mid-round.
Status EnsureFdCapacity(size_t needed);

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_SOCKET_H_
