#include "net/coordinator.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "ckpt/store.h"
#include "common/fault.h"
#include "hfl/aggregator.h"
#include "common/timer.h"
#include "telemetry/federation.h"
#include "telemetry/telemetry.h"
#include "tensor/vec.h"

namespace digfl {
namespace net {

namespace {

constexpr int kShutdownSendTimeoutMs = 1000;

}  // namespace

Result<std::unique_ptr<Coordinator>> Coordinator::Create(
    const CoordinatorOptions& options) {
  if (options.num_participants == 0) {
    return Status::InvalidArgument("num_participants must be > 0");
  }
  if (options.round_timeout_ms <= 0 || options.handshake_timeout_ms <= 0) {
    return Status::InvalidArgument("timeouts must be > 0");
  }
  if (options.standby_port != 0) {
    if (options.leader_generation == 0) {
      return Status::InvalidArgument(
          "standby replication requires a positive leader_generation "
          "(generation 0 is reserved for HA off)");
    }
    if (options.replication_timeout_ms <= 0) {
      return Status::InvalidArgument("replication_timeout_ms must be > 0");
    }
  }
  std::unique_ptr<Coordinator> coordinator(new Coordinator(options));
  Transport* transport =
      options.transport != nullptr ? options.transport : TcpTransport();
  if (options.transport == nullptr) {
    // Real sockets: make sure the fd table can seat every participant (plus
    // a margin for the listener, stdio, checkpoint files, and replication)
    // up front, so a 10k-node federation fails with a typed error here
    // instead of an accept storm of EMFILEs later.
    DIGFL_RETURN_IF_ERROR(
        EnsureFdCapacity(options.num_participants + 64));
  }
  DIGFL_ASSIGN_OR_RETURN(coordinator->listener_,
                         transport->Listen(options.port));
  coordinator->slots_.resize(options.num_participants);
  coordinator->slot_ever_connected_.assign(options.num_participants, 0);
  coordinator->accept_thread_ =
      std::thread(&Coordinator::AcceptLoop, coordinator.get());
  return coordinator;
}

Coordinator::~Coordinator() { Shutdown("coordinator destroyed"); }

void Coordinator::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<std::unique_ptr<Conn>> conn =
        listener_->Accept(options_.accept_poll_ms);
    if (!conn.ok()) {
      // Timeouts are the idle heartbeat of the stop-flag poll; a reset
      // mid-accept is transient — keep accepting. fd-table exhaustion
      // (EMFILE/ENFILE, typed kFailedPrecondition by the socket layer) also
      // keeps the loop alive, but is counted so a 10k-participant deploy
      // that forgot to raise RLIMIT_NOFILE sees dropped joins in stats()
      // instead of a silent half-empty federation.
      if (conn.status().code() == StatusCode::kFailedPrecondition) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.accept_fd_exhausted;
        DIGFL_COUNTER_ADD("net.accept_fd_exhausted_total", 1);
      }
      continue;
    }
    HandleConnection(std::move(*conn));
  }
}

void Coordinator::HandleConnection(std::unique_ptr<Conn> conn) {
  auto channel =
      std::make_unique<MsgChannel>(std::move(conn), options_.limits);
  Result<HelloMsg> hello =
      ServerHandshakeBegin(*channel, options_.handshake_timeout_ms);
  if (!hello.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.handshakes_rejected;
    DIGFL_COUNTER_ADD("net.handshake_rejected_total", 1);
    return;
  }

  // The coordinator-side receive instant of the Hello — together with the
  // clock the node stamped on it, the first (one-way) clock sample.
  const bool obs = telemetry::ObservabilityEnabled();
  const double hello_recv_seconds = obs ? telemetry::ObsNow() : 0.0;

  HelloAckMsg ack;
  ack.next_epoch = next_epoch_hint_.load(std::memory_order_relaxed);
  if (options_.leader_generation > 0) {
    ack.generation = options_.leader_generation;
  }
  const uint64_t id = hello->participant_id;
  const uint64_t peer_generation = hello->generation.value_or(0);
  if (options_.leader_generation > 0 &&
      peer_generation > options_.leader_generation) {
    // The node has already accepted a newer leader: this coordinator is a
    // stale ex-primary. Fence it — the training loop refuses to start
    // another epoch — and reject the Hello (DESIGN.md §14).
    fenced_.store(true, std::memory_order_relaxed);
    ack.message = "coordinator generation " +
                  std::to_string(options_.leader_generation) +
                  " superseded by " + std::to_string(peer_generation);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.fenced_hellos;
  } else if (id >= options_.num_participants) {
    ack.message = "participant id out of range";
  } else if (hello->config_digest != options_.config_digest) {
    ack.message = "federation config digest mismatch";
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    if (slots_[id] != nullptr ||
        (live_round_.active && (*live_round_.channels)[id] != nullptr)) {
      ack.message = "participant already connected";
    } else {
      ack.accepted = 1;
    }
  }
  if (ack.accepted == 1 && options_.compress != compress::Mode::kLossless) {
    ack.quant = HelloAckQuant{options_.compress, compress::kQuantBlock};
  }
  if (obs && ack.accepted == 1) {
    ack.obs = HelloAckObs{merger_.run_id(), telemetry::ObsNow()};
    if (hello->obs_clock_seconds.has_value()) {
      merger_.RecordHandshake(id, *hello->obs_clock_seconds,
                              hello_recv_seconds);
    }
  }

  const Status finish =
      ServerHandshakeFinish(*channel, ack, options_.handshake_timeout_ms);
  std::lock_guard<std::mutex> lock(mu_);
  if (ack.accepted == 0 || !finish.ok()) {
    ++stats_.handshakes_rejected;
    DIGFL_COUNTER_ADD("net.handshake_rejected_total", 1);
    return;
  }
  // The slot may have been vacated and refilled while Finish was on the
  // wire (only possible across an epoch boundary); the incumbent wins.
  if (slots_[id] != nullptr) {
    ++stats_.handshakes_rejected;
    return;
  }
  ++stats_.handshakes_accepted;
  if (slot_ever_connected_[id]) {
    ++stats_.reconnects;
    DIGFL_COUNTER_ADD("net.reconnects_total", 1);
  }
  slot_ever_connected_[id] = 1;
  if (live_round_.active && (*live_round_.channels)[id] == nullptr) {
    // Mid-round rejoin: hand the fresh channel straight to a late round
    // worker so the participant is served the in-flight broadcast instead
    // of idling until the next epoch boundary.
    (*live_round_.channels)[id] = std::move(channel);
    ++stats_.midround_rejoins;
    DIGFL_COUNTER_ADD("net.midround_rejoins_total", 1);
    live_round_.late_workers.emplace_back(
        &Coordinator::RoundWorker, this, id, live_round_.channels,
        live_round_.epoch, std::cref(*live_round_.request_payload),
        live_round_.num_params, live_round_.deltas, live_round_.present,
        live_round_.retries, live_round_.bytes_out, live_round_.bytes_in);
  } else {
    slots_[id] = std::move(channel);
  }
  slot_cv_.notify_all();
}

Status Coordinator::WaitForParticipants(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  const bool ready = slot_cv_.wait_until(lock, deadline, [this] {
    for (const auto& slot : slots_) {
      if (slot == nullptr) return false;
    }
    return true;
  });
  if (ready) return Status::OK();
  size_t connected = 0;
  for (const auto& slot : slots_) connected += (slot != nullptr);
  return Status::DeadlineExceeded(
      "only " + std::to_string(connected) + " of " +
      std::to_string(options_.num_participants) +
      " participants connected before the deadline");
}

size_t Coordinator::num_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t connected = 0;
  for (const auto& slot : slots_) connected += (slot != nullptr);
  return connected;
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Coordinator::RoundWorker(size_t i,
                              std::vector<std::unique_ptr<MsgChannel>>* channels,
                              uint64_t epoch,
                              const std::string& request_payload,
                              size_t num_params, std::vector<Vec>* deltas,
                              std::vector<uint8_t>* present,
                              std::vector<uint64_t>* retries,
                              std::vector<uint64_t>* bytes_out,
                              std::vector<uint64_t>* bytes_in) {
  DIGFL_TRACE_SPAN("net.round_trip");
  // Entry i is owned by this worker until it returns (success) or clears it
  // under mu_ (failure); nobody else touches it in between.
  MsgChannel* channel = (*channels)[i].get();
  const bool obs = telemetry::ObservabilityEnabled();
  Rng jitter(options_.jitter_seed ^
             (epoch * options_.num_participants + i + 1));
  size_t attempt = 0;
  double t0 = 0.0;  // coordinator send instant of the attempt in flight
  for (;;) {
    if (obs) t0 = telemetry::ObsNow();
    Status failure =
        channel->Send(MsgType::kRoundRequest, request_payload,
                      options_.round_timeout_ms);
    while (failure.ok()) {
      Result<Frame> frame = channel->Recv(options_.round_timeout_ms);
      if (!frame.ok()) {
        failure = frame.status();
        break;
      }
      const MsgType type = static_cast<MsgType>(frame->type);
      if (type != MsgType::kRoundReply) {
        failure = Status::InvalidArgument("unexpected frame in round");
        break;
      }
      Result<RoundReplyMsg> reply = DecodeRoundReply(frame->payload);
      if (!reply.ok()) {
        failure = reply.status();
        break;
      }
      // A reply for an earlier epoch is the late answer to a request we
      // already retried or gave up on — discard and keep reading.
      if (reply->epoch < epoch) continue;
      if (reply->epoch != epoch || reply->participant_id != i ||
          reply->delta.size() != num_params) {
        failure = Status::InvalidArgument("round reply shape mismatch");
        break;
      }
      // Compression is negotiated at handshake; a reply in any other form
      // (raw when quantized was announced, quantized when it was not, or
      // the wrong mode) is a protocol violation, not a fallback.
      const bool want_quant = options_.compress != compress::Mode::kLossless;
      if (reply->quantized.has_value() != want_quant ||
          (want_quant && reply->quantized->mode != options_.compress)) {
        failure = Status::InvalidArgument(
            "round reply compression does not match the negotiated mode");
        break;
      }
      if (obs) {
        const double t1 = telemetry::ObsNow();
        if (reply->telemetry.has_value()) {
          merger_.Absorb(i, *reply->telemetry, t0, t1);
        }
        merger_.RecordRoundTrip(epoch, i, t0, t1, (*retries)[i],
                                /*present=*/true);
      }
      (*deltas)[i] = std::move(reply->delta);
      (*present)[i] = 1;
      (*bytes_out)[i] += channel->TakeBytesSent();
      (*bytes_in)[i] += channel->TakeBytesReceived();
      return;
    }

    if (failure.code() == StatusCode::kDeadlineExceeded &&
        attempt < options_.max_round_retries) {
      (*retries)[i] += 1;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.round_retries;
      }
      DIGFL_COUNTER_ADD("net.round_retries_total", 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          BackoffDelayMs(options_.retry_backoff, attempt, jitter)));
      ++attempt;
      continue;
    }

    // Exhausted retries or a broken/byzantine connection: the participant
    // is absent this epoch (the dropout path) and must reconnect. Byte
    // accounting for the failed attempt is drained before the channel is
    // surrendered (the entry may be re-filled by a mid-round rejoin, whose
    // own bytes must not mix with ours).
    if (obs) {
      merger_.RecordRoundTrip(epoch, i, t0, telemetry::ObsNow(),
                              (*retries)[i], /*present=*/false);
    }
    channel->Close();
    std::lock_guard<std::mutex> lock(mu_);
    if (failure.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.round_timeouts;
      DIGFL_COUNTER_ADD("net.round_timeouts_total", 1);
    } else {
      ++stats_.conn_errors;
      DIGFL_COUNTER_ADD("net.conn_errors_total", 1);
    }
    (*bytes_out)[i] += channel->TakeBytesSent();
    (*bytes_in)[i] += channel->TakeBytesReceived();
    // Last act: free the index for a rejoin. After this store the worker
    // must not touch entry i again.
    (*channels)[i].reset();
    return;
  }
}

Result<HflTrainingLog> Coordinator::RunFederatedTraining(
    HflServer& server, const Vec& init_params, const FedSgdConfig& config,
    AggregationPolicy* policy) {
  if (config.epochs == 0) return Status::InvalidArgument("epochs == 0");
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (config.batch_fraction != 1.0) {
    return Status::InvalidArgument(
        "distributed training requires batch_fraction == 1 (participant "
        "minibatch streams live in other processes)");
  }
  if (config.fault_plan != nullptr) {
    return Status::InvalidArgument(
        "fault injection is in-process only; distributed faults are real");
  }
  if (config.adversary != nullptr) {
    return Status::InvalidArgument(
        "adversary plans are in-process only; distributed attacks live on "
        "the participant nodes");
  }
  if (config.resume != nullptr && config.escalation.enabled) {
    return Status::InvalidArgument(
        "resume is not supported with quarantine escalation");
  }
  if (config.compress != compress::Mode::kLossless) {
    return Status::InvalidArgument(
        "distributed compression is negotiated via CoordinatorOptions, not "
        "the trainer config");
  }
  if (config.resume != nullptr &&
      options_.compress != compress::Mode::kLossless) {
    // The participants' error-feedback residuals are transient state that a
    // checkpoint cannot capture; resuming would silently drop them.
    return Status::InvalidArgument(
        "resume is not supported with lossy update compression");
  }
  if (options_.standby_port != 0 && !config.record_log) {
    return Status::InvalidArgument(
        "standby replication requires record_log (the epoch log IS the "
        "replicated state)");
  }
  UniformAggregation uniform;
  if (policy == nullptr) policy = &uniform;

  DIGFL_TRACE_SPAN("net.run");

  HflTrainingLog log;
  log.final_params = init_params;
  double lr = config.learning_rate;
  size_t start_epoch = 0;
  const size_t n = options_.num_participants;
  const size_t p = init_params.size();

  if (config.resume != nullptr) {
    const HflResumePoint& resume = *config.resume;
    if (!config.record_log) {
      return Status::InvalidArgument("resume requires record_log");
    }
    if (resume.start_epoch != resume.log.num_epochs()) {
      return Status::InvalidArgument(
          "resume point epoch does not match its log prefix");
    }
    if (resume.start_epoch > 0 && resume.log.num_participants() != n) {
      return Status::InvalidArgument(
          "resume point participant count mismatch");
    }
    if (resume.log.final_params.size() != p) {
      return Status::InvalidArgument("resume point parameter size mismatch");
    }
    if (!resume.batch_rng_states.empty()) {
      return Status::InvalidArgument(
          "distributed resume cannot restore minibatch RNG streams");
    }
    log = resume.log;
    lr = resume.learning_rate;
    start_epoch = resume.start_epoch;
    if (start_epoch >= config.epochs) return log;
  }

  // Interned per-participant comm channels; unlike the in-process trainer
  // these record *measured* framed bytes (preamble + header + payload +
  // CRC), drained from each MsgChannel after every round.
  std::vector<CommMeter::ChannelId> ch_down(n), ch_up(n);
  std::vector<telemetry::Counter*> bytes_down(n, nullptr);
  std::vector<telemetry::Counter*> bytes_up(n, nullptr);
  for (size_t i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    ch_down[i] = log.comm.Channel("coordinator->participant" + id);
    ch_up[i] = log.comm.Channel("participant" + id + "->coordinator");
    bytes_down[i] = telemetry::CounterHandle(
        "net.participant_bytes_total",
        {{"participant", id}, {"direction", "down"}});
    bytes_up[i] = telemetry::CounterHandle(
        "net.participant_bytes_total",
        {{"participant", id}, {"direction", "up"}});
  }

  // Byzantine escalation state (see hfl/fed_sgd.cc for the in-process
  // twin); nullptr when disabled keeps the golden path untouched.
  std::unique_ptr<QuarantineEscalator> escalator;
  if (config.escalation.enabled) {
    escalator = std::make_unique<QuarantineEscalator>(n, config.escalation);
  }

  const bool obs = telemetry::ObservabilityEnabled();

  // Replication state (DESIGN.md §14). The primary keeps a private φ̂
  // accumulator fed from the same log the checkpoint hook sees, so every
  // shipped record carries the exact accumulator row of its boundary; the
  // catch-up loop below covers resume prefixes. The channel lives on this
  // thread only — no locking against Shutdown/Kill is needed because both
  // only touch listener/slots.
  const bool replicate = options_.standby_port != 0;
  std::unique_ptr<HflPhiAccumulator> repl_phi;
  std::unique_ptr<MsgChannel> repl_channel;
  if (replicate) repl_phi = std::make_unique<HflPhiAccumulator>(n);

  const auto halt_hit = [this](HaltSite site, size_t epoch) {
    return options_.halt.site == site && options_.halt.epoch == epoch;
  };

  for (size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    DIGFL_TRACE_SPAN("net.round");
    if (fenced_.load(std::memory_order_relaxed)) {
      return Status::FailedPrecondition(
          "coordinator generation " +
          std::to_string(options_.leader_generation) +
          " is fenced: a participant reported a newer leader");
    }
    Timer epoch_timer;
    const double round_start = obs ? telemetry::ObsNow() : 0.0;
    double aggregate_seconds = 0.0;
    double validate_seconds = 0.0;
    next_epoch_hint_.store(epoch, std::memory_order_relaxed);

    // Take every connected channel out of its slot: each is owned by
    // exactly one worker thread for the duration of the round. A
    // permanently quarantined participant's channel stays parked — it gets
    // no broadcast and no round trip.
    std::vector<std::unique_ptr<MsgChannel>> channels(n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < n; ++i) {
        if (escalator != nullptr && escalator->ledger().IsQuarantined(i)) {
          continue;
        }
        channels[i] = std::move(slots_[i]);
      }
    }

    RoundRequestMsg request;
    request.epoch = epoch;
    request.learning_rate = lr;
    request.local_steps = config.local_steps;
    request.params = log.final_params;
    if (options_.leader_generation > 0) {
      request.generation = options_.leader_generation;
    }
    if (obs) {
      request.trace = telemetry::TraceContext{
          merger_.run_id(), epoch,
          telemetry::RoundSpanId(merger_.run_id(), epoch)};
    }
    const std::string request_payload = EncodeRoundRequest(request);

    if (halt_hit(HaltSite::kBeforeBroadcast, epoch)) {
      return Status::FailedPrecondition(
          "primary halted before broadcast of epoch " +
          std::to_string(epoch) + " (halt plan)");
    }

    std::vector<uint8_t> present(n, 0);
    std::vector<Vec> deltas(n);
    std::vector<uint64_t> retries(n, 0);
    std::vector<uint64_t> round_bytes_out(n, 0);
    std::vector<uint64_t> round_bytes_in(n, 0);
    // Publish the round to the accept thread (mid-round rejoin, satellite
    // of DESIGN.md §14): from here until `active` clears, a reconnecting
    // participant whose index has no live channel is handed this round's
    // broadcast by a late worker. The primary spawn set is decided inside
    // the same critical section — once the window is open the accept
    // thread may refill null entries, so the training thread must not
    // read `channels` again until every worker is joined.
    std::vector<size_t> primary;
    primary.reserve(n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < n; ++i) {
        if (channels[i] != nullptr) primary.push_back(i);
      }
      live_round_.active = true;
      live_round_.epoch = epoch;
      live_round_.request_payload = &request_payload;
      live_round_.num_params = p;
      live_round_.channels = &channels;
      live_round_.deltas = &deltas;
      live_round_.present = &present;
      live_round_.retries = &retries;
      live_round_.bytes_out = &round_bytes_out;
      live_round_.bytes_in = &round_bytes_in;
    }
    std::vector<std::thread> workers;
    workers.reserve(primary.size());
    for (size_t i : primary) {
      workers.emplace_back(&Coordinator::RoundWorker, this, i, &channels,
                           epoch, std::cref(request_payload), p, &deltas,
                           &present, &retries, &round_bytes_out,
                           &round_bytes_in);
    }
    for (std::thread& worker : workers) worker.join();
    // Close the rejoin window, then wait out any late workers it admitted.
    std::vector<std::thread> late_workers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live_round_.active = false;
      late_workers = std::move(live_round_.late_workers);
      live_round_.late_workers.clear();
    }
    for (std::thread& worker : late_workers) worker.join();

    // Post-join bookkeeping on the training thread only: fold measured
    // bytes into the log, convert absences into dropouts, return healthy
    // channels to their slots.
    for (size_t i = 0; i < n; ++i) {
      log.comm.Record(ch_down[i], round_bytes_out[i]);
      log.comm.Record(ch_up[i], round_bytes_in[i]);
      if (bytes_down[i] != nullptr) bytes_down[i]->Increment(round_bytes_out[i]);
      if (bytes_up[i] != nullptr) bytes_up[i]->Increment(round_bytes_in[i]);
      log.faults.straggler_retries += retries[i];
      if (!present[i]) {
        deltas[i] = vec::Zeros(p);
        // An escalated participant's absence is the server's decision, not
        // a dropout.
        if (escalator == nullptr || !escalator->ledger().IsQuarantined(i)) {
          ++log.faults.dropouts;
          DIGFL_COUNTER_ADD_LABELED("fault.dropout_total", 1,
                                    {"protocol", "hfl"});
        }
      }
      if (channels[i] != nullptr && channels[i]->valid()) {
        std::lock_guard<std::mutex> lock(mu_);
        if (slots_[i] == nullptr) slots_[i] = std::move(channels[i]);
      }
    }

    if (halt_hit(HaltSite::kAfterCollect, epoch)) {
      return Status::FailedPrecondition(
          "primary halted after collecting epoch " + std::to_string(epoch) +
          " (halt plan)");
    }

    // From here the epoch is byte-for-byte the RunFedSgd commit sequence:
    // quarantine gate, policy weights, aggregate, record, θ update,
    // validation, decay, checkpoint hook.
    {
      DIGFL_TRACE_SPAN("hfl.quarantine_gate");
      const double median_norm = MedianPresentUpdateNorm(deltas, present);
      for (size_t i = 0; i < n; ++i) {
        if (!present[i]) continue;
        const QuarantineReason reason =
            InspectUpdate(deltas[i], config.quarantine, median_norm);
        if (reason != QuarantineReason::kAccepted) {
          double sum_sq = 0.0;
          for (double v : deltas[i]) {
            if (std::isfinite(v)) sum_sq += v * v;
          }
          log.faults.RecordQuarantine(epoch, i, reason, std::sqrt(sum_sq));
          present[i] = 0;
          deltas[i] = vec::Zeros(p);
          if (escalator != nullptr) {
            escalator->RecordGateRejection(i, epoch, reason);
          }
        }
      }
    }

    Vec global_gradient;
    std::vector<double> weights;
    {
      DIGFL_TRACE_SPAN("hfl.aggregate");
      const double agg_start = obs ? telemetry::ObsNow() : 0.0;
      DIGFL_ASSIGN_OR_RETURN(
          weights, policy->Weights(epoch, log.final_params, lr, deltas,
                                   present, server));
      if (weights.size() != deltas.size()) {
        return Status::Internal("aggregation policy returned bad weight count");
      }
      for (size_t i = 0; i < n; ++i) {
        if (!present[i]) weights[i] = 0.0;
      }
      if (config.aggregator != nullptr) {
        DIGFL_ASSIGN_OR_RETURN(
            global_gradient,
            config.aggregator->Aggregate(deltas, weights, present));
      } else {
        DIGFL_ASSIGN_OR_RETURN(global_gradient,
                               HflServer::AggregateWeighted(deltas, weights));
      }
      if (obs) aggregate_seconds = telemetry::ObsNow() - agg_start;
    }

    // φ̂-driven escalation on this epoch's masked DIG-FL estimates; the
    // same doubles in the same order as the in-process trainer.
    if (escalator != nullptr) {
      size_t num_present = 0;
      for (uint8_t pr : present) num_present += (pr != 0);
      if (num_present > 0) {
        DIGFL_TRACE_SPAN("hfl.phi_escalation");
        Vec v;
        DIGFL_ASSIGN_OR_RETURN(v,
                               server.ValidationGradient(log.final_params));
        std::vector<double> phi(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
          if (!present[i]) continue;
          phi[i] = vec::Dot(v, deltas[i]) / static_cast<double>(num_present);
        }
        for (size_t i : escalator->ObservePhi(epoch, phi, present)) {
          log.faults.RecordQuarantine(epoch, i, QuarantineReason::kPhiScore,
                                      escalator->phi_ewma()[i]);
        }
      }
    }

    if (config.record_log) {
      HflEpochRecord record;
      record.params_before = log.final_params;
      record.deltas = deltas;
      record.learning_rate = lr;
      record.weights = weights;
      record.present = present;
      log.epochs.push_back(std::move(record));
    }

    vec::Axpy(-1.0, global_gradient, log.final_params);

    double val_loss = 0.0;
    double val_acc = 0.0;
    {
      DIGFL_TRACE_SPAN("hfl.validate");
      const double val_start = obs ? telemetry::ObsNow() : 0.0;
      DIGFL_ASSIGN_OR_RETURN(val_loss,
                             server.ValidationLoss(log.final_params));
      DIGFL_ASSIGN_OR_RETURN(val_acc,
                             server.ValidationAccuracy(log.final_params));
      if (obs) validate_seconds = telemetry::ObsNow() - val_start;
    }
    log.validation_loss.push_back(val_loss);
    log.validation_accuracy.push_back(val_acc);

    if (obs) {
      merger_.RecordRoundSpan(epoch, round_start,
                              telemetry::ObsNow() - round_start,
                              aggregate_seconds, validate_seconds);
    }

    DIGFL_EMIT_EVENT("net.round_seconds", epoch_timer.ElapsedSeconds(),
                     {"epoch", std::to_string(epoch)});
    DIGFL_EMIT_EVENT("hfl.validation_loss", val_loss,
                     {"epoch", std::to_string(epoch)});

    lr *= config.lr_decay;

    if (config.checkpoint_hook != nullptr) {
      // Distributed runs have no coordinator-side minibatch streams; the
      // hook sees an empty RNG set (valid because batch_fraction == 1).
      static const std::vector<Rng> kNoBatchRngs;
      const HflTrainerView view{epoch + 1, lr, kNoBatchRngs, log};
      DIGFL_RETURN_IF_ERROR(config.checkpoint_hook->OnEpoch(view));
    }

    if (halt_hit(HaltSite::kAfterCheckpoint, epoch)) {
      return Status::FailedPrecondition(
          "primary halted after the checkpoint of epoch " +
          std::to_string(epoch) + " (halt plan)");
    }

    if (replicate) {
      // Ship the write-ahead record for this boundary. Catch-up first: on a
      // resumed run the accumulator replays the restored log prefix, the
      // same loop HflStoreHook runs (determinism contract of
      // core/phi_accumulator.h keeps both bitwise identical).
      Status shipped =
          epoch >= options_.replication_blackout_epoch
              ? Status::Unavailable(
                    "replication link blacked out (partition drill)")
              : Status::OK();
      while (shipped.ok() &&
             repl_phi->epochs_consumed() < log.num_epochs()) {
        shipped =
            repl_phi->Consume(server, log.epochs[repl_phi->epochs_consumed()]);
      }
      EpochLogAppendMsg record;
      if (shipped.ok()) {
        record.generation = options_.leader_generation;
        record.config_digest = options_.config_digest;
        record.epoch = epoch + 1;
        Result<std::string> image = ckpt::EncodeHflCheckpoint(
            epoch + 1, lr, /*batch_rng_states=*/{}, log, *repl_phi);
        shipped = image.status();
        if (shipped.ok()) {
          record.image = std::move(*image);
          record.phi_epoch = repl_phi->per_epoch().back();
          shipped = ShipEpochRecord(&repl_channel, record);
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (shipped.ok()) {
        ++stats_.replication_records;
      } else {
        // Replication is best-effort from the primary's perspective: the
        // standby promotes from its last applied boundary and recomputes
        // the missing epochs deterministically, so training never stalls
        // on a slow or partitioned standby.
        ++stats_.replication_failures;
      }
    }

    if (halt_hit(HaltSite::kEpochEnd, epoch)) {
      return Status::FailedPrecondition(
          "primary halted at the end of epoch " + std::to_string(epoch) +
          " (halt plan)");
    }
    MaybeCrash("net.epoch.end");
  }
  next_epoch_hint_.store(config.epochs, std::memory_order_relaxed);

  if (replicate && config.epochs <= options_.replication_blackout_epoch) {
    // Clean completion: tell the standby not to promote. Best effort — a
    // lost farewell just means the standby promotes into an empty
    // federation and its run times out typed. A blacked-out link swallows
    // the farewell like everything else.
    ShutdownMsg farewell;
    farewell.reason = "primary completed";
    if (repl_channel == nullptr || !repl_channel->valid()) {
      repl_channel.reset();
      (void)DialStandby(&repl_channel);
    }
    if (repl_channel != nullptr && repl_channel->valid()) {
      (void)repl_channel->Send(MsgType::kShutdown, EncodeShutdown(farewell),
                               options_.replication_timeout_ms);
    }
  }
  return log;
}

Result<Vec> Coordinator::RequestHvp(size_t participant, const Vec& params,
                                    const Vec& v, int timeout_ms) {
  if (participant >= options_.num_participants) {
    return Status::InvalidArgument("participant id out of range");
  }
  if (params.size() != v.size() || params.empty()) {
    return Status::InvalidArgument("params/v size mismatch");
  }
  std::unique_ptr<MsgChannel> channel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    channel = std::move(slots_[participant]);
  }
  if (channel == nullptr) {
    return Status::Unavailable("participant " + std::to_string(participant) +
                               " is not connected");
  }

  DIGFL_TRACE_SPAN("net.hvp");
  HvpRequestMsg request;
  request.request_id = hvp_seq_.fetch_add(1, std::memory_order_relaxed);
  request.params = params;
  request.v = v;

  Status failure = channel->Send(MsgType::kHvpRequest,
                                 EncodeHvpRequest(request), timeout_ms);
  while (failure.ok()) {
    Result<Frame> frame = channel->Recv(timeout_ms);
    if (!frame.ok()) {
      failure = frame.status();
      break;
    }
    const MsgType type = static_cast<MsgType>(frame->type);
    // Late round replies from an abandoned round may still be queued ahead
    // of the HVP reply; skip them.
    if (type == MsgType::kRoundReply) continue;
    if (type != MsgType::kHvpReply) {
      failure = Status::InvalidArgument("unexpected frame awaiting hvp");
      break;
    }
    Result<HvpReplyMsg> reply = DecodeHvpReply(frame->payload);
    if (!reply.ok()) {
      failure = reply.status();
      break;
    }
    if (reply->request_id < request.request_id) continue;
    if (reply->request_id != request.request_id ||
        reply->participant_id != participant ||
        reply->hvp.size() != params.size()) {
      failure = Status::InvalidArgument("hvp reply shape mismatch");
      break;
    }
    Vec hvp = std::move(reply->hvp);
    std::lock_guard<std::mutex> lock(mu_);
    if (slots_[participant] == nullptr) {
      slots_[participant] = std::move(channel);
    }
    return hvp;
  }

  channel->Close();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.conn_errors;
  DIGFL_COUNTER_ADD("net.conn_errors_total", 1);
  return failure;
}

telemetry::FederationReport Coordinator::CollectFederationReport(
    std::string run_id) const {
  return merger_.Build(telemetry::CollectRunReport(std::move(run_id)));
}

Status Coordinator::DialStandby(std::unique_ptr<MsgChannel>* channel) {
  Transport* transport =
      options_.transport != nullptr ? options_.transport : TcpTransport();
  DIGFL_ASSIGN_OR_RETURN(
      std::unique_ptr<Conn> conn,
      transport->Connect(options_.standby_host, options_.standby_port,
                         options_.replication_timeout_ms));
  auto fresh = std::make_unique<MsgChannel>(std::move(conn), options_.limits);
  // Client half of the DIGFLNET1 preamble exchange (channel.cc's
  // ClientHandshake, minus Hello — records authenticate themselves).
  DIGFL_RETURN_IF_ERROR(
      fresh->SendRaw(EncodePreamble(), options_.replication_timeout_ms));
  char preamble[kPreambleLen];
  DIGFL_RETURN_IF_ERROR(fresh->RecvRaw(preamble, kPreambleLen,
                                       options_.replication_timeout_ms));
  DIGFL_RETURN_IF_ERROR(
      ValidatePreamble(std::string_view(preamble, kPreambleLen)));
  *channel = std::move(fresh);
  return Status::OK();
}

Status Coordinator::ShipEpochRecord(std::unique_ptr<MsgChannel>* channel,
                                    const EpochLogAppendMsg& record) {
  const std::string payload = EncodeEpochLogAppend(record);
  const auto ship_once = [&]() -> Status {
    if (*channel == nullptr || !(*channel)->valid()) {
      channel->reset();
      DIGFL_RETURN_IF_ERROR(DialStandby(channel));
    }
    DIGFL_RETURN_IF_ERROR((*channel)->Send(MsgType::kEpochLogAppend, payload,
                                           options_.replication_timeout_ms));
    DIGFL_ASSIGN_OR_RETURN(
        Frame frame, (*channel)->Recv(options_.replication_timeout_ms));
    if (static_cast<MsgType>(frame.type) != MsgType::kEpochLogAck) {
      return Status::InvalidArgument(
          "unexpected frame on the replication channel");
    }
    DIGFL_ASSIGN_OR_RETURN(EpochLogAckMsg ack,
                           DecodeEpochLogAck(frame.payload));
    if (ack.epoch != record.epoch) {
      return Status::InvalidArgument("replication ack names epoch " +
                                     std::to_string(ack.epoch) +
                                     ", record carried " +
                                     std::to_string(record.epoch));
    }
    return Status::OK();
  };
  Status shipped = ship_once();
  if (shipped.ok()) return shipped;
  // One redial retry: a standby that cut the connection (or a replication
  // link that dropped mid-record) gets a second chance within the epoch.
  if (*channel != nullptr) (*channel)->Close();
  channel->reset();
  return ship_once();
}

void Coordinator::Kill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot == nullptr) continue;
    slot->Close();  // no farewell: participants see a bare connection loss
    slot.reset();
  }
}

void Coordinator::Shutdown(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listener_ != nullptr) listener_->Close();

  ShutdownMsg message;
  message.reason = reason;
  const std::string payload = EncodeShutdown(message);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot == nullptr) continue;
    // Best-effort farewell; the participant also handles a bare close.
    (void)slot->Send(MsgType::kShutdown, payload, kShutdownSendTimeoutMs);
    slot->Close();
    slot.reset();
  }
}

Result<ckpt::HflCheckpointedRun> RunDistributedFedSgdWithCheckpoints(
    Coordinator& coordinator, HflServer& server, const Vec& init_params,
    FedSgdConfig config, const ckpt::CheckpointRunOptions& options,
    AggregationPolicy* policy) {
  if (!config.record_log) {
    return Status::InvalidArgument("checkpointed runs require record_log");
  }
  if (config.checkpoint_hook != nullptr || config.resume != nullptr) {
    return Status::InvalidArgument(
        "checkpoint_hook/resume are managed by "
        "RunDistributedFedSgdWithCheckpoints");
  }
  if (options.every == 0) {
    return Status::InvalidArgument("checkpoint interval must be >= 1");
  }
  DIGFL_TRACE_SPAN("net.ckpt.run");
  // A positive leader generation claims the store, fencing any stale
  // ex-primary sharing the directory (ckpt/store.h).
  DIGFL_ASSIGN_OR_RETURN(
      ckpt::CheckpointStore store,
      ckpt::CheckpointStore::Open(options.dir, options.keep,
                                  coordinator.leader_generation()));

  ckpt::HflCheckpointedRun run;
  HflPhiAccumulator accumulator(coordinator.num_participants());
  ckpt::HflResumeLoad resume_load;
  if (options.resume) {
    DIGFL_ASSIGN_OR_RETURN(resume_load,
                           ckpt::LoadHflResumePoint(store, accumulator));
    run.checkpoints_rejected = resume_load.rejected;
    if (resume_load.resumed) {
      if (!resume_load.point.batch_rng_states.empty()) {
        return Status::InvalidArgument(
            "checkpoint carries minibatch RNG streams; it was written by an "
            "in-process run, not a distributed one");
      }
      config.resume = &resume_load.point;
      run.resumed = true;
      run.resumed_from_epoch = resume_load.epoch;
    }
  }

  ckpt::HflStoreHook hook(&store, &server, &accumulator, options.every,
                          config.epochs);
  config.checkpoint_hook = &hook;
  DIGFL_ASSIGN_OR_RETURN(
      run.log,
      coordinator.RunFederatedTraining(server, init_params, config, policy));
  run.contributions.total = accumulator.total();
  run.contributions.per_epoch = accumulator.per_epoch();
  run.checkpoints_written = hook.written();
  return run;
}

}  // namespace net
}  // namespace digfl
