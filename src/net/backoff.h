// Exponential backoff with jitter, shared by the coordinator's round
// retries and the participant's connect/reconnect loop.
//
// The delay before attempt k (0-based) is drawn uniformly from
// [base/2, base] with base = min(max_ms, initial_ms * multiplier^k) — the
// "equal jitter" scheme, which keeps a floor under the delay (so a dead
// coordinator is not hammered) while decorrelating a fleet of participants
// that all observed the same failure instant. The jitter stream is seeded,
// so a run's retry timing is reproducible.

#ifndef DIGFL_NET_BACKOFF_H_
#define DIGFL_NET_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace digfl {
namespace net {

struct BackoffPolicy {
  int initial_ms = 50;
  double multiplier = 2.0;
  int max_ms = 2000;
};

inline int BackoffDelayMs(const BackoffPolicy& policy, size_t attempt,
                          Rng& jitter) {
  double base = policy.initial_ms;
  for (size_t k = 0; k < attempt; ++k) {
    base *= policy.multiplier;
    if (base >= policy.max_ms) break;
  }
  const int capped = static_cast<int>(std::min<double>(base, policy.max_ms));
  if (capped <= 1) return capped;
  const int half = capped / 2;
  return half + static_cast<int>(jitter.UniformInt(
                    static_cast<uint64_t>(capped - half + 1)));
}

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_BACKOFF_H_
