// Transport abstraction over the byte-stream layer of src/net/.
//
// MsgChannel, Coordinator, and ParticipantNode are written against these
// three interfaces instead of the concrete POSIX sockets, so the same
// federation state machines run unmodified over:
//
//   TcpTransport()  — real loopback TCP (socket.h), the shipping default;
//   sim::SimNet     — the deterministic in-process simulator (src/sim/),
//                     which injects delay / drop / duplication / reorder /
//                     truncation / connection kills from a seeded schedule.
//
// The contract is exactly the one socket.h documents: every blocking call
// takes a deadline in milliseconds and returns the typed taxonomy
// (kDeadlineExceeded = retryable timeout, kUnavailable = peer gone,
// kInvalidArgument / kInternal = programming errors). Implementations must
// preserve that taxonomy — the retry/dropout/reconnect logic upstack
// dispatches on it.

#ifndef DIGFL_NET_TRANSPORT_H_
#define DIGFL_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "net/socket.h"

namespace digfl {
namespace net {

// One side of an established, ordered byte stream.
class Conn {
 public:
  virtual ~Conn() = default;

  virtual bool valid() const = 0;
  virtual void Close() = 0;

  // Writes all of `data` within the deadline (shared across the whole
  // write, not per chunk).
  virtual Status SendAll(std::string_view data, int timeout_ms) = 0;

  // Reads up to `len` bytes into `buf`; returns the count actually read
  // (>= 1). kUnavailable on EOF/reset, kDeadlineExceeded on timeout.
  virtual Result<size_t> RecvSome(char* buf, size_t len, int timeout_ms) = 0;

  // Reads exactly `len` bytes; the deadline covers the whole read. The
  // default loops RecvSome against a shared deadline; implementations with
  // a cheaper native path (TcpConn, SimConn) override it.
  virtual Status RecvExact(char* buf, size_t len, int timeout_ms);

  // The OS file descriptor behind this stream, or -1 when there is none
  // (simulated connections). The EpollReactor (net/reactor.h) multiplexes
  // connections that expose a handle; callers must fall back to the
  // blocking per-connection path when it returns -1.
  virtual int NativeHandle() const { return -1; }

  // Monotonic milliseconds on the clock this connection's deadlines run
  // against: steady_clock for TCP, the virtual clock for the simulator
  // (the Conn-side mirror of Transport::NowMs). Multi-step budget loops
  // (RecvExact, MsgChannel::Recv, the handshake, round collection) must
  // split their deadline with this rather than steady_clock directly —
  // otherwise a loaded host drains a real-time budget to zero and the
  // next simulated step times out instantly even though no virtual time
  // has passed.
  virtual uint64_t NowMs() const;
};

// A bound, listening endpoint.
class Listener {
 public:
  virtual ~Listener() = default;

  virtual bool valid() const = 0;
  virtual uint16_t port() const = 0;
  virtual void Close() = 0;

  // Accepts one connection; kDeadlineExceeded when none arrives in time.
  virtual Result<std::unique_ptr<Conn>> Accept(int timeout_ms) = 0;
};

// Factory for the two endpoint roles. Stateless for TCP; the simulator's
// implementation owns the virtual clock and the fault schedule.
class Transport {
 public:
  virtual ~Transport() = default;

  // Binds and listens on `port` (0 = ephemeral; read the choice back from
  // the listener's port()).
  virtual Result<std::unique_ptr<Listener>> Listen(uint16_t port) = 0;

  // Connects to host:port within the deadline. For TCP, `host` is an
  // address; the simulator routes by port and uses `host` as the dialing
  // endpoint's label in the fault schedule.
  virtual Result<std::unique_ptr<Conn>> Connect(const std::string& host,
                                                uint16_t port,
                                                int timeout_ms) = 0;

  // Monotonic milliseconds on the clock this transport's deadlines run
  // against: steady_clock for TCP, the virtual clock for the simulator.
  // Lease logic (net/standby.h) anchors absolute deadlines to this so a
  // burst of unrelated connections cannot keep resetting a relative
  // timeout — and so the lease is deterministic under simulation.
  virtual uint64_t NowMs() const;
};

// Wraps an already-connected TcpConn in the Conn interface (the accept path
// and tests hand concrete sockets to MsgChannel through this).
std::unique_ptr<Conn> WrapTcpConn(TcpConn conn);

// The process-wide real-socket transport. Stateless; never null.
Transport* TcpTransport();

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_TRANSPORT_H_
