// Typed message codecs for the HFL federation protocol (DESIGN.md §10).
//
// Payloads use the same little-endian primitive codec as the checkpoint
// container (ckpt::ByteSink / ckpt::ByteSource): doubles travel as raw
// IEEE-754 bits, so a parameter vector round-trips the network bitwise —
// the property that makes a distributed run's φ̂ exactly equal to the
// in-process RunFedSgd + Algorithm #2 result. Every decoder is strict:
// truncated payloads, trailing bytes, and implausible lengths are typed
// Status errors, never crashes or over-allocations.
//
// Message flow:
//   participant → coordinator   Hello         (after the raw preamble)
//   coordinator → participant   HelloAck
//   coordinator → participant   RoundRequest  (θ_{t-1}, α_t down)
//   participant → coordinator   RoundReply    (δ_{t,i} up)
//   coordinator → participant   HvpRequest    (Algorithm #1 second-order)
//   participant → coordinator   HvpReply      (Ĥ_i(θ)·v up)
//   coordinator → participant   Shutdown

#ifndef DIGFL_NET_MESSAGES_H_
#define DIGFL_NET_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "compress/quantize.h"
#include "telemetry/federation.h"
#include "tensor/vec.h"

namespace digfl {
namespace net {

// Frame type ids (wire.h Frame::type). Values are part of the wire format;
// never renumber.
enum class MsgType : uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kRoundRequest = 3,
  kRoundReply = 4,
  kHvpRequest = 5,
  kHvpReply = 6,
  kShutdown = 7,
  // Primary → standby replication stream (DESIGN.md §14).
  kEpochLogAppend = 8,
  kEpochLogAck = 9,
};

const char* MsgTypeToString(MsgType type);

// Hierarchical aggregation (DESIGN.md §15): optional TREE1 trailing blocks
// carried by Hello / RoundRequest / RoundReply between tree roles. Absent
// blocks add zero bytes, so leaf→participant traffic stays bitwise
// identical to the flat wire format — participants never see TREE1.

// Hello + TREE1: an aggregator introducing itself to its parent. `level`
// counts down from the root's children (0 = directly under the root);
// [child_begin, child_end) is the contiguous global participant range this
// subtree covers — the parent validates it against its topology before
// seating the child.
struct TreeHello {
  uint32_t level = 0;
  uint64_t child_begin = 0;
  uint64_t child_end = 0;
};

// RoundRequest + TREE1: the root's validation gradient v_t = ∇L_V(θ_{t-1}),
// shipped down the aggregator levels so leaf aggregators can fold each
// present child's ⟨v_t, δ_{t,i}⟩ locally (Lemma 1 additivity). Leaf
// aggregators strip this block before forwarding the request to
// participants.
struct TreeRoundRequest {
  Vec validation_gradient;
};

// RoundReply + TREE1: an aggregator's combined upload. The reply's `delta`
// field carries the *unweighted* partial sum Σ δ_{t,i} over present
// descendants (zeros when none are present); this block carries the covered
// range, the per-participant present mask, and the per-participant dot
// products the root needs for the φ̂ rows.
struct TreeRoundReply {
  uint64_t child_begin = 0;
  uint64_t child_end = 0;
  std::vector<uint8_t> present;  // one flag per covered participant
  std::vector<double> dots;      // ⟨v_t, δ_{t,i}⟩; 0.0 where absent
};

// Participant → coordinator, immediately after the preamble. The config
// digest commits both sides to the same federation parameters (model size,
// epochs, learning-rate schedule, seed), so a node launched with mismatched
// flags is rejected at handshake instead of silently diverging.
struct HelloMsg {
  uint64_t participant_id = 0;
  uint64_t num_params = 0;
  uint64_t config_digest = 0;
  // Leader fencing (DESIGN.md §14): the highest leader generation this node
  // has observed. A coordinator receiving a Hello that names a newer
  // generation than its own knows it has been superseded and must fence
  // itself. Absent on pre-HA nodes and when HA is off (generation 0 is
  // reserved and never encoded). Encodes as the first magic-tagged trailing
  // block, before the observability blocks.
  std::optional<uint64_t> generation;
  // Set iff the sender is a tree aggregator (never a participant).
  std::optional<TreeHello> tree;
  // Observability (DESIGN.md §13): the node's ObsNow() at Hello send time,
  // the coordinator's first (one-way) clock sample for this participant.
  // Optional fields encode as magic-tagged trailing blocks — absent fields
  // leave the payload bitwise identical to the pre-observability format.
  std::optional<double> obs_clock_seconds;
};

// Observability block on an accepting HelloAck: the run id every trace
// context of this federation will carry, plus the coordinator clock at
// accept time (informational; the symmetric per-round samples do the real
// alignment).
struct HelloAckObs {
  uint64_t run_id = 0;
  double coordinator_seconds = 0.0;
};

// Update-compression announcement on an accepting HelloAck (DESIGN.md §16):
// the coordinator instructs the participant to quantize its RoundReply
// deltas with this mode and block size. The block is only sent for lossy
// modes — lossless is the absent-block default, so an uncompressed
// federation's handshake bytes are unchanged.
struct HelloAckQuant {
  compress::Mode mode = compress::Mode::kLossless;
  uint32_t block_size = compress::kQuantBlock;
};

// Coordinator → participant handshake verdict. `next_epoch` tells a
// reconnecting node where the federation currently stands (informational).
struct HelloAckMsg {
  uint8_t accepted = 0;
  uint64_t next_epoch = 0;
  std::string message;  // reject reason when accepted == 0
  // The coordinator's leader generation. Participants remember the highest
  // accepted generation and refuse to serve any leader below it.
  std::optional<uint64_t> generation;
  std::optional<HelloAckQuant> quant;
  std::optional<HelloAckObs> obs;
};

// Coordinator → participant: compute δ for this round.
struct RoundRequestMsg {
  uint64_t epoch = 0;
  double learning_rate = 0.0;
  uint64_t local_steps = 1;
  Vec params;  // θ_{t-1}
  // Leader generation of the sending coordinator: a participant that has
  // already accepted a newer leader must not compute for a stale one.
  std::optional<uint64_t> generation;
  // Set on aggregator-level links only; stripped before the leaf →
  // participant hop.
  std::optional<TreeRoundRequest> tree;
  // Trace propagation: set iff the coordinator runs with telemetry on.
  std::optional<telemetry::TraceContext> trace;
};

// Participant → coordinator: the local update for `epoch`.
struct RoundReplyMsg {
  uint64_t epoch = 0;
  uint64_t participant_id = 0;
  Vec delta;  // δ_{t,i}; for an aggregator reply, the shard's Σ δ_{t,i}
  // Quantized upload (DESIGN.md §16): when set, the mandatory delta field
  // encodes as an empty vector and the update travels in a QNT1 trailing
  // block instead. The decoder reconstructs `delta` via Dequantize, so
  // receivers see a normal dense delta either way; `quantized` additionally
  // exposes the wire form for metering and diagnostics.
  std::optional<compress::QuantizedVec> quantized;
  // Set iff the sender is a tree aggregator.
  std::optional<TreeRoundReply> tree;
  // Telemetry shipping: the node's spans/counters/histograms since its
  // previous reply, piggybacked on the epoch-end message.
  std::optional<telemetry::TelemetryDelta> telemetry;
};

// Coordinator → participant: local Hessian-vector product request
// (DIG-FL Algorithm #1). `request_id` pairs replies with requests.
struct HvpRequestMsg {
  uint64_t request_id = 0;
  Vec params;
  Vec v;
};

struct HvpReplyMsg {
  uint64_t request_id = 0;
  uint64_t participant_id = 0;
  Vec hvp;
};

struct ShutdownMsg {
  std::string reason;
};

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeHelloAck(const HelloAckMsg& msg);
std::string EncodeRoundRequest(const RoundRequestMsg& msg);
std::string EncodeRoundReply(const RoundReplyMsg& msg);
std::string EncodeHvpRequest(const HvpRequestMsg& msg);
std::string EncodeHvpReply(const HvpReplyMsg& msg);
std::string EncodeShutdown(const ShutdownMsg& msg);

Result<HelloMsg> DecodeHello(std::string_view payload);
Result<HelloAckMsg> DecodeHelloAck(std::string_view payload);
Result<RoundRequestMsg> DecodeRoundRequest(std::string_view payload);
Result<RoundReplyMsg> DecodeRoundReply(std::string_view payload);
Result<HvpRequestMsg> DecodeHvpRequest(std::string_view payload);
Result<HvpReplyMsg> DecodeHvpReply(std::string_view payload);
Result<ShutdownMsg> DecodeShutdown(std::string_view payload);

// FNV-1a digest over the round-relevant federation parameters. Both roles
// compute it from their own flags; the handshake rejects a mismatch.
// Doubles are hashed by their IEEE-754 bit patterns.
uint64_t FederationConfigDigest(uint64_t num_params, uint64_t epochs,
                                double learning_rate, double lr_decay,
                                uint64_t local_steps, uint64_t seed);

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_MESSAGES_H_
