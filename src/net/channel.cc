#include "net/channel.h"

#include <cstdint>

#include "telemetry/telemetry.h"

namespace digfl {
namespace net {
namespace {

// Deadline arithmetic on the channel's own clock (MsgChannel::NowMs):
// steady for TCP, virtual for SimNet. Splitting a budget with
// steady_clock here would let a loaded host drain it to zero and hand a
// simulated recv an instant timeout with no virtual time elapsed.
uint64_t DeadlineOn(const MsgChannel& channel, int timeout_ms) {
  return channel.NowMs() + static_cast<uint64_t>(timeout_ms > 0 ? timeout_ms : 0);
}

int RemainingMs(const MsgChannel& channel, uint64_t deadline) {
  const uint64_t now = channel.NowMs();
  return deadline > now ? static_cast<int>(deadline - now) : 0;
}

}  // namespace

Status MsgChannel::Send(MsgType type, std::string_view payload,
                        int timeout_ms) {
  if (payload.size() > limits_.max_payload_bytes) {
    return Status::InvalidArgument("refusing to send oversized frame");
  }
  if (conn_ == nullptr) return Status::InvalidArgument("channel has no conn");
  std::string wire;
  wire.reserve(FrameWireSize(payload.size()));
  AppendFrame(&wire, static_cast<uint32_t>(type), payload);
  DIGFL_RETURN_IF_ERROR(conn_->SendAll(wire, timeout_ms));
  bytes_sent_ += wire.size();
  DIGFL_COUNTER_ADD("net.frames_sent_total", 1);
  return Status::OK();
}

Result<Frame> MsgChannel::Recv(int timeout_ms) {
  if (conn_ == nullptr) return Status::InvalidArgument("channel has no conn");
  const uint64_t deadline = DeadlineOn(*this, timeout_ms);
  char buf[16 * 1024];
  for (;;) {
    DIGFL_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder_.Next());
    if (frame.has_value()) {
      DIGFL_COUNTER_ADD("net.frames_received_total", 1);
      return std::move(*frame);
    }
    DIGFL_ASSIGN_OR_RETURN(
        size_t n,
        conn_->RecvSome(buf, sizeof(buf), RemainingMs(*this, deadline)));
    bytes_received_ += n;
    DIGFL_RETURN_IF_ERROR(decoder_.Append(std::string_view(buf, n)));
  }
}

Status MsgChannel::SendRaw(std::string_view bytes, int timeout_ms) {
  if (conn_ == nullptr) return Status::InvalidArgument("channel has no conn");
  DIGFL_RETURN_IF_ERROR(conn_->SendAll(bytes, timeout_ms));
  bytes_sent_ += bytes.size();
  return Status::OK();
}

Status MsgChannel::RecvRaw(char* buf, size_t len, int timeout_ms) {
  if (conn_ == nullptr) return Status::InvalidArgument("channel has no conn");
  DIGFL_RETURN_IF_ERROR(conn_->RecvExact(buf, len, timeout_ms));
  bytes_received_ += len;
  return Status::OK();
}

uint64_t MsgChannel::TakeBytesSent() {
  const uint64_t bytes = bytes_sent_;
  bytes_sent_ = 0;
  return bytes;
}

uint64_t MsgChannel::TakeBytesReceived() {
  const uint64_t bytes = bytes_received_;
  bytes_received_ = 0;
  return bytes;
}

Result<HelloAckMsg> ClientHandshake(MsgChannel& channel,
                                    const HelloMsg& hello, int timeout_ms) {
  DIGFL_TRACE_SPAN("net.handshake");
  const uint64_t deadline = DeadlineOn(channel, timeout_ms);
  DIGFL_RETURN_IF_ERROR(
      channel.SendRaw(EncodePreamble(), RemainingMs(channel, deadline)));
  char preamble[kPreambleLen];
  DIGFL_RETURN_IF_ERROR(channel.RecvRaw(preamble, sizeof(preamble),
                                        RemainingMs(channel, deadline)));
  DIGFL_RETURN_IF_ERROR(
      ValidatePreamble(std::string_view(preamble, sizeof(preamble))));
  DIGFL_RETURN_IF_ERROR(channel.Send(MsgType::kHello, EncodeHello(hello),
                                     RemainingMs(channel, deadline)));
  DIGFL_ASSIGN_OR_RETURN(Frame frame,
                         channel.Recv(RemainingMs(channel, deadline)));
  if (frame.type != static_cast<uint32_t>(MsgType::kHelloAck)) {
    return Status::InvalidArgument("expected HelloAck, got frame type " +
                                   std::to_string(frame.type));
  }
  DIGFL_ASSIGN_OR_RETURN(HelloAckMsg ack, DecodeHelloAck(frame.payload));
  if (!ack.accepted) {
    return Status::FailedPrecondition("coordinator rejected handshake: " +
                                      ack.message);
  }
  return ack;
}

Result<HelloMsg> ServerHandshakeBegin(MsgChannel& channel, int timeout_ms) {
  DIGFL_TRACE_SPAN("net.handshake");
  const uint64_t deadline = DeadlineOn(channel, timeout_ms);
  char preamble[kPreambleLen];
  DIGFL_RETURN_IF_ERROR(channel.RecvRaw(preamble, sizeof(preamble),
                                        RemainingMs(channel, deadline)));
  DIGFL_RETURN_IF_ERROR(
      ValidatePreamble(std::string_view(preamble, sizeof(preamble))));
  DIGFL_RETURN_IF_ERROR(
      channel.SendRaw(EncodePreamble(), RemainingMs(channel, deadline)));
  DIGFL_ASSIGN_OR_RETURN(Frame frame,
                         channel.Recv(RemainingMs(channel, deadline)));
  if (frame.type != static_cast<uint32_t>(MsgType::kHello)) {
    return Status::InvalidArgument("expected Hello, got frame type " +
                                   std::to_string(frame.type));
  }
  return DecodeHello(frame.payload);
}

Status ServerHandshakeFinish(MsgChannel& channel, const HelloAckMsg& ack,
                             int timeout_ms) {
  return channel.Send(MsgType::kHelloAck, EncodeHelloAck(ack), timeout_ms);
}

}  // namespace net
}  // namespace digfl
