// Minimal HTTP/1.0 exposition endpoint for the live metrics registry
// (DESIGN.md §13). Off by default; `digfl_node --metrics-port=P` starts one.
//
// The server owns a single accept thread: it polls Accept with a short
// deadline (so Stop() is prompt), reads one request head, answers from a
// fresh MetricsRegistry snapshot via telemetry::HandleMetricsHttpRequest,
// and closes the connection — one request per connection, no keep-alive.
// A scrape endpoint needs nothing more, and the single thread keeps the
// server trivially free of connection-state races.

#ifndef DIGFL_NET_METRICS_HTTP_H_
#define DIGFL_NET_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/result.h"
#include "net/transport.h"

namespace digfl {
namespace net {

class MetricsHttpServer {
 public:
  // Binds and starts serving (port 0 = ephemeral; read port() back).
  // `transport` defaults to real TCP.
  static Result<std::unique_ptr<MetricsHttpServer>> Start(
      uint16_t port, Transport* transport = nullptr);

  ~MetricsHttpServer();  // calls Stop()

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  uint16_t port() const { return port_; }

  // Stops the accept loop and joins the thread. Idempotent.
  void Stop();

 private:
  MetricsHttpServer() = default;

  void ServeLoop();
  void ServeOne(Conn* conn);

  std::unique_ptr<Listener> listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace net
}  // namespace digfl

#endif  // DIGFL_NET_METRICS_HTTP_H_
