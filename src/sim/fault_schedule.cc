#include "sim/fault_schedule.h"

#include "common/rng.h"

namespace digfl {
namespace sim {

namespace {

// FNV-1a over the fate key; the digest seeds a short mt19937_64 stream so
// every (message, schedule) pair draws from its own deterministic stream.
uint64_t FateKey(uint64_t seed, std::string_view label, uint64_t dial_ordinal,
                 int direction, uint64_t send_seq) {
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  mix(dial_ordinal);
  mix(static_cast<uint64_t>(direction) + 1);
  mix(send_seq);
  return h;
}

}  // namespace

const char* MessageFateToString(MessageFate fate) {
  switch (fate) {
    case MessageFate::kDeliver:   return "deliver";
    case MessageFate::kDelay:     return "delay";
    case MessageFate::kDrop:      return "drop";
    case MessageFate::kDuplicate: return "duplicate";
    case MessageFate::kReorder:   return "reorder";
    case MessageFate::kTruncate:  return "truncate";
    case MessageFate::kKillConn:  return "kill_conn";
  }
  return "unknown";
}

FateDecision DecideFate(uint64_t seed, std::string_view label,
                        uint64_t dial_ordinal, int direction,
                        uint64_t send_seq, size_t message_len,
                        const SimFaultRates& rates) {
  Rng rng(FateKey(seed, label, dial_ordinal, direction, send_seq));
  FateDecision decision;
  const uint32_t span = rates.max_delay_ms > 0 ? rates.max_delay_ms : 1;
  if (rng.Bernoulli(rates.kill_conn_rate)) {
    decision.fate = MessageFate::kKillConn;
  } else if (rng.Bernoulli(rates.truncate_rate)) {
    if (message_len < 2) {
      decision.fate = MessageFate::kKillConn;
    } else {
      decision.fate = MessageFate::kTruncate;
      decision.truncate_at =
          1 + static_cast<size_t>(rng.UniformInt(uint64_t{message_len - 1}));
    }
  } else if (rng.Bernoulli(rates.drop_rate)) {
    decision.fate = MessageFate::kDrop;
  } else if (rng.Bernoulli(rates.duplicate_rate)) {
    decision.fate = MessageFate::kDuplicate;
    decision.delay_ms = 1 + static_cast<uint32_t>(rng.UniformInt(span));
  } else if (rng.Bernoulli(rates.reorder_rate)) {
    decision.fate = MessageFate::kReorder;
    decision.delay_ms = 1 + static_cast<uint32_t>(rng.UniformInt(span));
  } else if (rng.Bernoulli(rates.delay_rate)) {
    decision.fate = MessageFate::kDelay;
    decision.delay_ms = 1 + static_cast<uint32_t>(rng.UniformInt(span));
  }
  return decision;
}

SimFaultRates RatesFromSeed(uint64_t seed) {
  Rng rng(seed ^ 0x5eedfau);
  SimFaultRates rates;
  // Always some latency chaos; lethal classes toggle per seed so the swarm
  // covers both "noisy but complete" and "actively hostile" schedules.
  rates.delay_rate = rng.Uniform(0.05, 0.35);
  rates.max_delay_ms = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{20}));
  if (rng.Bernoulli(0.5)) rates.reorder_rate = rng.Uniform(0.0, 0.15);
  if (rng.Bernoulli(0.5)) rates.duplicate_rate = rng.Uniform(0.0, 0.15);
  if (rng.Bernoulli(0.4)) rates.drop_rate = rng.Uniform(0.0, 0.08);
  if (rng.Bernoulli(0.3)) rates.truncate_rate = rng.Uniform(0.0, 0.05);
  if (rng.Bernoulli(0.3)) rates.kill_conn_rate = rng.Uniform(0.0, 0.05);
  if (rng.Bernoulli(0.3)) rates.partition_rate = rng.Uniform(0.2, 0.8);
  return rates;
}

PartitionWindow PartitionWindowFor(uint64_t seed, std::string_view label,
                                   const SimFaultRates& rates) {
  PartitionWindow window;
  if (rates.partition_rate <= 0.0) return window;
  Rng rng(FateKey(seed ^ 0x9a47171710eull, label, 0, 0, 0));
  if (!rng.Bernoulli(rates.partition_rate)) return window;
  // Windows land early in the run (rounds are short in virtual time) and
  // span a few round-trips, so a partitioned participant realizes as a
  // burst of dropout epochs followed by a reconnect.
  window.start_ms = rng.UniformInt(uint64_t{400});
  window.end_ms = window.start_ms + 20 + rng.UniformInt(uint64_t{130});
  return window;
}

}  // namespace sim
}  // namespace digfl
