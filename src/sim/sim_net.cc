#include "sim/sim_net.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <utility>
#include <vector>

namespace digfl {
namespace sim {

namespace {

constexpr int kDefaultGraceUs = 800;

int GraceFromEnv() {
  const char* env = std::getenv("DIGFL_SIM_GRACE_US");
  if (env == nullptr || *env == '\0') return kDefaultGraceUs;
  const int value = std::atoi(env);
  return value > 0 ? value : kDefaultGraceUs;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal state. One global mutex serializes every simulator transition;
// the protected state is tiny and the protected sections are short, so the
// single lock is not a bottleneck at test scale and makes the event
// ordering trivially sound.

namespace {

// One direction-endpoint of a simulated connection: the bytes delivered to
// it, its liveness, and the identity that keys its *outgoing* fates.
struct Endpoint {
  std::string inbox;       // delivered, unread bytes
  bool open = true;        // this side has not closed/been killed
  bool eof = false;        // peer closed and all in-flight bytes flushed
  // FIFO watermark: no later normal delivery may be scheduled before this
  // virtual instant (reorder/duplicate fates deliberately bypass it).
  uint64_t last_sched_due = 0;
  std::string label;       // dialing node's label (shared by both ends)
  uint64_t dial_ordinal = 0;
  int direction = 0;       // 0 = dialer-to-acceptor, 1 = reverse
  uint64_t send_seq = 0;
  std::weak_ptr<Endpoint> peer;
};

struct ListenerState {
  uint16_t port = 0;
  bool open = true;
  std::deque<std::shared_ptr<Endpoint>> pending;
};

struct Event {
  uint64_t due = 0;
  uint64_t seq = 0;  // global tiebreak: FIFO among same-instant events
  enum class Kind : uint8_t { kDeliver, kEof } kind = Kind::kDeliver;
  std::shared_ptr<Endpoint> target;
  std::string bytes;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};

}  // namespace

struct SimNet::State {
  mutable std::mutex mu;
  std::condition_variable cv;

  SimNetOptions options;
  int grace_us = kDefaultGraceUs;

  uint64_t virtual_now = 0;
  bool exploded = false;
  // While positive, AdvanceClock is disabled (see SimNet::HoldClock).
  int clock_holds = 0;
  uint64_t event_seq = 0;
  // Bumped on every state transition; blocked threads use it to detect
  // quiescence (no transition for a full grace window).
  uint64_t activity = 0;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events;
  std::map<uint16_t, std::shared_ptr<ListenerState>> listeners;
  uint16_t next_ephemeral_port = 40000;
  std::map<std::string, uint64_t> dial_counts;
  std::map<std::string, PartitionWindow> partitions;
  // Virtual deadlines of currently blocked operations: the clock-advance
  // target always includes the earliest one, which is what makes every
  // blocking call provably terminate.
  std::multiset<uint64_t> waiter_deadlines;

  SimNetStats stats;

  // --- everything below requires mu to be held. ---

  void Bump() {
    ++activity;
    cv.notify_all();
  }

  bool InPartition(const std::string& label) {
    auto it = partitions.find(label);
    if (it == partitions.end()) {
      it = partitions
               .emplace(label, PartitionWindowFor(options.seed, label,
                                                  options.rates))
               .first;
    }
    return it->second.Contains(virtual_now);
  }

  void ApplyEvent(const Event& event) {
    if (event.kind == Event::Kind::kEof) {
      event.target->eof = true;
    } else if (event.target->open && !event.target->eof) {
      event.target->inbox += event.bytes;
      ++stats.deliveries;
    }
  }

  void RunDueEvents() {
    while (!events.empty() && events.top().due <= virtual_now) {
      const Event event = events.top();
      events.pop();
      ApplyEvent(event);
    }
  }

  // Schedules `bytes` (or, with empty bytes and kEof, the end-of-stream
  // marker) for delivery to `target`. Normal traffic respects the FIFO
  // watermark; reorder/duplicate copies pass advance_watermark = false so
  // later sends may overtake them.
  void Schedule(const std::shared_ptr<Endpoint>& target, Event::Kind kind,
                std::string bytes, uint32_t delay_ms, bool advance_watermark) {
    uint64_t due = std::max(virtual_now + delay_ms, target->last_sched_due);
    if (advance_watermark) target->last_sched_due = due;
    Event event;
    event.due = due;
    event.seq = ++event_seq;
    event.kind = kind;
    event.target = target;
    event.bytes = std::move(bytes);
    if (due <= virtual_now) {
      ApplyEvent(event);
    } else {
      events.push(std::move(event));
    }
    Bump();
  }

  // Cuts a connection: the closing side goes dead immediately; the peer
  // sees every already-scheduled byte, then EOF.
  void CloseSide(const std::shared_ptr<Endpoint>& mine) {
    if (!mine->open) return;
    mine->open = false;
    if (auto peer = mine->peer.lock()) {
      Schedule(peer, Event::Kind::kEof, "", 0, /*advance_watermark=*/true);
    }
    Bump();
  }

  void Explode() {
    exploded = true;
    Bump();
  }

  // Advances the virtual clock to the next interesting instant. Called by a
  // blocked thread that has observed a full grace window of quiescence.
  void AdvanceClock() {
    uint64_t target = virtual_now;
    bool have_target = false;
    if (!events.empty()) {
      target = events.top().due;
      have_target = true;
    }
    if (!waiter_deadlines.empty()) {
      const uint64_t earliest = *waiter_deadlines.begin();
      target = have_target ? std::min(target, earliest) : earliest;
      have_target = true;
    }
    if (!have_target || target <= virtual_now) {
      RunDueEvents();
      return;
    }
    if (target > options.horizon_ms) {
      Explode();
      return;
    }
    virtual_now = target;
    ++stats.clock_advances;
    RunDueEvents();
    Bump();
  }

  // Blocks until `pred` holds, the virtual deadline passes, or the net
  // explodes. Returns true iff `pred` held. The caller owns the lock.
  template <typename Pred>
  bool WaitUntil(std::unique_lock<std::mutex>& lock, uint64_t deadline,
                 Pred pred) {
    const auto it = waiter_deadlines.insert(deadline);
    bool satisfied = false;
    for (;;) {
      if (pred()) {
        satisfied = true;
        break;
      }
      if (exploded || virtual_now >= deadline) break;
      const uint64_t seen = activity;
      const bool woken = cv.wait_for(
          lock, std::chrono::microseconds(grace_us),
          [&] { return activity != seen || exploded || pred(); });
      if (woken) continue;
      // A harness holding the clock means real-time silence is expected
      // (threads are still being spawned or scheduled); keep blocking and
      // rely on activity bumps for progress.
      if (clock_holds > 0) continue;
      // A full grace window with no simulator transition while we (and
      // possibly others) block on virtual deadlines: the simulation is
      // quiescent, so virtual time may move.
      AdvanceClock();
    }
    waiter_deadlines.erase(it);
    return satisfied;
  }

  uint64_t DeadlineFor(int timeout_ms) const {
    return virtual_now + static_cast<uint64_t>(std::max(timeout_ms, 0));
  }
};

// ---------------------------------------------------------------------------
// Conn / Listener implementations.

namespace {

Status HorizonError() {
  return Status::DeadlineExceeded(
      "simulated network horizon exceeded (virtual clock wedged past "
      "horizon_ms)");
}

class SimConn : public net::Conn {
 public:
  SimConn(std::shared_ptr<SimNet::State> state, std::shared_ptr<Endpoint> end)
      : state_(std::move(state)), end_(std::move(end)) {}

  ~SimConn() override { Close(); }

  bool valid() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return end_->open;
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->CloseSide(end_);
  }

  Status SendAll(std::string_view data, int timeout_ms) override {
    (void)timeout_ms;  // sim buffers are unbounded; sends never block
    std::lock_guard<std::mutex> lock(state_->mu);
    SimNet::State& s = *state_;
    if (s.exploded) return HorizonError();
    if (!end_->open) return Status::Unavailable("connection closed");
    auto peer = end_->peer.lock();
    if (peer == nullptr || !peer->open) {
      return Status::Unavailable("peer closed the connection");
    }
    ++s.stats.messages_sent;
    if (s.InPartition(end_->label)) {
      ++s.stats.partition_drops;
      return Status::OK();  // the bytes vanish into the partition
    }
    const uint64_t send_seq = end_->send_seq++;
    FateDecision fate = DecideFate(s.options.seed, end_->label,
                                   end_->dial_ordinal, end_->direction,
                                   send_seq, data.size(), s.options.rates);
    // The first send on each side is the raw handshake preamble — the one
    // payload that is not a self-delimiting frame, so it must arrive exactly
    // once and first or the stream is garbage no real byte stream would
    // produce. Duplicating degrades to a plain delivery and reordering to a
    // FIFO delay; losing it (drop/truncate/kill) stays fair game.
    if (send_seq == 0) {
      if (fate.fate == MessageFate::kDuplicate) {
        fate.fate = MessageFate::kDeliver;
      } else if (fate.fate == MessageFate::kReorder) {
        fate.fate = MessageFate::kDelay;
      }
    }
    switch (fate.fate) {
      case MessageFate::kKillConn:
        ++s.stats.conns_killed;
        s.CloseSide(end_);
        return Status::Unavailable("connection reset by simulated fault");
      case MessageFate::kTruncate:
        ++s.stats.truncated;
        s.Schedule(peer, Event::Kind::kDeliver,
                   std::string(data.substr(0, fate.truncate_at)), 0,
                   /*advance_watermark=*/true);
        s.CloseSide(end_);  // schedules the EOF after the prefix
        return Status::OK();
      case MessageFate::kDrop:
        ++s.stats.dropped;
        return Status::OK();
      case MessageFate::kDuplicate:
        ++s.stats.duplicated;
        s.Schedule(peer, Event::Kind::kDeliver, std::string(data), 0,
                   /*advance_watermark=*/true);
        s.Schedule(peer, Event::Kind::kDeliver, std::string(data),
                   fate.delay_ms, /*advance_watermark=*/false);
        return Status::OK();
      case MessageFate::kReorder:
        ++s.stats.reordered;
        s.Schedule(peer, Event::Kind::kDeliver, std::string(data),
                   fate.delay_ms, /*advance_watermark=*/false);
        return Status::OK();
      case MessageFate::kDelay:
        ++s.stats.delayed;
        s.Schedule(peer, Event::Kind::kDeliver, std::string(data),
                   fate.delay_ms, /*advance_watermark=*/true);
        return Status::OK();
      case MessageFate::kDeliver:
        s.Schedule(peer, Event::Kind::kDeliver, std::string(data), 0,
                   /*advance_watermark=*/true);
        return Status::OK();
    }
    return Status::Internal("unhandled message fate");
  }

  Result<size_t> RecvSome(char* buf, size_t len, int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    SimNet::State& s = *state_;
    const uint64_t deadline = s.DeadlineFor(timeout_ms);
    s.WaitUntil(lock, deadline, [this] {
      return !end_->inbox.empty() || end_->eof || !end_->open;
    });
    if (!end_->inbox.empty()) {
      const size_t n = std::min(len, end_->inbox.size());
      end_->inbox.copy(buf, n);
      end_->inbox.erase(0, n);
      s.Bump();
      return n;
    }
    if (!end_->open) return Status::Unavailable("connection closed");
    if (end_->eof) return Status::Unavailable("peer closed the connection");
    if (s.exploded) return HorizonError();
    return Status::DeadlineExceeded("simulated recv timed out");
  }

  Status RecvExact(char* buf, size_t len, int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    SimNet::State& s = *state_;
    const uint64_t deadline = s.DeadlineFor(timeout_ms);
    size_t done = 0;
    while (done < len) {
      s.WaitUntil(lock, deadline, [this] {
        return !end_->inbox.empty() || end_->eof || !end_->open;
      });
      if (!end_->inbox.empty()) {
        const size_t n = std::min(len - done, end_->inbox.size());
        end_->inbox.copy(buf + done, n);
        end_->inbox.erase(0, n);
        done += n;
        s.Bump();
        continue;
      }
      if (!end_->open) return Status::Unavailable("connection closed");
      if (end_->eof) return Status::Unavailable("peer closed the connection");
      if (s.exploded) return HorizonError();
      return Status::DeadlineExceeded("simulated recv timed out");
    }
    return Status::OK();
  }

  // Budget loops above the conn (Conn::RecvExact, MsgChannel::Recv, the
  // handshake, round collection) split their deadlines on this clock, so a
  // loaded host cannot drain a budget in real time while the virtual clock
  // stands still.
  uint64_t NowMs() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->virtual_now;
  }

 private:
  std::shared_ptr<SimNet::State> state_;
  std::shared_ptr<Endpoint> end_;
};

class SimListener : public net::Listener {
 public:
  SimListener(std::shared_ptr<SimNet::State> state,
              std::shared_ptr<ListenerState> listener)
      : state_(std::move(state)), listener_(std::move(listener)) {}

  ~SimListener() override { Close(); }

  bool valid() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return listener_->open;
  }

  uint16_t port() const override { return listener_->port; }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!listener_->open) return;
    listener_->open = false;
    state_->listeners.erase(listener_->port);
    // Dialers parked in the backlog get a reset, not silence.
    for (const auto& pending : listener_->pending) {
      state_->CloseSide(pending);
    }
    listener_->pending.clear();
    state_->Bump();
  }

  Result<std::unique_ptr<net::Conn>> Accept(int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    SimNet::State& s = *state_;
    const uint64_t deadline = s.DeadlineFor(timeout_ms);
    s.WaitUntil(lock, deadline, [this] {
      return !listener_->pending.empty() || !listener_->open;
    });
    if (!listener_->pending.empty()) {
      std::shared_ptr<Endpoint> end = listener_->pending.front();
      listener_->pending.pop_front();
      s.Bump();
      return std::unique_ptr<net::Conn>(new SimConn(state_, std::move(end)));
    }
    if (!listener_->open) return Status::Unavailable("listener closed");
    if (s.exploded) {
      // The accept loop polls in a tight cycle once poisoned; yield a
      // little real time so it cannot starve the threads that are
      // unwinding the run.
      s.cv.wait_for(lock, std::chrono::microseconds(200));
      return HorizonError();
    }
    return Status::DeadlineExceeded("simulated accept timed out");
  }

 private:
  std::shared_ptr<SimNet::State> state_;
  std::shared_ptr<ListenerState> listener_;
};

}  // namespace

// ---------------------------------------------------------------------------
// SimNet.

SimNet::SimNet(const SimNetOptions& options) : state_(new State()) {
  state_->options = options;
  state_->grace_us =
      options.grace_us > 0 ? options.grace_us : GraceFromEnv();
}

SimNet::~SimNet() {
  // Poison any straggling operation (a node thread joined late by a
  // harness) instead of leaving it blocked on a dead event queue.
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->Explode();
}

Result<std::unique_ptr<net::Listener>> SimNet::Listen(uint16_t port) {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->exploded) return HorizonError();
  if (port == 0) {
    while (state_->listeners.count(state_->next_ephemeral_port) > 0) {
      ++state_->next_ephemeral_port;
    }
    port = state_->next_ephemeral_port++;
  } else if (state_->listeners.count(port) > 0) {
    return Status::InvalidArgument("simulated port already in use");
  }
  auto listener = std::make_shared<ListenerState>();
  listener->port = port;
  state_->listeners[port] = listener;
  state_->Bump();
  return std::unique_ptr<net::Listener>(
      new SimListener(state_, std::move(listener)));
}

Result<std::unique_ptr<net::Conn>> SimNet::Connect(const std::string& host,
                                                   uint16_t port,
                                                   int timeout_ms) {
  std::unique_lock<std::mutex> lock(state_->mu);
  State& s = *state_;
  if (s.exploded) return HorizonError();
  ++s.stats.dials;
  if (s.InPartition(host)) {
    ++s.stats.dials_refused;
    return Status::Unavailable("dialer is partitioned");
  }
  const auto bound = [&s, port] {
    auto it = s.listeners.find(port);
    return it != s.listeners.end() && it->second->open;
  };
  if (!bound()) {
    // TCP-style SYN retry: wait out the connect timeout in virtual time for
    // the port to be bound before refusing. A failover dial against a
    // standby that has not promoted yet therefore consumes virtual time —
    // letting the standby's lease deadline fire — instead of busy-spinning
    // through the dialer's whole attempt budget in zero virtual time.
    s.WaitUntil(lock, s.DeadlineFor(timeout_ms),
                [&] { return bound() || s.exploded; });
    if (s.exploded) return HorizonError();
    if (!bound()) {
      ++s.stats.dials_refused;
      return Status::Unavailable("simulated connection refused");
    }
  }
  auto it = s.listeners.find(port);
  const uint64_t dial_ordinal = s.dial_counts[host]++;
  auto client = std::make_shared<Endpoint>();
  auto server = std::make_shared<Endpoint>();
  client->label = host;
  client->dial_ordinal = dial_ordinal;
  client->direction = 0;
  server->label = host;
  server->dial_ordinal = dial_ordinal;
  server->direction = 1;
  client->peer = server;
  server->peer = client;
  it->second->pending.push_back(std::move(server));
  s.Bump();
  return std::unique_ptr<net::Conn>(new SimConn(state_, std::move(client)));
}

uint64_t SimNet::VirtualNowMs() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->virtual_now;
}

bool SimNet::exploded() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->exploded;
}

SimNetStats SimNet::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  SimNetStats stats = state_->stats;
  stats.virtual_now_ms = state_->virtual_now;
  return stats;
}

void SimNet::HoldClock() {
  std::lock_guard<std::mutex> lock(state_->mu);
  ++state_->clock_holds;
}

void SimNet::ReleaseClock() {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->clock_holds > 0) --state_->clock_holds;
  // Wake blocked waiters so their grace windows restart under the new
  // regime (otherwise the first advance waits out a stale window).
  state_->Bump();
}

}  // namespace sim
}  // namespace digfl
