// SimNet: a deterministic in-process implementation of net::Transport.
//
// The whole distributed runtime — Coordinator, ParticipantNode, MsgChannel,
// wire framing — runs on SimNet unmodified, but every byte crosses an
// in-memory event queue governed by a *virtual clock* and the seeded fault
// schedule of sim/fault_schedule.h. A federation that takes wall-clock
// seconds over real sockets simulates in milliseconds, and any failing
// schedule replays from a single uint64 seed.
//
// Virtual time. All deadlines passed to SimConn/SimListener operations are
// virtual milliseconds. The clock never ticks on its own: it advances only
// when the simulation is *quiescent* — no send, delivery, connect, or close
// has happened for a real-time grace window while at least one thread
// blocks on a virtual deadline. At that point the clock jumps to the next
// interesting instant: min(earliest queued event, earliest blocked
// deadline). Timeouts therefore fire only when the awaited bytes genuinely
// are not coming, no matter how slow the host machine is — and an idle
// simulation costs grace-windows, not timeout-waits.
//
// Determinism. Message fates are a pure function of (seed, dialing label,
// dial ordinal, direction, send sequence) — see fault_schedule.h — so the
// *schedule* is exactly reproducible even though the federation runs real
// threads. Thread interleaving can still influence which virtual instant a
// send lands on (and hence e.g. whether a retry beats a timeout), which is
// why the swarm harness asserts run outcomes against the realized
// fault plan recorded in the training log rather than against a predicted
// schedule (sim/sim_federation.h).
//
// Liveness. Every blocking operation carries a virtual deadline, and the
// clock provably reaches the earliest one (the advance target includes
// every blocked waiter), so no operation blocks forever. As a backstop, a
// run whose virtual clock crosses `horizon_ms` "explodes" the net: every
// operation, present and future, returns kDeadlineExceeded immediately.
//
// Fault model mapping: delay / reorder / duplication / drop act on whole
// SendAll payloads; `truncate` delivers a strict prefix and cuts the
// connection (the mid-frame cut); `kill_conn` cuts it cold; a partition
// window makes one label's traffic and dials vanish for a span of virtual
// time; a participant *crash/restart* is a kill_conn followed by the
// node's own reconnect loop (the node is stateless across rounds, so the
// restart needs no extra machinery).

#ifndef DIGFL_SIM_SIM_NET_H_
#define DIGFL_SIM_SIM_NET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/transport.h"
#include "sim/fault_schedule.h"

namespace digfl {
namespace sim {

struct SimNetOptions {
  uint64_t seed = 1;
  SimFaultRates rates;
  // Virtual horizon: crossing it poisons the net with typed errors. Large
  // enough that only a genuinely wedged schedule reaches it.
  uint64_t horizon_ms = 1000 * 1000;
  // Real-time quiescence window in microseconds before the virtual clock
  // may advance. Must exceed the longest compute burst between two sim
  // calls or timeouts can fire spuriously (harmless for correctness — it
  // becomes a realized dropout — but noisy). 0 = $DIGFL_SIM_GRACE_US,
  // falling back to 800.
  int grace_us = 0;
};

struct SimNetStats {
  uint64_t messages_sent = 0;
  uint64_t deliveries = 0;
  uint64_t delayed = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t truncated = 0;
  uint64_t conns_killed = 0;
  uint64_t partition_drops = 0;
  uint64_t dials = 0;
  uint64_t dials_refused = 0;
  uint64_t clock_advances = 0;
  uint64_t virtual_now_ms = 0;
};

class SimNet : public net::Transport {
 public:
  explicit SimNet(const SimNetOptions& options);
  ~SimNet() override;

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  Result<std::unique_ptr<net::Listener>> Listen(uint16_t port) override;
  Result<std::unique_ptr<net::Conn>> Connect(const std::string& host,
                                             uint16_t port,
                                             int timeout_ms) override;

  // The virtual clock, so transport-anchored deadlines (the standby lease)
  // are deterministic in simulation.
  uint64_t NowMs() const override { return VirtualNowMs(); }

  uint64_t VirtualNowMs() const;
  bool exploded() const;
  SimNetStats stats() const;

  // Suspends / resumes virtual-clock advances. While at least one hold is
  // outstanding, quiescence detection never moves the clock, so virtual
  // deadlines cannot expire no matter how starved the host machine is.
  // Harnesses hold the clock across real-time-dependent startup (spawning
  // thousands of node threads, the handshake storm) where "no simulator
  // transition for a grace window" does not mean the federation is idle —
  // it may just mean the scheduler has not run the next thread yet.
  // Blocked operations keep waking on activity and make event-driven
  // progress; only timeout expiry is paused. Holds nest.
  void HoldClock();
  void ReleaseClock();

  // Implementation detail, public only so the Conn/Listener classes in
  // sim_net.cc can share it; not part of the API.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace sim
}  // namespace digfl

#endif  // DIGFL_SIM_SIM_NET_H_
