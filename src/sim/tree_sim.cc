#include "sim/tree_sim.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "core/phi_accumulator.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "hfl/server.h"
#include "net/messages.h"
#include "net/participant_node.h"
#include "net/tree/aggregator_node.h"

namespace digfl {
namespace sim {

namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool BitEqual(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (!BitEqual(a[k], b[k])) return false;
  }
  return true;
}

}  // namespace

TreeSimScenario TreeSimScenario::FromSeed(uint64_t seed) {
  TreeSimScenario scenario;
  scenario.seed = seed;
  scenario.rates = RatesFromSeed(seed);
  Rng rng(seed ^ 0x73ee1u);
  scenario.num_participants =
      static_cast<size_t>(rng.UniformInt(int64_t{6}, int64_t{24}));
  scenario.epochs = 3;
  const size_t n = scenario.num_participants;
  if (rng.UniformInt(int64_t{0}, int64_t{1}) == 1) {
    // 3-level: {top, top·fan}; shrink until the leaf width fits (top=fan=2
    // always does, since n >= 6).
    size_t top = static_cast<size_t>(rng.UniformInt(int64_t{2}, int64_t{3}));
    size_t fan = static_cast<size_t>(rng.UniformInt(int64_t{2}, int64_t{3}));
    while (top * fan > n) {
      if (fan > 2) {
        --fan;
      } else {
        --top;
      }
    }
    scenario.level_widths = {top, top * fan};
  } else {
    const size_t max_width = n / 2 < 6 ? n / 2 : 6;
    scenario.level_widths = {static_cast<size_t>(
        rng.UniformInt(int64_t{2}, static_cast<int64_t>(max_width)))};
  }
  // ~25% of seeds run the kill drill: one aggregator dies silently mid-run
  // and its whole shard must degrade to a dropout at the root.
  if (rng.UniformInt(int64_t{0}, int64_t{3}) == 0) {
    scenario.kill_aggregator = true;
    const size_t num_levels = scenario.level_widths.size();
    scenario.kill_level = static_cast<size_t>(
        rng.UniformInt(int64_t{0}, static_cast<int64_t>(num_levels - 1)));
    scenario.kill_index = static_cast<size_t>(rng.UniformInt(
        int64_t{0},
        static_cast<int64_t>(scenario.level_widths[scenario.kill_level] - 1)));
    scenario.kill_epoch = static_cast<size_t>(rng.UniformInt(
        int64_t{1}, static_cast<int64_t>(scenario.epochs - 1)));
  }
  return scenario;
}

SimWorld MakeTreeWorld(const TreeSimScenario& scenario) {
  const size_t n = scenario.num_participants;
  GaussianClassificationConfig data_config;
  // Scale the pool with the federation so every leaf shard holds data even
  // in thousand-node trees.
  data_config.num_samples = n * 2 < 120 ? 120 : n * 2;
  data_config.num_features = 6;
  data_config.num_classes = 3;
  data_config.seed = scenario.seed;
  Dataset pool = MakeGaussianClassification(data_config).value();
  Rng rng(scenario.seed + 1);
  auto split = SplitHoldout(pool, 0.2, rng).value();
  SimWorld world;
  world.validation = split.second;
  auto shards = PartitionIid(split.first, n, rng).value();
  for (size_t i = 0; i < n; ++i) {
    world.participants.emplace_back(i, shards[i]);
  }
  world.init = Vec(world.model.NumParams(), 0.0);
  world.config.epochs = scenario.epochs;
  world.config.learning_rate = 0.2;
  world.digest = net::FederationConfigDigest(
      world.model.NumParams(), world.config.epochs,
      world.config.learning_rate, world.config.lr_decay,
      world.config.local_steps, world.config.batch_seed);
  return world;
}

TreeSimResult RunTreeSimFederation(const TreeSimScenario& scenario) {
  TreeSimResult result;
  const size_t n = scenario.num_participants;

  auto topology_or =
      net::tree::TreeTopology::Create(n, scenario.level_widths);
  if (!topology_or.ok()) {
    result.status = topology_or.status();
    return result;
  }
  const net::tree::TreeTopology topology = *topology_or;
  const size_t num_levels = topology.num_levels();

  SimWorld world = MakeTreeWorld(scenario);

  SimNetOptions net_options;
  net_options.seed = scenario.seed;
  net_options.rates = scenario.rates;
  net_options.grace_us = scenario.grace_us;
  SimNet net(net_options);
  // Freeze the virtual clock while the federation wires up: spawning
  // n + aggregator threads and draining the handshake storm is pure
  // real-time work, and on a starved machine the quiescence heuristic
  // would otherwise read a scheduling gap as "idle" and expire the
  // in-flight handshakes' virtual deadlines. Released after the
  // connectivity gate below — and only for schedules that actually need
  // virtual time (fault rates or a kill drill).
  net.HoldClock();

  // Round budgets, leaf up (virtual ms, so generosity is free): an
  // aggregator's per-child budget must cover that child's own worst-case
  // round — all of *its* children timing out serially, each with one
  // retry — plus slack for compute.
  std::vector<int> per_child(num_levels, 0);
  int budget = 400;  // leaf -> participant round trip
  for (size_t level = num_levels; level-- > 0;) {
    per_child[level] = budget;
    const size_t fan =
        topology.IsLeafLevel(level)
            ? (n + topology.WidthAt(level) - 1) / topology.WidthAt(level)
            : topology.WidthAt(level + 1) / topology.WidthAt(level);
    budget = static_cast<int>(fan) * 2 * budget + 200;
  }
  const int root_budget = budget;

  net::tree::TreeCoordinatorOptions root_options;
  root_options.transport = &net;
  root_options.num_params = world.model.NumParams();
  root_options.config_digest = world.digest;
  root_options.handshake_timeout_ms = 200;  // virtual ms from here on
  root_options.round_timeout_ms = root_budget;
  root_options.max_round_retries = 1;
  root_options.accept_poll_ms = 10000;
  auto root = net::tree::TreeCoordinator::Create(topology, root_options);
  if (!root.ok()) {
    result.status = root.status();
    return result;
  }

  // Aggregators level-major, root-down: a node's parent port is known by
  // the time its level is built.
  std::vector<std::unique_ptr<net::tree::AggregatorNode>> aggregators;
  aggregators.reserve(topology.NumAggregators());
  std::vector<std::vector<uint16_t>> ports(num_levels);
  for (size_t level = 0; level < num_levels; ++level) {
    ports[level].resize(topology.WidthAt(level), 0);
    for (size_t index = 0; index < topology.WidthAt(level); ++index) {
      net::tree::AggregatorNodeOptions agg_options;
      agg_options.transport = &net;
      // Fate-schedule label for this node's dials.
      agg_options.parent_host =
          "agg" + std::to_string(level) + "_" + std::to_string(index);
      if (level == 0) {
        agg_options.parent_port = (*root)->port();
      } else {
        const size_t fan =
            topology.WidthAt(level) / topology.WidthAt(level - 1);
        agg_options.parent_port = ports[level - 1][index / fan];
      }
      agg_options.level = level;
      agg_options.index = index;
      agg_options.num_params = world.model.NumParams();
      agg_options.config_digest = world.digest;
      agg_options.connect_timeout_ms = 50;
      agg_options.handshake_timeout_ms = 200;
      agg_options.io_timeout_ms = 500;
      agg_options.max_idle_polls = 100;
      agg_options.max_connect_attempts = 10;
      agg_options.connect_backoff.initial_ms = 0;
      agg_options.round_timeout_ms = per_child[level];
      agg_options.max_round_retries = 1;
      agg_options.accept_poll_ms = 10000;
      // Real ms (cv wait): returns as soon as the children connect, so
      // generosity only costs time on schedules that already lost someone.
      // Scaled hard with n — a thousand-participant handshake storm on a
      // loaded machine (CI runs tests in parallel) can take seconds of
      // wall-clock before every thread has even been scheduled once.
      agg_options.child_wait_timeout_ms = 500 + 20 * static_cast<int>(n);
      agg_options.jitter_seed = scenario.seed;
      if (scenario.kill_aggregator && level == scenario.kill_level &&
          index == scenario.kill_index) {
        agg_options.halt_epoch = scenario.kill_epoch;
      }
      auto node = net::tree::AggregatorNode::Create(topology, agg_options);
      if (!node.ok()) {
        result.status = node.status();
        (*root)->Shutdown("tree sim setup failed");
        return result;
      }
      ports[level][index] = (*node)->port();
      aggregators.push_back(std::move(*node));
    }
  }

  result.aggregator_statuses.assign(aggregators.size(), Status::OK());
  result.node_statuses.assign(n, Status::OK());

  std::vector<std::thread> agg_threads;
  agg_threads.reserve(aggregators.size());
  for (size_t a = 0; a < aggregators.size(); ++a) {
    agg_threads.emplace_back([a, &aggregators, &result] {
      result.aggregator_statuses[a] = aggregators[a]->Run();
    });
  }

  // Participants, leaf shard by leaf shard.
  const size_t leaf_level = num_levels - 1;
  std::vector<std::unique_ptr<net::ParticipantNode>> nodes(n);
  std::vector<std::thread> node_threads;
  node_threads.reserve(n);
  for (size_t leaf = 0; leaf < topology.WidthAt(leaf_level); ++leaf) {
    const net::tree::TreeTopology::Range covered =
        topology.Covered(leaf_level, leaf);
    for (size_t i = covered.begin; i < covered.end; ++i) {
      net::ParticipantNodeOptions node_options;
      node_options.transport = &net;
      node_options.host = "node" + std::to_string(i);  // fate-schedule label
      node_options.port = ports[leaf_level][leaf];
      node_options.participant_id = i;
      node_options.config_digest = world.digest;
      node_options.connect_timeout_ms = 50;
      node_options.handshake_timeout_ms = 200;
      node_options.io_timeout_ms = 500;
      node_options.max_idle_polls = 100;
      node_options.max_connect_attempts = 30;
      node_options.connect_backoff.initial_ms = 0;
      nodes[i] = std::make_unique<net::ParticipantNode>(
          world.model, world.participants[i], node_options);
      node_threads.emplace_back([i, &nodes, &result] {
        result.node_statuses[i] = nodes[i]->Run();
      });
    }
  }

  // Reliable-network scenarios (no fault rates, no kill drill) never need
  // virtual time to make progress — every blocking call is resolved by an
  // actual event — so the clock stays held for the whole run and no
  // spurious deadline can fire regardless of host load. Faulty schedules
  // must release BEFORE the wiring waits below: a delay fate on a
  // handshake frame schedules its delivery at a future virtual instant,
  // and under a held clock that instant never arrives — the gate would
  // ride out its whole real-time cap and the run would start with the
  // subtree missing rather than merely late.
  const SimFaultRates& rates = scenario.rates;
  const bool needs_virtual_time =
      scenario.kill_aggregator || rates.kill_conn_rate > 0 ||
      rates.truncate_rate > 0 || rates.drop_rate > 0 ||
      rates.duplicate_rate > 0 || rates.reorder_rate > 0 ||
      rates.delay_rate > 0 || rates.partition_rate > 0;
  if (needs_virtual_time) net.ReleaseClock();

  // Real-time bound, scaled like the child waits; a subtree the schedule
  // already killed just realizes as a whole-shard dropout, so proceed
  // either way.
  (void)(*root)->WaitForAggregators(1000 + 40 * static_cast<int>(n));

  // Connectivity gate: with the clock still held, wait (bounded, real
  // time) until every leaf has its whole shard, so round 0 presence
  // reflects the fault schedule rather than host scheduling latency. A
  // shard the schedule genuinely prevents from connecting (partition at
  // t=0, repeated dial kills) just rides out the cap and realizes as a
  // dropout.
  {
    const int cap_ms = scenario.connect_wait_ms > 0
                           ? scenario.connect_wait_ms
                           : 1000 + 20 * static_cast<int>(n);
    const auto gate_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(cap_ms);
    const size_t leaf_base =
        aggregators.size() - topology.WidthAt(leaf_level);
    for (;;) {
      bool all_connected = true;
      for (size_t leaf = 0; leaf < topology.WidthAt(leaf_level); ++leaf) {
        const net::tree::TreeTopology::Range covered =
            topology.Covered(leaf_level, leaf);
        if (aggregators[leaf_base + leaf]->num_children_connected() <
            covered.end - covered.begin) {
          all_connected = false;
          break;
        }
      }
      if (all_connected || std::chrono::steady_clock::now() >= gate_deadline)
        break;
      if (std::getenv("DIGFL_TREE_DEBUG") != nullptr) {
        static int polls = 0;
        if (++polls % 5000 == 0) {
          size_t connected = 0;
          for (size_t leaf = 0; leaf < topology.WidthAt(leaf_level); ++leaf) {
            connected +=
                aggregators[leaf_base + leaf]->num_children_connected();
          }
          std::fprintf(stderr, "[tree-sim] gate: %zu/%zu connected\n",
                       connected, n);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  HflServer server(world.model, world.validation);
  auto training =
      (*root)->RunTreeTraining(server, world.init, world.config);
  if (training.ok()) {
    result.training = std::move(*training);
  } else {
    result.status = training.status();
  }

  (*root)->Shutdown("tree sim run finished");
  for (std::thread& thread : agg_threads) thread.join();
  // Error-path aggregators (orphaned subtrees) exit without a farewell;
  // shutting them down here releases any participants still polling them.
  for (auto& aggregator : aggregators) {
    aggregator->Shutdown("tree sim run finished");
  }
  for (std::thread& thread : node_threads) thread.join();

  result.root_stats = (*root)->stats();
  result.net_stats = net.stats();
  return result;
}

Result<TreeReference> TreeRealizedReference(
    const SimWorld& world, const net::tree::TreeTopology& topology,
    const std::vector<std::vector<uint8_t>>& present) {
  const size_t n = world.participants.size();
  const size_t epochs = present.size();
  std::vector<FaultEvent> events(epochs * n);
  bool any_absent = false;
  for (size_t t = 0; t < epochs; ++t) {
    if (present[t].size() != n) {
      return Status::InvalidArgument("present mask has the wrong width");
    }
    for (size_t i = 0; i < n; ++i) {
      if (present[t][i] == 0) {
        events[t * n + i].type = FaultType::kDropout;
        any_absent = true;
      }
    }
  }
  FedSgdConfig config = world.config;
  config.epochs = epochs;
  Result<FaultPlan> plan =
      FaultPlan::FromSchedule(epochs, n, std::move(events));
  if (!plan.ok()) return plan.status();
  if (any_absent) config.fault_plan = &*plan;
  std::unique_ptr<Aggregator> aggregator =
      net::tree::MakeTreeAggregator(topology);
  config.aggregator = aggregator.get();
  HflServer server(world.model, world.validation);
  DIGFL_ASSIGN_OR_RETURN(
      HflTrainingLog log,
      RunFedSgd(world.model, world.participants, server, world.init, config));
  TreeReference reference;
  HflPhiAccumulator accumulator(n);
  for (const HflEpochRecord& record : log.epochs) {
    DIGFL_RETURN_IF_ERROR(accumulator.Consume(server, record));
  }
  reference.phi_total = accumulator.total();
  reference.phi_per_epoch = accumulator.per_epoch();
  reference.log = std::move(log);
  return reference;
}

std::string DiffTreeRun(const net::tree::TreeTrainingResult& run,
                        const TreeReference& reference) {
  std::ostringstream out;
  const size_t epochs = reference.log.num_epochs();
  if (run.present.size() != epochs) {
    out << "epoch count " << run.present.size() << " vs " << epochs;
    return out.str();
  }
  for (size_t t = 0; t < epochs; ++t) {
    const HflEpochRecord& record = reference.log.epochs[t];
    for (size_t i = 0; i < run.present[t].size(); ++i) {
      if ((run.present[t][i] != 0) != record.IsPresent(i)) {
        out << "epoch " << t << ": presence of participant " << i
            << " differs";
        return out.str();
      }
    }
  }
  if (!BitEqual(run.final_params, reference.log.final_params)) {
    return "final_params differ";
  }
  if (run.validation_loss.size() != reference.log.validation_loss.size()) {
    return "validation_loss length differs";
  }
  for (size_t t = 0; t < run.validation_loss.size(); ++t) {
    if (!BitEqual(run.validation_loss[t],
                  reference.log.validation_loss[t])) {
      out << "validation_loss[" << t << "] differs";
      return out.str();
    }
  }
  if (run.validation_accuracy.size() !=
      reference.log.validation_accuracy.size()) {
    return "validation_accuracy length differs";
  }
  for (size_t t = 0; t < run.validation_accuracy.size(); ++t) {
    if (!BitEqual(run.validation_accuracy[t],
                  reference.log.validation_accuracy[t])) {
      out << "validation_accuracy[" << t << "] differs";
      return out.str();
    }
  }
  if (run.phi_per_epoch.size() != reference.phi_per_epoch.size()) {
    return "phi epoch count differs";
  }
  for (size_t t = 0; t < run.phi_per_epoch.size(); ++t) {
    const std::vector<double>& row = run.phi_per_epoch[t];
    const std::vector<double>& ref_row = reference.phi_per_epoch[t];
    if (row.size() != ref_row.size()) {
      out << "phi row " << t << " width differs";
      return out.str();
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (!BitEqual(row[i], ref_row[i])) {
        out << "phi[" << t << "][" << i << "] differs";
        return out.str();
      }
    }
  }
  if (run.phi_total.size() != reference.phi_total.size()) {
    return "phi total width differs";
  }
  for (size_t i = 0; i < run.phi_total.size(); ++i) {
    if (!BitEqual(run.phi_total[i], reference.phi_total[i])) {
      out << "phi_total[" << i << "] differs";
      return out.str();
    }
  }
  return "";
}

}  // namespace sim
}  // namespace digfl
