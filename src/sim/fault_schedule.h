// Seeded fault schedules for the simulated transport (src/sim/sim_net.h).
//
// Every message the simulator carries is assigned a *fate* — deliver,
// delay, drop, duplicate, reorder, truncate-and-cut, or kill-the-conn — by
// a pure function of
//
//   (schedule seed, dialing endpoint's label, dial ordinal, direction,
//    per-connection send sequence number)
//
// and never of wall-clock time or thread interleaving. Each node dials from
// a single thread, so its dial ordinals are deterministic, and each
// connection direction numbers its sends locally — which makes the whole
// fate assignment replayable from the one uint64 seed even though the
// federation on top runs real threads.
//
// Fates act on whole SendAll payloads (one frame, or the 13-byte
// preamble). Drop/duplicate/reorder therefore always leave a *parseable*
// byte stream — they exercise the protocol state machines (retry, stale
// reply discard, unexpected-type errors) rather than the CRC; deliberate
// stream corruption is what truncate-and-cut and tests/corpus/wire/ cover.

#ifndef DIGFL_SIM_FAULT_SCHEDULE_H_
#define DIGFL_SIM_FAULT_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace digfl {
namespace sim {

// Independent per-message Bernoulli rates, tried in the order listed; the
// first that fires wins (at most one fate per message).
struct SimFaultRates {
  double kill_conn_rate = 0.0;  // cut the connection instead of sending
  double truncate_rate = 0.0;   // deliver a strict prefix, then cut
  double drop_rate = 0.0;       // the bytes silently vanish
  double duplicate_rate = 0.0;  // delivered twice (second copy later)
  double reorder_rate = 0.0;    // delayed and allowed to be overtaken
  double delay_rate = 0.0;      // delivered late, FIFO order preserved
  uint32_t max_delay_ms = 20;   // delays/reorders draw from [1, max]
  // P(a given label gets one partition window). While a label is
  // partitioned, its traffic silently vanishes in both directions and its
  // dials are refused.
  double partition_rate = 0.0;
};

enum class MessageFate : uint8_t {
  kDeliver = 0,
  kDelay = 1,
  kDrop = 2,
  kDuplicate = 3,
  kReorder = 4,
  kTruncate = 5,
  kKillConn = 6,
};

const char* MessageFateToString(MessageFate fate);

struct FateDecision {
  MessageFate fate = MessageFate::kDeliver;
  uint32_t delay_ms = 0;    // kDelay / kDuplicate (second copy) / kReorder
  size_t truncate_at = 0;   // kTruncate: bytes delivered before the cut
};

// The pure fate function. `message_len` bounds truncate_at (a truncation
// of a 1-byte message degrades to kKillConn with nothing delivered).
FateDecision DecideFate(uint64_t seed, std::string_view label,
                        uint64_t dial_ordinal, int direction,
                        uint64_t send_seq, size_t message_len,
                        const SimFaultRates& rates);

// Derives a random *schedule profile* from a swarm seed: which fault
// classes are active this run and at what rates. Lethal classes (kill /
// truncate / drop) stay <= ~8% per message so handshakes converge within a
// node's bounded dial attempts; delay/reorder/duplicate can be heavier.
SimFaultRates RatesFromSeed(uint64_t seed);

// The label's partition window in virtual ms, as [start, end); start ==
// end means "no window". A pure function of (seed, label, rates).
struct PartitionWindow {
  uint64_t start_ms = 0;
  uint64_t end_ms = 0;
  bool Contains(uint64_t t) const { return t >= start_ms && t < end_ms; }
};

PartitionWindow PartitionWindowFor(uint64_t seed, std::string_view label,
                                   const SimFaultRates& rates);

}  // namespace sim
}  // namespace digfl

#endif  // DIGFL_SIM_FAULT_SCHEDULE_H_
