// Swarm-test harness over SimNet: builds a seeded federation world, runs
// the real Coordinator/ParticipantNode stack on the simulated transport,
// and checks the outcome against the paper's invariants.
//
// The contract a simulated run must satisfy (tests/sim_test.cc asserts it
// for every seed):
//
//   1. Typed-or-complete: RunSimFederation never hangs. It either returns a
//      completed training log or a typed Status (and always shuts the
//      coordinator down and joins every node thread before returning).
//   2. Realized-plan equivalence: a completed run's log is bitwise equal to
//      the in-process RunFedSgd run under the dropout schedule the
//      simulation *realized* (derived from the log's present masks via
//      FaultPlan::FromSchedule). Faults may change *which* participants
//      report each epoch, never the arithmetic applied to the survivors.
//   3. Paper invariants on φ̂: Algorithm #2 masked-estimator consistency
//      (absent ⇒ φ̂_{t,i} = 0, live divisor 1/|present_t|), incremental ≡
//      batch evaluation, and Lemma 3 additivity of group contributions.
//
// Thread interleaving can shift which virtual instant a send lands on, so
// the harness never predicts the fault schedule — it derives the realized
// plan from the log and checks equivalence against that (sim/sim_net.h,
// "Determinism").

#ifndef DIGFL_SIM_SIM_FEDERATION_H_
#define DIGFL_SIM_SIM_FEDERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/adversary.h"
#include "common/result.h"
#include "hfl/fed_sgd.h"
#include "hfl/participant.h"
#include "net/coordinator.h"
#include "net/standby.h"
#include "nn/softmax_regression.h"
#include "sim/fault_schedule.h"
#include "sim/sim_net.h"

namespace digfl {
namespace sim {

// One swarm run: the seed fixes the dataset, the shards, and the fault
// schedule. Worlds are deliberately tiny (3 participants x 3 epochs by
// default) so a thousand seeds fit in a test budget.
struct SimScenario {
  uint64_t seed = 1;
  size_t num_participants = 3;
  size_t epochs = 3;
  SimFaultRates rates;

  // Checkpointed variant: run through RunDistributedFedSgdWithCheckpoints
  // against a ckpt::CheckpointStore at `checkpoint_dir`. `run_epochs`
  // truncates *this run* to fewer epochs than the config digest advertises
  // (0 = config.epochs) — the two-stage resume test trains a prefix, then
  // resumes the same store to the full horizon.
  bool with_checkpoints = false;
  std::string checkpoint_dir;
  bool resume = false;
  size_t run_epochs = 0;

  // 0 = $DIGFL_SIM_GRACE_US (default 800); raise under sanitizers.
  int grace_us = 0;

  // Observability variant (DESIGN.md §13): install SimNet's virtual clock
  // as the process's ObsNow() source for the duration of the run and
  // collect the coordinator's merged federation report. Because every role
  // reads the same virtual clock, clock offsets are exactly 0 and — on a
  // fault-free schedule whose clock never advances mid-round — the merged
  // timeline is a pure function of the seed.
  bool collect_observability = false;

  // Adversarial variant: a seed-pure Byzantine plan mounted on the
  // participant nodes (common/adversary.h), with robust aggregation and
  // quarantine escalation on the coordinator. attacker_fraction == 0 keeps
  // everyone honest, and AdversarialFromSeed then leaves the defenses off
  // too, so the run must stay bitwise-identical to the plain path.
  AdversaryPlanConfig adversary;
  std::string aggregator_spec;  // MakeAggregator grammar; "" = legacy mean
  EscalationConfig escalation;
  double quarantine_median_factor = 0.0;  // > 0 overrides the gate default

  // Update compression (DESIGN.md §16), negotiated by the coordinator at
  // handshake. kLossless keeps the run bitwise identical to the reference;
  // a lossy mode trades that equivalence for smaller uploads, so such runs
  // are checked against CheckHflInvariants instead of RealizedReference.
  compress::Mode compress = compress::Mode::kLossless;

  // The standard swarm scenario: world + fault profile from one seed.
  static SimScenario FromSeed(uint64_t seed);

  // The adversarial swarm scenario: a small world (4–7 participants, 8
  // epochs), up to 30% attackers drawn from the φ̂-separable palette
  // {sign_flip, scale, free_rider_zero}, trimmed-mean aggregation + φ̂
  // escalation + a relative admission gate whenever there is at least one
  // attacker, and a benign-leaning network (delays/duplicates/reorders
  // only) so every divergence from the reference is the adversary's doing.
  static SimScenario AdversarialFromSeed(uint64_t seed);
};

// The world both the simulated federation and its in-process reference
// train on — same construction as tests/net_test.cc's MakeNetWorld, sized
// down for swarm budgets.
struct SimWorld {
  SoftmaxRegression model{6, 3};
  Dataset validation;
  std::vector<HflParticipant> participants;
  Vec init;
  FedSgdConfig config;
  uint64_t digest = 0;  // FederationConfigDigest both roles handshake with
};

SimWorld MakeSimWorld(const SimScenario& scenario);

struct SimFederationResult {
  // OK iff training completed; otherwise the typed failure. Never default-
  // constructed-ok with an empty log: completed() implies log.num_epochs()
  // == the requested horizon.
  Status status = Status::OK();
  HflTrainingLog log;

  // Algorithm #2 φ̂ over the completed log (incremental accumulator path).
  std::vector<double> phi_total;
  std::vector<std::vector<double>> phi_per_epoch;

  net::CoordinatorStats coordinator_stats;
  SimNetStats net_stats;
  std::vector<Status> node_statuses;  // one per participant thread

  // collect_observability runs only: the merged federation sections
  // (telemetry::FederationSectionsJsonl) — what the reproducibility test
  // compares bitwise across two runs of one seed — and the report itself.
  std::string federation_jsonl;
  telemetry::FederationReport federation_report;

  // Checkpointed runs only.
  size_t checkpoints_written = 0;
  bool resumed = false;
  uint64_t resumed_from_epoch = 0;
  // After the run (success or failure) the store must reopen and decode
  // cleanly — a fault schedule must never leave a corrupt store behind.
  Status store_health = Status::OK();

  bool completed() const { return status.ok(); }
};

// Runs one simulated federation to completion or typed failure. Always
// shuts down the coordinator and joins every node thread before returning.
SimFederationResult RunSimFederation(const SimScenario& scenario);

// The in-process RunFedSgd reference under the dropout grid `log` realized
// (one kDropout event per absent (epoch, participant) cell).
Result<HflTrainingLog> RealizedReference(const SimWorld& world,
                                         const HflTrainingLog& log);

// Bitwise log comparison (params, learning rates, weights, presence,
// deltas, final params, validation traces). Returns "" when equal, else a
// description of the first mismatch.
std::string DiffLogs(const HflTrainingLog& a, const HflTrainingLog& b);

// Algorithm #2 / Lemma 3 invariants on a completed run (see file comment).
// `phi_total`/`phi_per_epoch` are the run's incremental estimates. Returns
// "" when every invariant holds.
std::string CheckHflInvariants(const SimWorld& world,
                               const HflTrainingLog& log,
                               const std::vector<double>& phi_total,
                               const std::vector<std::vector<double>>&
                                   phi_per_epoch);

// --- Coordinator high availability (DESIGN.md §14). ---

// One failover swarm run: primary + hot standby + participants carrying a
// failover endpoint list, with the primary killed at a seeded point. The
// network is benign (no injected faults), so a run that completes — on the
// primary or on the promoted standby — must be bitwise equal to the
// no-failure reference; the seed varies only *where* the primary dies.
struct HaSimScenario {
  uint64_t seed = 1;
  size_t num_participants = 3;
  size_t epochs = 5;

  // Where and when the primary dies. kNone = no failure: the run completes
  // on the primary and the standby hears the completion farewell.
  net::HaltSite halt_site = net::HaltSite::kNone;
  size_t halt_epoch = 0;

  // Checkpointed variant: primary and promoted standby share the store at
  // `checkpoint_dir` (the test supplies a temp dir); promotion claims the
  // manifest with its generation and the harness drills that a stale
  // generation-1 handle can no longer Commit.
  bool with_checkpoints = false;
  std::string checkpoint_dir;

  // Partition-window variant: replication ships fail from this epoch on,
  // so the standby promotes while the primary still leads (a split-brain
  // window with two bound coordinators); the primary keeps serving its
  // loyal participants until the halt fires, and the promoted state is
  // stale-but-valid — recomputation closes the gap bitwise. SIZE_MAX = the
  // replication link stays healthy.
  size_t blackout_epoch = static_cast<size_t>(-1);

  int lease_timeout_ms = 300;
  int grace_us = 0;  // 0 = $DIGFL_SIM_GRACE_US (default 800)

  // The standard failover swarm: halt site/epoch, checkpoint flag, and
  // partition window all drawn from the seed. `checkpoint_dir` is left
  // empty — the caller fills it when with_checkpoints is set.
  static HaSimScenario FromSeed(uint64_t seed);
};

struct HaSimResult {
  // OK iff training completed on SOME coordinator (primary or promoted
  // standby); otherwise the typed failure. The log/φ̂ fields are only
  // meaningful when completed().
  Status status = Status::OK();
  HflTrainingLog log;
  std::vector<double> phi_total;
  std::vector<std::vector<double>> phi_per_epoch;

  bool failover = false;  // the promoted standby finished the run
  uint64_t promoted_generation = 0;
  uint64_t resumed_from_epoch = 0;  // promoted warm-start boundary
  // What the primary's training returned (the halt's typed error on kill
  // runs, OK on no-failure runs).
  Status primary_status = Status::OK();
  net::StandbyOutcome standby_outcome;
  net::CoordinatorStats primary_stats;
  net::CoordinatorStats promoted_stats;  // zero when !failover
  std::vector<Status> node_statuses;
  SimNetStats net_stats;

  // Checkpointed failover runs: the verdict of a stale generation-1 store
  // handle (the dead primary's) trying to Commit after the promoted
  // generation claimed the manifest. Must be kFailedPrecondition — a
  // fenced leader's write is never accepted.
  bool stale_commit_attempted = false;
  Status stale_commit_status = Status::OK();
  // Checkpointed runs: the store must reopen and decode cleanly afterward.
  Status store_health = Status::OK();

  bool completed() const { return status.ok(); }
};

// Runs one failover scenario to completion or typed failure. Always shuts
// down every coordinator and joins every thread before returning.
HaSimResult RunHaSimFederation(const HaSimScenario& scenario);

// VFL Eq. 27 block-orthogonality on a seeded in-process toy run:
// participant i's φ̂ (total and every epoch) is bitwise unchanged when every
// *other* block of the logged global gradient is zeroed — the estimator
// reads only block i. Returns "" when the property holds.
std::string CheckVflBlockOrthogonality(uint64_t seed);

}  // namespace sim
}  // namespace digfl

#endif  // DIGFL_SIM_SIM_FEDERATION_H_
