// Swarm-test harness for the hierarchical aggregation tree (DESIGN.md §15):
// builds a seeded world, runs the real TreeCoordinator / AggregatorNode /
// ParticipantNode stack on SimNet, and checks the outcome bitwise against
// the in-process tree-order reference.
//
// The contract a simulated tree run must satisfy (tests/tree_sim_test.cc
// asserts it for every seed):
//
//   1. Typed-or-complete: RunTreeSimFederation never hangs. It either
//      returns a completed TreeTrainingResult or a typed Status, and always
//      shuts every role down and joins every thread before returning.
//   2. Realized-plan equivalence: a completed run's final parameters,
//      validation trace, and φ̂ rows/totals are bitwise equal to RunFedSgd
//      with MakeTreeAggregator(topology) under the dropout schedule the
//      simulation *realized* (FaultPlan::FromSchedule over the run's own
//      present masks). Faults — including killing a whole aggregator — may
//      change *which* participants report each epoch, never the arithmetic
//      applied to the survivors.
//   3. Fault-fate degradation: an aggregator killed at epoch k realizes as
//      its whole covered shard absent from epoch k onward.
//
// As with the flat harness, thread interleaving can shift which virtual
// instant a send lands on, so the reference is derived from the realized
// masks, never predicted (sim/sim_net.h, "Determinism").

#ifndef DIGFL_SIM_TREE_SIM_H_
#define DIGFL_SIM_TREE_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "hfl/fed_sgd.h"
#include "net/tree/topology.h"
#include "net/tree/tree_coordinator.h"
#include "sim/fault_schedule.h"
#include "sim/sim_federation.h"
#include "sim/sim_net.h"

namespace digfl {
namespace sim {

// One tree swarm run: the seed fixes the dataset, the shards, the topology,
// the fault schedule, and (for ~a quarter of seeds) which aggregator dies
// mid-run.
struct TreeSimScenario {
  uint64_t seed = 1;
  size_t num_participants = 6;
  // Aggregators per level, root-down (TreeTopology::Create grammar).
  std::vector<size_t> level_widths = {2};
  size_t epochs = 3;
  SimFaultRates rates;

  // 0 = $DIGFL_SIM_GRACE_US (default 800); raise under sanitizers.
  int grace_us = 0;

  // Real-time cap on the pre-training connectivity gate (the harness holds
  // the virtual clock and waits for every leaf to see its full shard
  // before the first round, so a starved machine cannot turn slow thread
  // startup into spurious round-0 dropouts). 0 = 1000 + 20 * n ms. The
  // thousand-node drill raises it: on loaded CI hardware, just spawning
  // and scheduling 1000 participant threads can take tens of seconds.
  int connect_wait_ms = 0;

  // Kill drill: aggregator (kill_level, kill_index) dies silently on the
  // round request for kill_epoch — the "aggregator process dies" fate. Its
  // whole covered shard must degrade to a dropout at the root.
  bool kill_aggregator = false;
  size_t kill_level = 0;
  size_t kill_index = 0;
  size_t kill_epoch = 1;

  // The standard tree swarm scenario: 6–24 participants, a 2- or 3-level
  // topology, RatesFromSeed faults, and a ~25% chance of a kill drill.
  static TreeSimScenario FromSeed(uint64_t seed);
};

// Same construction as MakeSimWorld, but the sample pool scales with the
// participant count so thousand-node trees still give every shard data.
SimWorld MakeTreeWorld(const TreeSimScenario& scenario);

struct TreeSimResult {
  // OK iff RunTreeTraining completed the full horizon; otherwise the typed
  // failure.
  Status status = Status::OK();
  net::tree::TreeTrainingResult training;

  net::tree::TreeCoordinatorStats root_stats;
  SimNetStats net_stats;
  // Exit status of every role thread, for the typed-or-complete check.
  // Aggregators are level-major (level 0 first, ascending index).
  std::vector<Status> aggregator_statuses;
  std::vector<Status> node_statuses;

  bool completed() const { return status.ok(); }
};

// Runs the full tree federation on SimNet: root, every aggregator level,
// and one ParticipantNode per participant, wired leaf-shard by leaf-shard.
TreeSimResult RunTreeSimFederation(const TreeSimScenario& scenario);

// The in-process reference for a realized run: RunFedSgd with the
// tree-order aggregator under the dropout schedule given by `present`
// (epoch-major masks, exactly TreeTrainingResult::present), plus the
// incremental φ̂ accumulator over the resulting log.
struct TreeReference {
  HflTrainingLog log;
  std::vector<double> phi_total;
  std::vector<std::vector<double>> phi_per_epoch;
};

Result<TreeReference> TreeRealizedReference(
    const SimWorld& world, const net::tree::TreeTopology& topology,
    const std::vector<std::vector<uint8_t>>& present);

// Bitwise comparison of a completed tree run against its reference: final
// parameters, validation traces, per-epoch present masks, and φ̂ rows and
// totals. Returns "" on equality, else a description of the first
// divergence.
std::string DiffTreeRun(const net::tree::TreeTrainingResult& run,
                        const TreeReference& reference);

}  // namespace sim
}  // namespace digfl

#endif  // DIGFL_SIM_TREE_SIM_H_
