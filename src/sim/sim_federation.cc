#include "sim/sim_federation.h"

#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "ckpt/hfl_resume.h"
#include "ckpt/store.h"
#include "common/fault.h"
#include "core/digfl_hfl.h"
#include "core/digfl_vfl.h"
#include "core/group_contribution.h"
#include "core/phi_accumulator.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "hfl/aggregator.h"
#include "net/messages.h"
#include "net/participant_node.h"
#include "nn/linear_regression.h"
#include "vfl/block_model.h"
#include "vfl/plain_trainer.h"

namespace digfl {
namespace sim {

namespace {

// Bitwise double comparison: distinguishes ±0 and compares NaNs by
// representation, which is what "the same arithmetic happened" means.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool BitEqual(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (!BitEqual(a[k], b[k])) return false;
  }
  return true;
}

// Near-equality for identities whose two sides are computed by different
// (mathematically equal) operation orders.
bool Near(double a, double b) {
  const double scale = 1.0 + std::abs(a) + std::abs(b);
  return std::abs(a - b) <= 1e-9 * scale;
}

// ObsNow() source backed by the run's SimNet: every role reads the same
// virtual clock, so merged clock offsets are exactly zero.
double SimObsClock(void* ctx) {
  return static_cast<double>(
             static_cast<const SimNet*>(ctx)->VirtualNowMs()) /
         1000.0;
}

// Restores the default steady clock on every exit path; node threads must
// be joined before this runs (they call ObsNow() from the serve loop).
struct ObsClockGuard {
  bool installed = false;
  ~ObsClockGuard() {
    if (installed) telemetry::SetObservabilityClock(nullptr, nullptr);
  }
};

}  // namespace

SimScenario SimScenario::FromSeed(uint64_t seed) {
  SimScenario scenario;
  scenario.seed = seed;
  scenario.rates = RatesFromSeed(seed);
  return scenario;
}

SimScenario SimScenario::AdversarialFromSeed(uint64_t seed) {
  SimScenario scenario;
  scenario.seed = seed;
  Rng rng(seed ^ 0xadf1u);
  scenario.num_participants =
      static_cast<size_t>(rng.UniformInt(int64_t{4}, int64_t{7}));
  scenario.epochs = 8;

  // Benign-leaning network: only fates that preserve every payload, so any
  // divergence from the honest reference is the adversary's doing.
  scenario.rates = SimFaultRates{};
  scenario.rates.delay_rate = rng.Uniform(0.0, 0.10);
  scenario.rates.duplicate_rate = rng.Uniform(0.0, 0.05);
  scenario.rates.reorder_rate = rng.Uniform(0.0, 0.05);

  const size_t n = scenario.num_participants;
  const size_t max_attackers = (n * 3) / 10;  // floor(0.3 n): the ISSUE cap
  const size_t attackers = rng.UniformInt(max_attackers + 1);
  if (attackers == 0) {
    // Honest run, defenses off: the swarm checks this case bitwise against
    // the plain in-process reference (mean aggregation preserved).
    return scenario;
  }

  scenario.adversary.seed = seed ^ 0xb12a7u;
  // floor guard: (k + 0.5)/n floors back to exactly k attackers.
  scenario.adversary.attacker_fraction =
      (static_cast<double>(attackers) + 0.5) / static_cast<double>(n);
  // φ̂-separable palette: sign-flip and free-riders depress the score,
  // scale attacks trip the relative admission gate. Gaussian noise has a
  // mean-zero φ̂ and is covered by unit tests instead.
  scenario.adversary.palette = {AttackType::kSignFlip, AttackType::kScale,
                                AttackType::kFreeRiderZero};
  scenario.adversary.collusion_probability = rng.Uniform(0.0, 0.5);
  scenario.adversary.scale = 20.0;

  scenario.aggregator_spec = "trimmed:0.3";
  scenario.escalation.enabled = true;
  scenario.quarantine_median_factor = 5.0;
  return scenario;
}

SimWorld MakeSimWorld(const SimScenario& scenario) {
  GaussianClassificationConfig data_config;
  data_config.num_samples = 120;
  data_config.num_features = 6;
  data_config.num_classes = 3;
  data_config.seed = scenario.seed;
  Dataset pool = MakeGaussianClassification(data_config).value();
  Rng rng(scenario.seed + 1);
  auto split = SplitHoldout(pool, 0.2, rng).value();
  SimWorld world;
  world.validation = split.second;
  auto shards =
      PartitionIid(split.first, scenario.num_participants, rng).value();
  for (size_t i = 0; i < scenario.num_participants; ++i) {
    world.participants.emplace_back(i, shards[i]);
  }
  world.init = Vec(world.model.NumParams(), 0.0);
  world.config.epochs = scenario.epochs;
  world.config.learning_rate = 0.2;
  world.digest = net::FederationConfigDigest(
      world.model.NumParams(), world.config.epochs,
      world.config.learning_rate, world.config.lr_decay,
      world.config.local_steps, world.config.batch_seed);
  return world;
}

SimFederationResult RunSimFederation(const SimScenario& scenario) {
  const size_t n = scenario.num_participants;
  SimWorld world = MakeSimWorld(scenario);

  SimNetOptions net_options;
  net_options.seed = scenario.seed;
  net_options.rates = scenario.rates;
  net_options.grace_us = scenario.grace_us;
  SimNet net(net_options);

  ObsClockGuard obs_guard;
  if (scenario.collect_observability) {
    telemetry::SetObservabilityClock(&SimObsClock, &net);
    obs_guard.installed = true;
  }

  SimFederationResult result;
  result.node_statuses.assign(n, Status::OK());

  // Adversarial extras; both stay null on honest scenarios.
  std::unique_ptr<AdversaryPlan> adversary;
  if (scenario.adversary.attacker_fraction > 0.0) {
    auto plan = AdversaryPlan::Generate(n, scenario.adversary);
    if (!plan.ok()) {
      result.status = plan.status();
      return result;
    }
    adversary = std::make_unique<AdversaryPlan>(std::move(*plan));
  }
  std::unique_ptr<Aggregator> aggregator;
  if (!scenario.aggregator_spec.empty()) {
    auto made = MakeAggregator(scenario.aggregator_spec);
    if (!made.ok()) {
      result.status = made.status();
      return result;
    }
    aggregator = std::move(*made);
  }

  net::CoordinatorOptions coordinator_options;
  coordinator_options.transport = &net;
  coordinator_options.num_participants = n;
  coordinator_options.config_digest = world.digest;
  coordinator_options.handshake_timeout_ms = 200;  // virtual ms from here on
  coordinator_options.round_timeout_ms = 150;
  coordinator_options.max_round_retries = 2;
  // Retry/connect backoff sleeps are *real* time; in simulation they would
  // only slow the swarm down, so both roles retry immediately.
  coordinator_options.retry_backoff.initial_ms = 0;
  coordinator_options.accept_poll_ms = 10000;
  coordinator_options.compress = scenario.compress;
  auto coordinator = net::Coordinator::Create(coordinator_options);
  if (!coordinator.ok()) {
    result.status = coordinator.status();
    return result;
  }

  std::vector<std::unique_ptr<net::ParticipantNode>> nodes(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    net::ParticipantNodeOptions node_options;
    node_options.transport = &net;
    node_options.host = "node" + std::to_string(i);  // fate-schedule label
    node_options.port = (*coordinator)->port();
    node_options.participant_id = i;
    node_options.config_digest = world.digest;
    node_options.connect_timeout_ms = 50;
    node_options.handshake_timeout_ms = 200;
    node_options.io_timeout_ms = 500;
    node_options.max_idle_polls = 100;
    node_options.max_connect_attempts = 30;
    node_options.connect_backoff.initial_ms = 0;
    node_options.adversary = adversary.get();
    nodes[i] = std::make_unique<net::ParticipantNode>(
        world.model, world.participants[i], node_options);
    threads.emplace_back(
        [i, &nodes, &result] { result.node_statuses[i] = nodes[i]->Run(); });
  }

  // Real-time bound; a node the schedule already killed (e.g. partitioned
  // from t=0) just realizes as an all-epochs dropout, so proceed either way.
  (void)(*coordinator)->WaitForParticipants(500);

  FedSgdConfig run_config = world.config;
  if (scenario.run_epochs != 0) run_config.epochs = scenario.run_epochs;
  run_config.aggregator = aggregator.get();
  run_config.escalation = scenario.escalation;
  if (scenario.quarantine_median_factor > 0.0) {
    run_config.quarantine.median_factor = scenario.quarantine_median_factor;
  }
  HflServer server(world.model, world.validation);

  if (scenario.with_checkpoints) {
    ckpt::CheckpointRunOptions checkpoint_options;
    checkpoint_options.dir = scenario.checkpoint_dir;
    checkpoint_options.every = 1;
    checkpoint_options.resume = scenario.resume;
    auto run = net::RunDistributedFedSgdWithCheckpoints(
        **coordinator, server, world.init, run_config, checkpoint_options);
    if (run.ok()) {
      result.log = std::move(run->log);
      result.phi_total = std::move(run->contributions.total);
      result.phi_per_epoch = std::move(run->contributions.per_epoch);
      result.checkpoints_written = run->checkpoints_written;
      result.resumed = run->resumed;
      result.resumed_from_epoch = run->resumed_from_epoch;
    } else {
      result.status = run.status();
    }
  } else {
    auto log =
        (*coordinator)->RunFederatedTraining(server, world.init, run_config);
    if (log.ok()) {
      result.log = std::move(*log);
    } else {
      result.status = log.status();
    }
  }

  (*coordinator)->Shutdown("sim run finished");
  for (std::thread& thread : threads) thread.join();
  result.coordinator_stats = (*coordinator)->stats();
  result.net_stats = net.stats();

  if (scenario.collect_observability) {
    result.federation_report = (*coordinator)->CollectFederationReport(
        telemetry::HexId(world.digest));
    result.federation_jsonl =
        telemetry::FederationSectionsJsonl(result.federation_report);
  }

  if (result.status.ok() && !scenario.with_checkpoints) {
    HflPhiAccumulator accumulator(n);
    for (const HflEpochRecord& record : result.log.epochs) {
      Status consumed = accumulator.Consume(server, record);
      if (!consumed.ok()) {
        result.status = consumed;
        break;
      }
    }
    result.phi_total = accumulator.total();
    result.phi_per_epoch = accumulator.per_epoch();
  }

  if (scenario.with_checkpoints) {
    // Whatever the schedule did, the store must reopen and decode cleanly.
    auto store = ckpt::CheckpointStore::Open(scenario.checkpoint_dir);
    if (!store.ok()) {
      result.store_health = store.status();
    } else {
      HflPhiAccumulator probe(n);
      auto load = ckpt::LoadHflResumePoint(*store, probe);
      if (!load.ok()) result.store_health = load.status();
    }
  }
  return result;
}

Result<HflTrainingLog> RealizedReference(const SimWorld& world,
                                         const HflTrainingLog& log) {
  const size_t n = world.participants.size();
  const size_t epochs = log.num_epochs();
  std::vector<FaultEvent> events(epochs * n);
  bool any_absent = false;
  for (size_t t = 0; t < epochs; ++t) {
    for (size_t i = 0; i < n; ++i) {
      if (!log.epochs[t].IsPresent(i)) {
        events[t * n + i].type = FaultType::kDropout;
        any_absent = true;
      }
    }
  }
  FedSgdConfig config = world.config;
  config.epochs = epochs;
  Result<FaultPlan> plan =
      FaultPlan::FromSchedule(epochs, n, std::move(events));
  if (!plan.ok()) return plan.status();
  if (any_absent) config.fault_plan = &*plan;
  HflServer server(world.model, world.validation);
  return RunFedSgd(world.model, world.participants, server, world.init,
                   config);
}

std::string DiffLogs(const HflTrainingLog& a, const HflTrainingLog& b) {
  std::ostringstream out;
  if (a.num_epochs() != b.num_epochs()) {
    out << "epoch count " << a.num_epochs() << " vs " << b.num_epochs();
    return out.str();
  }
  for (size_t t = 0; t < a.num_epochs(); ++t) {
    const HflEpochRecord& ra = a.epochs[t];
    const HflEpochRecord& rb = b.epochs[t];
    if (!BitEqual(ra.params_before, rb.params_before)) {
      out << "epoch " << t << ": params_before differ";
      return out.str();
    }
    if (!BitEqual(ra.learning_rate, rb.learning_rate)) {
      out << "epoch " << t << ": learning_rate differs";
      return out.str();
    }
    if (ra.deltas.size() != rb.deltas.size()) {
      out << "epoch " << t << ": participant count differs";
      return out.str();
    }
    for (size_t i = 0; i < ra.deltas.size(); ++i) {
      // The mask is compared through IsPresent so an all-present epoch
      // matches whether `present` is explicit or the legacy empty layout.
      if (ra.IsPresent(i) != rb.IsPresent(i)) {
        out << "epoch " << t << ": presence of participant " << i
            << " differs";
        return out.str();
      }
      if (!BitEqual(ra.deltas[i], rb.deltas[i])) {
        out << "epoch " << t << ": delta of participant " << i << " differs";
        return out.str();
      }
      const double wa = i < ra.weights.size() ? ra.weights[i] : 0.0;
      const double wb = i < rb.weights.size() ? rb.weights[i] : 0.0;
      if (!BitEqual(wa, wb)) {
        out << "epoch " << t << ": weight of participant " << i << " differs";
        return out.str();
      }
    }
  }
  if (!BitEqual(a.final_params, b.final_params)) return "final_params differ";
  if (a.validation_loss.size() != b.validation_loss.size()) {
    return "validation_loss length differs";
  }
  for (size_t t = 0; t < a.validation_loss.size(); ++t) {
    if (!BitEqual(a.validation_loss[t], b.validation_loss[t])) {
      out << "validation_loss[" << t << "] differs";
      return out.str();
    }
  }
  if (a.validation_accuracy.size() != b.validation_accuracy.size()) {
    return "validation_accuracy length differs";
  }
  for (size_t t = 0; t < a.validation_accuracy.size(); ++t) {
    if (!BitEqual(a.validation_accuracy[t], b.validation_accuracy[t])) {
      out << "validation_accuracy[" << t << "] differs";
      return out.str();
    }
  }
  return "";
}

std::string CheckHflInvariants(
    const SimWorld& world, const HflTrainingLog& log,
    const std::vector<double>& phi_total,
    const std::vector<std::vector<double>>& phi_per_epoch) {
  const size_t n = world.participants.size();
  std::ostringstream out;
  if (phi_total.size() != n || phi_per_epoch.size() != log.num_epochs()) {
    return "phi estimate has the wrong shape";
  }

  HflServer server(world.model, world.validation);

  // Incremental accumulation == batch evaluation (Algorithm #2), bitwise.
  auto batch =
      EvaluateHflContributions(world.model, world.participants, server, log);
  if (!batch.ok()) return "batch evaluator failed: " + batch.status().ToString();
  for (size_t i = 0; i < n; ++i) {
    if (!BitEqual(batch->total[i], phi_total[i])) {
      out << "incremental phi_total[" << i << "] != batch evaluation";
      return out.str();
    }
  }
  for (size_t t = 0; t < log.num_epochs(); ++t) {
    for (size_t i = 0; i < n; ++i) {
      if (!BitEqual(batch->per_epoch[t][i], phi_per_epoch[t][i])) {
        out << "incremental phi[" << t << "][" << i << "] != batch";
        return out.str();
      }
    }
  }

  // Masked-estimator consistency: absent => exactly zero contribution and a
  // zeroed delta slot; present => the 1/|present_t| divisor identity.
  for (size_t t = 0; t < log.num_epochs(); ++t) {
    const HflEpochRecord& record = log.epochs[t];
    const size_t num_present = record.NumPresent();
    auto gradient = server.ValidationGradient(record.params_before);
    if (!gradient.ok()) return "validation gradient failed";
    for (size_t i = 0; i < n; ++i) {
      if (!record.IsPresent(i)) {
        if (phi_per_epoch[t][i] != 0.0) {
          out << "absent participant " << i << " has phi != 0 at epoch " << t;
          return out.str();
        }
        for (double d : record.deltas[i]) {
          if (d != 0.0) {
            out << "absent participant " << i << " has nonzero delta at epoch "
                << t;
            return out.str();
          }
        }
        continue;
      }
      double dot = 0.0;
      for (size_t k = 0; k < gradient->size(); ++k) {
        dot += (*gradient)[k] * record.deltas[i][k];
      }
      const double expected =
          dot / static_cast<double>(num_present == 0 ? 1 : num_present);
      if (!Near(phi_per_epoch[t][i], expected)) {
        out << "epoch " << t << " participant " << i
            << ": phi != (1/|present|) <v, delta>";
        return out.str();
      }
    }
  }

  // Lemma 3 additivity: the group estimate is the sum of its singletons,
  // per epoch and in total, for every prefix group.
  ContributionReport report;
  report.total = phi_total;
  report.per_epoch = phi_per_epoch;
  for (size_t cut = 1; cut <= n; ++cut) {
    std::vector<size_t> group;
    double singleton_sum = 0.0;
    for (size_t i = 0; i < cut; ++i) {
      group.push_back(i);
      singleton_sum += phi_total[i];
    }
    auto grouped = GroupContribution(report, group);
    if (!grouped.ok()) return "GroupContribution failed";
    if (!Near(*grouped, singleton_sum)) {
      out << "Lemma 3 additivity fails for group prefix of size " << cut;
      return out.str();
    }
    auto per_epoch = GroupPerEpochContribution(report, group);
    if (!per_epoch.ok()) return "GroupPerEpochContribution failed";
    for (size_t t = 0; t < log.num_epochs(); ++t) {
      double epoch_sum = 0.0;
      for (size_t i = 0; i < cut; ++i) epoch_sum += phi_per_epoch[t][i];
      if (!Near((*per_epoch)[t], epoch_sum)) {
        out << "Lemma 3 per-epoch additivity fails at epoch " << t;
        return out.str();
      }
    }
  }
  return "";
}

HaSimScenario HaSimScenario::FromSeed(uint64_t seed) {
  HaSimScenario scenario;
  scenario.seed = seed;
  Rng rng(seed ^ 0x4af17u);
  scenario.epochs = static_cast<size_t>(rng.UniformInt(int64_t{4}, int64_t{6}));
  const uint64_t variant = rng.UniformInt(uint64_t{10});
  if (variant == 0) {
    // No failure: the HA machinery runs (replication, lease) but the
    // primary completes — the overhead-only path.
    scenario.with_checkpoints = rng.UniformInt(uint64_t{2}) == 1;
    return scenario;
  }
  if (variant <= 2) {
    // Partition window: the replication link goes dark at blackout_epoch,
    // the standby promotes mid-run, and the primary dies later — the
    // epochs it served inside the window are recomputed by the promoted
    // coordinator.
    scenario.blackout_epoch =
        static_cast<size_t>(rng.UniformInt(uint64_t{scenario.epochs - 1}));
    scenario.halt_epoch =
        scenario.blackout_epoch +
        static_cast<size_t>(rng.UniformInt(
            uint64_t{scenario.epochs - scenario.blackout_epoch}));
    scenario.halt_site = net::HaltSite::kEpochEnd;
    scenario.with_checkpoints = rng.UniformInt(uint64_t{2}) == 1;
    return scenario;
  }
  // Kill: the primary dies at a seeded site of a seeded epoch.
  constexpr net::HaltSite kSites[] = {
      net::HaltSite::kBeforeBroadcast, net::HaltSite::kAfterCollect,
      net::HaltSite::kAfterCheckpoint, net::HaltSite::kEpochEnd};
  scenario.halt_site = kSites[rng.UniformInt(uint64_t{4})];
  scenario.halt_epoch =
      static_cast<size_t>(rng.UniformInt(uint64_t{scenario.epochs}));
  scenario.with_checkpoints = rng.UniformInt(uint64_t{2}) == 1;
  return scenario;
}

HaSimResult RunHaSimFederation(const HaSimScenario& scenario) {
  const size_t n = scenario.num_participants;
  const bool blackout = scenario.blackout_epoch < scenario.epochs;

  SimScenario base;
  base.seed = scenario.seed;
  base.num_participants = n;
  base.epochs = scenario.epochs;
  base.rates = SimFaultRates{};  // benign: completed runs compare bitwise
  base.grace_us = scenario.grace_us;
  SimWorld world = MakeSimWorld(base);

  SimNetOptions net_options;
  net_options.seed = scenario.seed;
  net_options.rates = SimFaultRates{};
  net_options.grace_us = scenario.grace_us;
  SimNet net(net_options);

  HaSimResult result;
  result.node_statuses.assign(n, Status::OK());

  // Standby first so the failover port exists before any node dials it.
  net::StandbyOptions standby_options;
  standby_options.transport = &net;
  standby_options.port = 0;
  standby_options.config_digest = world.digest;
  standby_options.primary_generation = 1;
  standby_options.lease_timeout_ms = scenario.lease_timeout_ms;
  auto standby = net::StandbyCoordinator::Create(standby_options);
  if (!standby.ok()) {
    result.status = standby.status();
    return result;
  }
  const uint16_t failover_port = (*standby)->port();

  net::CoordinatorOptions primary_options;
  primary_options.transport = &net;
  primary_options.num_participants = n;
  primary_options.config_digest = world.digest;
  primary_options.handshake_timeout_ms = 200;  // virtual ms from here on
  primary_options.round_timeout_ms = 150;
  primary_options.max_round_retries = 2;
  primary_options.retry_backoff.initial_ms = 0;
  primary_options.accept_poll_ms = 10000;
  primary_options.leader_generation = 1;
  primary_options.standby_host = "standby";  // the dial-side fault label
  primary_options.standby_port = failover_port;
  primary_options.replication_timeout_ms = 100;
  primary_options.halt.site = scenario.halt_site;
  primary_options.halt.epoch = scenario.halt_epoch;
  primary_options.replication_blackout_epoch = scenario.blackout_epoch;
  auto primary = net::Coordinator::Create(primary_options);
  if (!primary.ok()) {
    result.status = primary.status();
    return result;
  }

  Status standby_status = Status::OK();
  std::thread standby_thread([&] {
    auto run = (*standby)->Run();
    if (run.ok()) {
      result.standby_outcome = std::move(*run);
    } else {
      standby_status = run.status();
    }
  });

  std::vector<std::unique_ptr<net::ParticipantNode>> nodes(n);
  std::vector<std::thread> node_threads;
  node_threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    net::ParticipantNodeOptions node_options;
    node_options.transport = &net;
    node_options.host = "node" + std::to_string(i);  // fate-schedule label
    node_options.endpoints = {{node_options.host, (*primary)->port()},
                              {node_options.host, failover_port}};
    node_options.participant_id = i;
    node_options.config_digest = world.digest;
    node_options.connect_timeout_ms = 50;
    node_options.handshake_timeout_ms = 200;
    node_options.io_timeout_ms = 500;
    node_options.max_idle_polls = 100;
    // A failover episode burns attempts on the dead primary (a full
    // connect timeout each, by SYN-retry) and on pre-promotion standby
    // rejections, all while the lease runs out — budget generously.
    node_options.max_connect_attempts = 80;
    node_options.connect_backoff.initial_ms = 0;
    nodes[i] = std::make_unique<net::ParticipantNode>(
        world.model, world.participants[i], node_options);
    node_threads.emplace_back(
        [i, &nodes, &result] { result.node_statuses[i] = nodes[i]->Run(); });
  }

  // The primary trains on its own thread so the harness can observe the
  // standby promoting *while the primary still leads* (partition window).
  Status primary_status = Status::Unavailable("primary run never finished");
  HflTrainingLog primary_log;
  std::thread primary_thread([&] {
    (void)(*primary)->WaitForParticipants(500);
    HflServer server(world.model, world.validation);
    if (scenario.with_checkpoints) {
      ckpt::CheckpointRunOptions checkpoint_options;
      checkpoint_options.dir = scenario.checkpoint_dir;
      checkpoint_options.every = 1;
      checkpoint_options.resume = false;
      auto run = net::RunDistributedFedSgdWithCheckpoints(
          **primary, server, world.init, world.config, checkpoint_options);
      primary_status = run.status();
      if (run.ok()) primary_log = std::move(run->log);
    } else {
      auto log =
          (*primary)->RunFederatedTraining(server, world.init, world.config);
      primary_status = log.status();
      if (log.ok()) primary_log = std::move(*log);
    }
  });

  // In a partition window the standby promotes during the primary's run;
  // join it first so the split-brain interval (two bound coordinators, one
  // stale) is actually exercised. Otherwise the primary's fate decides.
  if (blackout) standby_thread.join();
  primary_thread.join();
  result.primary_status = primary_status;
  result.primary_stats = (*primary)->stats();

  const auto join_nodes = [&] {
    for (std::thread& thread : node_threads) thread.join();
    result.net_stats = net.stats();
  };

  if (primary_status.ok()) {
    // Completed on the primary; the standby heard the farewell (or is
    // stopped here if it never did).
    if (standby_thread.joinable()) {
      (*standby)->Stop();
      standby_thread.join();
    }
    (*primary)->Shutdown("ha sim run finished");
    join_nodes();
    result.log = std::move(primary_log);
  } else {
    // The primary died (halt plan or fencing): kill it silently — no
    // farewell, exactly what its death looks like from the outside.
    (*primary)->Kill();
    if (standby_thread.joinable()) standby_thread.join();
    if (!standby_status.ok()) {
      result.status = standby_status;
      join_nodes();
      return result;
    }
    if (!result.standby_outcome.promoted()) {
      result.status = Status::FailedPrecondition(
          "primary died but the standby did not promote");
      join_nodes();
      return result;
    }
    result.failover = true;
    result.promoted_generation = result.standby_outcome.generation;

    // Free the failover port, then lead it with the promoted generation.
    standby->reset();
    net::CoordinatorOptions promoted_options = primary_options;
    promoted_options.port = failover_port;
    promoted_options.leader_generation = result.standby_outcome.generation;
    promoted_options.standby_port = 0;  // no further standby to replicate to
    promoted_options.halt = net::HaltPlan{};
    promoted_options.replication_blackout_epoch = static_cast<size_t>(-1);
    auto promoted = net::Coordinator::Create(promoted_options);
    if (!promoted.ok()) {
      result.status = promoted.status();
      join_nodes();
      return result;
    }

    // The dead primary's store handle, opened before the promoted
    // generation claims the manifest — the fencing drill below proves its
    // writes are refused afterward.
    std::unique_ptr<ckpt::CheckpointStore> stale_store;
    if (scenario.with_checkpoints) {
      auto stale = ckpt::CheckpointStore::Open(scenario.checkpoint_dir, 2, 1);
      if (stale.ok()) {
        stale_store =
            std::make_unique<ckpt::CheckpointStore>(std::move(*stale));
      }
    }

    // Real-time bound: the nodes detect the primary's death (closed
    // connections / refused dials) and rotate here within a few virtual ms.
    Status waited = (*promoted)->WaitForParticipants(10000);
    HflServer server(world.model, world.validation);
    if (scenario.with_checkpoints) {
      // Durable-boundary resume: the shared store is the promoted
      // coordinator's warm start, and Open() with the promoted generation
      // claims the manifest.
      ckpt::CheckpointRunOptions checkpoint_options;
      checkpoint_options.dir = scenario.checkpoint_dir;
      checkpoint_options.every = 1;
      checkpoint_options.resume = true;
      auto run = net::RunDistributedFedSgdWithCheckpoints(
          **promoted, server, world.init, world.config, checkpoint_options);
      if (run.ok()) {
        result.log = std::move(run->log);
        result.resumed_from_epoch = run->resumed_from_epoch;
      } else {
        result.status = run.status();
      }
    } else {
      // In-memory resume: the replicated epoch log IS the promoted
      // coordinator's warm start — no disk replay.
      HflPhiAccumulator accumulator(n);
      ckpt::HflResumeLoad load;
      FedSgdConfig promoted_config = world.config;
      if (result.standby_outcome.has_state) {
        auto loaded = ckpt::ResumeFromState(result.standby_outcome.state,
                                            accumulator);
        if (!loaded.ok()) {
          result.status = loaded.status();
          (*promoted)->Shutdown("ha sim run failed");
          join_nodes();
          return result;
        }
        load = std::move(*loaded);
        if (load.resumed) {
          promoted_config.resume = &load.point;
          result.resumed_from_epoch = load.epoch;
        }
      }
      auto log = (*promoted)->RunFederatedTraining(server, world.init,
                                                   promoted_config);
      if (log.ok()) {
        result.log = std::move(*log);
      } else {
        result.status = log.status();
      }
    }
    if (result.status.ok() && !waited.ok()) {
      // Training "completed" without the full federation — surface the
      // wait failure instead of a log full of absences.
      result.status = waited;
    }

    // Fencing drill: the stale generation-1 handle must be refused now
    // that the manifest is claimed by the promoted generation.
    if (stale_store != nullptr) {
      result.stale_commit_attempted = true;
      result.stale_commit_status =
          stale_store->Commit(scenario.epochs + 1000, "stale leader write");
    }

    (*promoted)->Shutdown("ha sim run finished");
    join_nodes();
    result.promoted_stats = (*promoted)->stats();
  }

  if (result.status.ok()) {
    HflServer server(world.model, world.validation);
    HflPhiAccumulator accumulator(n);
    for (const HflEpochRecord& record : result.log.epochs) {
      Status consumed = accumulator.Consume(server, record);
      if (!consumed.ok()) {
        result.status = consumed;
        break;
      }
    }
    result.phi_total = accumulator.total();
    result.phi_per_epoch = accumulator.per_epoch();
  }

  if (scenario.with_checkpoints) {
    auto store = ckpt::CheckpointStore::Open(scenario.checkpoint_dir);
    if (!store.ok()) {
      result.store_health = store.status();
    } else {
      HflPhiAccumulator probe(n);
      auto load = ckpt::LoadHflResumePoint(*store, probe);
      if (!load.ok()) result.store_health = load.status();
    }
  }
  return result;
}

std::string CheckVflBlockOrthogonality(uint64_t seed) {
  SyntheticRegressionConfig data_config;
  data_config.num_samples = 120;
  data_config.num_features = 9;
  data_config.seed = seed;
  Dataset pool = MakeSyntheticRegression(data_config).value();
  Rng rng(seed + 1);
  auto split = SplitHoldout(pool, 0.2, rng).value();
  const VflBlockModel blocks =
      VflBlockModel::Create(SplitFeatureBlocks(9, 3).value(), 9).value();
  LinearRegression model(9);
  VflTrainConfig train_config;
  train_config.epochs = 4;
  train_config.learning_rate = 0.05;
  auto log = RunVflTraining(model, blocks, split.first, split.second,
                            train_config);
  if (!log.ok()) return "VFL training failed: " + log.status().ToString();
  auto full = EvaluateVflContributions(model, blocks, split.first,
                                       split.second, *log);
  if (!full.ok()) return "VFL evaluation failed: " + full.status().ToString();

  std::ostringstream out;
  for (size_t i = 0; i < 3; ++i) {
    // Zero every *other* participant's block of the logged gradients; Eq. 27
    // restricts phi_i to block i, so its estimate must not move a bit.
    VflTrainingLog masked = *log;
    for (VflEpochRecord& record : masked.epochs) {
      record.scaled_gradient = blocks.KeepBlock(i, record.scaled_gradient);
    }
    auto restricted = EvaluateVflContributions(model, blocks, split.first,
                                               split.second, masked);
    if (!restricted.ok()) return "masked VFL evaluation failed";
    if (!BitEqual(restricted->total[i], full->total[i])) {
      out << "Eq. 27 block-orthogonality: total[" << i
          << "] changed when other blocks were zeroed";
      return out.str();
    }
    for (size_t t = 0; t < log->num_epochs(); ++t) {
      if (!BitEqual(restricted->per_epoch[t][i], full->per_epoch[t][i])) {
        out << "Eq. 27 block-orthogonality: per_epoch[" << t << "][" << i
            << "] changed when other blocks were zeroed";
        return out.str();
      }
    }
  }
  return "";
}

}  // namespace sim
}  // namespace digfl
