#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace digfl {
namespace telemetry {
namespace json {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // %.17g round-trips doubles; shorter forms are produced when exact.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

const Value* Value::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Value::NumberOr(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : fallback;
}

std::string Value::StringOr(std::string_view key, std::string fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value
                                          : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    DIGFL_ASSIGN_OR_RETURN(Value value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  // Guards the recursive containers: each open '{' / '[' costs one level
  // of both logical nesting and real call stack.
  Status EnterContainer() {
    if (depth_ >= kMaxParseDepth) {
      return Status::InvalidArgument(
          "JSON nesting exceeds the depth cap (" +
          std::to_string(kMaxParseDepth) + ")");
    }
    ++depth_;
    return Status::OK();
  }

  Result<Value> ParseObject() {
    DIGFL_RETURN_IF_ERROR(EnterContainer());
    DIGFL_RETURN_IF_ERROR(Expect('{'));
    Value value;
    value.kind = Value::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      DIGFL_ASSIGN_OR_RETURN(Value key, ParseString());
      SkipWhitespace();
      DIGFL_RETURN_IF_ERROR(Expect(':'));
      DIGFL_ASSIGN_OR_RETURN(Value member, ParseValue());
      value.members.emplace_back(std::move(key.string_value),
                                 std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      DIGFL_RETURN_IF_ERROR(Expect('}'));
      --depth_;
      return value;
    }
  }

  Result<Value> ParseArray() {
    DIGFL_RETURN_IF_ERROR(EnterContainer());
    DIGFL_RETURN_IF_ERROR(Expect('['));
    Value value;
    value.kind = Value::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return value;
    }
    while (true) {
      DIGFL_ASSIGN_OR_RETURN(Value item, ParseValue());
      value.items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      DIGFL_RETURN_IF_ERROR(Expect(']'));
      --depth_;
      return value;
    }
  }

  Result<Value> ParseString() {
    DIGFL_RETURN_IF_ERROR(Expect('"'));
    Value value;
    value.kind = Value::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          value.string_value.push_back('"');
          break;
        case '\\':
          value.string_value.push_back('\\');
          break;
        case '/':
          value.string_value.push_back('/');
          break;
        case 'b':
          value.string_value.push_back('\b');
          break;
        case 'f':
          value.string_value.push_back('\f');
          break;
        case 'n':
          value.string_value.push_back('\n');
          break;
        case 'r':
          value.string_value.push_back('\r');
          break;
        case 't':
          value.string_value.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape digit");
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            value.string_value.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            value.string_value.push_back(static_cast<char>(0xC0 | (code >> 6)));
            value.string_value.push_back(
                static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            value.string_value.push_back(
                static_cast<char>(0xE0 | (code >> 12)));
            value.string_value.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            value.string_value.push_back(
                static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("bad escape character");
      }
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Result<Value> ParseBool() {
    Value value;
    value.kind = Value::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      value.bool_value = true;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      value.bool_value = false;
      return value;
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<Value> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Value{};
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a JSON value at offset " +
                                     std::to_string(start));
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad JSON number: " + token);
    }
    Value value;
    value.kind = Value::Kind::kNumber;
    value.number_value = parsed;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace json
}  // namespace telemetry
}  // namespace digfl
