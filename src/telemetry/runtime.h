// Process-wide runtime switch for telemetry collection.
//
// Compile-time gating is controlled by the CMake option DIGFL_TELEMETRY
// (macro DIGFL_TELEMETRY_ENABLED, default 1): when 0, the DIGFL_TRACE_SPAN /
// DIGFL_COUNTER_* macros compile to literal no-ops. This runtime switch is
// the second, cheaper knob: with telemetry compiled in, SetEnabled(false)
// stops span recording and macro-driven counter updates at the cost of one
// relaxed atomic load per site (used by bench_telemetry_overhead to isolate
// instrumentation cost inside a single binary).

#ifndef DIGFL_TELEMETRY_RUNTIME_H_
#define DIGFL_TELEMETRY_RUNTIME_H_

#ifndef DIGFL_TELEMETRY_ENABLED
#define DIGFL_TELEMETRY_ENABLED 1
#endif

namespace digfl {
namespace telemetry {

// Defaults to true. Handles resolved while enabled keep working after a
// SetEnabled(false); the switch gates new handle resolution, span recording,
// and the convenience macros.
void SetEnabled(bool enabled);
bool Enabled();

}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_RUNTIME_H_
