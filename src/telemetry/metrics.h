// MetricsRegistry: the repo's single store for quantitative run telemetry.
//
// Every metric is identified by a name (convention: `subsystem.noun_unit`,
// e.g. "hfl.upload_bytes_total", see DESIGN.md "Telemetry") plus a small
// label set ({participant, epoch, phase, reason, ...}). Three metric kinds:
//
//   Counter   — monotone uint64 (events, bytes, op counts); lock-free adds.
//   Gauge     — last-written double (config knobs, sizes).
//   Histogram — fixed upper-bound buckets over doubles (latencies).
//
// Handle discipline: `GetCounter()` et al. take the registry mutex once and
// return a reference that stays valid until `Clear()`; hot paths resolve the
// handle outside the loop and then increment lock-free. `Reset()` zeroes
// values in place and keeps handles valid; `Clear()` drops all series and
// invalidates handles (only safe between runs).

#ifndef DIGFL_TELEMETRY_METRICS_H_
#define DIGFL_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace digfl {
namespace telemetry {

struct Label {
  std::string key;
  std::string value;

  bool operator==(const Label& other) const = default;
};

// Order-insensitive at the API boundary: registries canonicalize by sorting
// on key before building the series identity.
using LabelSet = std::vector<Label>;

// Canonical "k1=v1,k2=v2" encoding (sorted by key); the series identity.
std::string EncodeLabels(const LabelSet& labels);

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    // CAS loop instead of fetch_add: portable to pre-C++20 atomic<double>.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `upper_bounds` are inclusive bucket ceilings in
// ascending order; an implicit +inf bucket catches the overflow tail.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t TotalCount() const;
  double Sum() const;
  double Max() const;  // exact observed max (0 when empty)
  const std::vector<double>& bounds() const { return bounds_; }
  // Bucket occupancy; size bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  // Approximate quantile (q in [0,1]) by linear interpolation inside the
  // bucket holding the q-th observation; the overflow bucket reports Max().
  double Quantile(double q) const;

  void Reset();

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindToString(MetricKind kind);

struct HistogramData {
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

// One series at snapshot time.
struct MetricSample {
  std::string name;
  LabelSet labels;  // canonical (key-sorted)
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       // counter (cast) or gauge
  HistogramData histogram;  // populated iff kind == kHistogram
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, labels)

  // First sample matching name + exact canonical label set, else nullptr.
  const MetricSample* Find(std::string_view name,
                           const LabelSet& labels = {}) const;
  // Sum of counter values across all label sets of `name`.
  uint64_t CounterTotal(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name, LabelSet labels = {});
  Gauge& GetGauge(std::string_view name, LabelSet labels = {});
  // `upper_bounds` applies on first creation of the series; subsequent
  // lookups ignore it (same-name series must share a bucket layout).
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds,
                          LabelSet labels = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every series in place; outstanding handles stay valid.
  void Reset();
  // Drops every series; invalidates outstanding handles. Only call between
  // runs, never concurrently with instrumented code.
  void Clear();

  size_t NumSeries() const;

  // Process-wide registry used by the DIGFL_* telemetry macros.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    LabelSet labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& FindOrCreate(std::string_view name, LabelSet labels,
                      MetricKind kind, const std::vector<double>* bounds);

  mutable std::mutex mu_;
  // Keyed by "name\x1f<canonical labels>"; node-based map keeps Entry (and
  // the metric objects it owns) address-stable across inserts.
  std::map<std::string, Entry> series_;
};

}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_METRICS_H_
