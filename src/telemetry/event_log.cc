#include "telemetry/event_log.h"

#include <chrono>

namespace digfl {
namespace telemetry {

namespace {

double UnixNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLog::EventLog(size_t capacity)
    : capacity_(capacity), anchor_unix_seconds_(UnixNowSeconds()) {}

void EventLog::Emit(std::string name, LabelSet labels, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Event event;
  event.t_seconds = clock_.ElapsedSeconds();
  event.name = std::move(name);
  event.labels = std::move(labels);
  event.value = value;
  events_.push_back(std::move(event));
}

std::vector<Event> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

double EventLog::anchor_unix_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return anchor_unix_seconds_;
}

void EventLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  clock_.Restart();
  anchor_unix_seconds_ = UnixNowSeconds();
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

}  // namespace telemetry
}  // namespace digfl
