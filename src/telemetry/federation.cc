#include "telemetry/federation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <tuple>
#include <utility>

#include "telemetry/json.h"

namespace digfl {
namespace telemetry {

namespace {

struct ObsClockSource {
  ObsClockFn fn = nullptr;
  void* ctx = nullptr;
};

// One immutable source object per SetObservabilityClock call; readers load
// the pointer with acquire so both fields are seen consistently. Sources
// are intentionally leaked (a handful per process at most) so a racing
// ObsNow() can never touch freed memory.
std::atomic<const ObsClockSource*> g_clock_source{nullptr};

double SteadyNow() {
  static const auto anchor = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       anchor)
      .count();
}

std::string MetricKey(const std::string& name, const LabelSet& labels) {
  return name + '\x1f' + EncodeLabels(labels);
}

}  // namespace

double ObsNow() {
  const ObsClockSource* source =
      g_clock_source.load(std::memory_order_acquire);
  if (source != nullptr && source->fn != nullptr) {
    return source->fn(source->ctx);
  }
  return SteadyNow();
}

void SetObservabilityClock(ObsClockFn fn, void* ctx) {
  if (fn == nullptr) {
    g_clock_source.store(nullptr, std::memory_order_release);
    return;
  }
  auto* source = new ObsClockSource{fn, ctx};  // leaked by design, see above
  g_clock_source.store(source, std::memory_order_release);
}

uint64_t RoundSpanId(uint64_t run_id, uint64_t round) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&hash](uint64_t value) {
    for (size_t byte = 0; byte < sizeof(value); ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 0x100000001b3ull;  // FNV prime
    }
  };
  mix(run_id);
  mix(round);
  // Never 0: 0 is the "no parent" sentinel in RemoteSpan.
  return hash != 0 ? hash : 1;
}

// ---------------------------------------------------------------------------
// NodeTelemetry

void NodeTelemetry::OnRequest(const TraceContext& context,
                              double recv_seconds) {
  context_ = context;
  request_recv_seconds_ = recv_seconds;
}

void NodeTelemetry::RecordSpan(std::string name, double start_seconds,
                               double duration_seconds) {
  RemoteSpan span;
  span.round = context_.round;
  span.parent_span_id = context_.parent_span_id;
  span.name = std::move(name);
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds;
  spans_.push_back(std::move(span));
}

void NodeTelemetry::AddCounter(std::string name, uint64_t delta,
                               LabelSet labels) {
  MetricDelta& metric = metrics_[MetricKey(name, labels)];
  if (metric.name.empty()) {
    metric.name = std::move(name);
    metric.labels = std::move(labels);
    metric.kind = MetricKind::kCounter;
  }
  metric.counter_delta += delta;
}

void NodeTelemetry::Observe(std::string name, double value,
                            std::vector<double> bounds, LabelSet labels) {
  MetricDelta& metric = metrics_[MetricKey(name, labels)];
  if (metric.name.empty()) {
    metric.name = std::move(name);
    metric.labels = std::move(labels);
    metric.kind = MetricKind::kHistogram;
    metric.bounds = std::move(bounds);
    metric.bucket_deltas.assign(metric.bounds.size() + 1, 0);
  }
  size_t bucket = metric.bounds.size();  // overflow unless a bound catches it
  for (size_t b = 0; b < metric.bounds.size(); ++b) {
    if (value <= metric.bounds[b]) {
      bucket = b;
      break;
    }
  }
  metric.bucket_deltas[bucket] += 1;
  metric.sum_delta += value;
  metric.max_value = std::max(metric.max_value, value);
  metric.count_delta += 1;
}

TelemetryDelta NodeTelemetry::TakeDelta(uint64_t participant_id,
                                        double send_seconds) {
  TelemetryDelta delta;
  delta.participant_id = participant_id;
  delta.round = context_.round;
  delta.request_recv_seconds = request_recv_seconds_;
  delta.reply_send_seconds = send_seconds;
  delta.spans = std::move(spans_);
  spans_.clear();
  delta.metrics.reserve(metrics_.size());
  for (auto& [key, metric] : metrics_) {
    delta.metrics.push_back(std::move(metric));
  }
  metrics_.clear();
  return delta;
}

// ---------------------------------------------------------------------------
// FederationMerger

FederationMerger::FederationMerger(uint64_t run_id, size_t num_participants)
    : run_id_(run_id), num_participants_(num_participants) {
  clocks_.resize(num_participants);
}

void FederationMerger::RecordHandshake(uint64_t participant,
                                       double node_send_seconds,
                                       double coord_seconds) {
  if (participant >= num_participants_) return;
  std::lock_guard<std::mutex> lock(mu_);
  ClockModel& model = clocks_[participant];
  if (model.samples > 0) return;  // a symmetric sample already exists
  model.offset_seconds = node_send_seconds - coord_seconds;
  model.rtt_seconds = 0.0;
  // samples stays 0: the first round trip must replace this one-way guess.
}

void FederationMerger::Absorb(uint64_t participant,
                              const TelemetryDelta& delta, double t0,
                              double t1) {
  if (participant >= num_participants_) return;
  const double p0 = delta.request_recv_seconds;
  const double p1 = delta.reply_send_seconds;
  const double offset = ((p0 - t0) + (p1 - t1)) / 2.0;
  const double rtt = (t1 - t0) - (p1 - p0);

  std::lock_guard<std::mutex> lock(mu_);
  ClockModel& model = clocks_[participant];
  // NTP minimum-RTT filter: the tightest round trip bounds the offset
  // error by rtt/2, so it wins over any looser sample.
  if (model.samples == 0 || rtt <= model.rtt_seconds) {
    model.offset_seconds = offset;
    model.rtt_seconds = rtt;
  }
  model.samples += 1;

  for (size_t s = 0; s < delta.spans.size(); ++s) {
    StoredRemoteSpan stored;
    stored.participant = participant;
    stored.seq = s;
    stored.span = delta.spans[s];
    // Rebase with this round's own offset — the freshest estimate of where
    // the participant clock stood while these spans ran.
    stored.span.start_seconds -= offset;
    remote_spans_.push_back(std::move(stored));
  }

  for (const MetricDelta& incoming : delta.metrics) {
    const std::string key = std::to_string(participant) + '\x1f' +
                            MetricKey(incoming.name, incoming.labels);
    RemoteMetricRecord& record = remote_metrics_[key];
    MetricDelta& merged = record.metric;
    if (merged.name.empty()) {
      record.participant = participant;
      merged = incoming;
      continue;
    }
    if (merged.kind != incoming.kind) continue;  // hostile/confused peer
    if (merged.kind == MetricKind::kCounter) {
      merged.counter_delta += incoming.counter_delta;
    } else {
      if (merged.bucket_deltas.size() != incoming.bucket_deltas.size()) {
        continue;
      }
      for (size_t b = 0; b < merged.bucket_deltas.size(); ++b) {
        merged.bucket_deltas[b] += incoming.bucket_deltas[b];
      }
      merged.sum_delta += incoming.sum_delta;
      merged.max_value = std::max(merged.max_value, incoming.max_value);
      merged.count_delta += incoming.count_delta;
    }
  }
}

void FederationMerger::RecordRoundTrip(uint64_t round, uint64_t participant,
                                       double t0, double t1,
                                       uint64_t retries, bool present) {
  if (participant >= num_participants_) return;
  RoundTripRecord record;
  record.round = round;
  record.participant = participant;
  record.send_seconds = t0;
  record.recv_seconds = t1;
  record.retries = retries;
  record.present = present;
  std::lock_guard<std::mutex> lock(mu_);
  round_trips_.push_back(record);
}

void FederationMerger::RecordRoundSpan(uint64_t round, double start_seconds,
                                       double duration_seconds,
                                       double aggregate_seconds,
                                       double validate_seconds) {
  RoundSpanRecord record;
  record.round = round;
  record.span_id = RoundSpanId(run_id_, round);
  record.start_seconds = start_seconds;
  record.duration_seconds = duration_seconds;
  record.aggregate_seconds = aggregate_seconds;
  record.validate_seconds = validate_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  round_spans_.push_back(record);
}

FederationReport FederationMerger::Build(RunReport local) const {
  FederationReport report;
  report.run_id = run_id_;
  report.num_participants = num_participants_;
  report.local = std::move(local);

  std::lock_guard<std::mutex> lock(mu_);
  report.round_spans = round_spans_;
  std::sort(report.round_spans.begin(), report.round_spans.end(),
            [](const RoundSpanRecord& a, const RoundSpanRecord& b) {
              return a.round < b.round;
            });

  report.round_trips = round_trips_;
  std::sort(report.round_trips.begin(), report.round_trips.end(),
            [](const RoundTripRecord& a, const RoundTripRecord& b) {
              return std::tie(a.round, a.participant) <
                     std::tie(b.round, b.participant);
            });

  for (size_t i = 0; i < clocks_.size(); ++i) {
    ClockSample sample;
    sample.participant = i;
    sample.offset_seconds = clocks_[i].offset_seconds;
    sample.rtt_seconds = clocks_[i].rtt_seconds;
    sample.samples = clocks_[i].samples;
    report.clocks.push_back(sample);
  }

  std::vector<StoredRemoteSpan> spans = remote_spans_;
  std::sort(spans.begin(), spans.end(),
            [](const StoredRemoteSpan& a, const StoredRemoteSpan& b) {
              return std::tie(a.span.round, a.participant, a.seq) <
                     std::tie(b.span.round, b.participant, b.seq);
            });
  report.remote_spans.reserve(spans.size());
  for (StoredRemoteSpan& stored : spans) {
    report.remote_spans.push_back(
        RemoteSpanRecord{stored.participant, std::move(stored.span)});
  }

  for (const auto& [key, record] : remote_metrics_) {
    report.remote_metrics.push_back(record);
  }
  std::sort(report.remote_metrics.begin(), report.remote_metrics.end(),
            [](const RemoteMetricRecord& a, const RemoteMetricRecord& b) {
              const std::string la = EncodeLabels(a.metric.labels);
              const std::string lb = EncodeLabels(b.metric.labels);
              return std::tie(a.participant, a.metric.name, la) <
                     std::tie(b.participant, b.metric.name, lb);
            });
  return report;
}

// ---------------------------------------------------------------------------
// JSONL

std::string HexId(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, id);
  return buf;
}

namespace {

void AppendLabelsJson(const LabelSet& labels, std::ostream& os) {
  os << "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json::Escape(labels[i].key) << "\":\""
       << json::Escape(labels[i].value) << "\"";
  }
  os << "}";
}

void WriteRemoteMetricLine(const RemoteMetricRecord& record,
                           std::ostream& os) {
  const MetricDelta& m = record.metric;
  os << "{\"type\":\"remote_metric\",\"participant\":" << record.participant
     << ",\"name\":\"" << json::Escape(m.name) << "\",\"labels\":";
  AppendLabelsJson(m.labels, os);
  os << ",\"kind\":\"" << MetricKindToString(m.kind) << "\"";
  if (m.kind == MetricKind::kHistogram) {
    os << ",\"count\":" << m.count_delta
       << ",\"sum\":" << json::Number(m.sum_delta)
       << ",\"max\":" << json::Number(m.max_value) << ",\"buckets\":[";
    for (size_t b = 0; b < m.bucket_deltas.size(); ++b) {
      if (b > 0) os << ",";
      os << "{\"le\":";
      if (b < m.bounds.size()) {
        os << json::Number(m.bounds[b]);
      } else {
        os << "null";  // overflow bucket
      }
      os << ",\"count\":" << m.bucket_deltas[b] << "}";
    }
    os << "]";
  } else {
    os << ",\"value\":" << m.counter_delta;
  }
  os << "}\n";
}

}  // namespace

Status WriteFederationJsonl(const FederationReport& report,
                            std::ostream& os) {
  os << "{\"type\":\"federation\",\"schema\":\"digfl.federation.v1\","
     << "\"run_id\":\"" << HexId(report.run_id)
     << "\",\"participants\":" << report.num_participants << "}\n";
  for (const RoundSpanRecord& span : report.round_spans) {
    os << "{\"type\":\"round_span\",\"round\":" << span.round
       << ",\"span_id\":\"" << HexId(span.span_id)
       << "\",\"start_seconds\":" << json::Number(span.start_seconds)
       << ",\"duration_seconds\":" << json::Number(span.duration_seconds)
       << ",\"aggregate_seconds\":" << json::Number(span.aggregate_seconds)
       << ",\"validate_seconds\":" << json::Number(span.validate_seconds)
       << "}\n";
  }
  for (const RoundTripRecord& trip : report.round_trips) {
    os << "{\"type\":\"round_trip\",\"round\":" << trip.round
       << ",\"participant\":" << trip.participant
       << ",\"send_seconds\":" << json::Number(trip.send_seconds)
       << ",\"recv_seconds\":" << json::Number(trip.recv_seconds)
       << ",\"retries\":" << trip.retries
       << ",\"present\":" << (trip.present ? 1 : 0) << "}\n";
  }
  for (const ClockSample& clock : report.clocks) {
    os << "{\"type\":\"clock\",\"participant\":" << clock.participant
       << ",\"offset_seconds\":" << json::Number(clock.offset_seconds)
       << ",\"rtt_seconds\":" << json::Number(clock.rtt_seconds)
       << ",\"samples\":" << clock.samples << "}\n";
  }
  for (const RemoteSpanRecord& record : report.remote_spans) {
    os << "{\"type\":\"remote_span\",\"participant\":" << record.participant
       << ",\"round\":" << record.span.round << ",\"parent_span_id\":\""
       << HexId(record.span.parent_span_id) << "\",\"name\":\""
       << json::Escape(record.span.name)
       << "\",\"start_seconds\":" << json::Number(record.span.start_seconds)
       << ",\"duration_seconds\":"
       << json::Number(record.span.duration_seconds) << "}\n";
  }
  for (const RemoteMetricRecord& record : report.remote_metrics) {
    WriteRemoteMetricLine(record, os);
  }
  if (!os) return Status::Internal("federation report stream write failed");
  return Status::OK();
}

std::string FederationSectionsJsonl(const FederationReport& report) {
  std::ostringstream os;
  (void)WriteFederationJsonl(report, os);
  return std::move(os).str();
}

}  // namespace telemetry
}  // namespace digfl
