// Telemetry sinks: where a collected RunReport goes.
//
// A RunReport is a point-in-time bundle of the three telemetry stores —
// metrics snapshot, span tree, event log — stamped with a caller-chosen run
// id. Three consumers:
//
//   InMemorySink   — holds reports for assertions (tests).
//   JsonlFileSink  — appends the machine-readable JSONL encoding to a file
//                    (digfl_eval --telemetry-out, $DIGFL_TELEMETRY_OUT in
//                    the bench harnesses).
//   Summary tables — human-readable TableWriter views of the span tree and
//                    metrics for console output.
//
// JSONL schema (one object per line, "type" discriminates):
//   {"type":"run","schema":"digfl.telemetry.v1","run_id":...,
//    "anchor_unix_seconds":T,"events_dropped":N}
// where anchor_unix_seconds is the wall-clock instant of the event log's
// steady-clock zero — the capture-time anchor that lets merged timelines
// from different processes share an absolute axis.
//   {"type":"metric","name":...,"labels":{...},"kind":"counter","value":N}
//   {"type":"metric",...,"kind":"histogram","count":N,"sum":S,"max":M,
//    "p50":...,"p95":...,"buckets":[{"le":B,"count":N},...]}
//   {"type":"span","path":"a/b","name":"b","count":N,"total_seconds":S,
//    "p50_seconds":...,"p95_seconds":...,"max_seconds":...}
//   {"type":"event","name":...,"t_seconds":T,"labels":{...},"value":V}

#ifndef DIGFL_TELEMETRY_SINK_H_
#define DIGFL_TELEMETRY_SINK_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/table_writer.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace digfl {
namespace telemetry {

struct RunReport {
  std::string schema = "digfl.telemetry.v1";
  std::string run_id;
  // Wall-clock (Unix epoch) instant the events' t_seconds are relative to.
  double anchor_unix_seconds = 0.0;
  MetricsSnapshot metrics;
  std::vector<SpanNodeSnapshot> spans;
  std::vector<Event> events;
  uint64_t events_dropped = 0;
};

// Bundles the global registry, tracer, and event log into one report.
RunReport CollectRunReport(std::string run_id);

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual Status Write(const RunReport& report) = 0;
};

class InMemorySink : public TelemetrySink {
 public:
  Status Write(const RunReport& report) override;
  const std::vector<RunReport>& reports() const { return reports_; }
  void clear() { reports_.clear(); }

 private:
  std::vector<RunReport> reports_;
};

class JsonlFileSink : public TelemetrySink {
 public:
  explicit JsonlFileSink(std::string path, bool append = true)
      : path_(std::move(path)), append_(append) {}
  Status Write(const RunReport& report) override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool append_;
};

// The JSONL encoding itself (JsonlFileSink is a thin file wrapper).
Status WriteJsonl(const RunReport& report, std::ostream& os);

// Aligned console table of the span tree: nested names, call counts,
// totals, percentiles, and each node's share of its root's total.
TableWriter SpanSummaryTable(const std::vector<SpanNodeSnapshot>& roots);

// Aligned console table of every metric series (histograms print
// count/sum/p50/p95/max).
TableWriter MetricsSummaryTable(const MetricsSnapshot& snapshot);

// Sum of root-span totals — the wall-clock the span tree accounts for.
double TotalRootSeconds(const std::vector<SpanNodeSnapshot>& roots);

}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_SINK_H_
