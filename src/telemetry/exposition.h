// Live-registry exposition: render a MetricsSnapshot as Prometheus text
// (version 0.0.4) or JSON, and answer HTTP/1.0 requests for either.
//
// Everything here is pure (bytes in, bytes out) so the formats are testable
// without sockets; the socket accept loop lives in net/metrics_http.h.
//
// Prometheus mapping:
//   - metric names are sanitized to [a-zA-Z0-9_:] (dots become underscores;
//     a leading digit gets a '_' prefix),
//   - label values are escaped per the text format (backslash, quote,
//     newline),
//   - labels render in the registry's canonical key-sorted order,
//   - counters/gauges are single samples; histograms expand to cumulative
//     `_bucket{le="..."}` samples plus `+Inf`, `_sum`, and `_count`.

#ifndef DIGFL_TELEMETRY_EXPOSITION_H_
#define DIGFL_TELEMETRY_EXPOSITION_H_

#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace digfl {
namespace telemetry {

// Prometheus text exposition of the snapshot (one # TYPE line per metric
// name, samples in the snapshot's sorted order).
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

// JSON object {"metrics":[...]} with one entry per series, mirroring the
// sink's metric-line fields.
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);

// Routes one HTTP request head (everything up to the blank line) and
// returns complete HTTP/1.0 response bytes:
//   GET /metrics       -> 200 text/plain; version=0.0.4 (Prometheus text)
//   GET /metrics.json  -> 200 application/json
//   GET elsewhere      -> 404, non-GET -> 405, unparsable -> 400.
std::string HandleMetricsHttpRequest(std::string_view request_head,
                                     const MetricsSnapshot& snapshot);

// Exposed for the golden test: Prometheus-sanitized metric name and
// escaped label value.
std::string PrometheusName(std::string_view name);
std::string PrometheusLabelValue(std::string_view value);

}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_EXPOSITION_H_
