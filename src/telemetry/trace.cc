#include "telemetry/trace.h"

#include <algorithm>
#include <cassert>

namespace digfl {
namespace telemetry {
namespace {

struct SpanFrame {
  Tracer* tracer;
  const char* name;
};

// Open-span stack for this thread. Frames from different tracers can
// interleave (e.g. a test's local tracer inside globally-traced code); a
// span's path is the subsequence of frames belonging to its own tracer.
thread_local std::vector<SpanFrame> tls_span_stack;

double SampleQuantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(position);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

struct Tracer::Node {
  std::string name;
  uint64_t count = 0;
  CumulativeTimer total;  // spans share the CumulativeTimer timing path
  double max_seconds = 0.0;
  std::vector<double> samples;
  std::map<std::string, std::unique_ptr<Node>> children;
};

Tracer::Tracer() : root_(std::make_unique<Node>()) {}

Tracer::~Tracer() = default;

void Tracer::Record(const std::vector<const char*>& path, double seconds) {
  if (path.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Node* node = root_.get();
  for (const char* name : path) {
    std::unique_ptr<Node>& child = node->children[name];
    if (child == nullptr) {
      child = std::make_unique<Node>();
      child->name = name;
    }
    node = child.get();
  }
  ++node->count;
  node->total.Add(seconds);
  if (seconds > node->max_seconds) node->max_seconds = seconds;
  if (node->samples.size() < kMaxSamplesPerSpan) {
    node->samples.push_back(seconds);
  }
}

SpanNodeSnapshot Tracer::SnapshotNode(const Node& node,
                                      const std::string& parent_path) {
  SpanNodeSnapshot snapshot;
  snapshot.name = node.name;
  snapshot.path =
      parent_path.empty() ? node.name : parent_path + "/" + node.name;
  snapshot.count = node.count;
  snapshot.total_seconds = node.total.TotalSeconds();
  snapshot.max_seconds = node.max_seconds;
  std::vector<double> sorted = node.samples;
  std::sort(sorted.begin(), sorted.end());
  snapshot.p50_seconds = SampleQuantile(sorted, 0.5);
  snapshot.p95_seconds = SampleQuantile(std::move(sorted), 0.95);
  for (const auto& [name, child] : node.children) {
    snapshot.children.push_back(SnapshotNode(*child, snapshot.path));
  }
  return snapshot;
}

std::vector<SpanNodeSnapshot> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanNodeSnapshot> roots;
  roots.reserve(root_->children.size());
  for (const auto& [name, child] : root_->children) {
    roots.push_back(SnapshotNode(*child, ""));
  }
  return roots;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  root_ = std::make_unique<Node>();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

const SpanNodeSnapshot* SpanNodeSnapshot::Find(
    const std::string& relative_path) const {
  const size_t slash = relative_path.find('/');
  const std::string head = relative_path.substr(0, slash);
  for (const SpanNodeSnapshot& child : children) {
    if (child.name != head) continue;
    if (slash == std::string::npos) return &child;
    return child.Find(relative_path.substr(slash + 1));
  }
  return nullptr;
}

ScopedSpan::ScopedSpan(const char* name, Tracer* tracer) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  stack_index_ = tls_span_stack.size();
  tls_span_stack.push_back(SpanFrame{tracer_, name});
  timer_.Restart();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  const double seconds = timer_.ElapsedSeconds();
  // Scopes destruct strictly inside-out, so this span's frame is on top.
  assert(tls_span_stack.size() == stack_index_ + 1);
  std::vector<const char*> path;
  path.reserve(stack_index_ + 1);
  for (const SpanFrame& frame : tls_span_stack) {
    if (frame.tracer == tracer_) path.push_back(frame.name);
  }
  tls_span_stack.pop_back();
  tracer_->Record(path, seconds);
}

}  // namespace telemetry
}  // namespace digfl
