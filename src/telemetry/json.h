// Minimal JSON support for the telemetry JSONL sink.
//
// Writer side: Escape() for string fields (the sink composes objects by
// hand — the schema is flat and fixed). Reader side: a small strict parser
// used by tests to round-trip every emitted line and by tooling that wants
// to consume run reports without a third-party dependency.

#ifndef DIGFL_TELEMETRY_JSON_H_
#define DIGFL_TELEMETRY_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace digfl {
namespace telemetry {
namespace json {

// Escapes `s` for use inside a double-quoted JSON string (quotes,
// backslashes, control characters).
std::string Escape(std::string_view s);

// Formats a double as a JSON number (finite values only; non-finite values
// are emitted as null, which the schema treats as "unavailable").
std::string Number(double value);

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> items;                               // kArray
  std::vector<std::pair<std::string, Value>> members;     // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
  // Convenience accessors that return a fallback on kind mismatch.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;
};

// Maximum object/array nesting Parse accepts. The parser recurses per
// nesting level, so without a cap a line of '[' characters converts input
// length into stack depth; anything legitimately emitted by the sink is a
// handful of levels deep.
inline constexpr size_t kMaxParseDepth = 64;

// Strict parse of a complete JSON document (trailing junk is an error;
// nesting beyond kMaxParseDepth is a typed kInvalidArgument).
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_JSON_H_
