// Federation-wide observability: the structs and merge logic that turn N
// per-process telemetry stores into ONE coordinator-anchored run report
// (DESIGN.md §13).
//
// Three moving parts:
//
//   TraceContext    — (run id, round, parent span id) stamped by the
//                     coordinator on every RoundRequest so participant-side
//                     spans attach to the coordinator's round spans. The
//                     run id is the federation config digest (both roles
//                     already agree on it at handshake), and the parent
//                     span id is a pure function RoundSpanId(run_id, round)
//                     — reproducible without any coordination.
//   NodeTelemetry   — a participant-local buffer of spans / counter deltas /
//                     histogram deltas, drained into a TelemetryDelta that
//                     piggybacks on the epoch-end RoundReply (wire codec in
//                     net/messages.cc; this layer is byte-format agnostic).
//   FederationMerger— coordinator-side, thread-safe (round workers absorb
//                     deltas concurrently). Estimates each participant's
//                     clock offset with the classic NTP formula from the
//                     four round-trip timestamps, rebases remote spans onto
//                     the coordinator clock, and accumulates everything
//                     into a FederationReport.
//
// Clock model: for coordinator send/recv instants t0/t1 and participant
// recv/send instants p0/p1 (all from ObsNow() on their own process),
//
//   offset = ((p0 - t0) + (p1 - t1)) / 2      // participant − coordinator
//   rtt    = (t1 - t0) − (p1 - p0)            // wire time both ways
//
// A remote instant p rebases to coordinator time as p − offset. The merger
// keeps the minimum-RTT sample per participant (the standard NTP filter;
// the offset error is bounded by rtt/2) and refreshes it every round.
// Under SimNet both processes share one virtual clock, so offset and rtt
// are exactly 0 and merged timelines are bitwise-reproducible from the
// seed (tests/observability_test.cc asserts this).

#ifndef DIGFL_TELEMETRY_FEDERATION_H_
#define DIGFL_TELEMETRY_FEDERATION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/runtime.h"
#include "telemetry/sink.h"

namespace digfl {
namespace telemetry {

// ---------------------------------------------------------------------------
// The observability clock.

// Seconds on this process's observability timeline. Default: steady-clock
// seconds since the first call (monotonic, never wall-adjusted). The sim
// harness installs SimNet's virtual clock so merged timelines are a pure
// function of the seed.
double ObsNow();

// Overrides the ObsNow() source (nullptr restores the steady-clock
// default). `fn(ctx)` must be callable from any thread; install before the
// federation starts and restore after every node thread has joined.
using ObsClockFn = double (*)(void* ctx);
void SetObservabilityClock(ObsClockFn fn, void* ctx);

// True when telemetry is both compiled in and runtime-enabled — the single
// gate for trace propagation and telemetry shipping. When false, no
// optional wire block is ever attached, so the byte stream is identical to
// the pre-observability format.
inline bool ObservabilityEnabled() {
#if DIGFL_TELEMETRY_ENABLED
  return Enabled();
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Wire-visible structs (codecs live in net/messages.cc).

// Stamped on every RoundRequest; echoed back inside the reply's delta.
struct TraceContext {
  uint64_t run_id = 0;          // FederationConfigDigest of the run
  uint64_t round = 0;           // epoch index
  uint64_t parent_span_id = 0;  // RoundSpanId(run_id, round)

  bool operator==(const TraceContext&) const = default;
};

// Deterministic id of the coordinator's span for `round` (FNV-1a mix of
// run_id and round). Every process can compute it, which is what makes
// participant spans resolvable without shipping ids downstream.
uint64_t RoundSpanId(uint64_t run_id, uint64_t round);

// One participant-side span, timestamped on the participant clock until
// the merger rebases it.
struct RemoteSpan {
  uint64_t round = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;

  bool operator==(const RemoteSpan&) const = default;
};

// One shipped metric increment since the previous delta.
struct MetricDelta {
  std::string name;
  LabelSet labels;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_delta = 0;  // kCounter
  // kHistogram: per-bucket increments (size bounds.size() + 1, the last is
  // the overflow bucket) plus sum/max/count increments.
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_deltas;
  double sum_delta = 0.0;
  double max_value = 0.0;
  uint64_t count_delta = 0;
};

// What a participant piggybacks on an epoch-end RoundReply. The two
// timestamps are the NTP p0/p1 instants (request receive, reply send).
struct TelemetryDelta {
  uint64_t participant_id = 0;
  uint64_t round = 0;
  double request_recv_seconds = 0.0;  // p0
  double reply_send_seconds = 0.0;    // p1
  std::vector<RemoteSpan> spans;
  std::vector<MetricDelta> metrics;
};

// ---------------------------------------------------------------------------
// Participant side: the delta buffer.

// Not thread-safe; owned by the node's serve loop (one thread).
class NodeTelemetry {
 public:
  // Latches the round context carried by the incoming request and the p0
  // receive instant. Spans recorded until the next OnRequest inherit this
  // context.
  void OnRequest(const TraceContext& context, double recv_seconds);

  // Buffers one span (participant clock); parent = the latched context.
  void RecordSpan(std::string name, double start_seconds,
                  double duration_seconds);

  // Accumulates a counter increment into the pending delta.
  void AddCounter(std::string name, uint64_t delta, LabelSet labels = {});

  // Accumulates one observation into a pending histogram delta. `bounds`
  // applies on first use of the series within the pending delta.
  void Observe(std::string name, double value, std::vector<double> bounds,
               LabelSet labels = {});

  // Drains the buffer into a shippable delta stamped with the latched
  // context and the p1 send instant.
  TelemetryDelta TakeDelta(uint64_t participant_id, double send_seconds);

  const TraceContext& context() const { return context_; }

 private:
  TraceContext context_;
  double request_recv_seconds_ = 0.0;
  std::vector<RemoteSpan> spans_;
  // Key "name\x1f<canonical labels>" for deterministic emission order.
  std::map<std::string, MetricDelta> metrics_;
};

// ---------------------------------------------------------------------------
// Coordinator side: the merger and the merged report.

struct ClockSample {
  uint64_t participant = 0;
  double offset_seconds = 0.0;  // participant clock − coordinator clock
  double rtt_seconds = 0.0;     // of the minimum-RTT sample kept
  uint64_t samples = 0;         // round trips that contributed
};

struct RoundSpanRecord {
  uint64_t round = 0;
  uint64_t span_id = 0;  // RoundSpanId(run_id, round)
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  double aggregate_seconds = 0.0;
  double validate_seconds = 0.0;
};

struct RoundTripRecord {
  uint64_t round = 0;
  uint64_t participant = 0;
  double send_seconds = 0.0;  // t0, coordinator clock
  double recv_seconds = 0.0;  // t1 (or the failure instant)
  uint64_t retries = 0;
  bool present = false;  // reply accepted this epoch
};

struct RemoteSpanRecord {
  uint64_t participant = 0;
  RemoteSpan span;  // start_seconds rebased to the coordinator clock
};

struct RemoteMetricRecord {
  uint64_t participant = 0;
  MetricDelta metric;  // merged across all of that participant's deltas
};

// The federation-wide run report: the coordinator's local RunReport plus
// everything merged from the participants, all on the coordinator clock.
struct FederationReport {
  uint64_t run_id = 0;
  uint64_t num_participants = 0;
  RunReport local;
  std::vector<RoundSpanRecord> round_spans;
  std::vector<RoundTripRecord> round_trips;
  std::vector<ClockSample> clocks;
  std::vector<RemoteSpanRecord> remote_spans;
  std::vector<RemoteMetricRecord> remote_metrics;
};

// Thread-safe accumulator living on the coordinator. Round workers call
// Absorb/RecordRoundTrip concurrently; the training thread records round
// spans; Build() snapshots a deterministic report (stable sort orders).
class FederationMerger {
 public:
  FederationMerger(uint64_t run_id, size_t num_participants);

  // Handshake-time first clock sample: the participant's Hello carried its
  // local send instant; `coord_seconds` is the coordinator receive instant.
  // The one-way estimate (offset ≈ recv − send) seeds the model until the
  // first symmetric round trip replaces it.
  void RecordHandshake(uint64_t participant, double node_send_seconds,
                       double coord_seconds);

  // Merges one shipped delta. t0/t1 are the coordinator-side send/recv
  // instants of the round trip that carried it; together with the delta's
  // p0/p1 they refresh the clock model, and every span in the delta is
  // rebased with this round's own offset before storage.
  void Absorb(uint64_t participant, const TelemetryDelta& delta, double t0,
              double t1);

  void RecordRoundTrip(uint64_t round, uint64_t participant, double t0,
                       double t1, uint64_t retries, bool present);

  void RecordRoundSpan(uint64_t round, double start_seconds,
                       double duration_seconds, double aggregate_seconds,
                       double validate_seconds);

  uint64_t run_id() const { return run_id_; }

  // Deterministic snapshot: round trips and remote spans are sorted by
  // (round, participant, arrival order within a delta), remote metrics by
  // (participant, series key).
  FederationReport Build(RunReport local) const;

 private:
  struct ClockModel {
    double offset_seconds = 0.0;
    double rtt_seconds = 0.0;
    uint64_t samples = 0;
  };

  const uint64_t run_id_;
  const size_t num_participants_;
  mutable std::mutex mu_;
  std::vector<ClockModel> clocks_;
  std::vector<RoundSpanRecord> round_spans_;
  std::vector<RoundTripRecord> round_trips_;
  // (round, participant, seq-within-delta) attached for the Build() sort.
  struct StoredRemoteSpan {
    uint64_t participant = 0;
    uint64_t seq = 0;
    RemoteSpan span;
  };
  std::vector<StoredRemoteSpan> remote_spans_;
  // Keyed "participant\x1fname\x1f<canonical labels>".
  std::map<std::string, RemoteMetricRecord> remote_metrics_;
};

// ---------------------------------------------------------------------------
// Serialization: the merged JSONL report.
//
// Line types, in order ("digfl.federation.v1"):
//   {"type":"federation","schema":"digfl.federation.v1","run_id":"<hex>",
//    "participants":N}
//   {"type":"round_span","round":R,"span_id":"<hex>","start_seconds":...,
//    "duration_seconds":...,"aggregate_seconds":...,"validate_seconds":...}
//   {"type":"round_trip","round":R,"participant":P,"send_seconds":...,
//    "recv_seconds":...,"retries":K,"present":0|1}
//   {"type":"clock","participant":P,"offset_seconds":...,"rtt_seconds":...,
//    "samples":N}
//   {"type":"remote_span","participant":P,"round":R,
//    "parent_span_id":"<hex>","name":...,"start_seconds":...,
//    "duration_seconds":...}
//   {"type":"remote_metric","participant":P,"name":...,"labels":{...},
//    "kind":...,...}   // value fields as in the sink's metric lines
//
// 64-bit ids travel as hex strings ("0x..."): JSON numbers are doubles and
// cannot hold a full uint64. WriteFederationJsonl emits only the
// federation sections; callers that also want the coordinator's local
// report (metrics/spans/events lines) append WriteJsonl(report.local, os).
Status WriteFederationJsonl(const FederationReport& report, std::ostream& os);

// The federation sections as a string — what the sim reproducibility test
// compares bitwise across two runs of the same seed.
std::string FederationSectionsJsonl(const FederationReport& report);

// Hex encoding used for 64-bit ids in the JSONL ("0x" + lowercase digits,
// no leading zeros beyond "0x0").
std::string HexId(uint64_t id);

}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_FEDERATION_H_
