#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace digfl {
namespace telemetry {
namespace {

LabelSet Canonicalize(LabelSet labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  return labels;
}

std::string SeriesKey(std::string_view name, const LabelSet& canonical) {
  std::string key(name);
  key.push_back('\x1f');
  key += EncodeLabels(canonical);
  return key;
}

}  // namespace

std::string EncodeLabels(const LabelSet& labels) {
  LabelSet canonical = Canonicalize(labels);
  std::string out;
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += canonical[i].key;
    out.push_back('=');
    out += canonical[i].value;
  }
  return out;
}

// ---------------------------------------------------------------- Histogram.

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  DIGFL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  ++total_count_;
  sum_ += value;
  if (total_count_ == 1 || value > max_) max_ = value;
}

uint64_t Histogram::TotalCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the q-th quantile is the smallest value with at least
  // ceil(q·n) observations at or below it.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total_count_)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts_[b];
    if (cumulative < rank) continue;
    if (b == bounds_.size()) return max_;  // overflow bucket
    const double lower = b == 0 ? 0.0 : bounds_[b - 1];
    const double upper = bounds_[b];
    const double frac =
        static_cast<double>(rank - before) / static_cast<double>(counts_[b]);
    return lower + frac * (upper - lower);
  }
  return max_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

// ----------------------------------------------------------------- Registry.

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          const LabelSet& labels) const {
  const std::string encoded = EncodeLabels(labels);
  for (const MetricSample& sample : samples) {
    if (sample.name == name && EncodeLabels(sample.labels) == encoded) {
      return &sample;
    }
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const MetricSample& sample : samples) {
    if (sample.kind == MetricKind::kCounter && sample.name == name) {
      total += static_cast<uint64_t>(sample.value);
    }
  }
  return total;
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(
    std::string_view name, LabelSet labels, MetricKind kind,
    const std::vector<double>* bounds) {
  LabelSet canonical = Canonicalize(std::move(labels));
  const std::string key = SeriesKey(name, canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Entry entry;
    entry.labels = std::move(canonical);
    entry.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
    it = series_.emplace(key, std::move(entry)).first;
  }
  DIGFL_CHECK(it->second.kind == kind)
      << "metric '" << std::string(name) << "' re-registered as a different kind";
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, LabelSet labels) {
  return *FindOrCreate(name, std::move(labels), MetricKind::kCounter, nullptr)
              .counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, LabelSet labels) {
  return *FindOrCreate(name, std::move(labels), MetricKind::kGauge, nullptr)
              .gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds,
                                         LabelSet labels) {
  return *FindOrCreate(name, std::move(labels), MetricKind::kHistogram,
                       &upper_bounds)
              .histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(series_.size());
  for (const auto& [key, entry] : series_) {
    MetricSample sample;
    sample.name = key.substr(0, key.find('\x1f'));
    sample.labels = entry.labels;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(entry.counter->Value());
        break;
      case MetricKind::kGauge:
        sample.value = entry.gauge->Value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        sample.histogram.bounds = h.bounds();
        sample.histogram.bucket_counts = h.BucketCounts();
        sample.histogram.count = h.TotalCount();
        sample.histogram.sum = h.Sum();
        sample.histogram.max = h.Max();
        sample.histogram.p50 = h.Quantile(0.5);
        sample.histogram.p95 = h.Quantile(0.95);
        sample.value = sample.histogram.sum;
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : series_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

size_t MetricsRegistry::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace telemetry
}  // namespace digfl
