#include "telemetry/runtime.h"

#include <atomic>

namespace digfl {
namespace telemetry {
namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

}  // namespace telemetry
}  // namespace digfl
