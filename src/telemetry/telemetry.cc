#include "telemetry/telemetry.h"

namespace digfl {
namespace telemetry {

void ResetAllTelemetry() {
  Metrics().Clear();
  Spans().Reset();
  Events().Reset();
}

}  // namespace telemetry
}  // namespace digfl
