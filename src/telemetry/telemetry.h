// Umbrella header + instrumentation macros for the telemetry subsystem.
//
// Instrumented code uses three primitives (see DESIGN.md "Telemetry"):
//
//   DIGFL_TRACE_SPAN("hfl.aggregate");          // scope-timed span
//   DIGFL_COUNTER_ADD("hfl.round_total", 1);    // unlabeled counter
//   DIGFL_COUNTER_ADD_LABELED("fault.quarantine_total", 1,
//                             {"reason", "non_finite"});
//
// plus two function-style helpers for hot paths and events:
//
//   telemetry::Counter* c = telemetry::CounterHandle(
//       "hfl.upload_bytes_total", {{"participant", "3"}});
//   if (c != nullptr) c->Increment(bytes);      // lock-free per record
//   telemetry::EmitEvent("hfl.epoch", {{"epoch", "7"}}, seconds);
//
// All of them compile to no-ops when the CMake option DIGFL_TELEMETRY is
// OFF (macro DIGFL_TELEMETRY_ENABLED == 0) and respect the runtime switch
// telemetry::SetEnabled() when compiled in.

#ifndef DIGFL_TELEMETRY_TELEMETRY_H_
#define DIGFL_TELEMETRY_TELEMETRY_H_

#include <string_view>
#include <utility>

#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/runtime.h"
#include "telemetry/trace.h"

namespace digfl {
namespace telemetry {

inline MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }
inline Tracer& Spans() { return Tracer::Global(); }
inline EventLog& Events() { return EventLog::Global(); }

// Clears all three global stores (metrics series, span tree, events).
// Only safe between runs — never while instrumented code is executing.
void ResetAllTelemetry();

// Stable lock-free counter handle, or nullptr when telemetry is compiled
// out or runtime disabled; callers hoist this out of hot loops.
inline Counter* CounterHandle(std::string_view name, LabelSet labels = {}) {
#if DIGFL_TELEMETRY_ENABLED
  if (!Enabled()) return nullptr;
  return &Metrics().GetCounter(name, std::move(labels));
#else
  (void)name;
  (void)labels;
  return nullptr;
#endif
}

inline Histogram* HistogramHandle(std::string_view name,
                                  std::vector<double> upper_bounds,
                                  LabelSet labels = {}) {
#if DIGFL_TELEMETRY_ENABLED
  if (!Enabled()) return nullptr;
  return &Metrics().GetHistogram(name, std::move(upper_bounds),
                                 std::move(labels));
#else
  (void)name;
  (void)upper_bounds;
  (void)labels;
  return nullptr;
#endif
}

inline void EmitEvent(const char* name, LabelSet labels, double value) {
#if DIGFL_TELEMETRY_ENABLED
  if (Enabled()) Events().Emit(name, std::move(labels), value);
#else
  (void)name;
  (void)labels;
  (void)value;
#endif
}

}  // namespace telemetry
}  // namespace digfl

#define DIGFL_TELEMETRY_CONCAT_IMPL_(a, b) a##b
#define DIGFL_TELEMETRY_CONCAT_(a, b) DIGFL_TELEMETRY_CONCAT_IMPL_(a, b)

#if DIGFL_TELEMETRY_ENABLED

// Times the enclosing scope into the global span tree. `name` must be a
// string literal (or otherwise outlive the program).
#define DIGFL_TRACE_SPAN(name)                \
  ::digfl::telemetry::ScopedSpan DIGFL_TELEMETRY_CONCAT_( \
      digfl_trace_span_, __LINE__)(name)

#define DIGFL_COUNTER_ADD(name, delta)                                 \
  do {                                                                 \
    if (::digfl::telemetry::Enabled()) {                               \
      ::digfl::telemetry::Metrics().GetCounter(name).Increment(delta); \
    }                                                                  \
  } while (0)

// Trailing args are brace-init Label pairs: {"key", "value"}, ...
#define DIGFL_COUNTER_ADD_LABELED(name, delta, ...)     \
  do {                                                  \
    if (::digfl::telemetry::Enabled()) {                \
      ::digfl::telemetry::Metrics()                     \
          .GetCounter(name, {__VA_ARGS__})              \
          .Increment(delta);                            \
    }                                                   \
  } while (0)

// Timeline event; trailing args are Label pairs. Label construction is
// inside the macro so OFF builds do not even materialize the strings.
#define DIGFL_EMIT_EVENT(name, value, ...) \
  ::digfl::telemetry::EmitEvent(name, {__VA_ARGS__}, value)

#else  // !DIGFL_TELEMETRY_ENABLED

#define DIGFL_TRACE_SPAN(name) ((void)0)
#define DIGFL_COUNTER_ADD(name, delta) ((void)0)
#define DIGFL_COUNTER_ADD_LABELED(name, delta, ...) ((void)0)
#define DIGFL_EMIT_EVENT(name, value, ...) ((void)0)

#endif  // DIGFL_TELEMETRY_ENABLED

#endif  // DIGFL_TELEMETRY_TELEMETRY_H_
