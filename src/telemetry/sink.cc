#include "telemetry/sink.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "telemetry/json.h"

namespace digfl {
namespace telemetry {
namespace {

void AppendLabels(const LabelSet& labels, std::ostream& os) {
  os << "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json::Escape(labels[i].key) << "\":\""
       << json::Escape(labels[i].value) << "\"";
  }
  os << "}";
}

void WriteMetricLine(const MetricSample& sample, std::ostream& os) {
  os << "{\"type\":\"metric\",\"name\":\"" << json::Escape(sample.name)
     << "\",\"labels\":";
  AppendLabels(sample.labels, os);
  os << ",\"kind\":\"" << MetricKindToString(sample.kind) << "\"";
  if (sample.kind == MetricKind::kHistogram) {
    const HistogramData& h = sample.histogram;
    os << ",\"count\":" << h.count << ",\"sum\":" << json::Number(h.sum)
       << ",\"max\":" << json::Number(h.max)
       << ",\"p50\":" << json::Number(h.p50)
       << ",\"p95\":" << json::Number(h.p95) << ",\"buckets\":[";
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) os << ",";
      os << "{\"le\":";
      if (b < h.bounds.size()) {
        os << json::Number(h.bounds[b]);
      } else {
        os << "null";  // overflow bucket
      }
      os << ",\"count\":" << h.bucket_counts[b] << "}";
    }
    os << "]";
  } else {
    os << ",\"value\":" << json::Number(sample.value);
  }
  os << "}\n";
}

void WriteSpanLines(const SpanNodeSnapshot& node, std::ostream& os) {
  os << "{\"type\":\"span\",\"path\":\"" << json::Escape(node.path)
     << "\",\"name\":\"" << json::Escape(node.name)
     << "\",\"count\":" << node.count
     << ",\"total_seconds\":" << json::Number(node.total_seconds)
     << ",\"p50_seconds\":" << json::Number(node.p50_seconds)
     << ",\"p95_seconds\":" << json::Number(node.p95_seconds)
     << ",\"max_seconds\":" << json::Number(node.max_seconds) << "}\n";
  for (const SpanNodeSnapshot& child : node.children) {
    WriteSpanLines(child, os);
  }
}

void AppendSpanRows(const SpanNodeSnapshot& node, double root_total,
                    size_t depth, TableWriter& table) {
  const std::string indent(2 * depth, ' ');
  const double share =
      root_total > 0.0 ? 100.0 * node.total_seconds / root_total : 0.0;
  Status status = table.AddRow(
      {indent + node.name, std::to_string(node.count),
       TableWriter::FormatScientific(node.total_seconds, 3),
       TableWriter::FormatScientific(node.p50_seconds, 2),
       TableWriter::FormatScientific(node.p95_seconds, 2),
       TableWriter::FormatScientific(node.max_seconds, 2),
       TableWriter::FormatDouble(share, 1)});
  (void)status;  // header width is fixed here; AddRow cannot fail
  for (const SpanNodeSnapshot& child : node.children) {
    AppendSpanRows(child, root_total, depth + 1, table);
  }
}

}  // namespace

RunReport CollectRunReport(std::string run_id) {
  RunReport report;
  report.run_id = std::move(run_id);
  report.anchor_unix_seconds = EventLog::Global().anchor_unix_seconds();
  report.metrics = MetricsRegistry::Global().Snapshot();
  report.spans = Tracer::Global().Snapshot();
  report.events = EventLog::Global().Snapshot();
  report.events_dropped = EventLog::Global().dropped();
  return report;
}

Status InMemorySink::Write(const RunReport& report) {
  reports_.push_back(report);
  return Status::OK();
}

Status JsonlFileSink::Write(const RunReport& report) {
  // Serialize fully in memory, then write + fsync through the POSIX fd so
  // the report survives a crash right after the sink returns (a run report
  // emitted just before a kill is exactly the one the postmortem needs).
  std::ostringstream buffer;
  DIGFL_RETURN_IF_ERROR(WriteJsonl(report, buffer));
  const std::string data = std::move(buffer).str();

  const int flags = O_WRONLY | O_CREAT | (append_ ? O_APPEND : O_TRUNC);
  const int fd = ::open(path_.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open telemetry sink: " + path_ +
                                   ": " + std::strerror(errno));
  }
  Status status = Status::OK();
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::Internal("short write to " + path_ + ": " +
                                std::strerror(errno));
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal("fsync " + path_ + " failed: " +
                              std::strerror(errno));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal("close " + path_ + " failed: " +
                              std::strerror(errno));
  }
  return status;
}

Status WriteJsonl(const RunReport& report, std::ostream& os) {
  os << "{\"type\":\"run\",\"schema\":\"" << json::Escape(report.schema)
     << "\",\"run_id\":\"" << json::Escape(report.run_id)
     << "\",\"anchor_unix_seconds\":"
     << json::Number(report.anchor_unix_seconds)
     << ",\"events_dropped\":" << report.events_dropped << "}\n";
  for (const MetricSample& sample : report.metrics.samples) {
    WriteMetricLine(sample, os);
  }
  for (const SpanNodeSnapshot& root : report.spans) {
    WriteSpanLines(root, os);
  }
  for (const Event& event : report.events) {
    os << "{\"type\":\"event\",\"name\":\"" << json::Escape(event.name)
       << "\",\"t_seconds\":" << json::Number(event.t_seconds)
       << ",\"labels\":";
    std::ostringstream labels;
    AppendLabels(event.labels, labels);
    os << labels.str() << ",\"value\":" << json::Number(event.value) << "}\n";
  }
  if (!os) return Status::Internal("telemetry stream write failed");
  return Status::OK();
}

TableWriter SpanSummaryTable(const std::vector<SpanNodeSnapshot>& roots) {
  TableWriter table(
      {"span", "calls", "total_s", "p50_s", "p95_s", "max_s", "%root"});
  for (const SpanNodeSnapshot& root : roots) {
    AppendSpanRows(root, root.total_seconds, 0, table);
  }
  return table;
}

TableWriter MetricsSummaryTable(const MetricsSnapshot& snapshot) {
  TableWriter table({"metric", "labels", "kind", "value"});
  for (const MetricSample& sample : snapshot.samples) {
    std::string value;
    if (sample.kind == MetricKind::kHistogram) {
      const HistogramData& h = sample.histogram;
      value = "count=" + std::to_string(h.count) +
              " p50=" + TableWriter::FormatScientific(h.p50, 2) +
              " p95=" + TableWriter::FormatScientific(h.p95, 2) +
              " max=" + TableWriter::FormatScientific(h.max, 2);
    } else if (sample.kind == MetricKind::kCounter) {
      value = std::to_string(static_cast<uint64_t>(sample.value));
    } else {
      value = TableWriter::FormatDouble(sample.value, 4);
    }
    Status status = table.AddRow({sample.name, EncodeLabels(sample.labels),
                                  MetricKindToString(sample.kind),
                                  std::move(value)});
    (void)status;
  }
  return table;
}

double TotalRootSeconds(const std::vector<SpanNodeSnapshot>& roots) {
  double total = 0.0;
  for (const SpanNodeSnapshot& root : roots) total += root.total_seconds;
  return total;
}

}  // namespace telemetry
}  // namespace digfl
