#include "telemetry/exposition.h"

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace digfl {
namespace telemetry {

namespace {

const char* PrometheusType(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendLabelPairs(const LabelSet& labels, std::string* out) {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += PrometheusName(labels[i].key);
    *out += "=\"";
    *out += PrometheusLabelValue(labels[i].value);
    *out += '"';
  }
}

// {labels} block, or "" when the set is empty.
std::string LabelBlock(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  AppendLabelPairs(labels, &out);
  out.push_back('}');
  return out;
}

// Label block with an extra le="..." pair appended (histogram buckets).
std::string BucketLabelBlock(const LabelSet& labels, const std::string& le) {
  std::string out = "{";
  AppendLabelPairs(labels, &out);
  if (!labels.empty()) out.push_back(',');
  out += "le=\"" + le + "\"}";
  return out;
}

std::string FormatSampleValue(double value) {
  // Prometheus accepts Go-style floats; reuse the JSON shortest-round-trip
  // formatting (non-finite never reaches here — counters/gauges are stored
  // finite and histogram fields are sums of finite observations).
  return json::Number(value);
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  if (std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_typed;  // one # TYPE line per metric name
  for (const MetricSample& sample : snapshot.samples) {
    const std::string name = PrometheusName(sample.name);
    if (name != last_typed) {
      out += "# TYPE " + name + " " + PrometheusType(sample.kind) + "\n";
      last_typed = name;
    }
    if (sample.kind == MetricKind::kHistogram) {
      const HistogramData& h = sample.histogram;
      // The text format wants cumulative bucket counts.
      uint64_t cumulative = 0;
      for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
        cumulative += h.bucket_counts[b];
        const std::string le = b < h.bounds.size()
                                   ? FormatSampleValue(h.bounds[b])
                                   : std::string("+Inf");
        out += name + "_bucket" + BucketLabelBlock(sample.labels, le) + " " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_sum" + LabelBlock(sample.labels) + " " +
             FormatSampleValue(h.sum) + "\n";
      out += name + "_count" + LabelBlock(sample.labels) + " " +
             std::to_string(h.count) + "\n";
    } else if (sample.kind == MetricKind::kCounter) {
      out += name + LabelBlock(sample.labels) + " " +
             std::to_string(static_cast<uint64_t>(sample.value)) + "\n";
    } else {
      out += name + LabelBlock(sample.labels) + " " +
             FormatSampleValue(sample.value) + "\n";
    }
  }
  return out;
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"metrics\":[";
  for (size_t i = 0; i < snapshot.samples.size(); ++i) {
    const MetricSample& sample = snapshot.samples[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << json::Escape(sample.name) << "\",\"labels\":{";
    for (size_t l = 0; l < sample.labels.size(); ++l) {
      if (l > 0) os << ",";
      os << "\"" << json::Escape(sample.labels[l].key) << "\":\""
         << json::Escape(sample.labels[l].value) << "\"";
    }
    os << "},\"kind\":\"" << MetricKindToString(sample.kind) << "\"";
    if (sample.kind == MetricKind::kHistogram) {
      const HistogramData& h = sample.histogram;
      os << ",\"count\":" << h.count << ",\"sum\":" << json::Number(h.sum)
         << ",\"max\":" << json::Number(h.max)
         << ",\"p50\":" << json::Number(h.p50)
         << ",\"p95\":" << json::Number(h.p95) << ",\"buckets\":[";
      for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
        if (b > 0) os << ",";
        os << "{\"le\":";
        if (b < h.bounds.size()) {
          os << json::Number(h.bounds[b]);
        } else {
          os << "null";
        }
        os << ",\"count\":" << h.bucket_counts[b] << "}";
      }
      os << "]";
    } else {
      os << ",\"value\":" << json::Number(sample.value);
    }
    os << "}";
  }
  os << "]}";
  return std::move(os).str();
}

namespace {

std::string HttpResponse(const std::string& status_line,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + status_line + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

std::string HandleMetricsHttpRequest(std::string_view request_head,
                                     const MetricsSnapshot& snapshot) {
  // Parse only the request line: METHOD SP TARGET SP HTTP/x.y
  const size_t eol = request_head.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? request_head : request_head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos ||
      line.substr(sp2 + 1).rfind("HTTP/", 0) != 0 || sp1 == 0 ||
      sp2 == sp1 + 1) {
    return HttpResponse("400 Bad Request", "text/plain",
                        "malformed request line\n");
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    return HttpResponse("405 Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  if (target == "/metrics") {
    return HttpResponse("200 OK",
                        "text/plain; version=0.0.4; charset=utf-8",
                        RenderPrometheusText(snapshot));
  }
  if (target == "/metrics.json") {
    return HttpResponse("200 OK", "application/json",
                        RenderMetricsJson(snapshot));
  }
  return HttpResponse("404 Not Found", "text/plain",
                      "try /metrics or /metrics.json\n");
}

}  // namespace telemetry
}  // namespace digfl
