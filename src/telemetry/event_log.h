// EventLog: bounded buffer of discrete, timestamped run events.
//
// Where the MetricsRegistry aggregates (totals, distributions) and the
// Tracer aggregates by call site, the EventLog keeps *individual*
// occurrences — one record per epoch completion, per quarantine decision —
// so the JSONL run report can reconstruct a timeline. Capacity is bounded;
// overflow increments a drop counter instead of growing without limit, and
// the drop count is part of every run report (no silent truncation).

#ifndef DIGFL_TELEMETRY_EVENT_LOG_H_
#define DIGFL_TELEMETRY_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"
#include "telemetry/metrics.h"

namespace digfl {
namespace telemetry {

struct Event {
  // Seconds since the log's construction or last Reset() (steady clock).
  double t_seconds = 0.0;
  std::string name;  // same `subsystem.noun_unit` convention as metrics
  LabelSet labels;
  double value = 0.0;
};

class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit EventLog(size_t capacity = kDefaultCapacity);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void Emit(std::string name, LabelSet labels, double value);

  std::vector<Event> Snapshot() const;
  size_t size() const;
  // Events discarded because the log was full.
  uint64_t dropped() const;

  // Wall-clock (Unix epoch) instant of the steady-clock zero the events'
  // t_seconds count from — captured at construction and on every Reset().
  // The run report records it so timelines from different processes are
  // comparable on an absolute axis.
  double anchor_unix_seconds() const;

  void Reset();

  // Process-wide log used by telemetry::EmitEvent.
  static EventLog& Global();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  Timer clock_;
  double anchor_unix_seconds_ = 0.0;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
};

}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_EVENT_LOG_H_
