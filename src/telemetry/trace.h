// Scoped tracing spans: a hierarchical wall-clock breakdown of a run.
//
// Usage (always through the macro so DIGFL_TELEMETRY=OFF compiles it out):
//
//   Result<...> Aggregate(...) {
//     DIGFL_TRACE_SPAN("hfl.aggregate");
//     ...
//   }
//
// A span measures the enclosing scope with common/timer.h and, on exit,
// folds the duration into a process-wide tree node addressed by the stack
// of currently-open spans on this thread ("hfl.run" > "hfl.epoch" >
// "hfl.aggregate"). Each node aggregates call count, cumulative seconds
// (backed by CumulativeTimer — the repo's one timing code path), exact max,
// and a bounded sample buffer for p50/p95. Nesting is per-thread: spans
// opened on different threads form independent roots, which is the honest
// reading of wall-clock time under concurrency.

#ifndef DIGFL_TELEMETRY_TRACE_H_
#define DIGFL_TELEMETRY_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"
#include "telemetry/runtime.h"

namespace digfl {
namespace telemetry {

// Aggregated view of one span-tree node at snapshot time.
struct SpanNodeSnapshot {
  std::string name;          // leaf name, e.g. "hfl.aggregate"
  std::string path;          // '/'-joined from the root, e.g. "hfl.run/..."
  uint64_t count = 0;
  double total_seconds = 0.0;
  double p50_seconds = 0.0;  // over at most kMaxSamplesPerSpan durations
  double p95_seconds = 0.0;
  double max_seconds = 0.0;
  std::vector<SpanNodeSnapshot> children;  // sorted by name

  // Depth-first lookup of a '/'-joined path relative to this node's
  // children ("hfl.epoch/hfl.aggregate"); nullptr when absent.
  const SpanNodeSnapshot* Find(const std::string& relative_path) const;
};

class Tracer {
 public:
  // Durations beyond this many per node keep count/total/max exact but no
  // longer refine the percentile estimate.
  static constexpr size_t kMaxSamplesPerSpan = 4096;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Folds one finished span into the tree. `path` is the open-span stack at
  // the time the span was entered, outermost first, including the span
  // itself as the last element. Exposed for the ScopedSpan implementation
  // and for tests; instrumented code should use DIGFL_TRACE_SPAN.
  void Record(const std::vector<const char*>& path, double seconds);

  // Root spans observed so far (children sorted by name).
  std::vector<SpanNodeSnapshot> Snapshot() const;

  void Reset();

  // Process-wide tracer used by DIGFL_TRACE_SPAN.
  static Tracer& Global();

 private:
  struct Node;

  static SpanNodeSnapshot SnapshotNode(const Node& node,
                                       const std::string& parent_path);

  mutable std::mutex mu_;
  std::unique_ptr<Node> root_;
};

// RAII span guard; see the file comment. Prefer the DIGFL_TRACE_SPAN macro,
// which compiles to nothing under DIGFL_TELEMETRY=OFF.
class ScopedSpan {
 public:
  // Records into the global tracer; a no-op when telemetry is runtime
  // disabled (SetEnabled(false)).
  explicit ScopedSpan(const char* name) : ScopedSpan(name, DefaultTracer()) {}
  // Records into `tracer`; nullptr makes the span a no-op. `name` must
  // outlive the tracer (string literals in practice).
  ScopedSpan(const char* name, Tracer* tracer);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static Tracer* DefaultTracer() {
    return Enabled() ? &Tracer::Global() : nullptr;
  }

  Tracer* tracer_ = nullptr;
  size_t stack_index_ = 0;  // this span's frame in the thread-local stack
  Timer timer_;
};

}  // namespace telemetry
}  // namespace digfl

#endif  // DIGFL_TELEMETRY_TRACE_H_
