#include "core/shapley.h"

namespace digfl {
namespace {

constexpr size_t kMaxParticipants = 25;

std::vector<bool> MaskToCoalition(size_t n, uint32_t mask) {
  std::vector<bool> coalition(n, false);
  for (size_t i = 0; i < n; ++i) coalition[i] = (mask >> i) & 1u;
  return coalition;
}

}  // namespace

Result<Vec> ShapleyFromUtilities(size_t n,
                                 const std::vector<double>& utilities) {
  if (n == 0 || n > kMaxParticipants) {
    return Status::InvalidArgument("participant count out of range");
  }
  const size_t total = size_t{1} << n;
  if (utilities.size() != total) {
    return Status::InvalidArgument("need exactly 2^n utilities");
  }
  // weight[s] = s! (n-s-1)! / n! computed incrementally to avoid factorial
  // overflow: weight[0] = 1/n; weight[s] = weight[s-1] * s / (n-s).
  std::vector<double> weight(n);
  weight[0] = 1.0 / static_cast<double>(n);
  for (size_t s = 1; s < n; ++s) {
    weight[s] = weight[s - 1] * static_cast<double>(s) /
                static_cast<double>(n - s);
  }

  Vec shapley(n, 0.0);
  for (uint32_t mask = 0; mask < total; ++mask) {
    const size_t size = static_cast<size_t>(__builtin_popcount(mask));
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) continue;
      const uint32_t with_i = mask | (1u << i);
      shapley[i] += weight[size] * (utilities[with_i] - utilities[mask]);
    }
  }
  return shapley;
}

Result<Vec> ExactShapley(size_t n, const UtilityFn& utility) {
  if (n == 0 || n > kMaxParticipants) {
    return Status::InvalidArgument("participant count out of range");
  }
  const size_t total = size_t{1} << n;
  std::vector<double> utilities(total, 0.0);
  for (uint32_t mask = 0; mask < total; ++mask) {
    DIGFL_ASSIGN_OR_RETURN(utilities[mask],
                           utility(MaskToCoalition(n, mask)));
  }
  return ShapleyFromUtilities(n, utilities);
}

Result<Vec> LeaveOneOut(size_t n, const UtilityFn& utility) {
  if (n == 0 || n > kMaxParticipants) {
    return Status::InvalidArgument("participant count out of range");
  }
  DIGFL_ASSIGN_OR_RETURN(const double full,
                         utility(std::vector<bool>(n, true)));
  Vec values(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<bool> coalition(n, true);
    coalition[i] = false;
    DIGFL_ASSIGN_OR_RETURN(const double without, utility(coalition));
    values[i] = full - without;
  }
  return values;
}

}  // namespace digfl
