// Group contributions via Lemma 3's additivity.
//
// The lemma that makes DIG-FL linear — ΔV^{-S} = Σ_{i∈S} ΔV^{-i} — also
// means the estimated contribution of any *set* of participants is just the
// sum of its members' values. These helpers expose that: scoring
// consortiums, org-level billing, or "what do the mislabeled sites cost us
// in total" queries, straight off a ContributionReport.

#ifndef DIGFL_CORE_GROUP_CONTRIBUTION_H_
#define DIGFL_CORE_GROUP_CONTRIBUTION_H_

#include <vector>

#include "common/result.h"
#include "core/contribution.h"

namespace digfl {

// Σ_{i ∈ group} total[i]; indices must be unique and in range.
Result<double> GroupContribution(const ContributionReport& report,
                                 const std::vector<size_t>& group);

// Per-epoch trace of the group's contribution (empty when the report has
// no per-epoch data).
Result<std::vector<double>> GroupPerEpochContribution(
    const ContributionReport& report, const std::vector<size_t>& group);

}  // namespace digfl

#endif  // DIGFL_CORE_GROUP_CONTRIBUTION_H_
