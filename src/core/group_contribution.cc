#include "core/group_contribution.h"

#include <set>

namespace digfl {
namespace {

Status CheckGroup(const ContributionReport& report,
                  const std::vector<size_t>& group) {
  if (group.empty()) return Status::InvalidArgument("empty group");
  std::set<size_t> seen;
  for (size_t index : group) {
    if (index >= report.total.size()) {
      return Status::OutOfRange("participant index " + std::to_string(index) +
                                " out of range");
    }
    if (!seen.insert(index).second) {
      return Status::InvalidArgument("duplicate participant index " +
                                     std::to_string(index));
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> GroupContribution(const ContributionReport& report,
                                 const std::vector<size_t>& group) {
  DIGFL_RETURN_IF_ERROR(CheckGroup(report, group));
  double sum = 0.0;
  for (size_t index : group) sum += report.total[index];
  return sum;
}

Result<std::vector<double>> GroupPerEpochContribution(
    const ContributionReport& report, const std::vector<size_t>& group) {
  DIGFL_RETURN_IF_ERROR(CheckGroup(report, group));
  std::vector<double> trace;
  trace.reserve(report.per_epoch.size());
  for (const std::vector<double>& epoch : report.per_epoch) {
    double sum = 0.0;
    for (size_t index : group) sum += epoch[index];
    trace.push_back(sum);
  }
  return trace;
}

}  // namespace digfl
