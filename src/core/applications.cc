#include "core/applications.h"

#include <algorithm>

namespace digfl {

Result<SelectionResult> SelectParticipantsUnderBudget(
    const std::vector<double>& contributions, const std::vector<double>& costs,
    double budget) {
  if (contributions.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (contributions.size() != costs.size()) {
    return Status::InvalidArgument("contributions/costs size mismatch");
  }
  if (budget < 0) return Status::InvalidArgument("negative budget");
  for (double cost : costs) {
    if (cost < 0) return Status::InvalidArgument("negative cost");
  }

  // Only positively contributing participants are candidates.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < contributions.size(); ++i) {
    if (contributions[i] > 0) candidates.push_back(i);
  }
  if (candidates.size() > 24) {
    return Status::InvalidArgument(
        "exact selection supports at most 24 positive-value participants");
  }

  SelectionResult best;
  const uint32_t total_masks = uint32_t{1} << candidates.size();
  for (uint32_t mask = 0; mask < total_masks; ++mask) {
    double cost = 0.0, value = 0.0;
    for (size_t k = 0; k < candidates.size(); ++k) {
      if ((mask >> k) & 1u) {
        cost += costs[candidates[k]];
        value += contributions[candidates[k]];
      }
    }
    if (cost > budget) continue;
    // Prefer higher value; break ties toward cheaper coalitions.
    if (value > best.total_contribution ||
        (value == best.total_contribution && cost < best.total_cost)) {
      best.total_contribution = value;
      best.total_cost = cost;
      best.selected.clear();
      for (size_t k = 0; k < candidates.size(); ++k) {
        if ((mask >> k) & 1u) best.selected.push_back(candidates[k]);
      }
    }
  }
  std::sort(best.selected.begin(), best.selected.end());
  return best;
}

Result<std::vector<double>> AllocateRewards(
    const std::vector<double>& contributions, double reward_pool) {
  if (contributions.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (reward_pool < 0) return Status::InvalidArgument("negative reward pool");
  std::vector<double> payments(contributions.size(), 0.0);
  double denominator = 0.0;
  for (double phi : contributions) denominator += std::max(phi, 0.0);
  if (denominator <= 0.0) return payments;  // nothing earned a reward
  for (size_t i = 0; i < contributions.size(); ++i) {
    payments[i] = reward_pool * std::max(contributions[i], 0.0) / denominator;
  }
  return payments;
}

}  // namespace digfl
