// DIG-FL based participant reweighting (paper Sec. II-F / III-C / IV-D).
//
// Per epoch the server computes DIG-FL per-epoch contributions and rectifies
// them into aggregation weights (Eq. 17):
//   ω_{t,i} = max(φ_{t,i}, 0) / Σ_j max(φ_{t,j}, 0),
// then aggregates G̃_t = Σ ω_{t,i} δ_{t,i} (HFL, Eq. 21) or scales gradient
// blocks (VFL, Eq. 31). When every contribution is non-positive the policy
// falls back to uniform weights (the update would otherwise vanish).

#ifndef DIGFL_CORE_REWEIGHT_H_
#define DIGFL_CORE_REWEIGHT_H_

#include <vector>

#include "common/result.h"
#include "hfl/fed_sgd.h"
#include "nn/model.h"
#include "vfl/block_model.h"
#include "vfl/plain_trainer.h"

namespace digfl {

// Eq. 17 applied to a raw contribution vector.
Result<std::vector<double>> RectifiedNormalizedWeights(
    const std::vector<double>& contributions);

// Eq. 17 restricted to the participants marked in `present` (absent entries
// get weight 0 and are excluded from the normalization and the uniform
// fallback). An empty mask means everyone is present.
Result<std::vector<double>> RectifiedNormalizedWeightsMasked(
    const std::vector<double>& contributions,
    const std::vector<uint8_t>& present);

// HFL aggregation policy: per-epoch Algorithm-#2 contributions → Eq. 17
// weights over the present participants. Plugs into RunFedSgd.
class DigFlHflReweightPolicy : public AggregationPolicy {
 public:
  Result<std::vector<double>> Weights(size_t epoch, const Vec& params_before,
                                      double learning_rate,
                                      const std::vector<Vec>& deltas,
                                      const std::vector<uint8_t>& present,
                                      const HflServer& server) override;
};

// VFL aggregation policy: per-epoch Eq. 27 contributions → Eq. 17 block
// weights. Plugs into RunVflTraining.
class DigFlVflReweightPolicy : public VflAggregationPolicy {
 public:
  DigFlVflReweightPolicy(const Model& model, const VflBlockModel& blocks,
                         Dataset validation)
      : model_(model.Clone()),
        blocks_(blocks),
        validation_(std::move(validation)) {}

  Result<std::vector<double>> Weights(size_t epoch, const Vec& params_before,
                                      double learning_rate,
                                      const Vec& scaled_gradient) override;

 private:
  std::unique_ptr<Model> model_;
  VflBlockModel blocks_;
  Dataset validation_;
};

}  // namespace digfl

#endif  // DIGFL_CORE_REWEIGHT_H_
