#include "core/digfl_vfl.h"

#include "common/timer.h"
#include "core/phi_accumulator.h"
#include "telemetry/telemetry.h"

namespace digfl {

Result<ContributionReport> EvaluateVflContributions(
    const Model& model, const VflBlockModel& blocks, const Dataset& train,
    const Dataset& validation, const VflTrainingLog& log,
    const DigFlVflOptions& options) {
  if (log.epochs.empty()) {
    return Status::InvalidArgument("empty training log (record_log off?)");
  }
  if (blocks.num_params() != model.NumParams()) {
    return Status::InvalidArgument("block structure does not match model");
  }
  const size_t n = blocks.num_participants();

  DIGFL_TRACE_SPAN("digfl.vfl.evaluate");

  Timer timer;
  ContributionReport report;
  report.total.assign(n, 0.0);
  report.per_epoch.reserve(log.epochs.size());

  if (!options.include_second_order) {
    // Eq. 27 truncated to first order is exactly the incremental accumulator
    // replayed over the whole log — the same code path a checkpointed run
    // folds epoch by epoch, so batch and resumed evaluations agree bit for
    // bit.
    VflPhiAccumulator accumulator(n);
    for (const VflEpochRecord& record : log.epochs) {
      DIGFL_RETURN_IF_ERROR(
          accumulator.Consume(model, blocks, validation, record));
    }
    report.total = accumulator.total();
    report.per_epoch = accumulator.per_epoch();
    report.wall_seconds = timer.ElapsedSeconds();
    return report;
  }

  std::vector<Vec> accumulated_change;
  accumulated_change.assign(n, vec::Zeros(model.NumParams()));

  for (const VflEpochRecord& record : log.epochs) {
    DIGFL_TRACE_SPAN("digfl.vfl.epoch");
    if (!record.present.empty() && record.present.size() != n) {
      return Status::InvalidArgument("ragged participation mask");
    }
    DIGFL_ASSIGN_OR_RETURN(Vec v,
                           model.Gradient(record.params_before, validation));
    std::vector<double> phi(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      // A participant absent this epoch (dropout/quarantine) contributed
      // nothing to G_t — its block is zero — so φ̂_{t,i} = 0 and the
      // removal recursion below receives a zero keep-block term, keeping
      // Lemma 3 additivity over the rounds it actually joined.
      const bool present = record.IsPresent(i);
      // Eq. 27: block-restricted inner product.
      phi[i] = present ? blocks.BlockDot(i, v, record.scaled_gradient) : 0.0;

      Vec omega = vec::Zeros(model.NumParams());
      if (vec::SquaredNorm2(accumulated_change[i]) > 0.0) {
        DIGFL_TRACE_SPAN("digfl.vfl.hvp");
        DIGFL_ASSIGN_OR_RETURN(
            Vec hvp,
            model.Hvp(record.params_before, train, accumulated_change[i]));
        omega = blocks.DropBlock(i, hvp);  // diag(v_i) H (Σ ΔG)
        DIGFL_COUNTER_ADD("digfl.hvp_queries_total", 1);
      }
      // Eq. 26: φ = v·(keep-block G_t) + α_t v·Ω.
      phi[i] += record.learning_rate * vec::Dot(v, omega);
      // Lemma 2 recursion: ΔG_t^{-i} = −(E−diag(v_i)) G_t − α_t Ω_t^{-i}.
      vec::Axpy(-1.0, blocks.KeepBlock(i, record.scaled_gradient),
                accumulated_change[i]);
      vec::Axpy(-record.learning_rate, omega, accumulated_change[i]);
      report.total[i] += phi[i];
    }
    report.per_epoch.push_back(std::move(phi));
  }
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace digfl
