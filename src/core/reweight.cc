#include "core/reweight.h"

#include <algorithm>

namespace digfl {

Result<std::vector<double>> RectifiedNormalizedWeights(
    const std::vector<double>& contributions) {
  if (contributions.empty()) {
    return Status::InvalidArgument("no contributions");
  }
  std::vector<double> weights(contributions.size());
  double denom = 0.0;
  for (size_t i = 0; i < contributions.size(); ++i) {
    weights[i] = std::max(contributions[i], 0.0);
    denom += weights[i];
  }
  if (denom <= 0.0) {
    // Every participant looked harmful this epoch; fall back to FedSGD
    // rather than freezing the model.
    std::fill(weights.begin(), weights.end(),
              1.0 / static_cast<double>(weights.size()));
    return weights;
  }
  for (double& w : weights) w /= denom;
  return weights;
}

Result<std::vector<double>> DigFlHflReweightPolicy::Weights(
    size_t /*epoch*/, const Vec& params_before, double /*learning_rate*/,
    const std::vector<Vec>& deltas, const HflServer& server) {
  DIGFL_ASSIGN_OR_RETURN(Vec v, server.ValidationGradient(params_before));
  std::vector<double> phi(deltas.size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    // Algorithm #2 per-epoch contribution: (1/n) v · δ_{t,i}.
    phi[i] = vec::Dot(v, deltas[i]) / static_cast<double>(deltas.size());
  }
  return RectifiedNormalizedWeights(phi);
}

Result<std::vector<double>> DigFlVflReweightPolicy::Weights(
    size_t /*epoch*/, const Vec& params_before, double /*learning_rate*/,
    const Vec& scaled_gradient) {
  DIGFL_ASSIGN_OR_RETURN(Vec v, model_->Gradient(params_before, validation_));
  std::vector<double> phi(blocks_.num_participants());
  for (size_t i = 0; i < phi.size(); ++i) {
    phi[i] = blocks_.BlockDot(i, v, scaled_gradient);  // Eq. 27
  }
  return RectifiedNormalizedWeights(phi);
}

}  // namespace digfl
