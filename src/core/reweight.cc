#include "core/reweight.h"

#include <algorithm>

namespace digfl {

Result<std::vector<double>> RectifiedNormalizedWeights(
    const std::vector<double>& contributions) {
  if (contributions.empty()) {
    return Status::InvalidArgument("no contributions");
  }
  std::vector<double> weights(contributions.size());
  double denom = 0.0;
  for (size_t i = 0; i < contributions.size(); ++i) {
    weights[i] = std::max(contributions[i], 0.0);
    denom += weights[i];
  }
  if (denom <= 0.0) {
    // Every participant looked harmful this epoch; fall back to FedSGD
    // rather than freezing the model.
    std::fill(weights.begin(), weights.end(),
              1.0 / static_cast<double>(weights.size()));
    return weights;
  }
  for (double& w : weights) w /= denom;
  return weights;
}

Result<std::vector<double>> RectifiedNormalizedWeightsMasked(
    const std::vector<double>& contributions,
    const std::vector<uint8_t>& present) {
  if (present.empty()) return RectifiedNormalizedWeights(contributions);
  if (present.size() != contributions.size()) {
    return Status::InvalidArgument("participation mask size mismatch");
  }
  std::vector<double> weights(contributions.size(), 0.0);
  size_t num_present = 0;
  double denom = 0.0;
  for (size_t i = 0; i < contributions.size(); ++i) {
    if (!present[i]) continue;
    ++num_present;
    weights[i] = std::max(contributions[i], 0.0);
    denom += weights[i];
  }
  if (num_present == 0) return weights;  // nobody reported: all-zero weights
  if (denom <= 0.0) {
    // Every present participant looked harmful this epoch; fall back to
    // FedSGD over the present set rather than freezing the model.
    for (size_t i = 0; i < weights.size(); ++i) {
      weights[i] = present[i] ? 1.0 / static_cast<double>(num_present) : 0.0;
    }
    return weights;
  }
  for (double& w : weights) w /= denom;
  return weights;
}

Result<std::vector<double>> DigFlHflReweightPolicy::Weights(
    size_t /*epoch*/, const Vec& params_before, double /*learning_rate*/,
    const std::vector<Vec>& deltas, const std::vector<uint8_t>& present,
    const HflServer& server) {
  DIGFL_ASSIGN_OR_RETURN(Vec v, server.ValidationGradient(params_before));
  size_t num_present = 0;
  if (present.empty()) {
    num_present = deltas.size();
  } else {
    for (uint8_t in : present) num_present += (in != 0);
  }
  std::vector<double> phi(deltas.size(), 0.0);
  if (num_present == 0) return phi;
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (!present.empty() && !present[i]) continue;
    // Algorithm #2 per-epoch contribution: (1/|present_t|) v · δ_{t,i}.
    phi[i] = vec::Dot(v, deltas[i]) / static_cast<double>(num_present);
  }
  return RectifiedNormalizedWeightsMasked(phi, present);
}

Result<std::vector<double>> DigFlVflReweightPolicy::Weights(
    size_t /*epoch*/, const Vec& params_before, double /*learning_rate*/,
    const Vec& scaled_gradient) {
  DIGFL_ASSIGN_OR_RETURN(Vec v, model_->Gradient(params_before, validation_));
  std::vector<double> phi(blocks_.num_participants());
  for (size_t i = 0; i < phi.size(); ++i) {
    phi[i] = blocks_.BlockDot(i, v, scaled_gradient);  // Eq. 27
  }
  return RectifiedNormalizedWeights(phi);
}

}  // namespace digfl
