// Incremental DIG-FL contribution accumulators.
//
// The batch evaluators (core/digfl_hfl.h, core/digfl_vfl.h) replay a whole
// training log after the fact. These accumulators compute the same
// first-order estimators one epoch at a time, so a checkpointed run can
// carry its φ̂ state forward and a crash never forces a full log replay:
//
//   HFL (Algorithm #2, resource-saving):
//     φ̂_{t,i} = (1/|present_t|) ∇loss^v(θ_{t-1}) · δ_{t,i}
//   VFL (Eq. 27, truncated):
//     φ̂_{t,i} = <∇loss^v(θ_{t-1}), G_t> restricted to block i
//
// Determinism contract: consuming records r_0..r_k one at a time — across
// any number of checkpoint/restore cycles of the accumulator state — yields
// bitwise-identical totals to an uninterrupted replay. The batch evaluators
// are implemented on top of these classes, so the equivalence is by
// construction, not by parallel maintenance of two code paths.

#ifndef DIGFL_CORE_PHI_ACCUMULATOR_H_
#define DIGFL_CORE_PHI_ACCUMULATOR_H_

#include <vector>

#include "common/result.h"
#include "hfl/fed_sgd.h"
#include "hfl/server.h"
#include "vfl/block_model.h"
#include "vfl/plain_trainer.h"

namespace digfl {

class HflPhiAccumulator {
 public:
  explicit HflPhiAccumulator(size_t num_participants);

  // Folds in the next epoch record (θ_{t-1}, δ_{t,i}, mask). The validation
  // gradient is recomputed from the record, so the result is a pure function
  // of the log prefix.
  Status Consume(const HflServer& server, const HflEpochRecord& record);

  const std::vector<double>& total() const { return total_; }
  const std::vector<std::vector<double>>& per_epoch() const {
    return per_epoch_;
  }
  size_t epochs_consumed() const { return per_epoch_.size(); }
  size_t num_participants() const { return total_.size(); }

  // Checkpoint restore: replaces the accumulated state wholesale. Shapes
  // must be consistent (every per-epoch row as wide as the totals).
  Status Restore(std::vector<double> total,
                 std::vector<std::vector<double>> per_epoch);

 private:
  std::vector<double> total_;
  std::vector<std::vector<double>> per_epoch_;
};

class VflPhiAccumulator {
 public:
  explicit VflPhiAccumulator(size_t num_participants);

  Status Consume(const Model& model, const VflBlockModel& blocks,
                 const Dataset& validation, const VflEpochRecord& record);

  const std::vector<double>& total() const { return total_; }
  const std::vector<std::vector<double>>& per_epoch() const {
    return per_epoch_;
  }
  size_t epochs_consumed() const { return per_epoch_.size(); }
  size_t num_participants() const { return total_.size(); }

  Status Restore(std::vector<double> total,
                 std::vector<std::vector<double>> per_epoch);

 private:
  std::vector<double> total_;
  std::vector<std::vector<double>> per_epoch_;
};

}  // namespace digfl

#endif  // DIGFL_CORE_PHI_ACCUMULATOR_H_
