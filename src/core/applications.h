// Downstream applications of DIG-FL contributions, as enumerated in the
// paper's introduction and Sec. II-B: optimal participant selection under a
// budget constraint and fair contribution-based reward allocation.

#ifndef DIGFL_CORE_APPLICATIONS_H_
#define DIGFL_CORE_APPLICATIONS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace digfl {

struct SelectionResult {
  std::vector<size_t> selected;   // participant indices, ascending
  double total_cost = 0.0;
  double total_contribution = 0.0;
};

// Picks the subset of participants maximizing summed contribution subject
// to Σ cost <= budget (participants with non-positive contribution are
// never worth paying for and are excluded up front). Exact search: n <= 24.
Result<SelectionResult> SelectParticipantsUnderBudget(
    const std::vector<double>& contributions, const std::vector<double>& costs,
    double budget);

// Splits `reward_pool` across participants proportionally to their
// rectified contributions max(φ_i, 0) — the payment analogue of the
// reweighting rule (Eq. 17). Guarantees: payments are non-negative, sum to
// `reward_pool` (0 when every contribution is non-positive), and preserve
// the contribution ordering.
Result<std::vector<double>> AllocateRewards(
    const std::vector<double>& contributions, double reward_pool);

}  // namespace digfl

#endif  // DIGFL_CORE_APPLICATIONS_H_
