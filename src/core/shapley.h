// Exact Shapley value computation over a coalition-utility oracle.
//
//   φ_i(V) = Σ_{S ⊆ N\{i}}  |S|! (n−|S|−1)! / n!  · (V(S ∪ {i}) − V(S))
//
// The oracle is called once per coalition (2^n calls, cached by bitmask);
// everything expensive — leave-subset-out retraining — lives behind the
// UtilityFn. This is the ground truth every estimator in the repo is scored
// against, and also the engine of the MR/OR baselines (whose per-round
// utilities are cheap to evaluate).

#ifndef DIGFL_CORE_SHAPLEY_H_
#define DIGFL_CORE_SHAPLEY_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "tensor/vec.h"

namespace digfl {

// V(S): coalition utility. `coalition[i]` tells whether participant i is in.
using UtilityFn =
    std::function<Result<double>(const std::vector<bool>& coalition)>;

// Full 2^n enumeration. n must be <= 25 (guard against runaway cost).
Result<Vec> ExactShapley(size_t n, const UtilityFn& utility);

// Same combination step over pre-computed utilities, indexed by coalition
// bitmask (bit i set = participant i present). utilities.size() must be 2^n.
Result<Vec> ShapleyFromUtilities(size_t n,
                                 const std::vector<double>& utilities);

// Leave-one-out values: V(N) − V(N \ {i}) for every i; a cheaper
// (n+1-utility-call) diagnostic used in tests and examples.
Result<Vec> LeaveOneOut(size_t n, const UtilityFn& utility);

}  // namespace digfl

#endif  // DIGFL_CORE_SHAPLEY_H_
