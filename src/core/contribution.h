// ContributionReport: the common output shape of every contribution
// evaluator in the repo (DIG-FL itself and all baselines).

#ifndef DIGFL_CORE_CONTRIBUTION_H_
#define DIGFL_CORE_CONTRIBUTION_H_

#include <vector>

#include "common/comm_meter.h"

namespace digfl {

struct ContributionReport {
  // per_epoch[t][i]: participant i's contribution at epoch t. Estimators
  // that only produce totals leave this empty.
  std::vector<std::vector<double>> per_epoch;
  // total[i]: participant i's (estimated) Shapley value over training.
  std::vector<double> total;
  // Traffic beyond what the plain FL protocol already sends (zero for
  // DIG-FL Algorithm #2 — its level-2 privacy claim in code form).
  CommMeter extra_comm;
  // Wall-clock cost of the evaluator itself, excluding the FL training it
  // piggybacks on.
  double wall_seconds = 0.0;
  // Number of full model (re)trainings the method consumed (0 for DIG-FL).
  size_t retrainings = 0;
};

}  // namespace digfl

#endif  // DIGFL_CORE_CONTRIBUTION_H_
