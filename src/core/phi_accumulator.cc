#include "core/phi_accumulator.h"

#include "telemetry/telemetry.h"

namespace digfl {
namespace {

Status CheckRestoreShapes(size_t n, const std::vector<double>& total,
                          const std::vector<std::vector<double>>& per_epoch) {
  if (total.size() != n) {
    return Status::InvalidArgument("phi accumulator totals size mismatch");
  }
  for (const std::vector<double>& row : per_epoch) {
    if (row.size() != n) {
      return Status::InvalidArgument("ragged phi accumulator per-epoch row");
    }
  }
  return Status::OK();
}

}  // namespace

HflPhiAccumulator::HflPhiAccumulator(size_t num_participants)
    : total_(num_participants, 0.0) {}

Status HflPhiAccumulator::Consume(const HflServer& server,
                                  const HflEpochRecord& record) {
  DIGFL_TRACE_SPAN("digfl.hfl.epoch");
  const size_t n = total_.size();
  if (record.deltas.size() != n ||
      (!record.present.empty() && record.present.size() != n)) {
    return Status::InvalidArgument("ragged training log");
  }
  // Partial participation (Lemma 3 under masking): the epoch's aggregate
  // averaged over the m = |present_t| participants that reported, so the
  // leave-one-out perturbation of a present participant carries 1/m and an
  // absent participant contributes φ̂_{t,i} = 0 — its absence cannot have
  // changed this epoch's aggregate.
  const size_t m = record.NumPresent();
  if (m == 0) {
    // Nobody reported: G_t = 0, the epoch is a no-op for every φ.
    per_epoch_.push_back(std::vector<double>(n, 0.0));
    return Status::OK();
  }
  DIGFL_ASSIGN_OR_RETURN(Vec v,
                         server.ValidationGradient(record.params_before));
  std::vector<double> phi(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (record.IsPresent(i)) {
      phi[i] = vec::Dot(v, record.deltas[i]) / static_cast<double>(m);
    }
    total_[i] += phi[i];
  }
  per_epoch_.push_back(std::move(phi));
  return Status::OK();
}

Status HflPhiAccumulator::Restore(
    std::vector<double> total, std::vector<std::vector<double>> per_epoch) {
  DIGFL_RETURN_IF_ERROR(CheckRestoreShapes(total_.size(), total, per_epoch));
  total_ = std::move(total);
  per_epoch_ = std::move(per_epoch);
  return Status::OK();
}

VflPhiAccumulator::VflPhiAccumulator(size_t num_participants)
    : total_(num_participants, 0.0) {}

Status VflPhiAccumulator::Consume(const Model& model,
                                  const VflBlockModel& blocks,
                                  const Dataset& validation,
                                  const VflEpochRecord& record) {
  DIGFL_TRACE_SPAN("digfl.vfl.epoch");
  const size_t n = total_.size();
  if (blocks.num_participants() != n) {
    return Status::InvalidArgument("block structure size mismatch");
  }
  if (!record.present.empty() && record.present.size() != n) {
    return Status::InvalidArgument("ragged participation mask");
  }
  DIGFL_ASSIGN_OR_RETURN(Vec v,
                         model.Gradient(record.params_before, validation));
  std::vector<double> phi(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    // An absent participant (dropout/quarantine) contributed nothing to G_t
    // — its block is zero — so φ̂_{t,i} = 0 (Lemma 3 additivity over the
    // rounds it actually joined).
    phi[i] = record.IsPresent(i)
                 ? blocks.BlockDot(i, v, record.scaled_gradient)
                 : 0.0;
    total_[i] += phi[i];
  }
  per_epoch_.push_back(std::move(phi));
  return Status::OK();
}

Status VflPhiAccumulator::Restore(
    std::vector<double> total, std::vector<std::vector<double>> per_epoch) {
  DIGFL_RETURN_IF_ERROR(CheckRestoreShapes(total_.size(), total, per_epoch));
  total_ = std::move(total);
  per_epoch_ = std::move(per_epoch);
  return Status::OK();
}

}  // namespace digfl
