#include "core/digfl_hfl.h"

#include "common/timer.h"
#include "core/phi_accumulator.h"
#include "telemetry/telemetry.h"

namespace digfl {

Result<ContributionReport> EvaluateHflContributions(
    const Model& model, const std::vector<HflParticipant>& participants,
    const HflServer& server, const HflTrainingLog& log,
    const DigFlHflOptions& options) {
  if (log.epochs.empty()) {
    return Status::InvalidArgument("empty training log (record_log off?)");
  }
  const size_t n = log.num_participants();
  const size_t p = model.NumParams();
  if (options.mode == HflEvaluatorMode::kInteractive &&
      participants.size() != n) {
    return Status::InvalidArgument(
        "interactive mode needs the participants that produced the log");
  }

  DIGFL_TRACE_SPAN("digfl.hfl.evaluate");

  Timer timer;
  ContributionReport report;
  report.total.assign(n, 0.0);
  report.per_epoch.reserve(log.epochs.size());
  const CommMeter::ChannelId ch_hvp =
      report.extra_comm.Channel("participant->server:hvp");

  if (options.mode == HflEvaluatorMode::kResourceSaving) {
    // Algorithm #2 is exactly the incremental accumulator replayed over the
    // whole log — the same code path a checkpointed run folds epoch by
    // epoch, so batch and resumed evaluations agree bit for bit.
    HflPhiAccumulator accumulator(n);
    for (const HflEpochRecord& record : log.epochs) {
      DIGFL_RETURN_IF_ERROR(accumulator.Consume(server, record));
    }
    report.total = accumulator.total();
    report.per_epoch = accumulator.per_epoch();
    report.wall_seconds = timer.ElapsedSeconds();
    return report;
  }

  // Σ_{j<=t} ΔG_j^{-i}, maintained per participant (interactive mode only).
  std::vector<Vec> accumulated_change;
  accumulated_change.assign(n, vec::Zeros(p));

  for (const HflEpochRecord& record : log.epochs) {
    DIGFL_TRACE_SPAN("digfl.hfl.epoch");
    if (record.deltas.size() != n ||
        (!record.present.empty() && record.present.size() != n)) {
      return Status::InvalidArgument("ragged training log");
    }
    // Partial participation (Lemma 3 under masking): the epoch's aggregate
    // averaged over the m = |present_t| participants that reported, so the
    // leave-one-out perturbation of a present participant carries 1/m and
    // an absent participant contributes φ̂_{t,i} = 0 — its absence cannot
    // have changed this epoch's aggregate. Contribution sums stay additive
    // over the rounds each participant actually joined.
    const size_t m = record.NumPresent();
    if (m == 0) {
      // Nobody reported: G_t = 0, the epoch is a no-op for every φ.
      report.per_epoch.push_back(std::vector<double>(n, 0.0));
      continue;
    }
    DIGFL_ASSIGN_OR_RETURN(Vec v,
                           server.ValidationGradient(record.params_before));

    std::vector<double> phi(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const bool present = record.IsPresent(i);
      // First-order term of Eq. 19: (1/m) v · δ_{t,i}; zero when absent
      // (the delta slot is a zero vector, but skip the dot product anyway).
      if (present) {
        phi[i] = vec::Dot(v, record.deltas[i]) / static_cast<double>(m);
      }

      // Second-order term Ω_t^{-i}: Hessian-vector product on the
      // accumulated gradient change (zero at the first epoch). The
      // removal perturbation keeps propagating through the Hessian even
      // in epochs where participant i itself is absent.
      Vec omega = vec::Zeros(p);
      if (vec::SquaredNorm2(accumulated_change[i]) > 0.0) {
        DIGFL_TRACE_SPAN("digfl.hfl.hvp");
        if (options.average_hvp_across_participants) {
          // Only participants that reported this epoch can serve HVP
          // queries; the server averages over the present set.
          size_t served = 0;
          for (size_t j = 0; j < n; ++j) {
            if (!record.IsPresent(j)) continue;
            DIGFL_ASSIGN_OR_RETURN(
                Vec local,
                participants[j].ComputeLocalHvp(model, record.params_before,
                                                accumulated_change[i]));
            vec::Axpy(1.0, local, omega);
            ++served;
          }
          if (served > 0) {
            vec::Scale(1.0 / static_cast<double>(served), omega);
          }
          report.extra_comm.RecordDoubles(ch_hvp, served * p);
          DIGFL_COUNTER_ADD("digfl.hvp_queries_total", served);
        } else if (present) {
          DIGFL_ASSIGN_OR_RETURN(
              omega,
              participants[i].ComputeLocalHvp(model, record.params_before,
                                              accumulated_change[i]));
          report.extra_comm.RecordDoubles(ch_hvp, p);
          DIGFL_COUNTER_ADD("digfl.hvp_queries_total", 1);
        }
      }
      // φ_{t,i} = −v·ΔG_t^{-i} with the Algorithm-1 recursion
      //   ΔG_t^{-i} = −(1/m) δ_{t,i} − α_t Ω_t^{-i}.
      // (The paper's Lemma 1 prints the Ω sign as "+", contradicting its
      // own Eq. 6 derivation and Algorithm 1 line 8; we follow the
      // derivation, which also matches the VFL Lemma 2 convention.)
      phi[i] += record.learning_rate * vec::Dot(v, omega);
      if (present) {
        vec::Axpy(-1.0 / static_cast<double>(m), record.deltas[i],
                  accumulated_change[i]);
      }
      vec::Axpy(-record.learning_rate, omega, accumulated_change[i]);
      report.total[i] += phi[i];
    }
    report.per_epoch.push_back(std::move(phi));
  }
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace digfl
