// DIG-FL for horizontal federated learning (paper Sec. III).
//
// Both algorithms consume the FedSGD training log; neither retrains.
//
// Algorithm #2 (resource-saving, level-2 privacy):
//   φ̂_{t,i} = (1/n) ∇loss^v(θ_{t-1}) · δ_{t,i}
// — server-only, no participant involvement, zero extra communication.
//
// Algorithm #1 (interactive, level-1 privacy) keeps the second-order term
// of Eq. 19: each participant i uploads the local Hessian-vector product
//   Ω_t^{-i} = Ĥ_i(θ_{t-1}) · Σ_{j<t} ΔG_j^{-i}
// (an unbiased stochastic estimate of the global-Hessian product), and the
// server tracks the gradient-change recursion of Lemma 1:
//   ΔG_t^{-i} = −(1/n) δ_{t,i} + α_t Ω_t^{-i},
//   φ_{t,i}  = (1/n) v_t·δ_{t,i} − α_t v_t·Ω_t^{-i},  v_t = ∇loss^v(θ_{t-1}).

#ifndef DIGFL_CORE_DIGFL_HFL_H_
#define DIGFL_CORE_DIGFL_HFL_H_

#include <vector>

#include "core/contribution.h"
#include "common/result.h"
#include "hfl/fed_sgd.h"

namespace digfl {

enum class HflEvaluatorMode {
  kResourceSaving,  // Algorithm #2
  kInteractive,     // Algorithm #1 (second-order via participant HVPs)
};

struct DigFlHflOptions {
  HflEvaluatorMode mode = HflEvaluatorMode::kResourceSaving;
  // Interactive mode only: when true (default) every participant computes
  // the HVP for each removal vector and the server averages them — the
  // unbiased estimator of the *global* Hessian product described in the
  // paper's Sec. III-A text (n HVP uploads per participant per epoch).
  // When false, participant i reports only Ĥ_i · Σ ΔG^{-i}, the literal
  // Algorithm 1 line 6-7 (one upload per participant per epoch, cheaper,
  // slightly biased).
  bool average_hvp_across_participants = true;
};

// Evaluates every participant's per-epoch and total contribution from the
// training log. `participants` is only touched in kInteractive mode (they
// compute local HVPs, exactly as in Algorithm 1); pass the same vector that
// produced `log`.
Result<ContributionReport> EvaluateHflContributions(
    const Model& model, const std::vector<HflParticipant>& participants,
    const HflServer& server, const HflTrainingLog& log,
    const DigFlHflOptions& options = {});

}  // namespace digfl

#endif  // DIGFL_CORE_DIGFL_HFL_H_
