// DIG-FL for vertical federated learning (paper Sec. IV).
//
// Truncated estimator (Eq. 27, the deployable one — computable under
// encryption, see vfl/encrypted_protocol.h):
//   φ̂_{t,i} = ∇loss^v(θ_{t-1}) · (E − diag(v_i)) G_t
//           = <validation gradient, G_t> restricted to block i.
//
// Full estimator (Eq. 26, simulation-only — the Hessian of the distributed
// model is not computable in a real VFL deployment; we expose it to
// reproduce the paper's "error of ignoring the second term" experiments):
//   Ω_t^{-i}  = diag(v_i) H(θ_{t-1}) Σ_{j<t} ΔG_j^{-i}
//   ΔG_t^{-i} = −(E − diag(v_i)) G_t − α_t Ω_t^{-i}        (Lemma 2)
//   φ_{t,i}   = −∇loss^v(θ_{t-1}) · ΔG_t^{-i}.

#ifndef DIGFL_CORE_DIGFL_VFL_H_
#define DIGFL_CORE_DIGFL_VFL_H_

#include "core/contribution.h"
#include "common/result.h"
#include "nn/model.h"
#include "vfl/block_model.h"
#include "vfl/plain_trainer.h"

namespace digfl {

struct DigFlVflOptions {
  // true = Eq. 26 (adds the Hessian correction); false = Eq. 27.
  bool include_second_order = false;
};

// Evaluates contributions from a VFL training log. `train` is only needed
// by the second-order path (Hessian-vector products of the training loss).
Result<ContributionReport> EvaluateVflContributions(
    const Model& model, const VflBlockModel& blocks, const Dataset& train,
    const Dataset& validation, const VflTrainingLog& log,
    const DigFlVflOptions& options = {});

}  // namespace digfl

#endif  // DIGFL_CORE_DIGFL_VFL_H_
