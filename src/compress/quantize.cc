#include "compress/quantize.h"

#include <cfloat>
#include <cmath>
#include <cstring>

namespace digfl {
namespace compress {
namespace {

// Block sizes are bounded the same way the wire bounds every other length
// field: far above anything sensible, far below an allocation attack.
constexpr uint32_t kMaxBlockSize = 65536;

Status ValidateBlockSize(uint32_t block_size) {
  if (block_size == 0 || block_size % 8 != 0 || block_size > kMaxBlockSize) {
    return Status::InvalidArgument(
        "quantizer block size must be a positive multiple of 8, at most " +
        std::to_string(kMaxBlockSize));
  }
  return Status::OK();
}

int QMax(Mode mode) { return mode == Mode::kQ4 ? kQ4Max : kQ8Max; }

// One block's scale: max|v| / qmax, floored at DBL_MIN so a denormal
// maximum never produces a zero (division-by-zero) or denormal scale.
// A zero block keeps scale 0 and all-zero codes.
double BlockScale(const double* v, size_t n, int qmax) {
  double m = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double a = std::abs(v[i]);
    if (a > m) m = a;
  }
  if (m == 0.0) return 0.0;
  const double scale = m / static_cast<double>(qmax);
  return scale < DBL_MIN ? DBL_MIN : scale;
}

// round(v / scale) clamped to [-qmax, qmax]; the clamp only fires when the
// quotient rounds to qmax + 1 at the block maximum, where the clamped code
// still satisfies |v − scale · code| ≤ scale / 2.
int QuantizeOne(double v, double scale, int qmax) {
  const long code = std::lrint(v / scale);
  if (code > qmax) return qmax;
  if (code < -qmax) return -qmax;
  return static_cast<int>(code);
}

}  // namespace

Result<Mode> ParseMode(const std::string& name) {
  if (name == "lossless" || name == "off" || name == "none") {
    return Mode::kLossless;
  }
  if (name == "q8") return Mode::kQ8;
  if (name == "q4") return Mode::kQ4;
  return Status::InvalidArgument(
      "unknown compression mode \"" + name + "\" (lossless, q8, q4)");
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kLossless:
      return "lossless";
    case Mode::kQ8:
      return "q8";
    case Mode::kQ4:
      return "q4";
  }
  return "unknown";
}

Result<QuantizedVec> Quantize(const Vec& v, Mode mode, uint32_t block_size) {
  DIGFL_RETURN_IF_ERROR(ValidateBlockSize(block_size));
  for (double x : v) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("non-finite value in quantizer input");
    }
  }
  QuantizedVec q;
  q.mode = mode;
  q.num_values = v.size();
  q.block_size = block_size;
  if (mode == Mode::kLossless) {
    q.raw = v;
    return q;
  }
  const int qmax = QMax(mode);
  const size_t blocks = q.num_blocks();
  q.scales.resize(blocks);
  if (mode == Mode::kQ8) {
    q.codes.resize(v.size());
  } else {
    q.codes.assign((v.size() + 1) / 2, 0);
  }
  for (size_t b = 0; b < blocks; ++b) {
    const size_t lo = b * block_size;
    const size_t hi = std::min(v.size(), lo + block_size);
    const double scale = BlockScale(v.data() + lo, hi - lo, qmax);
    q.scales[b] = scale;
    for (size_t i = lo; i < hi; ++i) {
      const int code = scale == 0.0 ? 0 : QuantizeOne(v[i], scale, qmax);
      if (mode == Mode::kQ8) {
        q.codes[i] = static_cast<uint8_t>(static_cast<int8_t>(code));
      } else {
        // Offset binary: nibble = code + 8 ∈ [1, 15]; values at even
        // indices take the low nibble, odd indices the high nibble.
        const uint8_t nibble = static_cast<uint8_t>(code + 8);
        q.codes[i / 2] |= (i % 2 == 0) ? nibble : (nibble << 4);
      }
    }
  }
  return q;
}

Vec Dequantize(const QuantizedVec& q) {
  if (q.mode == Mode::kLossless) return q.raw;
  Vec out(q.num_values);
  for (size_t i = 0; i < out.size(); ++i) {
    const double scale = q.scales[i / q.block_size];
    int code = 0;
    if (q.mode == Mode::kQ8) {
      code = static_cast<int8_t>(q.codes[i]);
    } else {
      const uint8_t byte = q.codes[i / 2];
      code = static_cast<int>((i % 2 == 0) ? (byte & 0x0f) : (byte >> 4)) - 8;
    }
    out[i] = scale * static_cast<double>(code);
  }
  return out;
}

size_t EncodedSize(const QuantizedVec& q) {
  // mode + num_values + block_size headers.
  size_t bytes = 4 + 8 + 4;
  if (q.mode == Mode::kLossless) {
    return bytes + 8 + q.raw.size() * sizeof(double);
  }
  return bytes + 8 + q.scales.size() * sizeof(double) + 8 + q.codes.size();
}

void EncodeQuantized(const QuantizedVec& q, ckpt::ByteSink* sink) {
  sink->PutU32(static_cast<uint32_t>(q.mode));
  sink->PutU64(q.num_values);
  sink->PutU32(q.block_size);
  if (q.mode == Mode::kLossless) {
    sink->PutDoubles(q.raw);
    return;
  }
  sink->PutDoubles(q.scales);
  sink->PutBytes(q.codes);
}

Result<QuantizedVec> DecodeQuantized(ckpt::ByteSource* source,
                                     uint64_t max_values) {
  QuantizedVec q;
  uint32_t mode = 0;
  DIGFL_RETURN_IF_ERROR(source->GetU32(&mode));
  if (mode > static_cast<uint32_t>(Mode::kQ4)) {
    return Status::InvalidArgument("unknown quantization mode on the wire");
  }
  q.mode = static_cast<Mode>(mode);
  DIGFL_RETURN_IF_ERROR(source->GetU64(&q.num_values));
  if (q.num_values == 0) {
    return Status::InvalidArgument("quantized block covers zero values");
  }
  if (q.num_values > max_values) {
    return Status::InvalidArgument(
        "quantized block length is implausibly large");
  }
  DIGFL_RETURN_IF_ERROR(source->GetU32(&q.block_size));
  DIGFL_RETURN_IF_ERROR(ValidateBlockSize(q.block_size));
  if (q.mode == Mode::kLossless) {
    DIGFL_RETURN_IF_ERROR(source->GetDoubles(&q.raw));
    if (q.raw.size() != q.num_values) {
      return Status::InvalidArgument(
          "lossless quantized block length mismatch");
    }
    for (double x : q.raw) {
      if (!std::isfinite(x)) {
        return Status::InvalidArgument(
            "non-finite value in lossless quantized block");
      }
    }
    return q;
  }

  DIGFL_RETURN_IF_ERROR(source->GetDoubles(&q.scales));
  if (q.scales.size() != q.num_blocks()) {
    return Status::InvalidArgument(
        "quantized block table does not match the value count");
  }
  for (double scale : q.scales) {
    if (!std::isfinite(scale) || scale < 0.0) {
      return Status::InvalidArgument("bad scale in quantized block table");
    }
  }
  DIGFL_RETURN_IF_ERROR(source->GetBytes(&q.codes));
  const size_t expected_bytes = q.mode == Mode::kQ8
                                    ? static_cast<size_t>(q.num_values)
                                    : static_cast<size_t>((q.num_values + 1) / 2);
  if (q.codes.size() != expected_bytes) {
    return Status::InvalidArgument("quantized code array length mismatch");
  }
  for (uint64_t i = 0; i < q.num_values; ++i) {
    const double scale = q.scales[i / q.block_size];
    int code = 0;
    if (q.mode == Mode::kQ8) {
      code = static_cast<int8_t>(q.codes[i]);
      if (code == -128) {
        return Status::InvalidArgument("quantized code overflow (q8 -128)");
      }
    } else {
      const uint8_t byte = q.codes[i / 2];
      const uint8_t nibble = (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
      if (nibble == 0) {
        return Status::InvalidArgument("quantized code overflow (q4 nibble 0)");
      }
      code = static_cast<int>(nibble) - 8;
    }
    if (scale == 0.0 && code != 0) {
      return Status::InvalidArgument(
          "nonzero quantized code under a zero scale");
    }
  }
  if (q.mode == Mode::kQ4 && q.num_values % 2 == 1 &&
      (q.codes.back() >> 4) != 0) {
    return Status::InvalidArgument("nonzero pad nibble in quantized block");
  }
  return q;
}

Result<QuantizedVec> ErrorFeedback::Encode(const Vec& v) {
  if (residual_.empty()) residual_.assign(v.size(), 0.0);
  if (residual_.size() != v.size()) {
    return Status::InvalidArgument(
        "error-feedback dimension changed mid-stream");
  }
  if (mode_ == Mode::kLossless) {
    // Passthrough is exact: the residual stays identically zero and the
    // round trip is bitwise idempotent (no +0.0 fold that would flip -0.0).
    return Quantize(v, mode_, block_size_);
  }
  Vec folded(v.size());
  for (size_t i = 0; i < v.size(); ++i) folded[i] = v[i] + residual_[i];
  DIGFL_ASSIGN_OR_RETURN(QuantizedVec q, Quantize(folded, mode_, block_size_));
  const Vec back = Dequantize(q);
  for (size_t i = 0; i < v.size(); ++i) residual_[i] = folded[i] - back[i];
  return q;
}

}  // namespace compress
}  // namespace digfl
