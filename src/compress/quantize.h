// Per-block quantization of parameter/update vectors (DESIGN.md §16).
//
// The wire path ships δ_{t,i} as raw IEEE-754 doubles (8 bytes/coordinate).
// This module compresses such vectors SAQ-style: split the vector into
// fixed-size blocks, store one double scale per block (max|v| / qmax), and
// one signed 8-bit (q8) or packed 4-bit (q4) code per coordinate, with
// dequantization v̂_i = scale_b · code_i and per-element error ≤ scale_b/2.
// A lossless passthrough mode carries the untouched doubles through the
// same container and is the golden reference for the framing layer.
//
// Error feedback: a participant that quantizes every upload accumulates the
// per-round quantization error in a residual and folds it into the next
// round's vector (q_t = Quantize(v_t + r_{t-1}), r_t = (v_t + r_{t-1}) −
// Dequantize(q_t), elementwise in exactly that order), so the error
// telescopes instead of compounding. The residual is transient participant
// state — it is never checkpointed, which is why resume + compression is a
// typed reject in the trainers.
//
// Wire container ("QNT1" block body, little-endian via ckpt::ByteSink):
//
//   u32 mode | u64 num_values | u32 block_size
//   lossless: length-prefixed doubles (the raw vector)
//   q8/q4:    length-prefixed doubles (per-block scales)
//             length-prefixed bytes   (codes: q8 one per value, int8;
//                                      q4 two per byte, offset-binary
//                                      nibble = code + 8 ∈ [1, 15])
//
// Decoding is strict (same discipline as net/messages.cc): unknown modes,
// block-table size mismatches, non-finite/negative scales, q8 code −128,
// q4 nibble 0, nonzero codes under a zero scale, and nonzero pad nibbles
// are all typed errors, never garbage vectors.

#ifndef DIGFL_COMPRESS_QUANTIZE_H_
#define DIGFL_COMPRESS_QUANTIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/frame.h"
#include "common/result.h"
#include "tensor/vec.h"

namespace digfl {
namespace compress {

enum class Mode : uint32_t {
  kLossless = 0,  // passthrough: raw doubles in the QNT1 container
  kQ8 = 1,        // int8 codes, qmax = 127
  kQ4 = 2,        // packed 4-bit codes, qmax = 7
};

// "lossless" | "q8" | "q4" (also accepts "off" and "none" for lossless).
Result<Mode> ParseMode(const std::string& name);
const char* ModeName(Mode mode);

// Default block size. Must be a multiple of 8 so a block never splits one
// of the SIMD kernels' 8-lane groups (tensor/simd/simd.h QDot contract).
inline constexpr uint32_t kQuantBlock = 64;

// Largest code magnitude per mode; code −(qmax+1) never appears on the wire
// (q8 rejects −128, q4's offset-binary nibble 0 is invalid).
inline constexpr int kQ8Max = 127;
inline constexpr int kQ4Max = 7;

struct QuantizedVec {
  Mode mode = Mode::kLossless;
  uint64_t num_values = 0;
  uint32_t block_size = kQuantBlock;
  Vec raw;                      // lossless only
  Vec scales;                   // q8/q4: one per block, finite, ≥ 0
  std::vector<uint8_t> codes;   // q8: int8 per value; q4: two nibbles/byte

  size_t num_blocks() const {
    return block_size == 0
               ? 0
               : static_cast<size_t>((num_values + block_size - 1) /
                                     block_size);
  }
};

// Quantizes `v` (rejects non-finite input — the same trust boundary as the
// wire decoders). Lossless mode copies the vector through unchanged.
// `block_size` must be a positive multiple of 8.
Result<QuantizedVec> Quantize(const Vec& v, Mode mode,
                              uint32_t block_size = kQuantBlock);

// Reconstructs v̂ (v̂_i = scale_b · code_i; the raw vector for lossless).
// Assumes a validated QuantizedVec (the decoder's or Quantize's output).
Vec Dequantize(const QuantizedVec& q);

// Exact number of bytes EncodeQuantized appends — what a CommMeter should
// record for a quantized upload in place of num_values * sizeof(double).
size_t EncodedSize(const QuantizedVec& q);

// Appends the QNT1 block body (no magic tag — the message codec owns that).
void EncodeQuantized(const QuantizedVec& q, ckpt::ByteSink* sink);

// Strict decode of a QNT1 block body. `max_values` bounds num_values
// against hostile lengths (callers pass the expected parameter-vector size
// or a generous cap). Every violation listed in the header comment is a
// typed kInvalidArgument.
Result<QuantizedVec> DecodeQuantized(ckpt::ByteSource* source,
                                     uint64_t max_values);

// Per-participant error-feedback encoder (see file comment). The residual
// starts at zero, is updated by every Encode, and telescopes bitwise:
// after every call, residual == (v + residual_before) − Dequantize(q)
// computed elementwise in exactly that order.
class ErrorFeedback {
 public:
  explicit ErrorFeedback(Mode mode, uint32_t block_size = kQuantBlock)
      : mode_(mode), block_size_(block_size) {}

  // Quantizes v + residual and folds the new quantization error back into
  // the residual. The first call fixes the dimension; later calls reject a
  // mismatch. Lossless mode is idempotent: the residual stays all-zero.
  Result<QuantizedVec> Encode(const Vec& v);

  const Vec& residual() const { return residual_; }
  Mode mode() const { return mode_; }
  void Reset() { residual_.clear(); }

 private:
  Mode mode_;
  uint32_t block_size_;
  Vec residual_;
};

}  // namespace compress
}  // namespace digfl

#endif  // DIGFL_COMPRESS_QUANTIZE_H_
