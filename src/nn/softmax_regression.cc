#include "nn/softmax_regression.h"

#include <algorithm>
#include <cmath>

namespace digfl {

Status SoftmaxRegression::CheckLabels(const Dataset& data) const {
  if (data.num_classes != num_classes_) {
    return Status::InvalidArgument(
        "dataset num_classes " + std::to_string(data.num_classes) +
        " != model num_classes " + std::to_string(num_classes_));
  }
  return Status::OK();
}

Vec SoftmaxRegression::SampleProbs(const Vec& params,
                                   std::span<const double> x) const {
  const size_t k = static_cast<size_t>(num_classes_);
  Vec logits(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    const double* w = params.data() + c * num_features_;
    double z = 0.0;
    for (size_t j = 0; j < num_features_; ++j) z += w[j] * x[j];
    logits[c] = z;
  }
  const double zmax = *std::max_element(logits.begin(), logits.end());
  double denom = 0.0;
  for (double& z : logits) {
    z = std::exp(z - zmax);
    denom += z;
  }
  for (double& z : logits) z /= denom;
  return logits;
}

Result<double> SoftmaxRegression::Loss(const Vec& params,
                                       const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckLabels(data));
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const Vec probs = SampleProbs(params, data.x.Row(i));
    const double p = std::max(probs[data.Label(i)], 1e-300);
    sum -= std::log(p);
  }
  return sum / static_cast<double>(data.size());
}

Result<Vec> SoftmaxRegression::Gradient(const Vec& params,
                                        const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckLabels(data));
  Vec grad(NumParams(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    auto x = data.x.Row(i);
    Vec probs = SampleProbs(params, x);
    probs[data.Label(i)] -= 1.0;  // p - onehot(y)
    for (int c = 0; c < num_classes_; ++c) {
      const double coeff = probs[c];
      if (coeff == 0.0) continue;
      double* g = grad.data() + static_cast<size_t>(c) * num_features_;
      for (size_t j = 0; j < num_features_; ++j) g[j] += coeff * x[j];
    }
  }
  vec::Scale(1.0 / static_cast<double>(data.size()), grad);
  return grad;
}

Result<Vec> SoftmaxRegression::Hvp(const Vec& params, const Dataset& data,
                                   const Vec& v) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckLabels(data));
  if (v.size() != NumParams()) {
    return Status::InvalidArgument("HVP direction dimension mismatch");
  }
  const size_t k = static_cast<size_t>(num_classes_);
  Vec hv(NumParams(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    auto x = data.x.Row(i);
    const Vec probs = SampleProbs(params, x);
    // Rz_c = <v_c, x>.
    Vec rz(k, 0.0);
    for (size_t c = 0; c < k; ++c) {
      const double* vc = v.data() + c * num_features_;
      double z = 0.0;
      for (size_t j = 0; j < num_features_; ++j) z += vc[j] * x[j];
      rz[c] = z;
    }
    double p_dot_rz = 0.0;
    for (size_t c = 0; c < k; ++c) p_dot_rz += probs[c] * rz[c];
    // Rp_c = p_c (Rz_c - <p, Rz>); d(grad)_c = Rp_c * x.
    for (size_t c = 0; c < k; ++c) {
      const double rp = probs[c] * (rz[c] - p_dot_rz);
      if (rp == 0.0) continue;
      double* h = hv.data() + c * num_features_;
      for (size_t j = 0; j < num_features_; ++j) h[j] += rp * x[j];
    }
  }
  vec::Scale(1.0 / static_cast<double>(data.size()), hv);
  return hv;
}

Result<Vec> SoftmaxRegression::Predict(const Vec& params,
                                       const Matrix& x) const {
  if (params.size() != NumParams() || x.cols() != num_features_) {
    return Status::InvalidArgument("Predict shape mismatch");
  }
  Vec out(x.rows(), 0.0);
  for (size_t i = 0; i < x.rows(); ++i) {
    const Vec probs = SampleProbs(params, x.Row(i));
    out[i] = static_cast<double>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }
  return out;
}

}  // namespace digfl
