// Binary logistic regression; the model behind VFL-LogReg.
//
// Prediction: P(y=1|x) = σ(<w, x>), intercept-free (see linear_regression.h
// for why the VFL substrate needs f(0, x) = 0).
//
// Mean loss: cross-entropy. Gradient: (1/m) X^T (p − y).
// Hessian:   (1/m) X^T diag(p(1−p)) X  (exact HVP).

#ifndef DIGFL_NN_LOGISTIC_REGRESSION_H_
#define DIGFL_NN_LOGISTIC_REGRESSION_H_

#include "nn/model.h"

namespace digfl {

class LogisticRegression : public Model {
 public:
  explicit LogisticRegression(size_t num_features)
      : num_features_(num_features) {}

  std::string Name() const override { return "LogisticRegression"; }
  size_t NumParams() const override { return num_features_; }

  Result<double> Loss(const Vec& params, const Dataset& data) const override;
  Result<Vec> Gradient(const Vec& params, const Dataset& data) const override;
  Result<Vec> Hvp(const Vec& params, const Dataset& data,
                  const Vec& v) const override;
  Result<Vec> Predict(const Vec& params, const Matrix& x) const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<LogisticRegression>(*this);
  }

  // σ(z) with care at extreme logits.
  static double Sigmoid(double z);

 protected:
  size_t NumFeatures() const override { return num_features_; }

 private:
  Status CheckBinaryLabels(const Dataset& data) const;

  size_t num_features_;
};

}  // namespace digfl

#endif  // DIGFL_NN_LOGISTIC_REGRESSION_H_
