// Centralized (full-batch) gradient-descent training.
//
// Used by the leave-subset-out retraining oracle and as the reference
// trainer in tests. Full-batch GD keeps every retraining deterministic,
// which the exact-Shapley computations rely on.

#ifndef DIGFL_NN_SGD_H_
#define DIGFL_NN_SGD_H_

#include <functional>
#include <vector>

#include "nn/model.h"

namespace digfl {

struct TrainConfig {
  size_t epochs = 30;
  double learning_rate = 0.1;
  // Optional per-epoch decay: lr_t = learning_rate * decay^t.
  double lr_decay = 1.0;
};

struct TrainTrace {
  Vec final_params;
  // Loss on the training data after each epoch (size == epochs).
  std::vector<double> train_loss;
};

// Runs `config.epochs` full-batch GD steps from `init_params`.
Result<TrainTrace> TrainCentralized(const Model& model, const Dataset& data,
                                    const Vec& init_params,
                                    const TrainConfig& config);

}  // namespace digfl

#endif  // DIGFL_NN_SGD_H_
