#include "nn/logistic_regression.h"

#include <cmath>

namespace digfl {

double LogisticRegression::Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

Status LogisticRegression::CheckBinaryLabels(const Dataset& data) const {
  if (data.num_classes != 2) {
    return Status::InvalidArgument("LogisticRegression needs num_classes == 2");
  }
  return Status::OK();
}

Result<double> LogisticRegression::Loss(const Vec& params,
                                        const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckBinaryLabels(data));
  const Vec logits = data.x.MatVec(params);
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    // Numerically stable -[y log p + (1-y) log(1-p)]:
    //   log(1 + exp(z)) - y z   computed via softplus.
    const double z = logits[i];
    const double softplus = z > 0 ? z + std::log1p(std::exp(-z))
                                  : std::log1p(std::exp(z));
    sum += softplus - data.y[i] * z;
  }
  return sum / static_cast<double>(data.size());
}

Result<Vec> LogisticRegression::Gradient(const Vec& params,
                                         const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckBinaryLabels(data));
  Vec residual = data.x.MatVec(params);
  for (size_t i = 0; i < data.size(); ++i) {
    residual[i] = Sigmoid(residual[i]) - data.y[i];
  }
  Vec grad = data.x.TransposedMatVec(residual);
  vec::Scale(1.0 / static_cast<double>(data.size()), grad);
  return grad;
}

Result<Vec> LogisticRegression::Hvp(const Vec& params, const Dataset& data,
                                    const Vec& v) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckBinaryLabels(data));
  if (v.size() != NumParams()) {
    return Status::InvalidArgument("HVP direction dimension mismatch");
  }
  // H v = (1/m) X^T [ p(1-p) ⊙ (X v) ].
  const Vec logits = data.x.MatVec(params);
  Vec weighted = data.x.MatVec(v);
  for (size_t i = 0; i < data.size(); ++i) {
    const double p = Sigmoid(logits[i]);
    weighted[i] *= p * (1.0 - p);
  }
  Vec hv = data.x.TransposedMatVec(weighted);
  vec::Scale(1.0 / static_cast<double>(data.size()), hv);
  return hv;
}

Result<Vec> LogisticRegression::Predict(const Vec& params,
                                        const Matrix& x) const {
  if (params.size() != NumParams() || x.cols() != num_features_) {
    return Status::InvalidArgument("Predict shape mismatch");
  }
  Vec out = x.MatVec(params);
  for (double& z : out) z = Sigmoid(z) >= 0.5 ? 1.0 : 0.0;
  return out;
}

}  // namespace digfl
