// Model: the differentiable-model interface every FL substrate trains.
//
// Models are *stateless* with respect to parameters: `params` is always
// passed in as a flat Vec and never stored. This functional style is what
// makes the FL simulators, the leave-subset-out retraining oracle, and the
// Shapley machinery composable — a model evaluation is a pure function of
// (params, data).
//
// Every model exposes:
//   * Loss      — mean loss over a dataset,
//   * Gradient  — gradient of that mean loss,
//   * Hvp       — Hessian-vector product H(params) * v (exact where the
//                 model implements it; finite-difference fallback otherwise),
//   * Predict / Accuracy for evaluation,
//   * InitParams for seeding training.

#ifndef DIGFL_NN_MODEL_H_
#define DIGFL_NN_MODEL_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/vec.h"

namespace digfl {

class Model {
 public:
  virtual ~Model() = default;

  virtual std::string Name() const = 0;

  // Number of parameters (dimension of the flat parameter vector).
  virtual size_t NumParams() const = 0;

  // Mean loss over `data` at `params`.
  virtual Result<double> Loss(const Vec& params, const Dataset& data) const = 0;

  // Gradient of the mean loss.
  virtual Result<Vec> Gradient(const Vec& params,
                               const Dataset& data) const = 0;

  // Hessian-vector product H(params; data) * v for the mean loss. The base
  // implementation uses central finite differences of Gradient; models with
  // tractable curvature override with an exact product.
  virtual Result<Vec> Hvp(const Vec& params, const Dataset& data,
                          const Vec& v) const;

  // Model outputs for each row of x: predicted value (regression) or
  // predicted class index (classification).
  virtual Result<Vec> Predict(const Vec& params, const Matrix& x) const = 0;

  // Classification: fraction of correct predictions. Regression: R^2 score.
  virtual Result<double> Accuracy(const Vec& params, const Dataset& data) const;

  // Fresh parameter vector. Linear models start at zero (required by the
  // VFL removal semantics of Lemma 2); the MLP draws small random weights.
  virtual Result<Vec> InitParams(Rng& rng) const;

  virtual std::unique_ptr<Model> Clone() const = 0;

 protected:
  // Validates that params/data agree with this model's shape.
  virtual Status CheckShapes(const Vec& params, const Dataset& data) const;

  // Expected feature count; used by the default CheckShapes.
  virtual size_t NumFeatures() const = 0;
};

}  // namespace digfl

#endif  // DIGFL_NN_MODEL_H_
