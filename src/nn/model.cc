#include "nn/model.h"

#include <cmath>

#include "nn/hvp.h"

namespace digfl {

Result<Vec> Model::Hvp(const Vec& params, const Dataset& data,
                       const Vec& v) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  GradientFn grad = [this, &data](const Vec& p) -> Result<Vec> {
    return Gradient(p, data);
  };
  return FiniteDifferenceHvp(grad, params, v);
}

Result<double> Model::Accuracy(const Vec& params, const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_ASSIGN_OR_RETURN(Vec predictions, Predict(params, data.x));
  if (data.task() == TaskType::kClassification) {
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      if (static_cast<int>(predictions[i]) == data.Label(i)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
  }
  // Regression: R^2 = 1 - SS_res / SS_tot.
  double mean = 0.0;
  for (double y : data.y) mean += y;
  mean /= static_cast<double>(data.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    ss_res += (data.y[i] - predictions[i]) * (data.y[i] - predictions[i]);
    ss_tot += (data.y[i] - mean) * (data.y[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Result<Vec> Model::InitParams(Rng& rng) const {
  (void)rng;
  return vec::Zeros(NumParams());
}

Status Model::CheckShapes(const Vec& params, const Dataset& data) const {
  if (params.size() != NumParams()) {
    return Status::InvalidArgument(
        "parameter vector has " + std::to_string(params.size()) +
        " entries, model " + Name() + " needs " + std::to_string(NumParams()));
  }
  if (data.num_features() != NumFeatures()) {
    return Status::InvalidArgument(
        "dataset has " + std::to_string(data.num_features()) +
        " features, model " + Name() + " expects " +
        std::to_string(NumFeatures()));
  }
  if (data.size() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  return Status::OK();
}

}  // namespace digfl
