#include "nn/sgd.h"

namespace digfl {

Result<TrainTrace> TrainCentralized(const Model& model, const Dataset& data,
                                    const Vec& init_params,
                                    const TrainConfig& config) {
  if (config.epochs == 0) return Status::InvalidArgument("epochs == 0");
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  TrainTrace trace;
  trace.final_params = init_params;
  trace.train_loss.reserve(config.epochs);
  double lr = config.learning_rate;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    DIGFL_ASSIGN_OR_RETURN(Vec grad,
                           model.Gradient(trace.final_params, data));
    vec::Axpy(-lr, grad, trace.final_params);
    DIGFL_ASSIGN_OR_RETURN(double loss, model.Loss(trace.final_params, data));
    trace.train_loss.push_back(loss);
    lr *= config.lr_decay;
  }
  return trace;
}

}  // namespace digfl
