#include "nn/linear_regression.h"

namespace digfl {

Result<double> LinearRegression::Loss(const Vec& params,
                                      const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  const Vec predictions = data.x.MatVec(params);
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double r = predictions[i] - data.y[i];
    sum += r * r;
  }
  return sum / static_cast<double>(data.size());
}

Result<Vec> LinearRegression::Gradient(const Vec& params,
                                       const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  Vec residual = data.x.MatVec(params);
  for (size_t i = 0; i < data.size(); ++i) residual[i] -= data.y[i];
  Vec grad = data.x.TransposedMatVec(residual);
  vec::Scale(2.0 / static_cast<double>(data.size()), grad);
  return grad;
}

Result<Vec> LinearRegression::Hvp(const Vec& params, const Dataset& data,
                                  const Vec& v) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  if (v.size() != NumParams()) {
    return Status::InvalidArgument("HVP direction dimension mismatch");
  }
  // H v = (2/m) X^T (X v): parameter-independent, exact.
  const Vec xv = data.x.MatVec(v);
  Vec hv = data.x.TransposedMatVec(xv);
  vec::Scale(2.0 / static_cast<double>(data.size()), hv);
  return hv;
}

Result<Vec> LinearRegression::Predict(const Vec& params,
                                      const Matrix& x) const {
  if (params.size() != NumParams() || x.cols() != num_features_) {
    return Status::InvalidArgument("Predict shape mismatch");
  }
  return x.MatVec(params);
}

}  // namespace digfl
