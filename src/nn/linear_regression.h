// Linear regression with squared loss; the model behind VFL-LinReg.
//
// Prediction: f(x) = <w, x>  (no intercept — Lemma 2's removal semantics
// require f(0, x) = 0, so the VFL protocol trains intercept-free models;
// generators center targets instead).
//
// Mean loss: L(w) = (1/m) Σ (<w, x_i> − y_i)^2.
// Gradient:  (2/m) X^T (Xw − y).   Hessian: (2/m) X^T X  (exact HVP).

#ifndef DIGFL_NN_LINEAR_REGRESSION_H_
#define DIGFL_NN_LINEAR_REGRESSION_H_

#include "nn/model.h"

namespace digfl {

class LinearRegression : public Model {
 public:
  explicit LinearRegression(size_t num_features)
      : num_features_(num_features) {}

  std::string Name() const override { return "LinearRegression"; }
  size_t NumParams() const override { return num_features_; }

  Result<double> Loss(const Vec& params, const Dataset& data) const override;
  Result<Vec> Gradient(const Vec& params, const Dataset& data) const override;
  Result<Vec> Hvp(const Vec& params, const Dataset& data,
                  const Vec& v) const override;
  Result<Vec> Predict(const Vec& params, const Matrix& x) const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<LinearRegression>(*this);
  }

 protected:
  size_t NumFeatures() const override { return num_features_; }

 private:
  size_t num_features_;
};

}  // namespace digfl

#endif  // DIGFL_NN_LINEAR_REGRESSION_H_
