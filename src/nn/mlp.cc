#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace digfl {
namespace {

// In-place numerically stable softmax.
void SoftmaxInPlace(Vec& z) {
  const double zmax = *std::max_element(z.begin(), z.end());
  double denom = 0.0;
  for (double& v : z) {
    v = std::exp(v - zmax);
    denom += v;
  }
  for (double& v : z) v /= denom;
}

}  // namespace

Mlp::Mlp(std::vector<size_t> layer_sizes)
    : layer_sizes_(std::move(layer_sizes)) {
  DIGFL_CHECK(layer_sizes_.size() >= 2) << "MLP needs input and output layers";
  DIGFL_CHECK(layer_sizes_.back() >= 2) << "MLP output layer needs >= 2 units";
  weight_offsets_.resize(NumLayers());
  bias_offsets_.resize(NumLayers());
  size_t offset = 0;
  for (size_t l = 0; l < NumLayers(); ++l) {
    weight_offsets_[l] = offset;
    offset += layer_sizes_[l + 1] * layer_sizes_[l];
    bias_offsets_[l] = offset;
    offset += layer_sizes_[l + 1];
  }
  num_params_ = offset;
}

Status Mlp::CheckLabels(const Dataset& data) const {
  if (data.num_classes != num_classes()) {
    return Status::InvalidArgument(
        "dataset num_classes " + std::to_string(data.num_classes) +
        " != MLP output width " + std::to_string(num_classes()));
  }
  return Status::OK();
}

Mlp::ForwardState Mlp::Forward(const Vec& params,
                               std::span<const double> x) const {
  ForwardState state;
  state.activations.resize(NumLayers() + 1);
  state.activations[0].assign(x.begin(), x.end());
  for (size_t l = 0; l < NumLayers(); ++l) {
    const size_t fan_in = layer_sizes_[l];
    const size_t fan_out = layer_sizes_[l + 1];
    const double* w = params.data() + WeightOffset(l);
    const double* b = params.data() + BiasOffset(l);
    const Vec& in = state.activations[l];
    Vec z(fan_out);
    for (size_t o = 0; o < fan_out; ++o) {
      const double* wrow = w + o * fan_in;
      double sum = b[o];
      for (size_t j = 0; j < fan_in; ++j) sum += wrow[j] * in[j];
      z[o] = sum;
    }
    if (l + 1 < NumLayers() + 1 && l != NumLayers() - 1) {
      for (double& v : z) v = std::tanh(v);
    } else {
      SoftmaxInPlace(z);
    }
    state.activations[l + 1] = std::move(z);
  }
  return state;
}

Result<double> Mlp::Loss(const Vec& params, const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckLabels(data));
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const ForwardState state = Forward(params, data.x.Row(i));
    const Vec& probs = state.activations.back();
    sum -= std::log(std::max(probs[data.Label(i)], 1e-300));
  }
  return sum / static_cast<double>(data.size());
}

Result<Vec> Mlp::Gradient(const Vec& params, const Dataset& data) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckLabels(data));
  Vec grad(num_params_, 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    const ForwardState state = Forward(params, data.x.Row(i));
    // delta at the output: p - onehot(y).
    Vec delta = state.activations.back();
    delta[data.Label(i)] -= 1.0;
    for (size_t l = NumLayers(); l-- > 0;) {
      const size_t fan_in = layer_sizes_[l];
      const size_t fan_out = layer_sizes_[l + 1];
      const Vec& in = state.activations[l];
      double* gw = grad.data() + WeightOffset(l);
      double* gb = grad.data() + BiasOffset(l);
      for (size_t o = 0; o < fan_out; ++o) {
        const double d = delta[o];
        if (d != 0.0) {
          double* grow = gw + o * fan_in;
          for (size_t j = 0; j < fan_in; ++j) grow[j] += d * in[j];
        }
        gb[o] += d;
      }
      if (l == 0) break;
      // delta_{l-1} = (W_l^T delta_l) ⊙ tanh'(a_l) with tanh' = 1 - a^2.
      const double* w = params.data() + WeightOffset(l);
      Vec next(fan_in, 0.0);
      for (size_t o = 0; o < fan_out; ++o) {
        const double d = delta[o];
        if (d == 0.0) continue;
        const double* wrow = w + o * fan_in;
        for (size_t j = 0; j < fan_in; ++j) next[j] += wrow[j] * d;
      }
      const Vec& a = state.activations[l];
      for (size_t j = 0; j < fan_in; ++j) next[j] *= 1.0 - a[j] * a[j];
      delta = std::move(next);
    }
  }
  vec::Scale(1.0 / static_cast<double>(data.size()), grad);
  return grad;
}

Result<Vec> Mlp::Hvp(const Vec& params, const Dataset& data,
                     const Vec& v) const {
  DIGFL_RETURN_IF_ERROR(CheckShapes(params, data));
  DIGFL_RETURN_IF_ERROR(CheckLabels(data));
  if (v.size() != num_params_) {
    return Status::InvalidArgument("HVP direction dimension mismatch");
  }
  Vec hv(num_params_, 0.0);
  const size_t L = NumLayers();
  for (size_t i = 0; i < data.size(); ++i) {
    // --- R-forward: activations a_l and tangents Ra_l. ---
    const ForwardState state = Forward(params, data.x.Row(i));
    std::vector<Vec> r_act(L + 1);
    std::vector<Vec> rz(L);  // tangent of pre-activations per layer
    r_act[0] = Vec(layer_sizes_[0], 0.0);
    for (size_t l = 0; l < L; ++l) {
      const size_t fan_in = layer_sizes_[l];
      const size_t fan_out = layer_sizes_[l + 1];
      const double* w = params.data() + WeightOffset(l);
      const double* vw = v.data() + WeightOffset(l);
      const double* vb = v.data() + BiasOffset(l);
      const Vec& in = state.activations[l];
      const Vec& rin = r_act[l];
      Vec r(fan_out, 0.0);
      for (size_t o = 0; o < fan_out; ++o) {
        const double* wrow = w + o * fan_in;
        const double* vrow = vw + o * fan_in;
        double sum = vb[o];
        for (size_t j = 0; j < fan_in; ++j) {
          sum += vrow[j] * in[j] + wrow[j] * rin[j];
        }
        r[o] = sum;
      }
      rz[l] = r;
      if (l != L - 1) {
        // Ra = tanh'(z) ⊙ Rz = (1 - a^2) ⊙ Rz.
        const Vec& a = state.activations[l + 1];
        Vec ra(fan_out);
        for (size_t o = 0; o < fan_out; ++o) {
          ra[o] = (1.0 - a[o] * a[o]) * r[o];
        }
        r_act[l + 1] = std::move(ra);
      } else {
        // Softmax tangent: Rp = p ⊙ (Rz - <p, Rz>).
        const Vec& p = state.activations[L];
        double p_dot_r = 0.0;
        for (size_t o = 0; o < fan_out; ++o) p_dot_r += p[o] * r[o];
        Vec rp(fan_out);
        for (size_t o = 0; o < fan_out; ++o) {
          rp[o] = p[o] * (r[o] - p_dot_r);
        }
        r_act[L] = std::move(rp);
      }
    }

    // --- R-backward: deltas and their tangents. ---
    Vec delta = state.activations[L];
    delta[data.Label(i)] -= 1.0;
    Vec r_delta = r_act[L];  // R(p - onehot) = Rp
    for (size_t l = L; l-- > 0;) {
      const size_t fan_in = layer_sizes_[l];
      const size_t fan_out = layer_sizes_[l + 1];
      const Vec& in = state.activations[l];
      const Vec& rin = r_act[l];
      double* hw = hv.data() + WeightOffset(l);
      double* hb = hv.data() + BiasOffset(l);
      for (size_t o = 0; o < fan_out; ++o) {
        const double d = delta[o];
        const double rd = r_delta[o];
        double* hrow = hw + o * fan_in;
        for (size_t j = 0; j < fan_in; ++j) {
          hrow[j] += rd * in[j] + d * rin[j];
        }
        hb[o] += rd;
      }
      if (l == 0) break;
      const double* w = params.data() + WeightOffset(l);
      const double* vw = v.data() + WeightOffset(l);
      // s  = W^T delta,  Rs = V^T delta + W^T Rdelta.
      Vec s(fan_in, 0.0), rs(fan_in, 0.0);
      for (size_t o = 0; o < fan_out; ++o) {
        const double d = delta[o];
        const double rd = r_delta[o];
        const double* wrow = w + o * fan_in;
        const double* vrow = vw + o * fan_in;
        for (size_t j = 0; j < fan_in; ++j) {
          s[j] += wrow[j] * d;
          rs[j] += vrow[j] * d + wrow[j] * rd;
        }
      }
      // delta_{l-1} = s ⊙ (1 - a^2)
      // Rdelta_{l-1} = Rs ⊙ (1 - a^2) - 2 s ⊙ a ⊙ Ra.
      const Vec& a = state.activations[l];
      const Vec& ra = r_act[l];
      Vec next(fan_in), r_next(fan_in);
      for (size_t j = 0; j < fan_in; ++j) {
        const double tprime = 1.0 - a[j] * a[j];
        next[j] = s[j] * tprime;
        r_next[j] = rs[j] * tprime - 2.0 * s[j] * a[j] * ra[j];
      }
      delta = std::move(next);
      r_delta = std::move(r_next);
    }
  }
  vec::Scale(1.0 / static_cast<double>(data.size()), hv);
  return hv;
}

Result<Vec> Mlp::Predict(const Vec& params, const Matrix& x) const {
  if (params.size() != num_params_ || x.cols() != layer_sizes_.front()) {
    return Status::InvalidArgument("Predict shape mismatch");
  }
  Vec out(x.rows(), 0.0);
  for (size_t i = 0; i < x.rows(); ++i) {
    const ForwardState state = Forward(params, x.Row(i));
    const Vec& probs = state.activations.back();
    out[i] = static_cast<double>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }
  return out;
}

Result<Vec> Mlp::InitParams(Rng& rng) const {
  Vec params(num_params_, 0.0);
  for (size_t l = 0; l < NumLayers(); ++l) {
    const size_t fan_in = layer_sizes_[l];
    const size_t fan_out = layer_sizes_[l + 1];
    const double stddev = 1.0 / std::sqrt(static_cast<double>(fan_in));
    double* w = params.data() + WeightOffset(l);
    for (size_t k = 0; k < fan_out * fan_in; ++k) {
      w[k] = rng.Gaussian(0.0, stddev);
    }
    // Biases stay zero.
  }
  return params;
}

}  // namespace digfl
