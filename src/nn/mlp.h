// Multi-layer perceptron classifier with tanh hidden units and a softmax
// cross-entropy head. This is the stand-in for the paper's HFL-CNN-* models
// (DESIGN.md §3): it exercises exactly the code paths DIG-FL needs from a
// deep model — loss, backprop gradients, and exact Hessian-vector products
// via the Pearlmutter (1994) R-operator.
//
// tanh is chosen over ReLU because the paper's lemmas assume a
// twice-differentiable loss; tanh networks satisfy that everywhere.
//
// Parameter packing (flat Vec): for each layer l in order,
// row-major W_l (fan_out x fan_in) followed by b_l (fan_out).

#ifndef DIGFL_NN_MLP_H_
#define DIGFL_NN_MLP_H_

#include <vector>

#include "nn/model.h"

namespace digfl {

class Mlp : public Model {
 public:
  // layer_sizes = {input_dim, hidden..., num_classes}; needs >= 2 entries
  // and num_classes >= 2.
  explicit Mlp(std::vector<size_t> layer_sizes);

  std::string Name() const override { return "Mlp"; }
  size_t NumParams() const override { return num_params_; }

  Result<double> Loss(const Vec& params, const Dataset& data) const override;
  Result<Vec> Gradient(const Vec& params, const Dataset& data) const override;
  // Exact HVP (Pearlmutter R-op), same O(m p) cost as a gradient.
  Result<Vec> Hvp(const Vec& params, const Dataset& data,
                  const Vec& v) const override;
  Result<Vec> Predict(const Vec& params, const Matrix& x) const override;
  // Gaussian init scaled by 1/sqrt(fan_in); biases zero.
  Result<Vec> InitParams(Rng& rng) const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<Mlp>(*this);
  }

  const std::vector<size_t>& layer_sizes() const { return layer_sizes_; }
  int num_classes() const { return static_cast<int>(layer_sizes_.back()); }

 protected:
  size_t NumFeatures() const override { return layer_sizes_.front(); }

 private:
  // Offset of W_l / b_l within the flat parameter vector.
  size_t WeightOffset(size_t layer) const { return weight_offsets_[layer]; }
  size_t BiasOffset(size_t layer) const { return bias_offsets_[layer]; }
  size_t NumLayers() const { return layer_sizes_.size() - 1; }

  // Forward pass for one sample: fills activations a[0..L] (a[0] = x,
  // a[L] = class probabilities) and returns them.
  struct ForwardState {
    std::vector<Vec> activations;  // a[0..L]; a[L] = softmax probabilities
  };
  ForwardState Forward(const Vec& params, std::span<const double> x) const;

  Status CheckLabels(const Dataset& data) const;

  std::vector<size_t> layer_sizes_;
  std::vector<size_t> weight_offsets_;
  std::vector<size_t> bias_offsets_;
  size_t num_params_ = 0;
};

}  // namespace digfl

#endif  // DIGFL_NN_MLP_H_
