// Multinomial (softmax) logistic regression for K-class problems.
//
// Parameters: row-major K x d weight matrix flattened into a Vec (class k's
// weights occupy [k*d, (k+1)*d)). Intercept-free. Mean cross-entropy loss.
// The Hessian-vector product is exact via the softmax R-operator:
//   Rz = V x,  Rp = p ⊙ (Rz − <p, Rz>),  (Hv)_k = (1/m) Σ_i Rp_k x_i.

#ifndef DIGFL_NN_SOFTMAX_REGRESSION_H_
#define DIGFL_NN_SOFTMAX_REGRESSION_H_

#include "nn/model.h"

namespace digfl {

class SoftmaxRegression : public Model {
 public:
  SoftmaxRegression(size_t num_features, int num_classes)
      : num_features_(num_features), num_classes_(num_classes) {}

  std::string Name() const override { return "SoftmaxRegression"; }
  size_t NumParams() const override {
    return num_features_ * static_cast<size_t>(num_classes_);
  }

  Result<double> Loss(const Vec& params, const Dataset& data) const override;
  Result<Vec> Gradient(const Vec& params, const Dataset& data) const override;
  Result<Vec> Hvp(const Vec& params, const Dataset& data,
                  const Vec& v) const override;
  Result<Vec> Predict(const Vec& params, const Matrix& x) const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<SoftmaxRegression>(*this);
  }

  int num_classes() const { return num_classes_; }

 protected:
  size_t NumFeatures() const override { return num_features_; }

 private:
  Status CheckLabels(const Dataset& data) const;

  // Class probabilities for one sample; logits computed from flat params.
  Vec SampleProbs(const Vec& params, std::span<const double> x) const;

  size_t num_features_;
  int num_classes_;
};

}  // namespace digfl

#endif  // DIGFL_NN_SOFTMAX_REGRESSION_H_
