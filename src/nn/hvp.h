// Finite-difference Hessian-vector products.
//
// Central difference of the gradient:
//   H v  ≈  (∇L(θ + εv) − ∇L(θ − εv)) / (2ε)
// with ε scaled to the magnitudes of θ and v. Exact-HVP models (linear,
// logistic, softmax, MLP via the Pearlmutter R-op) don't need this, but it
// is the verification baseline in tests and the default for user-supplied
// models.

#ifndef DIGFL_NN_HVP_H_
#define DIGFL_NN_HVP_H_

#include <functional>

#include "common/result.h"
#include "tensor/vec.h"

namespace digfl {

using GradientFn = std::function<Result<Vec>(const Vec& params)>;

// Central-difference HVP around `params` in direction `v`.
Result<Vec> FiniteDifferenceHvp(const GradientFn& gradient, const Vec& params,
                                const Vec& v, double base_epsilon = 1e-5);

}  // namespace digfl

#endif  // DIGFL_NN_HVP_H_
