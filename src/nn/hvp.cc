#include "nn/hvp.h"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.h"

namespace digfl {

Result<Vec> FiniteDifferenceHvp(const GradientFn& gradient, const Vec& params,
                                const Vec& v, double base_epsilon) {
  if (params.size() != v.size()) {
    return Status::InvalidArgument("params/v dimension mismatch");
  }
  const double v_norm = vec::Norm2(v);
  if (v_norm == 0.0) return vec::Zeros(params.size());

  DIGFL_TRACE_SPAN("nn.finite_difference_hvp");

  // Step relative to parameter scale so the probe neither underflows the
  // gradient difference nor leaves the local quadratic regime.
  const double scale = std::max(1.0, vec::Norm2(params));
  const double eps = base_epsilon * scale / v_norm;

  Vec plus = params;
  vec::Axpy(eps, v, plus);
  Vec minus = params;
  vec::Axpy(-eps, v, minus);

  DIGFL_ASSIGN_OR_RETURN(Vec grad_plus, gradient(plus));
  DIGFL_ASSIGN_OR_RETURN(Vec grad_minus, gradient(minus));
  Vec hv = vec::Sub(grad_plus, grad_minus);
  vec::Scale(1.0 / (2.0 * eps), hv);
  return hv;
}

}  // namespace digfl
