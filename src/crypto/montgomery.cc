#include "crypto/montgomery.h"

#include "common/logging.h"

namespace digfl {
namespace {

// Inverse of odd n0 modulo 2^32 by Newton iteration: five steps double the
// number of correct bits from 1 to > 32.
uint32_t InverseMod2To32(uint32_t n0) {
  uint32_t x = 1;
  for (int iteration = 0; iteration < 5; ++iteration) {
    x *= 2u - n0 * x;  // arithmetic mod 2^32 by construction
  }
  return x;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus < BigInt(3) || modulus.IsEven()) {
    return Status::InvalidArgument("Montgomery needs an odd modulus >= 3");
  }
  const uint32_t n0 = modulus.limbs()[0];
  const uint32_t n_prime = static_cast<uint32_t>(-InverseMod2To32(n0));
  // R mod n with R = 2^(32k).
  const size_t k = modulus.limbs().size();
  const BigInt r_mod_n = (BigInt(1) << (32 * k)) % modulus;
  return MontgomeryContext(modulus, n_prime, r_mod_n);
}

BigInt MontgomeryContext::ToMontgomery(const BigInt& x) const {
  DIGFL_CHECK(x < modulus_) << "ToMontgomery operand out of range";
  const size_t k = modulus_.limbs().size();
  return (x << (32 * k)) % modulus_;
}

BigInt MontgomeryContext::FromMontgomery(const BigInt& x) const {
  return Multiply(x, BigInt(1));
}

BigInt MontgomeryContext::Multiply(const BigInt& a, const BigInt& b) const {
  const std::vector<uint32_t>& n = modulus_.limbs();
  const size_t k = n.size();
  const std::vector<uint32_t>& al = a.limbs();
  const std::vector<uint32_t>& bl = b.limbs();
  DIGFL_CHECK(al.size() <= k && bl.size() <= k)
      << "Montgomery operand wider than modulus";

  // CIOS accumulator: k+2 limbs of 32 bits held in uint64 slots.
  std::vector<uint64_t> t(k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    const uint64_t ai = i < al.size() ? al[i] : 0;
    // t += a_i * b
    uint64_t carry = 0;
    for (size_t j = 0; j < k; ++j) {
      const uint64_t bj = j < bl.size() ? bl[j] : 0;
      const uint64_t cur = t[j] + ai * bj + carry;
      t[j] = cur & 0xffffffffu;
      carry = cur >> 32;
    }
    uint64_t cur = t[k] + carry;
    t[k] = cur & 0xffffffffu;
    t[k + 1] += cur >> 32;

    // m = t_0 * n' mod 2^32; t += m * n; t >>= 32.
    const uint64_t m =
        (t[0] * static_cast<uint64_t>(n_prime_)) & 0xffffffffu;
    cur = t[0] + m * n[0];
    carry = cur >> 32;
    for (size_t j = 1; j < k; ++j) {
      cur = t[j] + m * n[j] + carry;
      t[j - 1] = cur & 0xffffffffu;
      carry = cur >> 32;
    }
    cur = t[k] + carry;
    t[k - 1] = cur & 0xffffffffu;
    carry = cur >> 32;
    t[k] = t[k + 1] + carry;
    t[k + 1] = 0;
  }

  std::vector<uint32_t> result_limbs(k + 1);
  for (size_t j = 0; j <= k; ++j) {
    result_limbs[j] = static_cast<uint32_t>(t[j]);
  }
  BigInt result = BigInt::FromLimbs(std::move(result_limbs));
  if (result >= modulus_) result = result - modulus_;
  return result;
}

BigInt MontgomeryContext::ModExp(const BigInt& base,
                                 const BigInt& exponent) const {
  DIGFL_CHECK(base < modulus_) << "ModExp base out of range";
  BigInt result = r_mod_n_;  // Montgomery form of 1
  BigInt acc = ToMontgomery(base);
  const size_t bits = exponent.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exponent.Bit(i)) result = Multiply(result, acc);
    acc = Multiply(acc, acc);
  }
  return FromMontgomery(result);
}

}  // namespace digfl
