#include "crypto/bigint.h"

#include <algorithm>

#include "common/logging.h"
#include "crypto/montgomery.h"

namespace digfl {
namespace {

constexpr uint64_t kLimbBase = 1ULL << 32;

}  // namespace

BigInt::BigInt(uint64_t value) {
  if (value == 0) return;
  limbs_.push_back(static_cast<uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<uint32_t>(value >> 32));
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromLimbs(std::vector<uint32_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

std::strong_ordering BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  size_t bits = (limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t index) const {
  const size_t limb = index / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % 32)) & 1u;
}

uint64_t BigInt::ToUint64() const {
  uint64_t value = 0;
  if (!limbs_.empty()) value = limbs_[0];
  if (limbs_.size() > 1) value |= static_cast<uint64_t>(limbs_[1]) << 32;
  return value;
}

size_t BigInt::ByteLength() const {
  const size_t bits = BitLength();
  return bits == 0 ? 1 : (bits + 7) / 8;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<uint32_t>(carry));
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
  DIGFL_CHECK(*this >= other) << "unsigned BigInt subtraction underflow";
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (IsZero() || other.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t shifted = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(shifted);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(shifted >> 32);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  const size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t cur = static_cast<uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      cur |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
             << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(cur);
  }
  out.Normalize();
  return out;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  DIGFL_CHECK(!divisor.IsZero()) << "BigInt division by zero";
  if (dividend < divisor) {
    if (quotient) *quotient = BigInt();
    if (remainder) *remainder = dividend;
    return;
  }
  // Single-limb divisor: simple schoolbook.
  if (divisor.limbs_.size() == 1) {
    const uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = BigInt(rem);
    return;
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb >= 2^31.
  size_t shift = 0;
  uint32_t top = divisor.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  const BigInt u = dividend << shift;
  const BigInt v = divisor << shift;
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;

  std::vector<uint32_t> un(u.limbs_);
  un.resize(u.limbs_.size() + 1, 0);  // extra high limb
  const std::vector<uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (un[j+n]*B + un[j+n-1]) / vn[n-1].
    const uint64_t numerator =
        (static_cast<uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    uint64_t q_hat = numerator / vn[n - 1];
    uint64_t r_hat = numerator % vn[n - 1];
    while (q_hat >= kLimbBase ||
           q_hat * vn[n - 2] > ((r_hat << 32) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat >= kLimbBase) break;
    }
    // Multiply and subtract: un[j..j+n] -= q_hat * vn.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t product = q_hat * vn[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(un[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(un[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    if (diff < 0) {
      // q_hat was one too large: add back.
      diff += static_cast<int64_t>(kLimbBase);
      un[j + n] = static_cast<uint32_t>(diff);
      --q_hat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t sum =
            static_cast<uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<uint32_t>(sum);
        carry2 = sum >> 32;
      }
      un[j + n] = static_cast<uint32_t>(un[j + n] + carry2);
    } else {
      un[j + n] = static_cast<uint32_t>(diff);
    }
    q.limbs_[j] = static_cast<uint32_t>(q_hat);
  }
  q.Normalize();

  if (remainder) {
    BigInt r;
    r.limbs_.assign(un.begin(), un.begin() + n);
    r.Normalize();
    *remainder = r >> shift;
  }
  if (quotient) *quotient = std::move(q);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q;
  DivMod(*this, other, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt r;
  DivMod(*this, other, nullptr, &r);
  return r;
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exponent,
                      const BigInt& modulus) {
  DIGFL_CHECK(!modulus.IsZero());
  if (modulus == BigInt(1)) return BigInt();
  // Wide odd moduli (the Paillier/primality hot path) go through the
  // division-free Montgomery kernel; see crypto/montgomery.h.
  if (modulus.IsOdd() && modulus.BitLength() >= 96 &&
      exponent.BitLength() >= 8) {
    auto context = MontgomeryContext::Create(modulus);
    if (context.ok()) return context->ModExp(base % modulus, exponent);
  }
  BigInt result(1);
  BigInt b = base % modulus;
  const size_t bits = exponent.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exponent.Bit(i)) result = (result * b) % modulus;
    b = (b * b) % modulus;
  }
  return result;
}

Result<BigInt> BigInt::ModInverse(const BigInt& value, const BigInt& modulus) {
  if (modulus.IsZero()) return Status::InvalidArgument("zero modulus");
  // Extended Euclid on (a, m) tracking coefficients of a only; negatives are
  // represented by (sign, magnitude) pairs since BigInt is unsigned.
  BigInt r0 = modulus, r1 = value % modulus;
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.IsZero()) {
    BigInt q, r2;
    DivMod(r0, r1, &q, &r2);
    // t2 = t0 - q * t1 with explicit sign handling.
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      // Opposite signs: magnitudes add, sign follows t0.
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!(r0 == BigInt(1))) {
    return Status::InvalidArgument("value not invertible (gcd != 1)");
  }
  BigInt inverse = t0 % modulus;
  if (t0_neg && !inverse.IsZero()) inverse = modulus - inverse;
  return inverse;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  return (a / Gcd(a, b)) * b;
}

BigInt BigInt::RandomBits(size_t bits, Rng& rng) {
  BigInt out;
  if (bits == 0) return out;
  const size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (size_t i = 0; i < limbs; ++i) {
    out.limbs_[i] = static_cast<uint32_t>(rng.NextBits());
  }
  const size_t excess = limbs * 32 - bits;
  if (excess) out.limbs_.back() &= (0xffffffffu >> excess);
  out.Normalize();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng& rng) {
  DIGFL_CHECK(!bound.IsZero());
  const size_t bits = bound.BitLength();
  // Rejection sampling; expected <= 2 draws.
  for (;;) {
    BigInt candidate = RandomBits(bits, rng);
    if (candidate < bound) return candidate;
  }
}

Result<BigInt> BigInt::RandomCoprimeBelow(const BigInt& bound, Rng& rng) {
  if (bound < BigInt(2)) {
    return Status::InvalidArgument("bound must be >= 2");
  }
  for (int attempt = 0; attempt < 4096; ++attempt) {
    BigInt candidate = RandomBelow(bound, rng);
    if (candidate.IsZero()) continue;
    if (Gcd(candidate, bound) == BigInt(1)) return candidate;
  }
  return Status::Internal("failed to sample an invertible residue");
}

bool BigInt::IsProbablePrime(const BigInt& n, int rounds, Rng& rng) {
  if (n < BigInt(2)) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    const BigInt small(p);
    if (n == small) return true;
    if ((n % small).IsZero()) return false;
  }
  // Write n-1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    const BigInt a = BigInt(2) + RandomBelow(n - BigInt(3), rng);
    BigInt x = ModExp(a, d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (size_t r = 1; r < s; ++r) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Result<BigInt> BigInt::RandomPrime(size_t bits, Rng& rng) {
  if (bits < 8) return Status::InvalidArgument("prime size must be >= 8 bits");
  for (int attempt = 0; attempt < 100000; ++attempt) {
    BigInt candidate = RandomBits(bits, rng);
    // Force exact bit length and oddness by setting the top and bottom bits.
    std::vector<uint32_t>& limbs = candidate.limbs_;
    const size_t limb_count = (bits + 31) / 32;
    limbs.resize(limb_count, 0);
    limbs[0] |= 1u;                                   // odd
    limbs[limb_count - 1] |= 1u << ((bits - 1) % 32); // exact length
    candidate.Normalize();
    if (IsProbablePrime(candidate, 24, rng)) return candidate;
  }
  return Status::Internal("failed to find a prime");
}

Result<BigInt> BigInt::FromDecimalString(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty numeral");
  BigInt out;
  const BigInt ten(10);
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-digit in numeral");
    }
    out = out * ten + BigInt(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

std::string BigInt::ToDecimalString() const {
  if (IsZero()) return "0";
  std::string digits;
  BigInt value = *this;
  const BigInt ten(10);
  while (!value.IsZero()) {
    BigInt q, r;
    DivMod(value, ten, &q, &r);
    digits.push_back(static_cast<char>('0' + r.ToUint64()));
    value = std::move(q);
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace digfl
