// Fixed-point encoding of reals into the Paillier plaintext space Z_n.
//
// The VFL protocol exchanges encrypted *real-valued* residuals and
// gradients. Values are scaled by 2^fraction_bits, rounded, and mapped into
// Z_n with negatives represented as n - |v| (two's-complement style). After
// homomorphic additions the decoder recovers the sign via the n/2 threshold.
//
// The encoder rejects values whose magnitude would collide with the negative
// half-space (|v| * 2^f must stay below n / 2^headroom_bits).

#ifndef DIGFL_CRYPTO_FIXED_POINT_H_
#define DIGFL_CRYPTO_FIXED_POINT_H_

#include "common/result.h"
#include "crypto/bigint.h"

namespace digfl {

class FixedPointCodec {
 public:
  // `modulus` is the Paillier n. fraction_bits controls precision
  // (~fraction_bits * 0.3 decimal digits).
  FixedPointCodec(BigInt modulus, int fraction_bits = 32);

  // Encodes a finite real; fails when |value| overflows the plaintext range.
  Result<BigInt> Encode(double value) const;

  // Decodes with sign recovery. Exact inverse of Encode up to quantization.
  double Decode(const BigInt& encoded) const;

  int fraction_bits() const { return fraction_bits_; }
  const BigInt& modulus() const { return modulus_; }

 private:
  BigInt modulus_;
  BigInt half_modulus_;
  int fraction_bits_;
  double scale_;
};

}  // namespace digfl

#endif  // DIGFL_CRYPTO_FIXED_POINT_H_
