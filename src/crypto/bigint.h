// BigInt: arbitrary-precision unsigned integer arithmetic.
//
// The Paillier cryptosystem (paillier.h) is built entirely on this class;
// nothing else in the library depends on it. Representation: little-endian
// vector of 32-bit limbs, normalized (no leading zero limbs; zero is the
// empty vector). Division uses Knuth's Algorithm D, so 512-bit modular
// exponentiation — the hot operation in the VFL encrypted protocol — runs at
// interactive speed.
//
// BigInt is unsigned by design: the protocol layer maps signed fixed-point
// values into Z_n (see fixed_point.h), so signedness lives there.

#ifndef DIGFL_CRYPTO_BIGINT_H_
#define DIGFL_CRYPTO_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace digfl {

class BigInt {
 public:
  // Zero.
  BigInt() = default;
  // From a machine word.
  explicit BigInt(uint64_t value);

  static Result<BigInt> FromDecimalString(const std::string& text);
  std::string ToDecimalString() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool IsEven() const { return !IsOdd(); }

  // Number of significant bits (0 for zero).
  size_t BitLength() const;
  bool Bit(size_t index) const;

  // Low 64 bits (truncating).
  uint64_t ToUint64() const;
  // True iff the value fits in 64 bits.
  bool FitsUint64() const { return BitLength() <= 64; }

  std::strong_ordering operator<=>(const BigInt& other) const {
    return Compare(*this, other);
  }
  bool operator==(const BigInt& other) const { return limbs_ == other.limbs_; }

  BigInt operator+(const BigInt& other) const;
  // Requires *this >= other (unsigned subtraction).
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  BigInt operator/(const BigInt& other) const;  // requires other != 0
  BigInt operator%(const BigInt& other) const;  // requires other != 0

  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  // Quotient and remainder in one pass (Algorithm D). divisor != 0.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  // (base ^ exponent) mod modulus; modulus != 0.
  static BigInt ModExp(const BigInt& base, const BigInt& exponent,
                       const BigInt& modulus);

  // Multiplicative inverse mod `modulus`; fails when gcd != 1.
  static Result<BigInt> ModInverse(const BigInt& value, const BigInt& modulus);

  static BigInt Gcd(BigInt a, BigInt b);
  static BigInt Lcm(const BigInt& a, const BigInt& b);

  // Uniform value with exactly `bits` random bits (top bit may be zero).
  static BigInt RandomBits(size_t bits, Rng& rng);
  // Uniform in [0, bound); bound != 0.
  static BigInt RandomBelow(const BigInt& bound, Rng& rng);
  // Uniform in [1, bound) coprime with bound — Paillier's r.
  static Result<BigInt> RandomCoprimeBelow(const BigInt& bound, Rng& rng);

  // Miller-Rabin with `rounds` random bases.
  static bool IsProbablePrime(const BigInt& n, int rounds, Rng& rng);
  // Random prime with the top bit set (exactly `bits` bits).
  static Result<BigInt> RandomPrime(size_t bits, Rng& rng);

  // Serialized size in bytes (ceil(BitLength/8), min 1); used by the
  // communication meter to price ciphertext transfers.
  size_t ByteLength() const;

  // Raw little-endian base-2^32 limbs (no leading zeros). Exposed for the
  // Montgomery kernel (crypto/montgomery.h); everything else should use the
  // arithmetic operators.
  const std::vector<uint32_t>& limbs() const { return limbs_; }
  // Builds a value from raw limbs (normalized internally).
  static BigInt FromLimbs(std::vector<uint32_t> limbs);

 private:
  static std::strong_ordering Compare(const BigInt& a, const BigInt& b);
  void Normalize();

  std::vector<uint32_t> limbs_;  // little-endian base-2^32
};

}  // namespace digfl

#endif  // DIGFL_CRYPTO_BIGINT_H_
