#include "crypto/paillier.h"

#include "telemetry/telemetry.h"

namespace digfl {

Result<PaillierKeyPair> Paillier::GenerateKeyPair(size_t key_bits, Rng& rng) {
  if (key_bits < 64) {
    return Status::InvalidArgument("key_bits must be >= 64");
  }
  DIGFL_TRACE_SPAN("crypto.paillier.keygen");
  const size_t prime_bits = key_bits / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    DIGFL_ASSIGN_OR_RETURN(BigInt p, BigInt::RandomPrime(prime_bits, rng));
    DIGFL_ASSIGN_OR_RETURN(BigInt q, BigInt::RandomPrime(prime_bits, rng));
    if (p == q) continue;
    const BigInt n = p * q;
    const BigInt lambda = BigInt::Lcm(p - BigInt(1), q - BigInt(1));
    // With g = n+1, μ = λ^{-1} mod n; retry on the (vanishingly rare)
    // non-invertible case.
    auto mu = BigInt::ModInverse(lambda, n);
    if (!mu.ok()) continue;
    PaillierKeyPair pair;
    pair.public_key.n = n;
    pair.public_key.n_squared = n * n;
    pair.private_key.lambda = lambda;
    pair.private_key.mu = std::move(mu).value();
    return pair;
  }
  return Status::Internal("Paillier key generation failed");
}

Result<PaillierCiphertext> Paillier::Encrypt(const PaillierPublicKey& key,
                                             const BigInt& plaintext,
                                             Rng& rng) {
  if (!(plaintext < key.n)) {
    return Status::InvalidArgument("plaintext outside [0, n)");
  }
  DIGFL_TRACE_SPAN("crypto.paillier.encrypt");
  DIGFL_COUNTER_ADD_LABELED("crypto.paillier_ops_total", 1, {"op", "encrypt"});
  // c = (1 + m n) * r^n mod n^2.
  DIGFL_ASSIGN_OR_RETURN(BigInt r, BigInt::RandomCoprimeBelow(key.n, rng));
  const BigInt g_to_m = (BigInt(1) + plaintext * key.n) % key.n_squared;
  const BigInt r_to_n = BigInt::ModExp(r, key.n, key.n_squared);
  return PaillierCiphertext((g_to_m * r_to_n) % key.n_squared);
}

Result<BigInt> Paillier::Decrypt(const PaillierPublicKey& public_key,
                                 const PaillierPrivateKey& private_key,
                                 const PaillierCiphertext& ciphertext) {
  if (!(ciphertext.value() < public_key.n_squared)) {
    return Status::InvalidArgument("ciphertext outside [0, n^2)");
  }
  DIGFL_TRACE_SPAN("crypto.paillier.decrypt");
  DIGFL_COUNTER_ADD_LABELED("crypto.paillier_ops_total", 1, {"op", "decrypt"});
  const BigInt u =
      BigInt::ModExp(ciphertext.value(), private_key.lambda,
                     public_key.n_squared);
  if (u.IsZero()) return Status::InvalidArgument("malformed ciphertext");
  const BigInt l = (u - BigInt(1)) / public_key.n;
  return (l * private_key.mu) % public_key.n;
}

PaillierCiphertext Paillier::Add(const PaillierPublicKey& key,
                                 const PaillierCiphertext& a,
                                 const PaillierCiphertext& b) {
  DIGFL_COUNTER_ADD_LABELED("crypto.paillier_ops_total", 1, {"op", "add"});
  return PaillierCiphertext((a.value() * b.value()) % key.n_squared);
}

Result<PaillierCiphertext> Paillier::AddPlain(const PaillierPublicKey& key,
                                              const PaillierCiphertext& a,
                                              const BigInt& k, Rng& rng) {
  DIGFL_ASSIGN_OR_RETURN(PaillierCiphertext ek, Encrypt(key, k, rng));
  return Add(key, a, ek);
}

PaillierCiphertext Paillier::ScalarMul(const PaillierPublicKey& key,
                                       const PaillierCiphertext& a,
                                       const BigInt& k) {
  DIGFL_COUNTER_ADD_LABELED("crypto.paillier_ops_total", 1,
                            {"op", "scalar_mul"});
  return PaillierCiphertext(BigInt::ModExp(a.value(), k, key.n_squared));
}

}  // namespace digfl
