// Paillier additively homomorphic cryptosystem.
//
// The VFL running example (paper Sec. IV-B, Yang et al. [3]) exchanges
// additively-homomorphically encrypted residuals and gradients; this is a
// from-scratch implementation of that cryptosystem over crypto/bigint.h.
//
//   KeyGen:   n = p·q (p, q random primes), g = n+1, λ = lcm(p-1, q-1),
//             μ = λ^{-1} mod n.
//   Encrypt:  c = (1 + m·n) · r^n  mod n²   (g = n+1 shortcut)
//   Decrypt:  m = L(c^λ mod n²) · μ mod n,  L(u) = (u-1)/n.
//   Add:      E(a)·E(b) mod n² = E(a+b).
//   ScalarMul E(a)^k    mod n² = E(k·a).
//
// Key size is configurable; tests use 128-256-bit keys, the encrypted-VFL
// bench reports 512-bit. The paper's 1024-bit setting works but is slow in
// pure portable C++.

#ifndef DIGFL_CRYPTO_PAILLIER_H_
#define DIGFL_CRYPTO_PAILLIER_H_

#include <cstddef>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/bigint.h"

namespace digfl {

struct PaillierPublicKey {
  BigInt n;
  BigInt n_squared;

  // Serialized ciphertext size (bytes): residues mod n².
  size_t CiphertextBytes() const { return n_squared.ByteLength(); }
};

struct PaillierPrivateKey {
  BigInt lambda;
  BigInt mu;
};

struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

class PaillierCiphertext {
 public:
  PaillierCiphertext() = default;
  explicit PaillierCiphertext(BigInt value) : value_(std::move(value)) {}
  const BigInt& value() const { return value_; }

 private:
  BigInt value_;
};

class Paillier {
 public:
  // Generates a key pair with an n of roughly `key_bits` bits.
  static Result<PaillierKeyPair> GenerateKeyPair(size_t key_bits, Rng& rng);

  // Encrypts plaintext m in [0, n).
  static Result<PaillierCiphertext> Encrypt(const PaillierPublicKey& key,
                                            const BigInt& plaintext, Rng& rng);

  // Decrypts; result in [0, n).
  static Result<BigInt> Decrypt(const PaillierPublicKey& public_key,
                                const PaillierPrivateKey& private_key,
                                const PaillierCiphertext& ciphertext);

  // E(a+b) from E(a), E(b).
  static PaillierCiphertext Add(const PaillierPublicKey& key,
                                const PaillierCiphertext& a,
                                const PaillierCiphertext& b);

  // E(a + k) from E(a) and plaintext k.
  static Result<PaillierCiphertext> AddPlain(const PaillierPublicKey& key,
                                             const PaillierCiphertext& a,
                                             const BigInt& k, Rng& rng);

  // E(k·a) from E(a) and plaintext k.
  static PaillierCiphertext ScalarMul(const PaillierPublicKey& key,
                                      const PaillierCiphertext& a,
                                      const BigInt& k);
};

}  // namespace digfl

#endif  // DIGFL_CRYPTO_PAILLIER_H_
