#include "crypto/fixed_point.h"

#include <cmath>

#include "common/logging.h"

namespace digfl {
namespace {

// Lossy BigInt -> double (sufficient: decoded magnitudes are bounded by the
// encoder's overflow check plus a few homomorphic additions).
double ToDouble(const BigInt& value) {
  double out = 0.0;
  // Walk down from the top bits via decimal string would be slow; use
  // ByteLength-limited reconstruction through shifting.
  BigInt v = value;
  double scale = 1.0;
  while (!v.IsZero()) {
    out += static_cast<double>(v.ToUint64() & 0xffffffffULL) * scale;
    v = v >> 32;
    scale *= 4294967296.0;
  }
  return out;
}

}  // namespace

FixedPointCodec::FixedPointCodec(BigInt modulus, int fraction_bits)
    : modulus_(std::move(modulus)),
      half_modulus_(modulus_ >> 1),
      fraction_bits_(fraction_bits),
      scale_(std::ldexp(1.0, fraction_bits)) {
  DIGFL_CHECK(fraction_bits_ > 0 && fraction_bits_ < 62);
  DIGFL_CHECK(modulus_.BitLength() > static_cast<size_t>(fraction_bits_) + 16)
      << "modulus too small for the requested precision";
}

Result<BigInt> FixedPointCodec::Encode(double value) const {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("cannot encode non-finite value");
  }
  const double scaled = std::nearbyint(value * scale_);
  if (std::abs(scaled) >= std::ldexp(1.0, 62)) {
    return Status::OutOfRange("fixed-point overflow encoding " +
                              std::to_string(value));
  }
  const uint64_t magnitude = static_cast<uint64_t>(std::abs(scaled));
  BigInt encoded(magnitude);
  if (encoded >= half_modulus_) {
    return Status::OutOfRange("encoded magnitude exceeds plaintext range");
  }
  if (scaled < 0 && magnitude != 0) encoded = modulus_ - encoded;
  return encoded;
}

double FixedPointCodec::Decode(const BigInt& encoded) const {
  DIGFL_CHECK(encoded < modulus_) << "ciphertext residue out of range";
  if (encoded > half_modulus_) {
    return -ToDouble(modulus_ - encoded) / scale_;
  }
  return ToDouble(encoded) / scale_;
}

}  // namespace digfl
