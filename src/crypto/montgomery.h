// Montgomery modular arithmetic (CIOS) for odd moduli.
//
// BigInt::ModExp reduces with Knuth division after every multiplication —
// correct but division-heavy. For the Paillier hot loop (thousands of
// modular multiplications per encryption at a fixed odd modulus n²), the
// Montgomery representation replaces every division with shifts and adds:
//   MontMul(a, b) = a·b·R⁻¹ mod n,   R = 2^(32·k), k = limb count of n.
//
// Typical speedup over the division path is ~2-4× at 512-1024 bit moduli
// (see bench_micro_kernels BM_MontgomeryModExp vs BM_BigIntModExp).

#ifndef DIGFL_CRYPTO_MONTGOMERY_H_
#define DIGFL_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "crypto/bigint.h"

namespace digfl {

class MontgomeryContext {
 public:
  // Precomputes the context for an odd modulus >= 3.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  // x·R mod n (into Montgomery domain). Requires x < n.
  BigInt ToMontgomery(const BigInt& x) const;

  // x·R⁻¹ mod n (out of Montgomery domain).
  BigInt FromMontgomery(const BigInt& x) const;

  // CIOS product a·b·R⁻¹ mod n of two Montgomery-domain values.
  BigInt Multiply(const BigInt& a, const BigInt& b) const;

  // (base ^ exponent) mod n via Montgomery square-and-multiply.
  // Requires base < n.
  BigInt ModExp(const BigInt& base, const BigInt& exponent) const;

 private:
  MontgomeryContext(BigInt modulus, uint32_t n_prime, BigInt r_mod_n)
      : modulus_(std::move(modulus)),
        n_prime_(n_prime),
        r_mod_n_(std::move(r_mod_n)) {}

  BigInt modulus_;
  uint32_t n_prime_;  // -n⁻¹ mod 2³²
  BigInt r_mod_n_;    // R mod n (Montgomery form of 1)
};

}  // namespace digfl

#endif  // DIGFL_CRYPTO_MONTGOMERY_H_
