// Truncated Monte Carlo Shapley (Ghorbani & Zou, ICML 2019), adapted to FL
// participants: sample permutations, walk each prefix through the
// retraining oracle, truncate once the running utility is within tolerance
// of the grand-coalition utility. The paper's comparison (Sec. V-D) runs it
// with n² log n permutations.

#ifndef DIGFL_BASELINES_TMC_SHAPLEY_H_
#define DIGFL_BASELINES_TMC_SHAPLEY_H_

#include "baselines/retrain_oracle.h"
#include "core/contribution.h"

namespace digfl {

struct TmcOptions {
  // 0 = the paper's default, ceil(n² log n).
  size_t num_permutations = 0;
  // Truncate when |V(N) − V(prefix)| < tolerance · |V(N)|.
  double truncation_tolerance = 0.05;
  uint64_t seed = 13;
};

Result<ContributionReport> ComputeTmcShapley(UtilityOracle& oracle,
                                             const TmcOptions& options = {});

}  // namespace digfl

#endif  // DIGFL_BASELINES_TMC_SHAPLEY_H_
