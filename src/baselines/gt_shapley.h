// Group-Testing Shapley (Jia et al., AISTATS 2019).
//
// Samples coalitions from the group-testing distribution, estimates all
// pairwise Shapley differences
//   Δ_{ij} = φ_i − φ_j ≈ (Z/T) Σ_t V(S_t) (β_{ti} − β_{tj}),
// then recovers φ from the differences and the efficiency constraint
// Σ φ_i = V(N):  φ_i = (V(N) + Σ_j Δ_{ij}) / n.
// The paper's comparison runs it with n (log n)² sampled coalitions.

#ifndef DIGFL_BASELINES_GT_SHAPLEY_H_
#define DIGFL_BASELINES_GT_SHAPLEY_H_

#include "baselines/retrain_oracle.h"
#include "core/contribution.h"

namespace digfl {

struct GtOptions {
  // 0 = the paper's default, ceil(n (log n)²), floored at 3n.
  size_t num_samples = 0;
  uint64_t seed = 17;
};

Result<ContributionReport> ComputeGtShapley(UtilityOracle& oracle,
                                            const GtOptions& options = {});

}  // namespace digfl

#endif  // DIGFL_BASELINES_GT_SHAPLEY_H_
