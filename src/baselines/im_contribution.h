// IM: gradient-projection contribution (Zhang, Wu & Pan, WWW 2021).
//
// A non-Shapley heuristic the paper compares against: each participant's
// local updates are projected onto the overall direction the global model
// actually travelled, u = θ_0 − θ_τ:
//   φ_i^IM = Σ_t <δ_{t,i}, u> / ||u||.
// Cheap (no retraining, no validation data), but it lacks the Shapley
// axioms, which shows up as the low PCC in Table IV.

#ifndef DIGFL_BASELINES_IM_CONTRIBUTION_H_
#define DIGFL_BASELINES_IM_CONTRIBUTION_H_

#include "core/contribution.h"
#include "hfl/fed_sgd.h"

namespace digfl {

Result<ContributionReport> ComputeImContribution(const HflTrainingLog& log,
                                                 const Vec& init_params);

}  // namespace digfl

#endif  // DIGFL_BASELINES_IM_CONTRIBUTION_H_
