#include "baselines/exact_shapley.h"

#include <atomic>
#include <thread>

#include "common/timer.h"

namespace digfl {
namespace {

ContributionReport FinishReport(UtilityOracle& oracle, Vec shapley,
                                double wall_seconds) {
  ContributionReport report;
  report.total.assign(shapley.begin(), shapley.end());
  report.wall_seconds = wall_seconds;
  report.retrainings = oracle.retrain_count();
  report.extra_comm.Record("retraining:total", oracle.retrain_comm_bytes());
  return report;
}

}  // namespace

Result<ContributionReport> ComputeExactShapley(UtilityOracle& oracle) {
  Timer timer;
  DIGFL_ASSIGN_OR_RETURN(
      Vec shapley, ExactShapley(oracle.num_participants(), oracle.AsFn()));
  return FinishReport(oracle, std::move(shapley), timer.ElapsedSeconds());
}

Result<ContributionReport> ComputeExactShapleyParallel(UtilityOracle& oracle,
                                                       size_t num_threads) {
  const size_t n = oracle.num_participants();
  if (n == 0 || n > 25) {
    return Status::InvalidArgument("participant count out of range");
  }
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  Timer timer;
  const size_t total = size_t{1} << n;
  std::vector<double> utilities(total, 0.0);
  std::atomic<uint32_t> next_mask{1};  // mask 0 is V(∅) = 0
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      const uint32_t mask = next_mask.fetch_add(1);
      if (mask >= total || failed.load()) return;
      std::vector<bool> coalition(n, false);
      for (size_t i = 0; i < n; ++i) coalition[i] = (mask >> i) & 1u;
      auto utility = oracle.Utility(coalition);
      if (!utility.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = utility.status();
        return;
      }
      utilities[mask] = *utility;
    }
  };

  std::vector<std::thread> threads;
  const size_t worker_count = std::min(num_threads, total);
  threads.reserve(worker_count);
  for (size_t t = 0; t < worker_count; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  if (failed.load()) return first_error;

  DIGFL_ASSIGN_OR_RETURN(Vec shapley, ShapleyFromUtilities(n, utilities));
  return FinishReport(oracle, std::move(shapley), timer.ElapsedSeconds());
}

}  // namespace digfl
