// Reconstruction-based Shapley for HFL (Song, Tong & Wei, IEEE Big Data
// 2019): no retraining, but exponentially many *model reconstructions* per
// round from the cached local updates.
//
// MR (multi-round): at epoch t, coalition S's model is reconstructed as
//   θ_t(S) = θ_{t-1} − (1/|S|) Σ_{i∈S} δ_{t,i}
// with per-epoch utility U_t(S) = loss^v(θ_{t-1}) − loss^v(θ_t(S)); the
// per-epoch Shapley values are computed exactly over these 2^n utilities
// and summed across rounds.
//
// OR (one-round): a single reconstruction at the end,
//   θ(S) = θ_0 − Σ_t (1/|S|) Σ_{i∈S} δ_{t,i},
// scored once against loss^v(θ_0).

#ifndef DIGFL_BASELINES_MR_SHAPLEY_H_
#define DIGFL_BASELINES_MR_SHAPLEY_H_

#include "core/contribution.h"
#include "hfl/fed_sgd.h"

namespace digfl {

// Multi-round reconstruction; returns per-epoch values and totals.
Result<ContributionReport> ComputeMrShapley(const HflServer& server,
                                            const HflTrainingLog& log);

// One-round reconstruction; totals only.
Result<ContributionReport> ComputeOrShapley(const HflServer& server,
                                            const HflTrainingLog& log,
                                            const Vec& init_params);

}  // namespace digfl

#endif  // DIGFL_BASELINES_MR_SHAPLEY_H_
