// Exact ("actual") Shapley values by exhaustive 2^n retraining — the ground
// truth the paper scores every estimator against (Figs. 3-5, Tables III-V).

#ifndef DIGFL_BASELINES_EXACT_SHAPLEY_H_
#define DIGFL_BASELINES_EXACT_SHAPLEY_H_

#include "baselines/retrain_oracle.h"
#include "core/contribution.h"

namespace digfl {

// Enumerates all 2^n coalitions through the oracle. The report carries the
// oracle's cost counters (retrainings, wall time, simulated traffic).
Result<ContributionReport> ComputeExactShapley(UtilityOracle& oracle);

// Same result, with the 2^n retrainings spread across `num_threads` worker
// threads (coalitions are independent; the oracle is thread-safe).
// num_threads == 0 uses the hardware concurrency. Wall time drops nearly
// linearly; the report's retrain_seconds stays the summed CPU cost.
Result<ContributionReport> ComputeExactShapleyParallel(UtilityOracle& oracle,
                                                       size_t num_threads = 0);

}  // namespace digfl

#endif  // DIGFL_BASELINES_EXACT_SHAPLEY_H_
