#include "baselines/im_contribution.h"

#include "common/timer.h"

namespace digfl {

Result<ContributionReport> ComputeImContribution(const HflTrainingLog& log,
                                                 const Vec& init_params) {
  if (log.epochs.empty()) {
    return Status::InvalidArgument("empty training log");
  }
  const size_t n = log.num_participants();

  Timer timer;
  // Direction the global model travelled, as a descent direction:
  // u = θ_0 − θ_τ (local updates δ point along descent too).
  Vec direction = vec::Sub(init_params, log.final_params);
  const double norm = vec::Norm2(direction);
  if (norm == 0.0) {
    return Status::FailedPrecondition("model did not move; IM undefined");
  }
  vec::Scale(1.0 / norm, direction);

  ContributionReport report;
  report.total.assign(n, 0.0);
  report.per_epoch.reserve(log.epochs.size());
  for (const HflEpochRecord& record : log.epochs) {
    std::vector<double> phi(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      phi[i] = vec::Dot(record.deltas[i], direction);
      report.total[i] += phi[i];
    }
    report.per_epoch.push_back(std::move(phi));
  }
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace digfl
