#include "baselines/tmc_shapley.h"

#include <cmath>

#include "common/rng.h"
#include "common/timer.h"

namespace digfl {

Result<ContributionReport> ComputeTmcShapley(UtilityOracle& oracle,
                                             const TmcOptions& options) {
  const size_t n = oracle.num_participants();
  if (n == 0) return Status::InvalidArgument("no participants");
  size_t permutations = options.num_permutations;
  if (permutations == 0) {
    permutations = static_cast<size_t>(
        std::ceil(static_cast<double>(n * n) *
                  std::max(1.0, std::log(static_cast<double>(n)))));
  }

  Timer timer;
  Rng rng(options.seed);
  DIGFL_ASSIGN_OR_RETURN(const double full_utility,
                         oracle.Utility(std::vector<bool>(n, true)));
  const double tolerance =
      options.truncation_tolerance * std::abs(full_utility);

  std::vector<double> totals(n, 0.0);
  for (size_t round = 0; round < permutations; ++round) {
    const std::vector<size_t> order = rng.Permutation(n);
    std::vector<bool> coalition(n, false);
    double previous = 0.0;  // V(∅)
    for (size_t step = 0; step < n; ++step) {
      const size_t member = order[step];
      // Truncation: once the prefix utility is ~V(N), remaining marginals
      // are noise — skip their retrainings entirely.
      if (std::abs(full_utility - previous) < tolerance) {
        break;  // contributes 0 for all remaining members this round
      }
      coalition[member] = true;
      DIGFL_ASSIGN_OR_RETURN(const double current, oracle.Utility(coalition));
      totals[member] += current - previous;
      previous = current;
    }
  }

  ContributionReport report;
  report.total.resize(n);
  for (size_t i = 0; i < n; ++i) {
    report.total[i] = totals[i] / static_cast<double>(permutations);
  }
  report.wall_seconds = timer.ElapsedSeconds();
  report.retrainings = oracle.retrain_count();
  report.extra_comm.Record("retraining:total", oracle.retrain_comm_bytes());
  return report;
}

}  // namespace digfl
