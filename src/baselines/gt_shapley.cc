#include "baselines/gt_shapley.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"

namespace digfl {

Result<ContributionReport> ComputeGtShapley(UtilityOracle& oracle,
                                            const GtOptions& options) {
  const size_t n = oracle.num_participants();
  if (n < 2) return Status::InvalidArgument("group testing needs n >= 2");
  size_t samples = options.num_samples;
  if (samples == 0) {
    const double log_n = std::max(1.0, std::log(static_cast<double>(n)));
    samples = std::max<size_t>(
        3 * n, static_cast<size_t>(std::ceil(n * log_n * log_n)));
  }

  Timer timer;
  Rng rng(options.seed);

  // Coalition-size distribution q(k) ∝ 1/k + 1/(n−k), k = 1..n−1;
  // Z = 2 Σ_{k=1}^{n-1} 1/k is the GT normalization constant.
  std::vector<double> cumulative(n - 1, 0.0);
  double z = 0.0;
  for (size_t k = 1; k < n; ++k) {
    z += 2.0 / static_cast<double>(k);
  }
  double acc = 0.0;
  for (size_t k = 1; k < n; ++k) {
    acc += (1.0 / static_cast<double>(k) +
            1.0 / static_cast<double>(n - k)) /
           z;
    cumulative[k - 1] = acc;
  }
  cumulative.back() = 1.0;

  // Accumulate Σ_t V(S_t)·β_{ti}; pairwise differences follow by linearity:
  // Δ_{ij} = (Z/T)(A_i − A_j) with A_i = Σ_t V(S_t) β_{ti}.
  std::vector<double> weighted_membership(n, 0.0);
  for (size_t t = 0; t < samples; ++t) {
    const double u = rng.Uniform();
    size_t k = 1;
    while (k < n - 1 && u > cumulative[k - 1]) ++k;
    std::vector<size_t> order = rng.Permutation(n);
    std::vector<bool> coalition(n, false);
    for (size_t idx = 0; idx < k; ++idx) coalition[order[idx]] = true;
    DIGFL_ASSIGN_OR_RETURN(const double utility, oracle.Utility(coalition));
    for (size_t i = 0; i < n; ++i) {
      if (coalition[i]) weighted_membership[i] += utility;
    }
  }

  DIGFL_ASSIGN_OR_RETURN(const double full_utility,
                         oracle.Utility(std::vector<bool>(n, true)));

  // φ_i = (V(N) + Σ_{j≠i} Δ_{ij}) / n
  //     = (V(N) + Z/T (n·A_i − Σ_j A_j)) / n.
  const double scale = z / static_cast<double>(samples);
  double sum_a = 0.0;
  for (double a : weighted_membership) sum_a += a;

  ContributionReport report;
  report.total.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double delta_sum =
        scale * (static_cast<double>(n) * weighted_membership[i] - sum_a);
    report.total[i] = (full_utility + delta_sum) / static_cast<double>(n);
  }
  report.wall_seconds = timer.ElapsedSeconds();
  report.retrainings = oracle.retrain_count();
  report.extra_comm.Record("retraining:total", oracle.retrain_comm_bytes());
  return report;
}

}  // namespace digfl
