// Coalition utility oracles backed by leave-subset-out retraining.
//
// Every Shapley method that the paper compares against (exact 2^n, TMC,
// GT) is defined over the utility
//   V(S) = loss^v(θ(∅)) − loss^v(θ_τ(S))            (Eq. 2)
// where θ_τ(S) is the model retrained from scratch by coalition S. These
// oracles own that retraining, cache results per coalition bitmask, and
// meter its cost (count, wall time, simulated traffic) so the benchmark
// harnesses can report the paper's T_Actual columns.

#ifndef DIGFL_BASELINES_RETRAIN_ORACLE_H_
#define DIGFL_BASELINES_RETRAIN_ORACLE_H_

#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "core/shapley.h"
#include "hfl/fed_sgd.h"
#include "vfl/plain_trainer.h"

namespace digfl {

class UtilityOracle {
 public:
  virtual ~UtilityOracle() = default;

  virtual size_t num_participants() const = 0;

  // Cached V(S). V(∅) = 0 by definition. Thread-safe: concurrent callers
  // on distinct coalitions retrain in parallel (models, datasets and the
  // FL trainers are stateless/const with respect to the oracle), while the
  // cache and cost counters are mutex-guarded.
  Result<double> Utility(const std::vector<bool>& coalition);

  // A UtilityFn view for core/shapley.h.
  UtilityFn AsFn();

  size_t retrain_count() const { return retrain_count_; }
  double retrain_seconds() const { return retrain_seconds_; }
  uint64_t retrain_comm_bytes() const { return retrain_comm_bytes_; }

 protected:
  struct TrainingOutcome {
    double utility = 0.0;
    uint64_t comm_bytes = 0;
  };
  virtual Result<TrainingOutcome> Retrain(
      const std::vector<bool>& coalition) = 0;

  void NoteRetrain(double seconds, uint64_t bytes) {
    ++retrain_count_;
    retrain_seconds_ += seconds;
    retrain_comm_bytes_ += bytes;
  }

 private:
  std::mutex mutex_;  // guards cache_ and the cost counters
  std::map<uint64_t, double> cache_;
  size_t retrain_count_ = 0;
  double retrain_seconds_ = 0.0;
  uint64_t retrain_comm_bytes_ = 0;
};

// HFL: V(S) from FedSGD restricted to the participants in S.
class HflUtilityOracle : public UtilityOracle {
 public:
  HflUtilityOracle(const Model& model,
                   const std::vector<HflParticipant>& participants,
                   HflServer& server, Vec init_params, FedSgdConfig config)
      : model_(model.Clone()),
        participants_(participants),
        server_(server),
        init_params_(std::move(init_params)),
        config_(std::move(config)) {
    config_.record_log = false;
  }

  size_t num_participants() const override { return participants_.size(); }

 protected:
  Result<TrainingOutcome> Retrain(const std::vector<bool>& coalition) override;

 private:
  std::unique_ptr<Model> model_;
  const std::vector<HflParticipant>& participants_;
  HflServer& server_;
  Vec init_params_;
  FedSgdConfig config_;
};

// VFL: V(S) from block-masked training (Lemma 2 coalition semantics).
class VflUtilityOracle : public UtilityOracle {
 public:
  VflUtilityOracle(const Model& model, const VflBlockModel& blocks,
                   Dataset train, Dataset validation, VflTrainConfig config)
      : model_(model.Clone()),
        blocks_(blocks),
        train_(std::move(train)),
        validation_(std::move(validation)),
        config_(std::move(config)) {
    config_.record_log = false;
  }

  size_t num_participants() const override {
    return blocks_.num_participants();
  }

 protected:
  Result<TrainingOutcome> Retrain(const std::vector<bool>& coalition) override;

 private:
  std::unique_ptr<Model> model_;
  VflBlockModel blocks_;
  Dataset train_;
  Dataset validation_;
  VflTrainConfig config_;
};

}  // namespace digfl

#endif  // DIGFL_BASELINES_RETRAIN_ORACLE_H_
