#include "baselines/retrain_oracle.h"

#include "common/timer.h"

namespace digfl {
namespace {

uint64_t CoalitionMask(const std::vector<bool>& coalition) {
  uint64_t mask = 0;
  for (size_t i = 0; i < coalition.size(); ++i) {
    if (coalition[i]) mask |= uint64_t{1} << i;
  }
  return mask;
}

}  // namespace

Result<double> UtilityOracle::Utility(const std::vector<bool>& coalition) {
  if (coalition.size() != num_participants()) {
    return Status::InvalidArgument("coalition size mismatch");
  }
  const uint64_t mask = CoalitionMask(coalition);
  if (mask == 0) return 0.0;  // V(∅) = 0
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(mask);
    if (it != cache_.end()) return it->second;
  }

  // Retrain outside the lock so distinct coalitions run concurrently. Two
  // threads racing on the same mask would redundantly (but harmlessly)
  // retrain; callers partition masks so this does not occur in practice.
  Timer timer;
  DIGFL_ASSIGN_OR_RETURN(TrainingOutcome outcome, Retrain(coalition));
  std::lock_guard<std::mutex> lock(mutex_);
  NoteRetrain(timer.ElapsedSeconds(), outcome.comm_bytes);
  cache_.emplace(mask, outcome.utility);
  return outcome.utility;
}

UtilityFn UtilityOracle::AsFn() {
  return [this](const std::vector<bool>& coalition) -> Result<double> {
    return Utility(coalition);
  };
}

Result<UtilityOracle::TrainingOutcome> HflUtilityOracle::Retrain(
    const std::vector<bool>& coalition) {
  std::vector<HflParticipant> subset;
  for (size_t i = 0; i < participants_.size(); ++i) {
    if (coalition[i]) subset.push_back(participants_[i]);
  }
  DIGFL_ASSIGN_OR_RETURN(
      HflTrainingLog log,
      RunFedSgd(*model_, subset, server_, init_params_, config_));
  DIGFL_ASSIGN_OR_RETURN(const double initial_loss,
                         server_.ValidationLoss(init_params_));
  DIGFL_ASSIGN_OR_RETURN(const double final_loss,
                         server_.ValidationLoss(log.final_params));
  TrainingOutcome outcome;
  outcome.utility = initial_loss - final_loss;  // Eq. 2
  outcome.comm_bytes = log.comm.TotalBytes();
  return outcome;
}

Result<UtilityOracle::TrainingOutcome> VflUtilityOracle::Retrain(
    const std::vector<bool>& coalition) {
  DIGFL_ASSIGN_OR_RETURN(
      VflTrainingLog log,
      RunVflTraining(*model_, blocks_, train_, validation_, config_,
                     &coalition));
  const Vec zero = vec::Zeros(model_->NumParams());
  DIGFL_ASSIGN_OR_RETURN(const double initial_loss,
                         model_->Loss(zero, validation_));
  DIGFL_ASSIGN_OR_RETURN(const double final_loss,
                         model_->Loss(log.final_params, validation_));
  TrainingOutcome outcome;
  outcome.utility = initial_loss - final_loss;
  outcome.comm_bytes = log.comm.TotalBytes();
  return outcome;
}

}  // namespace digfl
