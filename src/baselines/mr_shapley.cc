#include "baselines/mr_shapley.h"

#include "common/timer.h"
#include "core/shapley.h"

namespace digfl {
namespace {

// (1/|S|) Σ_{i∈S} δ_i for a coalition bitmask; zero vector for ∅.
Vec CoalitionAverage(const std::vector<Vec>& deltas, uint32_t mask) {
  Vec avg = vec::Zeros(deltas.empty() ? 0 : deltas[0].size());
  int count = 0;
  for (size_t i = 0; i < deltas.size(); ++i) {
    if ((mask >> i) & 1u) {
      vec::Axpy(1.0, deltas[i], avg);
      ++count;
    }
  }
  if (count > 0) vec::Scale(1.0 / count, avg);
  return avg;
}

}  // namespace

Result<ContributionReport> ComputeMrShapley(const HflServer& server,
                                            const HflTrainingLog& log) {
  if (log.epochs.empty()) {
    return Status::InvalidArgument("empty training log");
  }
  const size_t n = log.num_participants();
  if (n > 25) return Status::InvalidArgument("too many participants for MR");
  const size_t total_masks = size_t{1} << n;

  Timer timer;
  ContributionReport report;
  report.total.assign(n, 0.0);
  report.per_epoch.reserve(log.epochs.size());

  for (const HflEpochRecord& record : log.epochs) {
    DIGFL_ASSIGN_OR_RETURN(const double base_loss,
                           server.ValidationLoss(record.params_before));
    std::vector<double> utilities(total_masks, 0.0);
    for (uint32_t mask = 1; mask < total_masks; ++mask) {
      Vec reconstructed = record.params_before;
      vec::Axpy(-1.0, CoalitionAverage(record.deltas, mask), reconstructed);
      DIGFL_ASSIGN_OR_RETURN(const double loss,
                             server.ValidationLoss(reconstructed));
      utilities[mask] = base_loss - loss;
    }
    DIGFL_ASSIGN_OR_RETURN(Vec epoch_shapley,
                           ShapleyFromUtilities(n, utilities));
    std::vector<double> phi(epoch_shapley.begin(), epoch_shapley.end());
    for (size_t i = 0; i < n; ++i) report.total[i] += phi[i];
    report.per_epoch.push_back(std::move(phi));
  }
  report.wall_seconds = timer.ElapsedSeconds();
  // MR performs 2^n - 1 validation evaluations per epoch; report them as
  // "retrainings-equivalent" model evaluations for cost comparisons.
  report.retrainings = (total_masks - 1) * log.epochs.size();
  return report;
}

Result<ContributionReport> ComputeOrShapley(const HflServer& server,
                                            const HflTrainingLog& log,
                                            const Vec& init_params) {
  if (log.epochs.empty()) {
    return Status::InvalidArgument("empty training log");
  }
  const size_t n = log.num_participants();
  if (n > 25) return Status::InvalidArgument("too many participants for OR");
  const size_t total_masks = size_t{1} << n;

  Timer timer;
  DIGFL_ASSIGN_OR_RETURN(const double base_loss,
                         server.ValidationLoss(init_params));
  std::vector<double> utilities(total_masks, 0.0);
  for (uint32_t mask = 1; mask < total_masks; ++mask) {
    Vec reconstructed = init_params;
    for (const HflEpochRecord& record : log.epochs) {
      vec::Axpy(-1.0, CoalitionAverage(record.deltas, mask), reconstructed);
    }
    DIGFL_ASSIGN_OR_RETURN(const double loss,
                           server.ValidationLoss(reconstructed));
    utilities[mask] = base_loss - loss;
  }
  DIGFL_ASSIGN_OR_RETURN(Vec shapley, ShapleyFromUtilities(n, utilities));

  ContributionReport report;
  report.total.assign(shapley.begin(), shapley.end());
  report.wall_seconds = timer.ElapsedSeconds();
  report.retrainings = total_masks - 1;
  return report;
}

}  // namespace digfl
