// MethodCost: one row of the paper's accuracy/cost comparisons (Figs. 3-5,
// Tables III-V): method name, PCC against the actual Shapley value,
// computation time, simulated communication, retraining count.

#ifndef DIGFL_METRICS_COST_REPORT_H_
#define DIGFL_METRICS_COST_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/table_writer.h"
#include "core/contribution.h"

namespace digfl {

struct MethodCost {
  std::string method;
  double pcc = 0.0;
  double seconds = 0.0;
  double comm_megabytes = 0.0;
  size_t retrainings = 0;
};

// Builds a MethodCost row by scoring `report` against the actual values.
Result<MethodCost> ScoreMethod(const std::string& method,
                               const ContributionReport& report,
                               const std::vector<double>& actual_shapley);

// Renders rows into a TableWriter with the standard columns.
Result<TableWriter> MethodCostTable(const std::vector<MethodCost>& rows);

}  // namespace digfl

#endif  // DIGFL_METRICS_COST_REPORT_H_
