#include "metrics/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace digfl {
namespace {

Status CheckPair(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("vector size mismatch");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least 2 points");
  }
  return Status::OK();
}

// Average ranks with mid-rank tie handling.
std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return values[i] < values[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mid;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  DIGFL_RETURN_IF_ERROR(CheckPair(a, b));
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return Status::FailedPrecondition("zero variance");
  }
  return cov / std::sqrt(var_a * var_b);
}

Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  DIGFL_RETURN_IF_ERROR(CheckPair(a, b));
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

Result<double> RelativeTotalError(const std::vector<double>& reference,
                                  const std::vector<double>& estimate) {
  DIGFL_RETURN_IF_ERROR(CheckPair(reference, estimate));
  double sum_ref = 0.0, sum_est = 0.0;
  for (size_t i = 0; i < reference.size(); ++i) {
    sum_ref += reference[i];
    sum_est += estimate[i];
  }
  if (sum_ref == 0.0) {
    return Status::FailedPrecondition("zero reference total");
  }
  return std::abs(sum_ref - sum_est) / std::abs(sum_ref);
}

Result<double> PairwiseOrderAgreement(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  DIGFL_RETURN_IF_ERROR(CheckPair(a, b));
  size_t concordant = 0, comparable = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 || db == 0.0) continue;
      ++comparable;
      if ((da > 0) == (db > 0)) ++concordant;
    }
  }
  if (comparable == 0) {
    return Status::FailedPrecondition("no comparable pairs");
  }
  return static_cast<double>(concordant) / static_cast<double>(comparable);
}

}  // namespace digfl
