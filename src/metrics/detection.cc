#include "metrics/detection.h"

#include <algorithm>
#include <numeric>

namespace digfl {
namespace {

Status CheckInputs(const std::vector<double>& contributions,
                   const std::vector<bool>& corrupted) {
  if (contributions.size() != corrupted.size()) {
    return Status::InvalidArgument("contributions/mask size mismatch");
  }
  if (contributions.empty()) {
    return Status::InvalidArgument("no participants");
  }
  return Status::OK();
}

size_t CountCorrupted(const std::vector<bool>& corrupted) {
  size_t count = 0;
  for (bool c : corrupted) count += c;
  return count;
}

}  // namespace

Result<double> DetectionPrecisionAtK(const std::vector<double>& contributions,
                                     const std::vector<bool>& corrupted,
                                     size_t k) {
  DIGFL_RETURN_IF_ERROR(CheckInputs(contributions, corrupted));
  const size_t num_corrupted = CountCorrupted(corrupted);
  if (k == 0) k = num_corrupted;
  if (k == 0) {
    return Status::FailedPrecondition("no corrupted participants to detect");
  }
  if (k > contributions.size()) {
    return Status::InvalidArgument("k exceeds participant count");
  }
  std::vector<size_t> order(contributions.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return contributions[a] < contributions[b];
  });
  size_t hits = 0;
  for (size_t rank = 0; rank < k; ++rank) {
    if (corrupted[order[rank]]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

Result<double> DetectionAuc(const std::vector<double>& contributions,
                            const std::vector<bool>& corrupted) {
  DIGFL_RETURN_IF_ERROR(CheckInputs(contributions, corrupted));
  const size_t num_corrupted = CountCorrupted(corrupted);
  if (num_corrupted == 0 || num_corrupted == corrupted.size()) {
    return Status::FailedPrecondition(
        "AUC needs both corrupted and clean participants");
  }
  double score = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < contributions.size(); ++i) {
    if (!corrupted[i]) continue;
    for (size_t j = 0; j < contributions.size(); ++j) {
      if (corrupted[j]) continue;
      ++pairs;
      if (contributions[i] < contributions[j]) {
        score += 1.0;
      } else if (contributions[i] == contributions[j]) {
        score += 0.5;
      }
    }
  }
  return score / static_cast<double>(pairs);
}

}  // namespace digfl
