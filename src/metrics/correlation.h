// Agreement metrics between estimated and actual Shapley values: Pearson's
// correlation coefficient (the paper's headline accuracy metric), Spearman
// rank correlation, and element-wise relative error.

#ifndef DIGFL_METRICS_CORRELATION_H_
#define DIGFL_METRICS_CORRELATION_H_

#include <vector>

#include "common/result.h"

namespace digfl {

// Pearson's r; fails on size mismatch, <2 points, or zero variance.
Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b);

// Spearman's ρ (Pearson on average ranks; ties get mid-ranks).
Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b);

// |Σa − Σb| / |Σa| — the paper's Table II error metric on totals.
Result<double> RelativeTotalError(const std::vector<double>& reference,
                                  const std::vector<double>& estimate);

// Fraction of concordantly ordered pairs (Kendall-style agreement in [0,1]).
Result<double> PairwiseOrderAgreement(const std::vector<double>& a,
                                      const std::vector<double>& b);

}  // namespace digfl

#endif  // DIGFL_METRICS_CORRELATION_H_
