// Detection metrics: how well a contribution vector *identifies* the
// low-quality participants (the paper's motivation #2 — localizing
// low-quality participants). Ground truth is a boolean corruption mask;
// lower contribution should mean "more likely corrupted".

#ifndef DIGFL_METRICS_DETECTION_H_
#define DIGFL_METRICS_DETECTION_H_

#include <vector>

#include "common/result.h"

namespace digfl {

// Precision@k: of the k participants with the lowest contributions, the
// fraction that are actually corrupted. k defaults to the number of
// corrupted participants (so 1.0 = perfect localization).
Result<double> DetectionPrecisionAtK(const std::vector<double>& contributions,
                                     const std::vector<bool>& corrupted,
                                     size_t k = 0);

// AUC of ranking corrupted participants below clean ones: the probability
// that a random (corrupted, clean) pair is ordered corrupted-first by
// ascending contribution. Ties count half.
Result<double> DetectionAuc(const std::vector<double>& contributions,
                            const std::vector<bool>& corrupted);

}  // namespace digfl

#endif  // DIGFL_METRICS_DETECTION_H_
