#include "metrics/cost_report.h"

#include "metrics/correlation.h"

namespace digfl {

Result<MethodCost> ScoreMethod(const std::string& method,
                               const ContributionReport& report,
                               const std::vector<double>& actual_shapley) {
  MethodCost cost;
  cost.method = method;
  DIGFL_ASSIGN_OR_RETURN(cost.pcc,
                         PearsonCorrelation(report.total, actual_shapley));
  cost.seconds = report.wall_seconds;
  cost.comm_megabytes = report.extra_comm.TotalMegabytes();
  cost.retrainings = report.retrainings;
  return cost;
}

Result<TableWriter> MethodCostTable(const std::vector<MethodCost>& rows) {
  TableWriter table({"method", "PCC", "time(s)", "comm(MB)", "retrainings"});
  for (const MethodCost& row : rows) {
    DIGFL_RETURN_IF_ERROR(table.AddRow(
        {row.method, TableWriter::FormatDouble(row.pcc, 3),
         TableWriter::FormatScientific(row.seconds, 3),
         TableWriter::FormatDouble(row.comm_megabytes, 3),
         std::to_string(row.retrainings)}));
  }
  return table;
}

}  // namespace digfl
