// Pluggable robust aggregation rules for the HFL epoch loop.
//
// Both trainers — the in-process RunFedSgd (hfl/fed_sgd.cc) and the
// distributed Coordinator (net/coordinator.cc) — combine the epoch's
// admitted updates {δ_{t,i}} into one global step G_t through this seam.
// The default (FedSgdConfig::aggregator == nullptr) is the weighted mean,
// delegating to HflServer::AggregateWeighted so fault-free runs stay
// bitwise-identical to the pre-seam trainer; the robust rules trade that
// golden path for resistance to Byzantine updates that slip past the
// admission gate (see common/adversary.h for the attack taxonomy):
//
//   mean     — G = Σ ω_i δ_i (the legacy weighted mean; zero robustness).
//   clip     — per-update L2 norm clipping to `clip_norm` (0 = self-tune to
//              the median present norm each epoch), then the weighted mean.
//              Bounds any single attacker's influence.
//   median   — coordinate-wise median over the present updates. Weights are
//              ignored (robust rules treat present participants uniformly).
//   trimmed  — coordinate-wise trimmed mean: drop the ⌊f·m⌋ smallest and
//              largest values per coordinate, average the rest; falls back
//              to the median when trimming would consume everything.
//
// The output of median/trimmed lives on the scale of one participant's
// update, matching the uniform-weight mean 1/m·Σδ_i.

#ifndef DIGFL_HFL_AGGREGATOR_H_
#define DIGFL_HFL_AGGREGATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.h"
#include "common/result.h"
#include "hfl/fed_sgd.h"
#include "hfl/server.h"

namespace digfl {

class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual const char* name() const = 0;
  // Combines the epoch's updates. `weights` are the AggregationPolicy
  // weights with absent entries already zeroed; `present[i] == 0` marks a
  // missing/quarantined update whose delta slot is a zero vector. All three
  // arrays are indexed by participant and equally sized.
  virtual Result<Vec> Aggregate(const std::vector<Vec>& deltas,
                                const std::vector<double>& weights,
                                const std::vector<uint8_t>& present) = 0;
};

// The golden reference: delegates to HflServer::AggregateWeighted, so an
// explicit mean aggregator is bitwise-identical to the nullptr default.
std::unique_ptr<Aggregator> MakeMeanAggregator();
// clip_norm <= 0 self-tunes to the median present-update norm per epoch.
std::unique_ptr<Aggregator> MakeClippedMeanAggregator(double clip_norm = 0.0);
std::unique_ptr<Aggregator> MakeMedianAggregator();
// trim_fraction in [0, 0.5): per-coordinate trim share on each side.
Result<std::unique_ptr<Aggregator>> MakeTrimmedMeanAggregator(
    double trim_fraction = 0.2);

// Parses "mean" | "clip[:NORM]" | "median" | "trimmed[:FRACTION]" (the
// digfl_eval --aggregator grammar). Unknown rules and bad parameters are
// typed kInvalidArgument errors.
Result<std::unique_ptr<Aggregator>> MakeAggregator(std::string_view spec);

// ---------------------------------------------------------------------------
// φ̂-EWMA recomputation.
//
// The quarantine escalator's per-participant EWMA score (see
// common/fault.h) is transient trainer state. This helper rebuilds it from
// a recorded training log using the exact per-epoch masked DIG-FL estimate
// the trainer fed the monitor — φ̂_{t,i} = ⟨∇loss^v(θ_{t-1}), δ_{t,i}⟩ / m_t
// for present i — so harnesses can rank participants (e.g. "every
// attacker's EWMA sits in the bottom k") without the trainer exporting
// monitor internals. Same doubles, same operations, bitwise-reproducible.
Result<std::vector<double>> PhiEwmaFromLog(const HflTrainingLog& log,
                                           const HflServer& server,
                                           const EscalationConfig& config);

}  // namespace digfl

#endif  // DIGFL_HFL_AGGREGATOR_H_
