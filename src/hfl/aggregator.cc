#include "hfl/aggregator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace digfl {

namespace {

Status ValidateShapes(const std::vector<Vec>& deltas,
                      const std::vector<double>& weights,
                      const std::vector<uint8_t>& present) {
  if (deltas.empty()) return Status::InvalidArgument("no updates to aggregate");
  if (weights.size() != deltas.size() || present.size() != deltas.size()) {
    return Status::InvalidArgument("weights/present/updates count mismatch");
  }
  for (const Vec& delta : deltas) {
    if (delta.size() != deltas[0].size()) {
      return Status::InvalidArgument("update dimension mismatch");
    }
  }
  return Status::OK();
}

class MeanAggregator : public Aggregator {
 public:
  const char* name() const override { return "mean"; }
  Result<Vec> Aggregate(const std::vector<Vec>& deltas,
                        const std::vector<double>& weights,
                        const std::vector<uint8_t>& present) override {
    (void)present;  // absent weights are already zero
    return HflServer::AggregateWeighted(deltas, weights);
  }
};

class ClippedMeanAggregator : public Aggregator {
 public:
  explicit ClippedMeanAggregator(double clip_norm) : clip_norm_(clip_norm) {}
  const char* name() const override { return "clip"; }
  Result<Vec> Aggregate(const std::vector<Vec>& deltas,
                        const std::vector<double>& weights,
                        const std::vector<uint8_t>& present) override {
    DIGFL_RETURN_IF_ERROR(ValidateShapes(deltas, weights, present));
    const double clip = clip_norm_ > 0.0
                            ? clip_norm_
                            : MedianPresentUpdateNorm(deltas, present);
    std::vector<Vec> clipped = deltas;
    if (clip > 0.0) {
      for (size_t i = 0; i < clipped.size(); ++i) {
        if (!present[i]) continue;
        const double norm = vec::Norm2(clipped[i]);
        if (norm > clip) vec::Scale(clip / norm, clipped[i]);
      }
    }
    return HflServer::AggregateWeighted(clipped, weights);
  }

 private:
  double clip_norm_;
};

// Shared scaffolding of the per-coordinate order-statistic rules.
class CoordinatewiseAggregator : public Aggregator {
 public:
  Result<Vec> Aggregate(const std::vector<Vec>& deltas,
                        const std::vector<double>& weights,
                        const std::vector<uint8_t>& present) override {
    DIGFL_RETURN_IF_ERROR(ValidateShapes(deltas, weights, present));
    const size_t p = deltas[0].size();
    std::vector<const Vec*> admitted;
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (present[i]) admitted.push_back(&deltas[i]);
    }
    // Nobody present: the mean path would sum zero weights to G = 0.
    if (admitted.empty()) return vec::Zeros(p);
    Vec result(p, 0.0);
    std::vector<double> column(admitted.size());
    for (size_t j = 0; j < p; ++j) {
      for (size_t i = 0; i < admitted.size(); ++i) {
        column[i] = (*admitted[i])[j];
      }
      result[j] = Combine(column);
    }
    return result;
  }

 protected:
  // Reduces one coordinate's present values; may reorder `column`.
  virtual double Combine(std::vector<double>& column) = 0;
};

double MedianOf(std::vector<double>& column) {
  const size_t m = column.size();
  std::nth_element(column.begin(), column.begin() + m / 2, column.end());
  const double upper = column[m / 2];
  if (m % 2 == 1) return upper;
  const double lower =
      *std::max_element(column.begin(), column.begin() + m / 2);
  return (lower + upper) / 2.0;
}

class MedianAggregator : public CoordinatewiseAggregator {
 public:
  const char* name() const override { return "median"; }

 protected:
  double Combine(std::vector<double>& column) override {
    return MedianOf(column);
  }
};

class TrimmedMeanAggregator : public CoordinatewiseAggregator {
 public:
  explicit TrimmedMeanAggregator(double trim_fraction)
      : trim_fraction_(trim_fraction) {}
  const char* name() const override { return "trimmed"; }

 protected:
  double Combine(std::vector<double>& column) override {
    const size_t m = column.size();
    const size_t trim =
        static_cast<size_t>(trim_fraction_ * static_cast<double>(m));
    if (2 * trim >= m) return MedianOf(column);
    std::sort(column.begin(), column.end());
    double sum = 0.0;
    for (size_t i = trim; i < m - trim; ++i) sum += column[i];
    return sum / static_cast<double>(m - 2 * trim);
  }

 private:
  double trim_fraction_;
};

}  // namespace

std::unique_ptr<Aggregator> MakeMeanAggregator() {
  return std::make_unique<MeanAggregator>();
}

std::unique_ptr<Aggregator> MakeClippedMeanAggregator(double clip_norm) {
  return std::make_unique<ClippedMeanAggregator>(clip_norm);
}

std::unique_ptr<Aggregator> MakeMedianAggregator() {
  return std::make_unique<MedianAggregator>();
}

Result<std::unique_ptr<Aggregator>> MakeTrimmedMeanAggregator(
    double trim_fraction) {
  if (!(trim_fraction >= 0.0 && trim_fraction < 0.5)) {
    return Status::InvalidArgument("trim_fraction must be in [0, 0.5)");
  }
  return std::unique_ptr<Aggregator>(
      std::make_unique<TrimmedMeanAggregator>(trim_fraction));
}

Result<std::unique_ptr<Aggregator>> MakeAggregator(std::string_view spec) {
  std::string_view rule = spec;
  std::string_view param;
  const size_t colon = spec.find(':');
  if (colon != std::string_view::npos) {
    rule = spec.substr(0, colon);
    param = spec.substr(colon + 1);
    if (param.empty()) {
      return Status::InvalidArgument("missing parameter after ':' in '" +
                                     std::string(spec) + "'");
    }
  }
  auto parse_param = [&](double fallback) -> Result<double> {
    if (param.empty()) return fallback;
    const std::string text(param);
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(value)) {
      return Status::InvalidArgument("bad aggregator parameter '" + text +
                                     "' in '" + std::string(spec) + "'");
    }
    return value;
  };
  if (rule == "mean") {
    if (!param.empty()) {
      return Status::InvalidArgument("mean takes no parameter");
    }
    return MakeMeanAggregator();
  }
  if (rule == "clip") {
    DIGFL_ASSIGN_OR_RETURN(const double clip, parse_param(0.0));
    if (clip < 0.0) {
      return Status::InvalidArgument("clip norm must be >= 0");
    }
    return MakeClippedMeanAggregator(clip);
  }
  if (rule == "median") {
    if (!param.empty()) {
      return Status::InvalidArgument("median takes no parameter");
    }
    return MakeMedianAggregator();
  }
  if (rule == "trimmed") {
    DIGFL_ASSIGN_OR_RETURN(const double fraction, parse_param(0.2));
    return MakeTrimmedMeanAggregator(fraction);
  }
  return Status::InvalidArgument(
      "unknown aggregator '" + std::string(spec) +
      "' (want mean | clip[:NORM] | median | trimmed[:FRACTION])");
}

Result<std::vector<double>> PhiEwmaFromLog(const HflTrainingLog& log,
                                           const HflServer& server,
                                           const EscalationConfig& config) {
  const size_t n = log.num_participants();
  QuarantineEscalator escalator(n, config);
  for (size_t t = 0; t < log.epochs.size(); ++t) {
    const HflEpochRecord& record = log.epochs[t];
    const size_t m = record.NumPresent();
    if (m == 0) continue;
    DIGFL_ASSIGN_OR_RETURN(const Vec v,
                           server.ValidationGradient(record.params_before));
    std::vector<double> phi(n, 0.0);
    std::vector<uint8_t> present(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (!record.IsPresent(i)) continue;
      present[i] = 1;
      phi[i] = vec::Dot(v, record.deltas[i]) / static_cast<double>(m);
    }
    escalator.ObservePhi(t, phi, present);
  }
  return escalator.phi_ewma();
}

}  // namespace digfl
