// FedSGD trainer: the HFL protocol of Sec. III-A.
//
// Each epoch t:
//   1. every participant scheduled to report computes δ_{t,i} from θ_{t-1}
//      on its local data (a FaultPlan may inject dropouts, stragglers, and
//      corrupt updates — see common/fault.h),
//   2. the server's quarantine gate rejects non-finite or norm-exploded
//      updates with a reason code,
//   3. an AggregationPolicy turns the surviving {δ_{t,i}} into the global
//      gradient G_t (uniform average over *present* participants by
//      default; the DIG-FL reweighter plugs in here),
//   4. θ_t = θ_{t-1} − G_t.
//
// The trainer records the full training log — θ_{t-1}, all δ_{t,i}, α_t,
// and the per-epoch participation mask — which is exactly the input DIG-FL
// consumes, plus validation metrics and simulated communication traffic.

#ifndef DIGFL_HFL_FED_SGD_H_
#define DIGFL_HFL_FED_SGD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/comm_meter.h"
#include "common/fault.h"
#include "common/result.h"
#include "common/rng.h"
#include "compress/quantize.h"
#include "hfl/participant.h"
#include "hfl/server.h"

namespace digfl {

class AdversaryPlan;  // common/adversary.h
class Aggregator;     // hfl/aggregator.h

struct HflEpochRecord {
  Vec params_before;        // θ_{t-1}
  // δ_{t,i} for every participant; absent or quarantined participants hold
  // a zero vector so the log stays rectangular.
  std::vector<Vec> deltas;
  double learning_rate;     // α_t
  // Aggregation weights actually applied this epoch (uniform over present
  // participants = 1/|present_t| each, 0 for absent).
  std::vector<double> weights;
  // Participation mask: present[i] == 0 means participant i's update was
  // missing (dropout/straggler) or quarantined this epoch. Empty means
  // "everyone present" (the pre-fault-tolerance log layout).
  std::vector<uint8_t> present;

  bool IsPresent(size_t i) const {
    return present.empty() || (i < present.size() && present[i] != 0);
  }
  size_t NumPresent() const {
    if (present.empty()) return deltas.size();
    size_t count = 0;
    for (uint8_t p : present) count += (p != 0);
    return count;
  }
};

struct HflTrainingLog {
  std::vector<HflEpochRecord> epochs;
  Vec final_params;
  std::vector<double> validation_loss;      // after each epoch
  std::vector<double> validation_accuracy;  // after each epoch
  CommMeter comm;
  // Fault bookkeeping for the run: dropouts, straggler retries, quarantine
  // events with reason codes. All zero on a fault-free run.
  FaultStats faults;

  size_t num_epochs() const { return epochs.size(); }
  size_t num_participants() const {
    return epochs.empty() ? 0 : epochs[0].deltas.size();
  }
};

// Maps an epoch's updates to aggregation weights. `present[i] == 0` marks a
// participant whose update is missing this epoch (its delta slot is a zero
// vector); policies must give those entries zero weight and renormalize
// over the present set. Returning the uniform-over-present vector
// reproduces FedSGD; core/reweight.h implements Eq. 17.
class AggregationPolicy {
 public:
  virtual ~AggregationPolicy() = default;
  virtual Result<std::vector<double>> Weights(
      size_t epoch, const Vec& params_before, double learning_rate,
      const std::vector<Vec>& deltas, const std::vector<uint8_t>& present,
      const HflServer& server) = 0;
};

// FedSGD default: ω_i = 1/|present_t| for present participants, 0 otherwise.
class UniformAggregation : public AggregationPolicy {
 public:
  Result<std::vector<double>> Weights(size_t, const Vec&, double,
                                      const std::vector<Vec>& deltas,
                                      const std::vector<uint8_t>& present,
                                      const HflServer&) override {
    size_t num_present = 0;
    for (uint8_t p : present) num_present += (p != 0);
    std::vector<double> weights(deltas.size(), 0.0);
    if (num_present == 0) return weights;
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (present[i]) weights[i] = 1.0 / static_cast<double>(num_present);
    }
    return weights;
  }
};

// Read-only view of the trainer's resumable state at an epoch boundary,
// handed to the checkpoint hook. Everything a deterministic resume needs is
// here: the epochs completed, the learning rate the *next* epoch will use
// (decay already applied), the per-participant minibatch RNG streams, and
// the growing log (which carries θ, the traces, the fault bookkeeping, and
// the comm totals).
struct HflTrainerView {
  uint64_t next_epoch = 0;
  double learning_rate = 0.0;
  const std::vector<Rng>& batch_rngs;
  const HflTrainingLog& log;
};

// Called after every epoch fully commits (record appended, θ updated,
// validation recorded, decay applied). A non-OK return aborts training —
// a checkpoint that cannot be written durably must not be papered over.
// Implemented by the crash-safe store driver in ckpt/hfl_resume.h.
class HflCheckpointHook {
 public:
  virtual ~HflCheckpointHook() = default;
  virtual Status OnEpoch(const HflTrainerView& view) = 0;
};

// Warm-start state for RunFedSgd, decoded from a checkpoint. The trainer
// continues at `start_epoch` exactly as the uninterrupted run would have:
// same θ, same α_t, same minibatch RNG positions, same log prefix.
struct HflResumePoint {
  uint64_t start_epoch = 0;
  double learning_rate = 0.0;
  // Serialized Rng states (Rng::SaveState), one per participant. Empty means
  // "fresh forks from batch_seed" (only valid when batch_fraction == 1, where
  // the streams are never drawn from).
  std::vector<std::string> batch_rng_states;
  HflTrainingLog log;
};

struct FedSgdConfig {
  size_t epochs = 30;
  double learning_rate = 0.5;
  double lr_decay = 1.0;     // α_t = learning_rate * decay^t
  size_t local_steps = 1;    // 1 = FedSGD
  // Fraction of each participant's local data sampled per local step;
  // 1.0 = deterministic full-batch (the default everywhere). Smaller values
  // add the minibatch stochasticity of real deployments; each participant
  // draws from an independent stream derived from batch_seed, so runs stay
  // reproducible.
  double batch_fraction = 1.0;
  uint64_t batch_seed = 0xd1651;
  // When false the per-epoch records (params + deltas) are dropped to save
  // memory — used by the retraining oracle, which only needs final_params.
  bool record_log = true;
  // Optional seeded fault schedule (dropouts / stragglers / corruption).
  // Not owned; must outlive the call. nullptr = fault-free run.
  const FaultPlan* fault_plan = nullptr;
  // Server-side quarantine gate thresholds. Non-finite updates are always
  // rejected; the defaults never trip on healthy training runs.
  QuarantineConfig quarantine;
  // Pluggable aggregation rule (hfl/aggregator.h). Not owned; must outlive
  // the call. nullptr = the legacy weighted mean (bitwise-identical golden
  // path through HflServer::AggregateWeighted).
  Aggregator* aggregator = nullptr;
  // Optional seeded Byzantine behavior plan (common/adversary.h): attackers
  // compute the honest δ and submit ApplyAttack(δ) instead. Not owned;
  // nullptr = everyone honest. In-process only — the distributed
  // coordinator rejects it (attacks live on the participant nodes there).
  const AdversaryPlan* adversary = nullptr;
  // φ̂-driven quarantine escalation (common/fault.h): permanently exclude
  // participants whose EWMA-smoothed DIG-FL score sits below the floor, or
  // whose updates keep failing the admission gate. Disabled by default.
  // Escalation state is transient, so escalation.enabled excludes resume.
  EscalationConfig escalation;
  // Crash-safe checkpointing (see ckpt/hfl_resume.h for the store-backed
  // driver). `checkpoint_hook` observes every committed epoch; `resume`
  // warm-starts the loop from a decoded checkpoint. Both optional, neither
  // owned; resume requires record_log (the log prefix is part of the state).
  HflCheckpointHook* checkpoint_hook = nullptr;
  const HflResumePoint* resume = nullptr;
  // Update compression (DESIGN.md §16). kLossless leaves the run bitwise
  // identical to an uncompressed one. A lossy mode quantizes every upload
  // at the participant↔server boundary (after faults/attacks, before the
  // quarantine gate) with per-participant error feedback; the log records
  // the dequantized deltas and the CommMeter records the quantized upload
  // bytes. The error-feedback residual is transient state, so a lossy mode
  // excludes resume. The distributed coordinator negotiates compression via
  // CoordinatorOptions instead and rejects this field.
  compress::Mode compress = compress::Mode::kLossless;
};

// Median of the L2 norms of the present (and finite) updates — the
// reference input of the quarantine gate's relative-explosion check. Shared
// by the in-process trainer and the distributed coordinator (src/net/) so
// both paths quarantine identically. Returns 0 when no finite update is
// present.
double MedianPresentUpdateNorm(const std::vector<Vec>& deltas,
                               const std::vector<uint8_t>& present);

// Trains from `init_params` over `participants`; `policy` may be null
// (uniform). The returned log is self-contained: DIG-FL and the baselines
// need no further access to the participants.
Result<HflTrainingLog> RunFedSgd(const Model& model,
                                 const std::vector<HflParticipant>& participants,
                                 HflServer& server, const Vec& init_params,
                                 const FedSgdConfig& config,
                                 AggregationPolicy* policy = nullptr);

}  // namespace digfl

#endif  // DIGFL_HFL_FED_SGD_H_
