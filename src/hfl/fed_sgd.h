// FedSGD trainer: the HFL protocol of Sec. III-A.
//
// Each epoch t:
//   1. every participant computes δ_{t,i} from θ_{t-1} on its local data,
//   2. an AggregationPolicy turns {δ_{t,i}} into the global gradient G_t
//      (uniform average by default; the DIG-FL reweighter plugs in here),
//   3. θ_t = θ_{t-1} − G_t.
//
// The trainer records the full training log — θ_{t-1}, all δ_{t,i}, α_t —
// which is exactly the input DIG-FL consumes, plus validation metrics and
// simulated communication traffic.

#ifndef DIGFL_HFL_FED_SGD_H_
#define DIGFL_HFL_FED_SGD_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/comm_meter.h"
#include "common/result.h"
#include "hfl/participant.h"
#include "hfl/server.h"

namespace digfl {

struct HflEpochRecord {
  Vec params_before;        // θ_{t-1}
  std::vector<Vec> deltas;  // δ_{t,i} for every participant
  double learning_rate;     // α_t
  // Aggregation weights actually applied this epoch (uniform = 1/n each).
  std::vector<double> weights;
};

struct HflTrainingLog {
  std::vector<HflEpochRecord> epochs;
  Vec final_params;
  std::vector<double> validation_loss;      // after each epoch
  std::vector<double> validation_accuracy;  // after each epoch
  CommMeter comm;

  size_t num_epochs() const { return epochs.size(); }
  size_t num_participants() const {
    return epochs.empty() ? 0 : epochs[0].deltas.size();
  }
};

// Maps an epoch's updates to aggregation weights. Returning the uniform
// vector reproduces FedSGD; core/reweight.h implements Eq. 17.
class AggregationPolicy {
 public:
  virtual ~AggregationPolicy() = default;
  virtual Result<std::vector<double>> Weights(
      size_t epoch, const Vec& params_before, double learning_rate,
      const std::vector<Vec>& deltas, const HflServer& server) = 0;
};

// FedSGD default: ω_i = 1/n.
class UniformAggregation : public AggregationPolicy {
 public:
  Result<std::vector<double>> Weights(size_t, const Vec&, double,
                                      const std::vector<Vec>& deltas,
                                      const HflServer&) override {
    return std::vector<double>(deltas.size(), 1.0 / deltas.size());
  }
};

struct FedSgdConfig {
  size_t epochs = 30;
  double learning_rate = 0.5;
  double lr_decay = 1.0;     // α_t = learning_rate * decay^t
  size_t local_steps = 1;    // 1 = FedSGD
  // Fraction of each participant's local data sampled per local step;
  // 1.0 = deterministic full-batch (the default everywhere). Smaller values
  // add the minibatch stochasticity of real deployments; each participant
  // draws from an independent stream derived from batch_seed, so runs stay
  // reproducible.
  double batch_fraction = 1.0;
  uint64_t batch_seed = 0xd1651;
  // When false the per-epoch records (params + deltas) are dropped to save
  // memory — used by the retraining oracle, which only needs final_params.
  bool record_log = true;
};

// Trains from `init_params` over `participants`; `policy` may be null
// (uniform). The returned log is self-contained: DIG-FL and the baselines
// need no further access to the participants.
Result<HflTrainingLog> RunFedSgd(const Model& model,
                                 const std::vector<HflParticipant>& participants,
                                 HflServer& server, const Vec& init_params,
                                 const FedSgdConfig& config,
                                 AggregationPolicy* policy = nullptr);

}  // namespace digfl

#endif  // DIGFL_HFL_FED_SGD_H_
