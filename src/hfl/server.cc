#include "hfl/server.h"

namespace digfl {

Result<Vec> HflServer::AggregateUniform(const std::vector<Vec>& deltas) {
  if (deltas.empty()) return Status::InvalidArgument("no updates to aggregate");
  Vec sum = vec::Zeros(deltas[0].size());
  for (const Vec& delta : deltas) {
    if (delta.size() != sum.size()) {
      return Status::InvalidArgument("update dimension mismatch");
    }
    vec::Axpy(1.0, delta, sum);
  }
  vec::Scale(1.0 / static_cast<double>(deltas.size()), sum);
  return sum;
}

Result<Vec> HflServer::AggregateWeighted(const std::vector<Vec>& deltas,
                                         const std::vector<double>& weights) {
  if (deltas.empty()) return Status::InvalidArgument("no updates to aggregate");
  if (weights.size() != deltas.size()) {
    return Status::InvalidArgument("weights/updates count mismatch");
  }
  Vec sum = vec::Zeros(deltas[0].size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (deltas[i].size() != sum.size()) {
      return Status::InvalidArgument("update dimension mismatch");
    }
    vec::Axpy(weights[i], deltas[i], sum);
  }
  return sum;
}

Result<Vec> HflServer::ValidationGradient(const Vec& params) const {
  return model_->Gradient(params, validation_);
}

Result<double> HflServer::ValidationLoss(const Vec& params) const {
  return model_->Loss(params, validation_);
}

Result<double> HflServer::ValidationAccuracy(const Vec& params) const {
  return model_->Accuracy(params, validation_);
}

}  // namespace digfl
