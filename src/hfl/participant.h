// HflParticipant: one data-holding party in a horizontal FL system.
//
// A participant never exposes its local dataset to the server; the trainer
// only ever pulls local *updates* (δ_{t,i} = θ_{t-1} − θ_{t,i}) and — for
// DIG-FL Algorithm #1 — local Hessian-vector products, mirroring the
// paper's privacy levels (Sec. II-A).

#ifndef DIGFL_HFL_PARTICIPANT_H_
#define DIGFL_HFL_PARTICIPANT_H_

#include <cstddef>

#include "common/result.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace digfl {

class HflParticipant {
 public:
  HflParticipant(size_t id, Dataset local_data)
      : id_(id), data_(std::move(local_data)) {}

  size_t id() const { return id_; }
  size_t num_samples() const { return data_.size(); }

  // Runs `local_steps` full-batch gradient steps from `global_params` on the
  // local data and returns the local update δ = θ_global − θ_local.
  // With local_steps == 1 this is FedSGD: δ = α · ∇loss_i(θ_global).
  Result<Vec> ComputeLocalUpdate(const Model& model, const Vec& global_params,
                                 double learning_rate,
                                 size_t local_steps = 1) const;

  // Stochastic variant: every local step computes its gradient on a fresh
  // uniformly drawn minibatch of ceil(batch_fraction · |D_i|) local samples
  // (batch_fraction == 1 reduces to ComputeLocalUpdate). Deterministic for
  // a given `rng` state.
  Result<Vec> ComputeStochasticLocalUpdate(const Model& model,
                                           const Vec& global_params,
                                           double learning_rate,
                                           size_t local_steps,
                                           double batch_fraction,
                                           Rng& rng) const;

  // Local-loss Hessian-vector product H_i(params) · v — the quantity each
  // participant uploads in Algorithm #1; the server averages them as an
  // unbiased estimate of the global HVP.
  Result<Vec> ComputeLocalHvp(const Model& model, const Vec& params,
                              const Vec& v) const;

  // Local loss/gradient at given parameters (used in tests and by the
  // retraining oracle through dataset unions, never by the server).
  Result<double> LocalLoss(const Model& model, const Vec& params) const;
  Result<Vec> LocalGradient(const Model& model, const Vec& params) const;

  const Dataset& data() const { return data_; }

 private:
  size_t id_;
  Dataset data_;
};

}  // namespace digfl

#endif  // DIGFL_HFL_PARTICIPANT_H_
