#include "hfl/fed_sgd.h"

#include <cmath>

namespace digfl {

Result<HflTrainingLog> RunFedSgd(
    const Model& model, const std::vector<HflParticipant>& participants,
    HflServer& server, const Vec& init_params, const FedSgdConfig& config,
    AggregationPolicy* policy) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (config.epochs == 0) return Status::InvalidArgument("epochs == 0");
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (config.batch_fraction <= 0.0 || config.batch_fraction > 1.0) {
    return Status::InvalidArgument("batch_fraction must be in (0, 1]");
  }
  UniformAggregation uniform;
  if (policy == nullptr) policy = &uniform;

  HflTrainingLog log;
  log.final_params = init_params;
  double lr = config.learning_rate;
  const size_t p = model.NumParams();

  // Independent minibatch streams per participant (unused when
  // batch_fraction == 1).
  Rng batch_root(config.batch_seed);
  std::vector<Rng> batch_rngs;
  batch_rngs.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    batch_rngs.push_back(batch_root.Fork(i));
  }

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Server broadcasts θ_{t-1}.
    log.comm.RecordDoubles("server->participants:global_model",
                           p * participants.size());

    std::vector<Vec> deltas;
    deltas.reserve(participants.size());
    for (size_t i = 0; i < participants.size(); ++i) {
      Vec delta;
      if (config.batch_fraction < 1.0) {
        DIGFL_ASSIGN_OR_RETURN(
            delta, participants[i].ComputeStochasticLocalUpdate(
                       model, log.final_params, lr, config.local_steps,
                       config.batch_fraction, batch_rngs[i]));
      } else {
        DIGFL_ASSIGN_OR_RETURN(
            delta, participants[i].ComputeLocalUpdate(
                       model, log.final_params, lr, config.local_steps));
      }
      deltas.push_back(std::move(delta));
    }
    // Participants upload local models (equivalently δ_{t,i}).
    log.comm.RecordDoubles("participants->server:local_model",
                           p * participants.size());

    DIGFL_ASSIGN_OR_RETURN(
        std::vector<double> weights,
        policy->Weights(epoch, log.final_params, lr, deltas, server));
    if (weights.size() != deltas.size()) {
      return Status::Internal("aggregation policy returned bad weight count");
    }
    DIGFL_ASSIGN_OR_RETURN(Vec global_gradient,
                           HflServer::AggregateWeighted(deltas, weights));

    if (config.record_log) {
      HflEpochRecord record;
      record.params_before = log.final_params;
      record.deltas = deltas;
      record.learning_rate = lr;
      record.weights = weights;
      log.epochs.push_back(std::move(record));
    }

    vec::Axpy(-1.0, global_gradient, log.final_params);

    DIGFL_ASSIGN_OR_RETURN(double val_loss,
                           server.ValidationLoss(log.final_params));
    DIGFL_ASSIGN_OR_RETURN(double val_acc,
                           server.ValidationAccuracy(log.final_params));
    log.validation_loss.push_back(val_loss);
    log.validation_accuracy.push_back(val_acc);

    lr *= config.lr_decay;
  }
  return log;
}

}  // namespace digfl
