#include "hfl/fed_sgd.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "common/adversary.h"
#include "hfl/aggregator.h"
#include "telemetry/telemetry.h"

namespace digfl {

double MedianPresentUpdateNorm(const std::vector<Vec>& deltas,
                               const std::vector<uint8_t>& present) {
  std::vector<double> norms;
  norms.reserve(deltas.size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (!present[i]) continue;
    double sum_sq = 0.0;
    bool finite = true;
    for (double v : deltas[i]) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
      sum_sq += v * v;
    }
    // Non-finite updates are about to be quarantined anyway; keep them out
    // of the median so one NaN cannot blind the relative check.
    if (finite) norms.push_back(std::sqrt(sum_sq));
  }
  if (norms.empty()) return 0.0;
  std::nth_element(norms.begin(), norms.begin() + norms.size() / 2,
                   norms.end());
  return norms[norms.size() / 2];
}

Result<HflTrainingLog> RunFedSgd(
    const Model& model, const std::vector<HflParticipant>& participants,
    HflServer& server, const Vec& init_params, const FedSgdConfig& config,
    AggregationPolicy* policy) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (config.epochs == 0) return Status::InvalidArgument("epochs == 0");
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (config.batch_fraction <= 0.0 || config.batch_fraction > 1.0) {
    return Status::InvalidArgument("batch_fraction must be in (0, 1]");
  }
  UniformAggregation uniform;
  if (policy == nullptr) policy = &uniform;
  if (config.resume != nullptr &&
      (config.escalation.enabled || config.adversary != nullptr)) {
    // Escalator ledgers/EWMAs and replay-attack state are transient, so a
    // resumed run could not reproduce the uninterrupted one.
    return Status::InvalidArgument(
        "resume is not supported with quarantine escalation or an adversary "
        "plan");
  }
  if (config.resume != nullptr &&
      config.compress != compress::Mode::kLossless) {
    // The error-feedback residuals are transient for the same reason.
    return Status::InvalidArgument(
        "resume is not supported with lossy update compression");
  }
  if (config.adversary != nullptr &&
      config.adversary->num_participants() != participants.size()) {
    return Status::InvalidArgument(
        "adversary plan participant count mismatch");
  }

  DIGFL_TRACE_SPAN("hfl.run");

  HflTrainingLog log;
  log.final_params = init_params;
  double lr = config.learning_rate;
  size_t start_epoch = 0;
  const size_t n = participants.size();
  const size_t p = model.NumParams();
  const FaultPlan* plan = config.fault_plan;

  if (config.resume != nullptr) {
    const HflResumePoint& resume = *config.resume;
    if (!config.record_log) {
      return Status::InvalidArgument("resume requires record_log");
    }
    if (resume.start_epoch != resume.log.num_epochs()) {
      return Status::InvalidArgument(
          "resume point epoch does not match its log prefix");
    }
    if (resume.start_epoch > 0 && resume.log.num_participants() != n) {
      return Status::InvalidArgument(
          "resume point participant count mismatch");
    }
    if (resume.log.final_params.size() != p) {
      return Status::InvalidArgument("resume point parameter size mismatch");
    }
    if (!resume.batch_rng_states.empty() &&
        resume.batch_rng_states.size() != n) {
      return Status::InvalidArgument("resume point RNG stream count mismatch");
    }
    log = resume.log;
    lr = resume.learning_rate;
    start_epoch = resume.start_epoch;
    // Already past the requested horizon: the restored log *is* the result.
    if (start_epoch >= config.epochs) return log;
  }

  // Interned comm channels + per-participant telemetry byte counters,
  // resolved once so the epoch loop records lock-free.
  const CommMeter::ChannelId ch_broadcast =
      log.comm.Channel("server->participants:global_model");
  const CommMeter::ChannelId ch_straggler_down =
      log.comm.Channel("server->participants:straggler_retry");
  const CommMeter::ChannelId ch_straggler_up =
      log.comm.Channel("participants->server:straggler_retry");
  const CommMeter::ChannelId ch_upload =
      log.comm.Channel("participants->server:local_model");
  std::vector<telemetry::Counter*> bytes_up(n, nullptr);
  std::vector<telemetry::Counter*> bytes_down(n, nullptr);
  for (size_t i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    bytes_up[i] = telemetry::CounterHandle(
        "hfl.participant_bytes_total",
        {{"participant", id}, {"direction", "up"}});
    bytes_down[i] = telemetry::CounterHandle(
        "hfl.participant_bytes_total",
        {{"participant", id}, {"direction", "down"}});
  }

  // Independent minibatch streams per participant (unused when
  // batch_fraction == 1).
  Rng batch_root(config.batch_seed);
  std::vector<Rng> batch_rngs;
  batch_rngs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch_rngs.push_back(batch_root.Fork(i));
  }
  if (config.resume != nullptr && !config.resume->batch_rng_states.empty()) {
    // Rewind each stream to its checkpointed position so stochastic
    // minibatch draws continue exactly where the crashed run left off.
    for (size_t i = 0; i < n; ++i) {
      DIGFL_RETURN_IF_ERROR(
          batch_rngs[i].RestoreState(config.resume->batch_rng_states[i]));
    }
  }

  // Byzantine escalation state (nullptr when disabled keeps the golden
  // path untouched). last_honest backs the free-rider replay attack.
  std::unique_ptr<QuarantineEscalator> escalator;
  if (config.escalation.enabled) {
    escalator = std::make_unique<QuarantineEscalator>(n, config.escalation);
  }
  std::vector<Vec> last_honest(config.adversary != nullptr ? n : 0);

  // Per-participant error-feedback encoders for lossy compression. The
  // vector stays empty in lossless mode, so the golden path allocates and
  // touches nothing new.
  const bool lossy = config.compress != compress::Mode::kLossless;
  std::vector<compress::ErrorFeedback> error_feedback;
  if (lossy) error_feedback.assign(n, compress::ErrorFeedback(config.compress));

  for (size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    DIGFL_TRACE_SPAN("hfl.epoch");
    Timer epoch_timer;
    std::vector<uint8_t> present(n, 1);
    std::vector<Vec> deltas(n);
    {
      DIGFL_TRACE_SPAN("hfl.local_round");
      for (size_t i = 0; i < n; ++i) {
        if (escalator != nullptr && escalator->ledger().IsQuarantined(i)) {
          // Permanently excluded: no broadcast, no compute, no upload, and
          // no dropout accounting — the absence is the server's decision.
          present[i] = 0;
          deltas[i] = vec::Zeros(p);
          continue;
        }
        const FaultEvent event =
            plan != nullptr ? plan->At(epoch, i) : FaultEvent{};
        if (event.type == FaultType::kDropout) {
          // The participant never checked in: no broadcast, no upload.
          present[i] = 0;
          deltas[i] = vec::Zeros(p);
          ++log.faults.dropouts;
          DIGFL_COUNTER_ADD_LABELED("fault.dropout_total", 1,
                                    {"protocol", "hfl"});
          continue;
        }
        // Server broadcasts θ_{t-1} to this participant.
        log.comm.RecordDoubles(ch_broadcast, p);
        if (bytes_down[i] != nullptr) {
          bytes_down[i]->Increment(p * sizeof(double));
        }
        if (event.type == FaultType::kStraggler) {
          // The update misses the deadline; the server re-requests it
          // straggler_max_retries times (each retry re-sends the model and
          // re-attempts the upload) before giving up on the round.
          const size_t retries = plan->config().straggler_max_retries;
          log.comm.RecordDoubles(ch_straggler_down, retries * p);
          log.comm.RecordDoubles(ch_straggler_up, retries * p);
          log.faults.straggler_retries += retries;
          ++log.faults.stragglers_dropped;
          DIGFL_COUNTER_ADD_LABELED("fault.straggler_dropped_total", 1,
                                    {"protocol", "hfl"});
          present[i] = 0;
          deltas[i] = vec::Zeros(p);
          continue;
        }
        Vec delta;
        {
          DIGFL_TRACE_SPAN("hfl.local_update");
          if (config.batch_fraction < 1.0) {
            DIGFL_ASSIGN_OR_RETURN(
                delta, participants[i].ComputeStochasticLocalUpdate(
                           model, log.final_params, lr, config.local_steps,
                           config.batch_fraction, batch_rngs[i]));
          } else {
            DIGFL_ASSIGN_OR_RETURN(
                delta, participants[i].ComputeLocalUpdate(
                           model, log.final_params, lr, config.local_steps));
          }
        }
        if (config.adversary != nullptr && config.adversary->IsAttacker(i)) {
          // The attacker computes the honest δ and submits something else;
          // the honest update is what a replay attacker resubmits later.
          Rng attack_rng = config.adversary->AttackRng(epoch, i);
          Vec honest = delta;
          delta = ApplyAttack(delta, config.adversary->SpecFor(i), attack_rng,
                              &last_honest[i]);
          last_honest[i] = std::move(honest);
        }
        if (event.type == FaultType::kCorruption) {
          Rng corruption_rng = plan->CorruptionRng(epoch, i);
          delta = CorruptUpdate(delta, event.corruption,
                                plan->config().explode_factor, corruption_rng);
        }
        // Participant uploads its local model (equivalently δ_{t,i}). With
        // lossy compression the finite uploads travel quantized: the meter
        // records the QNT1 container bytes, the server sees the dequantized
        // vector, and the quantization error rolls into this participant's
        // error-feedback residual. A non-finite update (corruption/attack)
        // cannot be quantized — it goes up raw for the quarantine gate to
        // reject, exactly as on the uncompressed path.
        bool quantized = false;
        if (lossy) {
          bool finite = true;
          for (double v : delta) {
            if (!std::isfinite(v)) {
              finite = false;
              break;
            }
          }
          if (finite) {
            DIGFL_ASSIGN_OR_RETURN(compress::QuantizedVec q,
                                   error_feedback[i].Encode(delta));
            const size_t bytes = compress::EncodedSize(q);
            log.comm.Record(ch_upload, bytes);
            if (bytes_up[i] != nullptr) bytes_up[i]->Increment(bytes);
            deltas[i] = compress::Dequantize(q);
            quantized = true;
          }
        }
        if (!quantized) {
          log.comm.RecordDoubles(ch_upload, p);
          if (bytes_up[i] != nullptr) {
            bytes_up[i]->Increment(p * sizeof(double));
          }
          deltas[i] = std::move(delta);
        }
      }
    }

    // Quarantine gate: inspect every arrived update before it can touch
    // G_t. Rejections are logged with a reason code, never silently
    // dropped.
    {
      DIGFL_TRACE_SPAN("hfl.quarantine_gate");
      const double median_norm = MedianPresentUpdateNorm(deltas, present);
      for (size_t i = 0; i < n; ++i) {
        if (!present[i]) continue;
        const QuarantineReason reason =
            InspectUpdate(deltas[i], config.quarantine, median_norm);
        if (reason != QuarantineReason::kAccepted) {
          double sum_sq = 0.0;
          for (double v : deltas[i]) {
            if (std::isfinite(v)) sum_sq += v * v;
          }
          log.faults.RecordQuarantine(epoch, i, reason, std::sqrt(sum_sq));
          present[i] = 0;
          deltas[i] = vec::Zeros(p);
          if (escalator != nullptr) {
            // Repeated gate failures escalate to permanent quarantine,
            // keeping this first-family reason in the ledger.
            escalator->RecordGateRejection(i, epoch, reason);
          }
        }
      }
    }

    Vec global_gradient;
    std::vector<double> weights;
    {
      DIGFL_TRACE_SPAN("hfl.aggregate");
      DIGFL_ASSIGN_OR_RETURN(
          weights,
          policy->Weights(epoch, log.final_params, lr, deltas, present,
                          server));
      if (weights.size() != deltas.size()) {
        return Status::Internal("aggregation policy returned bad weight count");
      }
      // Defense in depth: a policy must not resurrect an absent participant.
      for (size_t i = 0; i < n; ++i) {
        if (!present[i]) weights[i] = 0.0;
      }
      if (config.aggregator != nullptr) {
        DIGFL_ASSIGN_OR_RETURN(
            global_gradient,
            config.aggregator->Aggregate(deltas, weights, present));
      } else {
        DIGFL_ASSIGN_OR_RETURN(global_gradient,
                               HflServer::AggregateWeighted(deltas, weights));
      }
    }

    // φ̂-driven quarantine escalation: feed this epoch's masked DIG-FL
    // estimates (the HflPhiAccumulator formula, on θ_{t-1}) into the EWMA
    // monitor. A participant escalated here was still aggregated this
    // epoch; exclusion starts next epoch.
    if (escalator != nullptr) {
      size_t num_present = 0;
      for (uint8_t pr : present) num_present += (pr != 0);
      if (num_present > 0) {
        DIGFL_TRACE_SPAN("hfl.phi_escalation");
        Vec v;
        DIGFL_ASSIGN_OR_RETURN(v,
                               server.ValidationGradient(log.final_params));
        std::vector<double> phi(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
          if (!present[i]) continue;
          phi[i] = vec::Dot(v, deltas[i]) / static_cast<double>(num_present);
        }
        for (size_t i : escalator->ObservePhi(epoch, phi, present)) {
          log.faults.RecordQuarantine(epoch, i, QuarantineReason::kPhiScore,
                                      escalator->phi_ewma()[i]);
        }
      }
    }

    if (config.record_log) {
      HflEpochRecord record;
      record.params_before = log.final_params;
      record.deltas = deltas;
      record.learning_rate = lr;
      record.weights = weights;
      record.present = present;
      log.epochs.push_back(std::move(record));
    }

    vec::Axpy(-1.0, global_gradient, log.final_params);

    double val_loss = 0.0;
    double val_acc = 0.0;
    {
      DIGFL_TRACE_SPAN("hfl.validate");
      DIGFL_ASSIGN_OR_RETURN(val_loss, server.ValidationLoss(log.final_params));
      DIGFL_ASSIGN_OR_RETURN(val_acc,
                             server.ValidationAccuracy(log.final_params));
    }
    log.validation_loss.push_back(val_loss);
    log.validation_accuracy.push_back(val_acc);

    DIGFL_EMIT_EVENT("hfl.epoch_seconds", epoch_timer.ElapsedSeconds(),
                     {"epoch", std::to_string(epoch)});
    DIGFL_EMIT_EVENT("hfl.validation_loss", val_loss,
                     {"epoch", std::to_string(epoch)});

    lr *= config.lr_decay;

    // The epoch has fully committed (record, θ, traces, decay) — exactly the
    // state a resume must reproduce; hand it to the checkpoint hook, then
    // mark the epoch boundary as a kill point for the crash harness.
    if (config.checkpoint_hook != nullptr) {
      const HflTrainerView view{epoch + 1, lr, batch_rngs, log};
      DIGFL_RETURN_IF_ERROR(config.checkpoint_hook->OnEpoch(view));
    }
    MaybeCrash("hfl.epoch.end");
  }
  return log;
}

}  // namespace digfl
