#include "hfl/participant.h"

#include <algorithm>

namespace digfl {

Result<Vec> HflParticipant::ComputeLocalUpdate(const Model& model,
                                               const Vec& global_params,
                                               double learning_rate,
                                               size_t local_steps) const {
  if (local_steps == 0) return Status::InvalidArgument("local_steps == 0");
  if (learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  Vec local = global_params;
  for (size_t step = 0; step < local_steps; ++step) {
    DIGFL_ASSIGN_OR_RETURN(Vec grad, model.Gradient(local, data_));
    vec::Axpy(-learning_rate, grad, local);
  }
  return vec::Sub(global_params, local);
}

Result<Vec> HflParticipant::ComputeStochasticLocalUpdate(
    const Model& model, const Vec& global_params, double learning_rate,
    size_t local_steps, double batch_fraction, Rng& rng) const {
  if (batch_fraction <= 0.0 || batch_fraction > 1.0) {
    return Status::InvalidArgument("batch_fraction must be in (0, 1]");
  }
  if (batch_fraction == 1.0) {
    return ComputeLocalUpdate(model, global_params, learning_rate,
                              local_steps);
  }
  if (local_steps == 0) return Status::InvalidArgument("local_steps == 0");
  if (learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  const size_t batch_size = std::max<size_t>(
      1, static_cast<size_t>(batch_fraction * static_cast<double>(
                                                  data_.size())));
  Vec local = global_params;
  for (size_t step = 0; step < local_steps; ++step) {
    std::vector<size_t> batch = rng.Permutation(data_.size());
    batch.resize(batch_size);
    DIGFL_ASSIGN_OR_RETURN(Dataset minibatch, data_.Subset(batch));
    DIGFL_ASSIGN_OR_RETURN(Vec grad, model.Gradient(local, minibatch));
    vec::Axpy(-learning_rate, grad, local);
  }
  return vec::Sub(global_params, local);
}

Result<Vec> HflParticipant::ComputeLocalHvp(const Model& model,
                                            const Vec& params,
                                            const Vec& v) const {
  return model.Hvp(params, data_, v);
}

Result<double> HflParticipant::LocalLoss(const Model& model,
                                         const Vec& params) const {
  return model.Loss(params, data_);
}

Result<Vec> HflParticipant::LocalGradient(const Model& model,
                                          const Vec& params) const {
  return model.Gradient(params, data_);
}

}  // namespace digfl
