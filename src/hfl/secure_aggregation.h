// Pairwise-mask secure aggregation (Bonawitz et al. [33], simplified to the
// honest-but-curious, no-dropout setting).
//
// The paper lists secure aggregation as a technique HFL systems layer on
// top of the update exchange. Each ordered pair (i, j), i < j, shares a
// PRG seed; participant i adds the pairwise mask, participant j subtracts
// it, so the server's *sum* of masked updates equals the sum of true
// updates while every individual upload is computationally masked.
//
// Relevant DIG-FL consequence (documented, tested): under secure
// aggregation the server no longer sees δ_{t,i}, so Algorithm #2's
// per-participant attribution is impossible by design — contribution
// evaluation must run before masking (participant-side) or via Algorithm
// #1's interactive uploads. SecureAggregationSession exists to make that
// trade-off concrete in code and tests.

#ifndef DIGFL_HFL_SECURE_AGGREGATION_H_
#define DIGFL_HFL_SECURE_AGGREGATION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "tensor/vec.h"

namespace digfl {

class SecureAggregationSession {
 public:
  // Establishes pairwise seeds for `num_participants` parties exchanging
  // `dim`-dimensional updates. `session_seed` stands in for the
  // key-agreement transcript.
  static Result<SecureAggregationSession> Setup(size_t num_participants,
                                                size_t dim,
                                                uint64_t session_seed);

  // The masked upload of `participant`: update + Σ_{j>i} m_ij − Σ_{j<i} m_ji.
  Result<Vec> MaskUpdate(size_t participant, const Vec& update) const;

  // Server-side aggregation of all masked uploads; pairwise masks cancel,
  // returning Σ_i update_i (up to floating-point reassociation).
  //
  // No-dropout contract: this simplified protocol has no seed-recovery
  // round, so the pairwise masks only cancel when *every* participant's
  // upload arrives. Any detectable absence — a missing upload slot, an
  // empty (zero-length) upload standing in for a dropped participant, or a
  // `present` mask with an absent entry — returns
  // Status::FailedPrecondition instead of silently producing a
  // mask-polluted garbage sum.
  Result<Vec> AggregateMasked(
      const std::vector<Vec>& masked_updates,
      const std::vector<uint8_t>* present = nullptr) const;

  size_t num_participants() const { return num_participants_; }
  size_t dim() const { return dim_; }

 private:
  SecureAggregationSession(size_t num_participants, size_t dim,
                           uint64_t session_seed)
      : num_participants_(num_participants),
        dim_(dim),
        session_seed_(session_seed) {}

  // Deterministic pairwise mask m_ij (i < j).
  Vec PairMask(size_t i, size_t j) const;

  size_t num_participants_;
  size_t dim_;
  uint64_t session_seed_;
};

}  // namespace digfl

#endif  // DIGFL_HFL_SECURE_AGGREGATION_H_
