#include "hfl/log_io.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "ckpt/atomic_file.h"

namespace digfl {
namespace {

constexpr char kMagicV1[8] = {'D', 'I', 'G', 'F', 'L', 'O', 'G', '1'};
constexpr char kMagicV2[8] = {'D', 'H', 'F', 'L', 'L', 'O', 'G', '2'};

void WriteU64(std::ostream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

// Vec is std::vector<double>, so this covers every trace in the log.
void WriteDoubles(std::ostream& out, const Vec& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
}

void WriteBytes(std::ostream& out, const std::vector<uint8_t>& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size()));
}

bool ReadU64(std::istream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.gcount() == sizeof(*value);
}

bool ReadDoubles(std::istream& in, size_t count, Vec* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return in.gcount() == static_cast<std::streamsize>(count * sizeof(double));
}

bool ReadBytes(std::istream& in, size_t count, std::vector<uint8_t>* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count));
  return in.gcount() == static_cast<std::streamsize>(count);
}

bool AllFinite(const Vec& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

struct LogHeader {
  int version = 0;  // 1 or 2
  uint64_t epochs = 0;
  uint64_t n = 0;
  uint64_t p = 0;
  uint64_t trace_len = 0;
};

Status ReadHeader(std::istream& in, const std::string& path,
                  LogHeader* header) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic)) {
    return Status::InvalidArgument(path + " is not a DIG-FL training log");
  }
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
    header->version = 1;
  } else if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
    header->version = 2;
  } else {
    return Status::InvalidArgument(path + " is not a DIG-FL training log");
  }
  if (!ReadU64(in, &header->epochs) || !ReadU64(in, &header->n) ||
      !ReadU64(in, &header->p) || !ReadU64(in, &header->trace_len)) {
    return Status::InvalidArgument("truncated log header");
  }
  // Basic sanity bounds before allocating.
  if (header->epochs > (1u << 24) || header->n > (1u << 20) ||
      header->p > (1ull << 32) || header->trace_len > (1u << 24)) {
    return Status::InvalidArgument("implausible log header");
  }
  return Status::OK();
}

// Reads one epoch record; on success also validates finiteness and (v2)
// mask consistency: a present participant may carry any finite delta, an
// absent one is only checked for finiteness (its delta is zero by
// construction of the trainer).
Status ReadEpochRecord(std::istream& in, const LogHeader& header,
                       HflEpochRecord* record) {
  Vec lr;
  if (!ReadDoubles(in, 1, &lr)) {
    return Status::InvalidArgument("truncated epoch record");
  }
  record->learning_rate = lr[0];
  if (!std::isfinite(record->learning_rate)) {
    return Status::InvalidArgument("non-finite learning rate in epoch record");
  }
  if (!ReadDoubles(in, header.p, &record->params_before)) {
    return Status::InvalidArgument("truncated epoch record");
  }
  Vec weights;
  if (!ReadDoubles(in, header.n, &weights)) {
    return Status::InvalidArgument("truncated epoch record");
  }
  record->weights.assign(weights.begin(), weights.end());
  if (header.version >= 2) {
    if (!ReadBytes(in, header.n, &record->present)) {
      return Status::InvalidArgument("truncated epoch record");
    }
    for (uint8_t& flag : record->present) {
      if (flag > 1) {
        return Status::InvalidArgument("invalid participation mask");
      }
    }
  }
  record->deltas.resize(header.n);
  for (uint64_t i = 0; i < header.n; ++i) {
    if (!ReadDoubles(in, header.p, &record->deltas[i])) {
      return Status::InvalidArgument("truncated epoch record");
    }
    if (!AllFinite(record->deltas[i])) {
      return Status::InvalidArgument("non-finite delta in epoch record");
    }
  }
  if (!AllFinite(record->params_before) || !AllFinite(weights)) {
    return Status::InvalidArgument("non-finite payload in epoch record");
  }
  return Status::OK();
}

// Reads the post-epoch trailer: final params, validation traces, and (v2)
// fault statistics.
Status ReadTrailer(std::istream& in, const LogHeader& header,
                   HflTrainingLog* log) {
  if (!ReadDoubles(in, header.p, &log->final_params)) {
    return Status::InvalidArgument("truncated final parameters");
  }
  if (!AllFinite(log->final_params)) {
    return Status::InvalidArgument("non-finite final parameters");
  }
  Vec losses, accuracies;
  if (!ReadDoubles(in, header.trace_len, &losses) ||
      !ReadDoubles(in, header.trace_len, &accuracies)) {
    return Status::InvalidArgument("truncated validation traces");
  }
  log->validation_loss.assign(losses.begin(), losses.end());
  log->validation_accuracy.assign(accuracies.begin(), accuracies.end());
  if (header.version >= 2) {
    uint64_t dropouts = 0, stragglers = 0, retries = 0, non_finite = 0,
             norm = 0, num_events = 0;
    if (!ReadU64(in, &dropouts) || !ReadU64(in, &stragglers) ||
        !ReadU64(in, &retries) || !ReadU64(in, &non_finite) ||
        !ReadU64(in, &norm) || !ReadU64(in, &num_events)) {
      return Status::InvalidArgument("truncated fault statistics");
    }
    if (num_events > header.epochs * header.n) {
      return Status::InvalidArgument("implausible quarantine event count");
    }
    log->faults.dropouts = dropouts;
    log->faults.stragglers_dropped = stragglers;
    log->faults.straggler_retries = retries;
    log->faults.quarantined_non_finite = non_finite;
    log->faults.quarantined_norm = norm;
    log->faults.quarantine_events.clear();
    for (uint64_t e = 0; e < num_events; ++e) {
      uint64_t epoch = 0, participant = 0, reason = 0;
      Vec event_norm;
      if (!ReadU64(in, &epoch) || !ReadU64(in, &participant) ||
          !ReadU64(in, &reason) || !ReadDoubles(in, 1, &event_norm)) {
        return Status::InvalidArgument("truncated quarantine events");
      }
      if (reason == 0 ||
          reason > static_cast<uint64_t>(QuarantineReason::kPhiScore) ||
          epoch >= header.epochs || participant >= header.n) {
        return Status::InvalidArgument("invalid quarantine event");
      }
      log->faults.quarantine_events.push_back(QuarantineEvent{
          static_cast<uint32_t>(epoch), static_cast<uint32_t>(participant),
          static_cast<QuarantineReason>(reason), event_norm[0]});
    }
    // The phi counter is not part of the v2 trailer; every phi quarantine
    // records an event, so the counter is recoverable exactly.
    log->faults.quarantined_phi = 0;
    for (const QuarantineEvent& event : log->faults.quarantine_events) {
      if (event.reason == QuarantineReason::kPhiScore) {
        ++log->faults.quarantined_phi;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> SerializeTrainingLog(const HflTrainingLog& log) {
  const size_t epochs = log.epochs.size();
  const size_t n = log.num_participants();
  const size_t p = log.final_params.size();
  for (const HflEpochRecord& record : log.epochs) {
    if (record.deltas.size() != n || record.params_before.size() != p ||
        record.weights.size() != n ||
        (!record.present.empty() && record.present.size() != n)) {
      return Status::InvalidArgument("ragged training log");
    }
    for (const Vec& delta : record.deltas) {
      if (delta.size() != p) {
        return Status::InvalidArgument("ragged training log");
      }
    }
  }
  if (log.validation_loss.size() != epochs ||
      log.validation_accuracy.size() != epochs) {
    // Allow empty validation traces but not mismatched non-empty ones.
    if (!log.validation_loss.empty() || !log.validation_accuracy.empty()) {
      return Status::InvalidArgument("validation trace length mismatch");
    }
  }

  std::ostringstream out(std::ios::binary);
  out.write(kMagicV2, sizeof(kMagicV2));
  WriteU64(out, epochs);
  WriteU64(out, n);
  WriteU64(out, p);
  WriteU64(out, log.validation_loss.size());
  for (const HflEpochRecord& record : log.epochs) {
    WriteDoubles(out, Vec{record.learning_rate});
    WriteDoubles(out, record.params_before);
    WriteDoubles(out, record.weights);
    // Normalize an empty mask to all-present on disk so readers never have
    // to special-case it.
    if (record.present.empty()) {
      WriteBytes(out, std::vector<uint8_t>(n, 1));
    } else {
      WriteBytes(out, record.present);
    }
    for (const Vec& delta : record.deltas) WriteDoubles(out, delta);
  }
  WriteDoubles(out, log.final_params);
  WriteDoubles(out, log.validation_loss);
  WriteDoubles(out, log.validation_accuracy);
  WriteU64(out, log.faults.dropouts);
  WriteU64(out, log.faults.stragglers_dropped);
  WriteU64(out, log.faults.straggler_retries);
  WriteU64(out, log.faults.quarantined_non_finite);
  WriteU64(out, log.faults.quarantined_norm);
  WriteU64(out, log.faults.quarantine_events.size());
  for (const QuarantineEvent& event : log.faults.quarantine_events) {
    WriteU64(out, event.epoch);
    WriteU64(out, event.participant);
    WriteU64(out, static_cast<uint64_t>(event.reason));
    WriteDoubles(out, Vec{event.norm});
  }
  if (!out) return Status::Internal("training log serialization failed");
  return std::move(out).str();
}

Result<HflTrainingLog> ParseTrainingLog(const std::string& data,
                                        const std::string& name) {
  std::istringstream in(data, std::ios::binary);
  LogHeader header;
  DIGFL_RETURN_IF_ERROR(ReadHeader(in, name, &header));

  HflTrainingLog log;
  log.epochs.reserve(header.epochs);
  for (uint64_t t = 0; t < header.epochs; ++t) {
    HflEpochRecord record;
    DIGFL_RETURN_IF_ERROR(ReadEpochRecord(in, header, &record));
    log.epochs.push_back(std::move(record));
  }
  DIGFL_RETURN_IF_ERROR(ReadTrailer(in, header, &log));
  return log;
}

Status SaveTrainingLog(const HflTrainingLog& log, const std::string& path) {
  DIGFL_ASSIGN_OR_RETURN(std::string blob, SerializeTrainingLog(log));
  return ckpt::AtomicWriteFile(path, blob);
}

Result<HflTrainingLog> LoadTrainingLog(const std::string& path) {
  DIGFL_ASSIGN_OR_RETURN(std::string data, ckpt::ReadFileToString(path));
  return ParseTrainingLog(data, path);
}

Result<LogSalvage> SalvageTrainingLog(const std::string& path) {
  DIGFL_ASSIGN_OR_RETURN(std::string data, ckpt::ReadFileToString(path));
  std::istringstream in(data, std::ios::binary);
  LogSalvage salvage;
  LogHeader header;
  DIGFL_RETURN_IF_ERROR(ReadHeader(in, path, &header));
  salvage.epochs_declared = header.epochs;

  for (uint64_t t = 0; t < header.epochs; ++t) {
    HflEpochRecord record;
    if (!ReadEpochRecord(in, header, &record).ok()) break;
    salvage.log.epochs.push_back(std::move(record));
  }
  salvage.epochs_recovered = salvage.log.epochs.size();
  if (salvage.epochs_recovered == 0) {
    return Status::InvalidArgument("no recoverable epochs in " + path);
  }

  if (salvage.epochs_recovered == header.epochs &&
      ReadTrailer(in, header, &salvage.log).ok()) {
    salvage.trailer_intact = true;
  } else {
    // Best effort: the closest recoverable model state is the last clean
    // θ_{t-1}; the traces and fault stats of a torn trailer are discarded
    // rather than half-read.
    salvage.log.final_params = salvage.log.epochs.back().params_before;
    salvage.log.validation_loss.clear();
    salvage.log.validation_accuracy.clear();
    salvage.log.faults = FaultStats{};
  }
  return salvage;
}

}  // namespace digfl
