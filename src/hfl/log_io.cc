#include "hfl/log_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace digfl {
namespace {

constexpr char kMagic[8] = {'D', 'I', 'G', 'F', 'L', 'O', 'G', '1'};

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

// Vec is std::vector<double>, so this covers every trace in the log.
void WriteDoubles(std::ofstream& out, const Vec& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
}

bool ReadU64(std::ifstream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

bool ReadDoubles(std::ifstream& in, size_t count, Vec* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return in.good() || (in.eof() && in.gcount() ==
                       static_cast<std::streamsize>(count * sizeof(double)));
}

}  // namespace

Status SaveTrainingLog(const HflTrainingLog& log, const std::string& path) {
  const size_t epochs = log.epochs.size();
  const size_t n = log.num_participants();
  const size_t p = log.final_params.size();
  for (const HflEpochRecord& record : log.epochs) {
    if (record.deltas.size() != n || record.params_before.size() != p ||
        record.weights.size() != n) {
      return Status::InvalidArgument("ragged training log");
    }
    for (const Vec& delta : record.deltas) {
      if (delta.size() != p) {
        return Status::InvalidArgument("ragged training log");
      }
    }
  }
  if (log.validation_loss.size() != epochs ||
      log.validation_accuracy.size() != epochs) {
    // Allow empty validation traces but not mismatched non-empty ones.
    if (!log.validation_loss.empty() || !log.validation_accuracy.empty()) {
      return Status::InvalidArgument("validation trace length mismatch");
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, epochs);
  WriteU64(out, n);
  WriteU64(out, p);
  WriteU64(out, log.validation_loss.size());
  for (const HflEpochRecord& record : log.epochs) {
    WriteDoubles(out, Vec{record.learning_rate});
    WriteDoubles(out, record.params_before);
    WriteDoubles(out, record.weights);
    for (const Vec& delta : record.deltas) WriteDoubles(out, delta);
  }
  WriteDoubles(out, log.final_params);
  WriteDoubles(out, log.validation_loss);
  WriteDoubles(out, log.validation_accuracy);
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<HflTrainingLog> LoadTrainingLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a DIG-FL training log");
  }
  uint64_t epochs = 0, n = 0, p = 0, trace_len = 0;
  if (!ReadU64(in, &epochs) || !ReadU64(in, &n) || !ReadU64(in, &p) ||
      !ReadU64(in, &trace_len)) {
    return Status::InvalidArgument("truncated log header");
  }
  // Basic sanity bounds before allocating.
  if (epochs > (1u << 24) || n > (1u << 20) || p > (1ull << 32)) {
    return Status::InvalidArgument("implausible log header");
  }

  HflTrainingLog log;
  log.epochs.reserve(epochs);
  for (uint64_t t = 0; t < epochs; ++t) {
    HflEpochRecord record;
    Vec lr;
    if (!ReadDoubles(in, 1, &lr)) {
      return Status::InvalidArgument("truncated epoch record");
    }
    record.learning_rate = lr[0];
    if (!ReadDoubles(in, p, &record.params_before)) {
      return Status::InvalidArgument("truncated epoch record");
    }
    Vec weights;
    if (!ReadDoubles(in, n, &weights)) {
      return Status::InvalidArgument("truncated epoch record");
    }
    record.weights.assign(weights.begin(), weights.end());
    record.deltas.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!ReadDoubles(in, p, &record.deltas[i])) {
        return Status::InvalidArgument("truncated epoch record");
      }
    }
    log.epochs.push_back(std::move(record));
  }
  if (!ReadDoubles(in, p, &log.final_params)) {
    return Status::InvalidArgument("truncated final parameters");
  }
  Vec losses, accuracies;
  if (!ReadDoubles(in, trace_len, &losses) ||
      !ReadDoubles(in, trace_len, &accuracies)) {
    return Status::InvalidArgument("truncated validation traces");
  }
  log.validation_loss.assign(losses.begin(), losses.end());
  log.validation_accuracy.assign(accuracies.begin(), accuracies.end());
  return log;
}

}  // namespace digfl
