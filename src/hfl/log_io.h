// Persistence for HFL training logs.
//
// DIG-FL's whole premise is that contributions are computable from the
// training log after the fact; these helpers let a deployment write the
// log during training and re-run any contribution analysis offline
// (different evaluator modes, reweight what-ifs, audits) without retraining.
//
// Format: versioned little-endian binary. v2 ("DHFLLOG2") adds the
// per-epoch participation mask and the run's fault statistics; v1
// ("DIGFLOG1") files remain loadable. The CommMeter is transient
// bookkeeping and is not persisted.
//
// Deserialization is defensive: truncated files, bad magic/version,
// inconsistent dimensions, implausible headers, and non-finite payloads all
// come back as typed Status errors — never an abort or a garbage log. For a
// log whose tail was lost (crashed server, torn write), SalvageTrainingLog
// recovers the longest valid epoch prefix instead of failing outright.

#ifndef DIGFL_HFL_LOG_IO_H_
#define DIGFL_HFL_LOG_IO_H_

#include <string>

#include "common/result.h"
#include "hfl/fed_sgd.h"

namespace digfl {

// Serializes `log` to the v2 byte layout (the exact bytes SaveTrainingLog
// writes). Fails on a log with ragged epoch records. Exposed so checkpoints
// can embed a training log inside a larger framed record.
Result<std::string> SerializeTrainingLog(const HflTrainingLog& log);

// Parses a v1/v2 byte image previously produced by SerializeTrainingLog /
// SaveTrainingLog. `name` labels error messages (a path, a record tag, ...).
Result<HflTrainingLog> ParseTrainingLog(const std::string& data,
                                        const std::string& name);

// Writes `log` to `path` (v2 layout) via the crash-safe atomic writer
// (ckpt/atomic_file.h): a crash mid-save leaves the previous file intact,
// never a torn one. Fails on I/O errors or a log with ragged epoch records.
Status SaveTrainingLog(const HflTrainingLog& log, const std::string& path);

// Reads a log previously written by SaveTrainingLog (v1 or v2). Fails on
// missing file, bad magic/version, truncated or dimensionally inconsistent
// payload, or non-finite model data.
Result<HflTrainingLog> LoadTrainingLog(const std::string& path);

// Best-effort recovery of a damaged log file.
struct LogSalvage {
  HflTrainingLog log;
  size_t epochs_recovered = 0;  // epochs that parsed cleanly
  size_t epochs_declared = 0;   // epochs the header promised
  // True when the trailer (final params + traces + fault stats) was intact;
  // false means final_params was reconstructed as the last recovered
  // θ_{t-1} and the validation traces were truncated to match.
  bool trailer_intact = false;
};

// Recovers the longest valid epoch prefix of `path`. Requires an intact
// magic/header and at least one clean epoch; epochs are cut at the first
// truncation or non-finite payload.
Result<LogSalvage> SalvageTrainingLog(const std::string& path);

}  // namespace digfl

#endif  // DIGFL_HFL_LOG_IO_H_
