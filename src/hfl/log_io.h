// Persistence for HFL training logs.
//
// DIG-FL's whole premise is that contributions are computable from the
// training log after the fact; these helpers let a deployment write the
// log during training and re-run any contribution analysis offline
// (different evaluator modes, reweight what-ifs, audits) without retraining.
//
// Format: versioned little-endian binary. v2 ("DHFLLOG2") adds the
// per-epoch participation mask and the run's fault statistics; v1
// ("DIGFLOG1") files remain loadable. The CommMeter is transient
// bookkeeping and is not persisted.
//
// Deserialization is defensive: truncated files, bad magic/version,
// inconsistent dimensions, implausible headers, and non-finite payloads all
// come back as typed Status errors — never an abort or a garbage log. For a
// log whose tail was lost (crashed server, torn write), SalvageTrainingLog
// recovers the longest valid epoch prefix instead of failing outright.

#ifndef DIGFL_HFL_LOG_IO_H_
#define DIGFL_HFL_LOG_IO_H_

#include <string>

#include "common/result.h"
#include "hfl/fed_sgd.h"

namespace digfl {

// Writes `log` to `path` (v2 layout), overwriting. Fails on I/O errors or a
// log with ragged epoch records.
Status SaveTrainingLog(const HflTrainingLog& log, const std::string& path);

// Reads a log previously written by SaveTrainingLog (v1 or v2). Fails on
// missing file, bad magic/version, truncated or dimensionally inconsistent
// payload, or non-finite model data.
Result<HflTrainingLog> LoadTrainingLog(const std::string& path);

// Best-effort recovery of a damaged log file.
struct LogSalvage {
  HflTrainingLog log;
  size_t epochs_recovered = 0;  // epochs that parsed cleanly
  size_t epochs_declared = 0;   // epochs the header promised
  // True when the trailer (final params + traces + fault stats) was intact;
  // false means final_params was reconstructed as the last recovered
  // θ_{t-1} and the validation traces were truncated to match.
  bool trailer_intact = false;
};

// Recovers the longest valid epoch prefix of `path`. Requires an intact
// magic/header and at least one clean epoch; epochs are cut at the first
// truncation or non-finite payload.
Result<LogSalvage> SalvageTrainingLog(const std::string& path);

}  // namespace digfl

#endif  // DIGFL_HFL_LOG_IO_H_
