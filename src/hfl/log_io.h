// Persistence for HFL training logs.
//
// DIG-FL's whole premise is that contributions are computable from the
// training log after the fact; these helpers let a deployment write the
// log during training and re-run any contribution analysis offline
// (different evaluator modes, reweight what-ifs, audits) without retraining.
//
// Format: versioned little-endian binary ("DIGFLOG1"). The CommMeter is
// transient bookkeeping and is not persisted.

#ifndef DIGFL_HFL_LOG_IO_H_
#define DIGFL_HFL_LOG_IO_H_

#include <string>

#include "common/result.h"
#include "hfl/fed_sgd.h"

namespace digfl {

// Writes `log` to `path`, overwriting. Fails on I/O errors or a log with
// ragged epoch records.
Status SaveTrainingLog(const HflTrainingLog& log, const std::string& path);

// Reads a log previously written by SaveTrainingLog. Fails on missing
// file, bad magic/version, or a truncated/corrupt payload.
Result<HflTrainingLog> LoadTrainingLog(const std::string& path);

}  // namespace digfl

#endif  // DIGFL_HFL_LOG_IO_H_
