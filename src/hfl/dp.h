// Gaussian-mechanism update perturbation (differential privacy for HFL
// uploads, per the techniques the paper cites [32]).
//
// Each local update is L2-clipped to `clip_norm` and perturbed with
// isotropic Gaussian noise of scale noise_multiplier · clip_norm — the
// standard DP-FedSGD recipe. DIG-FL keeps working on noised updates (the
// validation-gradient inner product is linear, so the noise is zero-mean in
// φ̂); the tests quantify how estimation accuracy degrades with the noise
// multiplier.

#ifndef DIGFL_HFL_DP_H_
#define DIGFL_HFL_DP_H_

#include "common/result.h"
#include "common/rng.h"
#include "tensor/vec.h"

namespace digfl {

struct GaussianMechanismConfig {
  double clip_norm = 1.0;         // L2 bound applied before noising
  double noise_multiplier = 0.0;  // σ = noise_multiplier * clip_norm
};

// Returns clip(update) + N(0, σ² I). noise_multiplier == 0 is pure
// clipping.
Result<Vec> ApplyGaussianMechanism(const Vec& update,
                                   const GaussianMechanismConfig& config,
                                   Rng& rng);

}  // namespace digfl

#endif  // DIGFL_HFL_DP_H_
