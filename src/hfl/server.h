// HflServer: aggregation and validation-side computations.
//
// The server owns the (small, high-quality) validation dataset D^v and the
// global model state. It aggregates participant updates — uniformly
// (FedSGD) or with per-epoch weights (the DIG-FL reweight mechanism) — and
// evaluates validation loss/gradients, which is all DIG-FL needs from it.

#ifndef DIGFL_HFL_SERVER_H_
#define DIGFL_HFL_SERVER_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace digfl {

class HflServer {
 public:
  HflServer(const Model& model, Dataset validation_data)
      : model_(model.Clone()), validation_(std::move(validation_data)) {}

  // Uniform FedSGD aggregation: G_t = (1/n) Σ δ_{t,i}.
  static Result<Vec> AggregateUniform(const std::vector<Vec>& deltas);

  // Weighted aggregation (Eq. 21): G̃_t = Σ ω_{t,i} δ_{t,i}.
  static Result<Vec> AggregateWeighted(const std::vector<Vec>& deltas,
                                       const std::vector<double>& weights);

  // ∇loss^v(params) — the validation gradient in Lemma 3 / Eq. 19.
  Result<Vec> ValidationGradient(const Vec& params) const;
  Result<double> ValidationLoss(const Vec& params) const;
  Result<double> ValidationAccuracy(const Vec& params) const;

  const Dataset& validation_data() const { return validation_; }
  const Model& model() const { return *model_; }

 private:
  std::unique_ptr<Model> model_;
  Dataset validation_;
};

}  // namespace digfl

#endif  // DIGFL_HFL_SERVER_H_
