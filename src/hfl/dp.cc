#include "hfl/dp.h"

namespace digfl {

Result<Vec> ApplyGaussianMechanism(const Vec& update,
                                   const GaussianMechanismConfig& config,
                                   Rng& rng) {
  if (config.clip_norm <= 0) {
    return Status::InvalidArgument("clip_norm must be > 0");
  }
  if (config.noise_multiplier < 0) {
    return Status::InvalidArgument("negative noise_multiplier");
  }
  Vec out = update;
  const double norm = vec::Norm2(out);
  if (norm > config.clip_norm) {
    vec::Scale(config.clip_norm / norm, out);
  }
  const double sigma = config.noise_multiplier * config.clip_norm;
  if (sigma > 0) {
    for (double& v : out) v += rng.Gaussian(0.0, sigma);
  }
  return out;
}

}  // namespace digfl
