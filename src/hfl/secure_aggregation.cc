#include "hfl/secure_aggregation.h"

namespace digfl {

Result<SecureAggregationSession> SecureAggregationSession::Setup(
    size_t num_participants, size_t dim, uint64_t session_seed) {
  if (num_participants < 2) {
    return Status::InvalidArgument("secure aggregation needs >= 2 parties");
  }
  if (dim == 0) return Status::InvalidArgument("zero-dimensional updates");
  return SecureAggregationSession(num_participants, dim, session_seed);
}

Vec SecureAggregationSession::PairMask(size_t i, size_t j) const {
  // One independent stream per ordered pair (i < j).
  Rng rng = Rng(session_seed_).Fork(i * num_participants_ + j);
  Vec mask(dim_);
  for (double& v : mask) v = rng.Gaussian(0.0, 1.0);
  return mask;
}

Result<Vec> SecureAggregationSession::MaskUpdate(size_t participant,
                                                 const Vec& update) const {
  if (participant >= num_participants_) {
    return Status::OutOfRange("participant index out of range");
  }
  if (update.size() != dim_) {
    return Status::InvalidArgument("update dimension mismatch");
  }
  Vec masked = update;
  for (size_t j = participant + 1; j < num_participants_; ++j) {
    vec::Axpy(1.0, PairMask(participant, j), masked);
  }
  for (size_t j = 0; j < participant; ++j) {
    vec::Axpy(-1.0, PairMask(j, participant), masked);
  }
  return masked;
}

Result<Vec> SecureAggregationSession::AggregateMasked(
    const std::vector<Vec>& masked_updates,
    const std::vector<uint8_t>* present) const {
  // The pairwise masks only cancel over the full roster; an absent
  // participant would leave every partner's mask un-negated and the "sum"
  // would be mask noise. Detect every representation of absence and refuse.
  if (masked_updates.size() != num_participants_) {
    return Status::FailedPrecondition(
        "secure aggregation requires one upload per participant "
        "(no-dropout contract): got " +
        std::to_string(masked_updates.size()) + " of " +
        std::to_string(num_participants_));
  }
  if (present != nullptr) {
    if (present->size() != num_participants_) {
      return Status::InvalidArgument("participation mask size mismatch");
    }
    for (size_t i = 0; i < present->size(); ++i) {
      if (!(*present)[i]) {
        return Status::FailedPrecondition(
            "participant " + std::to_string(i) +
            " absent: pairwise masks cannot cancel (no-dropout contract)");
      }
    }
  }
  Vec sum = vec::Zeros(dim_);
  for (size_t i = 0; i < masked_updates.size(); ++i) {
    const Vec& upload = masked_updates[i];
    if (upload.empty()) {
      return Status::FailedPrecondition(
          "participant " + std::to_string(i) +
          " uploaded nothing: pairwise masks cannot cancel "
          "(no-dropout contract)");
    }
    if (upload.size() != dim_) {
      return Status::InvalidArgument("upload dimension mismatch");
    }
    vec::Axpy(1.0, upload, sum);
  }
  return sum;
}

}  // namespace digfl
