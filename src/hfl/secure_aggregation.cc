#include "hfl/secure_aggregation.h"

namespace digfl {

Result<SecureAggregationSession> SecureAggregationSession::Setup(
    size_t num_participants, size_t dim, uint64_t session_seed) {
  if (num_participants < 2) {
    return Status::InvalidArgument("secure aggregation needs >= 2 parties");
  }
  if (dim == 0) return Status::InvalidArgument("zero-dimensional updates");
  return SecureAggregationSession(num_participants, dim, session_seed);
}

Vec SecureAggregationSession::PairMask(size_t i, size_t j) const {
  // One independent stream per ordered pair (i < j).
  Rng rng = Rng(session_seed_).Fork(i * num_participants_ + j);
  Vec mask(dim_);
  for (double& v : mask) v = rng.Gaussian(0.0, 1.0);
  return mask;
}

Result<Vec> SecureAggregationSession::MaskUpdate(size_t participant,
                                                 const Vec& update) const {
  if (participant >= num_participants_) {
    return Status::OutOfRange("participant index out of range");
  }
  if (update.size() != dim_) {
    return Status::InvalidArgument("update dimension mismatch");
  }
  Vec masked = update;
  for (size_t j = participant + 1; j < num_participants_; ++j) {
    vec::Axpy(1.0, PairMask(participant, j), masked);
  }
  for (size_t j = 0; j < participant; ++j) {
    vec::Axpy(-1.0, PairMask(j, participant), masked);
  }
  return masked;
}

Result<Vec> SecureAggregationSession::AggregateMasked(
    const std::vector<Vec>& masked_updates) const {
  if (masked_updates.size() != num_participants_) {
    return Status::InvalidArgument("expected one upload per participant");
  }
  Vec sum = vec::Zeros(dim_);
  for (const Vec& upload : masked_updates) {
    if (upload.size() != dim_) {
      return Status::InvalidArgument("upload dimension mismatch");
    }
    vec::Axpy(1.0, upload, sum);
  }
  return sum;
}

}  // namespace digfl
