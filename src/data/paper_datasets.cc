#include "data/paper_datasets.h"

#include <algorithm>
#include <cmath>

#include "data/synthetic.h"

namespace digfl {
namespace {

struct DatasetProfile {
  const char* name;
  const char* code;
  PaperModel model;
  size_t table1_samples;   // rows in Table I
  size_t num_features;     // Table I columns minus target (VFL) or our
                           // synthetic feature dim (HFL image sets)
  int num_classes;         // 0 = regression
  double separation;       // class separation (classification)
  double noise;            // noise stddev / label noise
  size_t participants;     // paper's n
};

// Difficulty profiles. HFL image sets do not have meaningful tabular
// dimensions, so we choose synthetic feature dims; separation/noise are
// tuned so MNIST-like is easy (>95% achievable), CIFAR-like hard,
// REAL-like noisy. VFL sets reproduce the Table I shapes.
DatasetProfile GetProfile(PaperDatasetId id) {
  switch (id) {
    case PaperDatasetId::kMnist:
      return {"MNIST", "D_M", PaperModel::kHflCnn, 70000, 32, 10, 1.8, 1.0, 10};
    case PaperDatasetId::kCifar10:
      return {"CIFAR10", "D_C", PaperModel::kHflCnn, 60000, 48, 10, 1.2, 1.3, 5};
    case PaperDatasetId::kMotor:
      return {"MOTOR", "D_O", PaperModel::kHflCnn, 11000, 24, 2, 1.5, 1.1, 5};
    case PaperDatasetId::kReal:
      return {"REAL", "D_R", PaperModel::kHflCnn, 110000, 40, 10, 1.3, 1.5, 5};
    case PaperDatasetId::kBoston:
      return {"Boston", "D_B", PaperModel::kVflLinReg, 506, 13, 0, 0, 0.15, 13};
    case PaperDatasetId::kDiabetes:
      return {"Diabetes", "D_D", PaperModel::kVflLinReg, 442, 10, 0, 0, 0.2, 10};
    case PaperDatasetId::kWineQuality:
      return {"WineQuality", "D_Wq", PaperModel::kVflLinReg, 4898, 11, 0, 0,
              0.25, 11};
    case PaperDatasetId::kSeoulBike:
      return {"SeoulBike", "D_S", PaperModel::kVflLinReg, 17379, 14, 0, 0,
              0.2, 14};
    case PaperDatasetId::kCalifornia:
      return {"California", "D_Ca", PaperModel::kVflLinReg, 20641, 8, 0, 0,
              0.25, 8};
    case PaperDatasetId::kIris:
      return {"Iris", "D_I", PaperModel::kVflLogReg, 150, 4, 2, 0, 0.02, 4};
    case PaperDatasetId::kWine:
      return {"Wine", "D_W", PaperModel::kVflLogReg, 173, 13, 2, 0, 0.05, 13};
    case PaperDatasetId::kBreastCancer:
      return {"BreastCancer", "D_Bc", PaperModel::kVflLogReg, 569, 30, 2, 0,
              0.03, 15};
    case PaperDatasetId::kCreditCard:
      return {"CreditCard", "D_Cc", PaperModel::kVflLogReg, 30000, 22, 2, 0,
              0.1, 11};
    case PaperDatasetId::kAdult:
      return {"Adult", "D_A", PaperModel::kVflLogReg, 48842, 14, 2, 0, 0.1, 14};
  }
  return {"?", "?", PaperModel::kHflCnn, 0, 0, 0, 0, 0, 0};
}

}  // namespace

Result<PaperDatasetSpec> MakePaperDataset(PaperDatasetId id,
                                          const PaperDatasetOptions& options) {
  if (options.sample_fraction <= 0) {
    return Status::InvalidArgument("sample_fraction must be > 0");
  }
  const DatasetProfile profile = GetProfile(id);
  const size_t samples = std::max<size_t>(
      64, static_cast<size_t>(
              std::llround(profile.table1_samples * options.sample_fraction)));

  PaperDatasetSpec spec;
  spec.id = id;
  spec.name = profile.name;
  spec.code = profile.code;
  spec.model = profile.model;
  spec.paper_num_participants = profile.participants;

  switch (profile.model) {
    case PaperModel::kHflCnn: {
      GaussianClassificationConfig config;
      config.num_samples = samples;
      config.num_features = profile.num_features;
      config.num_classes = profile.num_classes;
      config.class_separation = profile.separation;
      config.noise_stddev = profile.noise;
      config.seed = options.seed ^ (static_cast<uint64_t>(id) << 8);
      DIGFL_ASSIGN_OR_RETURN(spec.data, MakeGaussianClassification(config));
      break;
    }
    case PaperModel::kVflLinReg: {
      SyntheticRegressionConfig config;
      config.num_samples = samples;
      config.num_features = profile.num_features;
      config.noise_stddev = profile.noise;
      // Graded per-feature informativeness: one block per eventual VFL
      // participant, geometric decay, so participant Shapley values are
      // genuinely heterogeneous.
      config.feature_scales = DecayingFeatureScales(
          profile.num_features, profile.participants, 0.75);
      config.seed = options.seed ^ (static_cast<uint64_t>(id) << 8);
      DIGFL_ASSIGN_OR_RETURN(spec.data, MakeSyntheticRegression(config));
      break;
    }
    case PaperModel::kVflLogReg: {
      SyntheticLogisticConfig config;
      config.num_samples = samples;
      config.num_features = profile.num_features;
      config.label_noise = profile.noise;
      config.feature_scales = DecayingFeatureScales(
          profile.num_features, profile.participants, 0.75);
      config.seed = options.seed ^ (static_cast<uint64_t>(id) << 8);
      DIGFL_ASSIGN_OR_RETURN(spec.data, MakeSyntheticLogistic(config));
      break;
    }
  }
  return spec;
}

std::vector<PaperDatasetId> HflDatasetIds() {
  return {PaperDatasetId::kMnist, PaperDatasetId::kCifar10,
          PaperDatasetId::kMotor, PaperDatasetId::kReal};
}

std::vector<PaperDatasetId> VflDatasetIds() {
  return {PaperDatasetId::kBoston,       PaperDatasetId::kDiabetes,
          PaperDatasetId::kWineQuality,  PaperDatasetId::kSeoulBike,
          PaperDatasetId::kCalifornia,   PaperDatasetId::kIris,
          PaperDatasetId::kWine,         PaperDatasetId::kBreastCancer,
          PaperDatasetId::kCreditCard,   PaperDatasetId::kAdult};
}

std::string PaperDatasetName(PaperDatasetId id) { return GetProfile(id).name; }

}  // namespace digfl
