// Named factories for the 14 datasets of the paper's Table I.
//
// Each factory produces a synthetic stand-in (see DESIGN.md §3) whose shape
// follows Table I and whose difficulty profile is tuned per dataset:
// MNIST-like is well-separated, CIFAR10-like overlaps heavily, MOTOR-like is
// binary, REAL-like is noisy web data. The VFL tabular sets reproduce the
// row x column shapes of the UCI/Kaggle originals and the participant counts
// of Table III (one-ish feature per participant).

#ifndef DIGFL_DATA_PAPER_DATASETS_H_
#define DIGFL_DATA_PAPER_DATASETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace digfl {

enum class PaperDatasetId {
  // HFL image-classification sets.
  kMnist,        // D_M
  kCifar10,      // D_C
  kMotor,        // D_O
  kReal,         // D_R
  // VFL regression sets.
  kBoston,       // D_B
  kDiabetes,     // D_D
  kWineQuality,  // D_Wq
  kSeoulBike,    // D_S
  kCalifornia,   // D_Ca
  // VFL classification sets.
  kIris,         // D_I
  kWine,         // D_W
  kBreastCancer, // D_Bc
  kCreditCard,   // D_Cc
  kAdult,        // D_A
};

// Which model the paper trains on this dataset.
enum class PaperModel {
  kHflCnn,      // we substitute an MLP classifier (DESIGN.md §3)
  kVflLinReg,
  kVflLogReg,
};

struct PaperDatasetSpec {
  PaperDatasetId id;
  std::string name;        // e.g. "MNIST"
  std::string code;        // e.g. "D_M"
  PaperModel model;
  Dataset data;            // full pool; experiments split D^v off this
  // Participant count used in the paper's evaluation (Table III for VFL;
  // n=10 for MNIST, n=5 for the other HFL sets).
  size_t paper_num_participants;
};

struct PaperDatasetOptions {
  // Multiplies the Table I sample count; large HFL sets default well below
  // 1.0 so every bench stays laptop-scale. Clamped to >= 64 samples.
  double sample_fraction = 1.0;
  uint64_t seed = 7;
};

// Builds one dataset. `sample_fraction` <= 0 is invalid.
Result<PaperDatasetSpec> MakePaperDataset(PaperDatasetId id,
                                          const PaperDatasetOptions& options);

// All four HFL sets / all ten VFL sets, in Table I order.
std::vector<PaperDatasetId> HflDatasetIds();
std::vector<PaperDatasetId> VflDatasetIds();

// Short name lookup ("MNIST", "Boston", ...).
std::string PaperDatasetName(PaperDatasetId id);

}  // namespace digfl

#endif  // DIGFL_DATA_PAPER_DATASETS_H_
