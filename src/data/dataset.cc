#include "data/dataset.h"

#include <algorithm>
#include <cmath>

namespace digfl {

Status Dataset::Validate() const {
  if (y.size() != x.rows()) {
    return Status::InvalidArgument(
        "target count " + std::to_string(y.size()) + " != sample count " +
        std::to_string(x.rows()));
  }
  if (num_classes < 0) {
    return Status::InvalidArgument("negative num_classes");
  }
  if (num_classes > 0) {
    for (size_t i = 0; i < y.size(); ++i) {
      const double label = y[i];
      if (label != std::floor(label) || label < 0 || label >= num_classes) {
        return Status::InvalidArgument(
            "label " + std::to_string(label) + " at sample " +
            std::to_string(i) + " outside [0, " + std::to_string(num_classes) +
            ")");
      }
    }
  }
  return Status::OK();
}

Result<Dataset> Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  DIGFL_ASSIGN_OR_RETURN(out.x, x.SelectRows(indices));
  out.y.reserve(indices.size());
  for (size_t idx : indices) {
    if (idx >= y.size()) {
      return Status::OutOfRange("sample index " + std::to_string(idx) +
                                " >= " + std::to_string(y.size()));
    }
    out.y.push_back(y[idx]);
  }
  out.num_classes = num_classes;
  return out;
}

Result<Dataset> Dataset::SliceFeatures(size_t begin, size_t end) const {
  Dataset out;
  DIGFL_ASSIGN_OR_RETURN(out.x, x.SelectColumns(begin, end));
  out.y = y;
  out.num_classes = num_classes;
  return out;
}

Result<Dataset> Dataset::Concat(const std::vector<Dataset>& parts) {
  if (parts.empty()) return Status::InvalidArgument("Concat of zero datasets");
  size_t total = 0;
  for (const Dataset& part : parts) {
    if (part.num_features() != parts[0].num_features()) {
      return Status::InvalidArgument("Concat feature width mismatch");
    }
    if (part.num_classes != parts[0].num_classes) {
      return Status::InvalidArgument("Concat num_classes mismatch");
    }
    total += part.size();
  }
  Dataset out;
  out.x = Matrix(total, parts[0].num_features());
  out.y.reserve(total);
  out.num_classes = parts[0].num_classes;
  size_t row = 0;
  for (const Dataset& part : parts) {
    for (size_t r = 0; r < part.size(); ++r, ++row) {
      auto src = part.x.Row(r);
      std::copy(src.begin(), src.end(), out.x.MutableRow(row).begin());
      out.y.push_back(part.y[r]);
    }
  }
  return out;
}

Result<std::pair<Dataset, Dataset>> SplitHoldout(const Dataset& data,
                                                 double holdout_fraction,
                                                 Rng& rng) {
  if (holdout_fraction <= 0.0 || holdout_fraction >= 1.0) {
    return Status::InvalidArgument("holdout_fraction must be in (0, 1)");
  }
  const size_t n = data.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 samples to split");
  std::vector<size_t> perm = rng.Permutation(n);
  size_t holdout_count = static_cast<size_t>(std::round(n * holdout_fraction));
  holdout_count = std::max<size_t>(1, std::min(holdout_count, n - 1));
  std::vector<size_t> holdout_idx(perm.begin(), perm.begin() + holdout_count);
  std::vector<size_t> train_idx(perm.begin() + holdout_count, perm.end());
  DIGFL_ASSIGN_OR_RETURN(Dataset train, data.Subset(train_idx));
  DIGFL_ASSIGN_OR_RETURN(Dataset holdout, data.Subset(holdout_idx));
  return std::make_pair(std::move(train), std::move(holdout));
}

}  // namespace digfl
