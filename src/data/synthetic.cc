#include "data/synthetic.h"

#include <cmath>

namespace digfl {

Result<Dataset> MakeGaussianClassification(
    const GaussianClassificationConfig& config) {
  if (config.num_samples == 0 || config.num_features == 0) {
    return Status::InvalidArgument("empty dataset requested");
  }
  if (config.num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  if (config.noise_stddev < 0 || config.class_separation < 0) {
    return Status::InvalidArgument("negative stddev/separation");
  }
  Rng rng(config.seed);

  // Class means, fixed per seed.
  std::vector<Vec> means(config.num_classes, Vec(config.num_features));
  for (auto& mean : means) {
    for (double& m : mean) {
      m = rng.Uniform(-config.class_separation, config.class_separation);
    }
  }

  Dataset out;
  out.x = Matrix(config.num_samples, config.num_features);
  out.y.resize(config.num_samples);
  out.num_classes = config.num_classes;
  for (size_t i = 0; i < config.num_samples; ++i) {
    const int label = static_cast<int>(rng.UniformInt(config.num_classes));
    out.y[i] = label;
    auto row = out.x.MutableRow(i);
    for (size_t j = 0; j < config.num_features; ++j) {
      row[j] = means[label][j] + rng.Gaussian(0.0, config.noise_stddev);
    }
  }
  return out;
}

namespace {

// Draws the ground-truth weight vector with per-feature scaling.
Result<Vec> TrueWeights(size_t num_features,
                        const std::vector<double>& feature_scales, Rng& rng) {
  if (!feature_scales.empty() && feature_scales.size() != num_features) {
    return Status::InvalidArgument(
        "feature_scales size " + std::to_string(feature_scales.size()) +
        " != num_features " + std::to_string(num_features));
  }
  Vec w(num_features);
  for (size_t j = 0; j < num_features; ++j) {
    const double scale = feature_scales.empty() ? 1.0 : feature_scales[j];
    w[j] = scale * rng.Gaussian(0.0, 1.0);
  }
  return w;
}

}  // namespace

Result<Dataset> MakeSyntheticRegression(
    const SyntheticRegressionConfig& config) {
  if (config.num_samples == 0 || config.num_features == 0) {
    return Status::InvalidArgument("empty dataset requested");
  }
  if (config.noise_stddev < 0) {
    return Status::InvalidArgument("negative noise_stddev");
  }
  Rng rng(config.seed);
  DIGFL_ASSIGN_OR_RETURN(
      Vec w, TrueWeights(config.num_features, config.feature_scales, rng));

  Dataset out;
  out.x = Matrix(config.num_samples, config.num_features);
  out.y.resize(config.num_samples);
  out.num_classes = 0;
  for (size_t i = 0; i < config.num_samples; ++i) {
    auto row = out.x.MutableRow(i);
    double dot = 0.0;
    for (size_t j = 0; j < config.num_features; ++j) {
      row[j] = rng.Gaussian(0.0, 1.0);
      dot += row[j] * w[j];
    }
    out.y[i] = dot + rng.Gaussian(0.0, config.noise_stddev);
  }
  return out;
}

Result<Dataset> MakeSyntheticLogistic(const SyntheticLogisticConfig& config) {
  if (config.num_samples == 0 || config.num_features == 0) {
    return Status::InvalidArgument("empty dataset requested");
  }
  if (config.label_noise < 0 || config.label_noise > 1) {
    return Status::InvalidArgument("label_noise must be in [0, 1]");
  }
  Rng rng(config.seed);
  DIGFL_ASSIGN_OR_RETURN(
      Vec w, TrueWeights(config.num_features, config.feature_scales, rng));

  Dataset out;
  out.x = Matrix(config.num_samples, config.num_features);
  out.y.resize(config.num_samples);
  out.num_classes = 2;
  for (size_t i = 0; i < config.num_samples; ++i) {
    auto row = out.x.MutableRow(i);
    double dot = 0.0;
    for (size_t j = 0; j < config.num_features; ++j) {
      row[j] = rng.Gaussian(0.0, 1.0);
      dot += row[j] * w[j];
    }
    const double p = 1.0 / (1.0 + std::exp(-dot));
    int label = rng.Bernoulli(p) ? 1 : 0;
    if (config.label_noise > 0 && rng.Bernoulli(config.label_noise)) {
      label = 1 - label;
    }
    out.y[i] = label;
  }
  return out;
}

std::vector<double> DecayingFeatureScales(size_t num_features,
                                          size_t num_blocks, double decay) {
  std::vector<double> scales(num_features, 1.0);
  if (num_blocks == 0) return scales;
  for (size_t j = 0; j < num_features; ++j) {
    const size_t block = j * num_blocks / num_features;
    scales[j] = std::pow(decay, static_cast<double>(block));
  }
  return scales;
}

}  // namespace digfl
