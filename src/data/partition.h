// Horizontal and vertical partitioners: how the global training set is
// distributed across federated participants.
//
// The HFL experiments in the paper distinguish participants by *how* their
// shard was drawn: IID shards, non-IID label shards (only a subset of the
// classes), or corrupted shards (see corruption.h).

#ifndef DIGFL_DATA_PARTITION_H_
#define DIGFL_DATA_PARTITION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace digfl {

// Splits `data` into `num_parts` near-equal IID shards (random permutation,
// contiguous slices).
Result<std::vector<Dataset>> PartitionIid(const Dataset& data,
                                          size_t num_parts, Rng& rng);

// Non-IID label partition matching the paper's setup: the first
// `num_iid_parts` shards receive samples from every class (IID), while each
// remaining shard only receives samples from a random subset of
// `classes_per_biased_part` classes. Every sample is assigned to exactly one
// shard; shards are near-equal in size.
struct NonIidPartitionConfig {
  size_t num_parts = 5;
  size_t num_iid_parts = 4;
  // Classes available to each non-IID shard (1 <= value < num_classes).
  size_t classes_per_biased_part = 2;
};

Result<std::vector<Dataset>> PartitionNonIid(const Dataset& data,
                                             const NonIidPartitionConfig& config,
                                             Rng& rng);

// Vertical partition: participant i owns the contiguous feature columns
// [begin, end). Produced by SplitFeatureBlocks and consumed by the VFL
// substrate.
struct FeatureBlock {
  size_t begin = 0;
  size_t end = 0;
  size_t width() const { return end - begin; }
};

// Splits `num_features` into `num_parts` contiguous near-equal blocks.
Result<std::vector<FeatureBlock>> SplitFeatureBlocks(size_t num_features,
                                                     size_t num_parts);

}  // namespace digfl

#endif  // DIGFL_DATA_PARTITION_H_
