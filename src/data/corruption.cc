#include "data/corruption.h"

namespace digfl {

Result<Dataset> MislabelFraction(const Dataset& data, double fraction,
                                 Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  if (data.num_classes < 2) {
    return Status::InvalidArgument("mislabeling needs classification data");
  }
  Dataset out = data;
  const size_t count = static_cast<size_t>(fraction * data.size());
  std::vector<size_t> perm = rng.Permutation(data.size());
  for (size_t k = 0; k < count; ++k) {
    const size_t i = perm[k];
    const int original = data.Label(i);
    // Uniform over the other num_classes - 1 labels.
    int wrong = static_cast<int>(rng.UniformInt(data.num_classes - 1));
    if (wrong >= original) wrong++;
    out.y[i] = wrong;
  }
  return out;
}

Result<Dataset> AddFeatureNoise(const Dataset& data, double fraction,
                                double stddev, Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  if (stddev < 0.0) return Status::InvalidArgument("negative stddev");
  Dataset out = data;
  const size_t count = static_cast<size_t>(fraction * data.size());
  std::vector<size_t> perm = rng.Permutation(data.size());
  for (size_t k = 0; k < count; ++k) {
    auto row = out.x.MutableRow(perm[k]);
    for (double& v : row) v += rng.Gaussian(0.0, stddev);
  }
  return out;
}

}  // namespace digfl
