// Data-quality corruptions used to create the paper's "low-contribution"
// participants: mislabeled shards (labels replaced by random wrong labels)
// and feature noise.

#ifndef DIGFL_DATA_CORRUPTION_H_
#define DIGFL_DATA_CORRUPTION_H_

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace digfl {

// Replaces the labels of `fraction` of the samples with uniformly random
// *incorrect* labels (paper: 50% or 30% mislabeled). Classification only.
Result<Dataset> MislabelFraction(const Dataset& data, double fraction,
                                 Rng& rng);

// Adds N(0, stddev^2) noise to every feature of `fraction` of the samples;
// used to model erroneous sensor data for regression tasks.
Result<Dataset> AddFeatureNoise(const Dataset& data, double fraction,
                                double stddev, Rng& rng);

}  // namespace digfl

#endif  // DIGFL_DATA_CORRUPTION_H_
