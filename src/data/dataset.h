// Dataset: a dense feature matrix plus targets.
//
// One type serves regression and classification. For regression `y` holds
// real targets and `num_classes == 0`; for classification `y` holds integer
// class indices stored as doubles and `num_classes >= 2`. Models interpret
// the targets according to their loss.

#ifndef DIGFL_DATA_DATASET_H_
#define DIGFL_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "tensor/matrix.h"

namespace digfl {

enum class TaskType { kRegression, kClassification };

struct Dataset {
  Matrix x;         // num_samples x num_features
  Vec y;            // num_samples targets (class index or real value)
  int num_classes = 0;  // 0 for regression

  TaskType task() const {
    return num_classes == 0 ? TaskType::kRegression : TaskType::kClassification;
  }
  size_t size() const { return x.rows(); }
  size_t num_features() const { return x.cols(); }

  // Integer label of sample i (classification only).
  int Label(size_t i) const { return static_cast<int>(y[i]); }

  // Structural sanity: |y| == rows, labels within range.
  Status Validate() const;

  // New dataset with the listed samples (duplicates allowed).
  Result<Dataset> Subset(const std::vector<size_t>& indices) const;

  // New dataset keeping only feature columns [begin, end) — the vertical
  // partition primitive.
  Result<Dataset> SliceFeatures(size_t begin, size_t end) const;

  // Row-wise concatenation; parts must agree on width and num_classes.
  static Result<Dataset> Concat(const std::vector<Dataset>& parts);
};

// Splits `data` into (train, holdout) with `holdout_fraction` of samples in
// the holdout, after a deterministic shuffle driven by `rng`. This is how
// every experiment carves out the server-side validation set D^v.
Result<std::pair<Dataset, Dataset>> SplitHoldout(const Dataset& data,
                                                 double holdout_fraction,
                                                 Rng& rng);

}  // namespace digfl

#endif  // DIGFL_DATA_DATASET_H_
