#include "data/partition.h"

#include <algorithm>
#include <numeric>

namespace digfl {

Result<std::vector<Dataset>> PartitionIid(const Dataset& data,
                                          size_t num_parts, Rng& rng) {
  if (num_parts == 0) return Status::InvalidArgument("num_parts == 0");
  if (data.size() < num_parts) {
    return Status::InvalidArgument("fewer samples than parts");
  }
  std::vector<size_t> perm = rng.Permutation(data.size());
  std::vector<Dataset> parts;
  parts.reserve(num_parts);
  const size_t base = data.size() / num_parts;
  const size_t extra = data.size() % num_parts;
  size_t cursor = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    const size_t count = base + (p < extra ? 1 : 0);
    std::vector<size_t> indices(perm.begin() + cursor,
                                perm.begin() + cursor + count);
    cursor += count;
    DIGFL_ASSIGN_OR_RETURN(Dataset part, data.Subset(indices));
    parts.push_back(std::move(part));
  }
  return parts;
}

Result<std::vector<Dataset>> PartitionNonIid(
    const Dataset& data, const NonIidPartitionConfig& config, Rng& rng) {
  if (config.num_parts == 0) return Status::InvalidArgument("num_parts == 0");
  if (config.num_iid_parts > config.num_parts) {
    return Status::InvalidArgument("num_iid_parts > num_parts");
  }
  if (data.num_classes < 2) {
    return Status::InvalidArgument("non-IID partition needs classification data");
  }
  const size_t num_classes = static_cast<size_t>(data.num_classes);
  if (config.classes_per_biased_part == 0 ||
      config.classes_per_biased_part > num_classes) {
    return Status::InvalidArgument("classes_per_biased_part out of range");
  }

  // Class menus of the biased shards, dealt round-robin from a shuffled
  // class cycle so menus overlap as little as possible (overlap only when
  // num_biased * classes_per_biased_part > num_classes).
  const size_t num_biased = config.num_parts - config.num_iid_parts;
  std::vector<size_t> class_cycle(num_classes);
  std::iota(class_cycle.begin(), class_cycle.end(), 0);
  rng.Shuffle(class_cycle);
  std::vector<std::vector<size_t>> menus(num_biased);
  for (size_t b = 0; b < num_biased; ++b) {
    for (size_t k = 0; k < config.classes_per_biased_part; ++k) {
      menus[b].push_back(
          class_cycle[(b * config.classes_per_biased_part + k) % num_classes]);
    }
  }

  // Target shard sizes (near-equal).
  std::vector<size_t> capacity(config.num_parts,
                               data.size() / config.num_parts);
  for (size_t p = 0; p < data.size() % config.num_parts; ++p) capacity[p]++;

  // Shuffled per-class sample pools.
  std::vector<std::vector<size_t>> pool(num_classes);
  {
    std::vector<size_t> perm = rng.Permutation(data.size());
    for (size_t idx : perm) {
      pool[static_cast<size_t>(data.Label(idx))].push_back(idx);
    }
  }
  // Reserve a handful of samples per class so every IID shard can still see
  // every class after the biased shards draw.
  std::vector<size_t> reserved(num_classes, 0);
  if (config.num_iid_parts > 0) {
    for (size_t c = 0; c < num_classes; ++c) {
      reserved[c] = std::min(pool[c].size(), config.num_iid_parts);
    }
  }

  std::vector<std::vector<size_t>> assigned(config.num_parts);
  auto take_from_class = [&](size_t c, size_t part) -> bool {
    if (pool[c].size() <= reserved[c]) return false;
    assigned[part].push_back(pool[c].back());
    pool[c].pop_back();
    return true;
  };

  // Phase 1: biased shards draw round-robin over their menus until full or
  // their menus run dry.
  for (size_t b = 0; b < num_biased; ++b) {
    const size_t part = config.num_iid_parts + b;
    size_t menu_cursor = 0, dry = 0;
    while (assigned[part].size() < capacity[part] && dry < menus[b].size()) {
      const size_t c = menus[b][menu_cursor % menus[b].size()];
      ++menu_cursor;
      if (take_from_class(c, part)) {
        dry = 0;
      } else {
        ++dry;
      }
    }
  }

  // Phase 2: IID shards split every remaining class evenly (reservations
  // included), keeping them class-balanced.
  std::fill(reserved.begin(), reserved.end(), 0);
  if (config.num_iid_parts > 0) {
    for (size_t c = 0; c < num_classes; ++c) {
      size_t shard = c % config.num_iid_parts;  // stagger small classes
      size_t attempts = 0;
      while (!pool[c].empty() && attempts < config.num_iid_parts) {
        const size_t part = shard % config.num_iid_parts;
        ++shard;
        if (assigned[part].size() < capacity[part]) {
          take_from_class(c, part);
          attempts = 0;
        } else {
          ++attempts;
        }
      }
    }
  }

  // Phase 3: whatever is left (menus dry, capacities hit) goes to any shard
  // with room — biased shards only as a last resort.
  std::vector<size_t> leftovers;
  for (auto& samples : pool) {
    leftovers.insert(leftovers.end(), samples.begin(), samples.end());
    samples.clear();
  }
  for (size_t idx : leftovers) {
    size_t chosen = config.num_parts;
    for (size_t p = 0; p < config.num_parts; ++p) {
      if (assigned[p].size() < capacity[p]) {
        chosen = p;
        break;
      }
    }
    if (chosen == config.num_parts) {
      // All capacities met (rounding): emptiest shard takes it.
      size_t best = 0;
      for (size_t p = 1; p < config.num_parts; ++p) {
        if (assigned[p].size() < assigned[best].size()) best = p;
      }
      chosen = best;
    }
    assigned[chosen].push_back(idx);
  }

  std::vector<Dataset> parts;
  parts.reserve(config.num_parts);
  for (size_t p = 0; p < config.num_parts; ++p) {
    if (assigned[p].empty()) {
      return Status::Internal("partition produced an empty shard");
    }
    DIGFL_ASSIGN_OR_RETURN(Dataset part, data.Subset(assigned[p]));
    parts.push_back(std::move(part));
  }
  return parts;
}

Result<std::vector<FeatureBlock>> SplitFeatureBlocks(size_t num_features,
                                                     size_t num_parts) {
  if (num_parts == 0) return Status::InvalidArgument("num_parts == 0");
  if (num_features < num_parts) {
    return Status::InvalidArgument("fewer features than parts");
  }
  std::vector<FeatureBlock> blocks;
  blocks.reserve(num_parts);
  const size_t base = num_features / num_parts;
  const size_t extra = num_features % num_parts;
  size_t cursor = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    const size_t width = base + (p < extra ? 1 : 0);
    blocks.push_back(FeatureBlock{cursor, cursor + width});
    cursor += width;
  }
  return blocks;
}

}  // namespace digfl
