// Synthetic dataset generators.
//
// These stand in for the paper's public datasets (see DESIGN.md §3): what
// DIG-FL and every baseline consume is gradients, so the experiments only
// need datasets whose participants *genuinely differ in usefulness* — which
// these generators control explicitly.

#ifndef DIGFL_DATA_SYNTHETIC_H_
#define DIGFL_DATA_SYNTHETIC_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace digfl {

// Gaussian-mixture classification: each class has a mean drawn uniformly
// from [-separation, separation]^d; samples are the mean plus isotropic
// Gaussian noise. Larger `class_separation / noise_stddev` = easier task.
struct GaussianClassificationConfig {
  size_t num_samples = 1000;
  size_t num_features = 16;
  int num_classes = 10;
  double class_separation = 2.0;
  double noise_stddev = 1.0;
  uint64_t seed = 1;
};

Result<Dataset> MakeGaussianClassification(
    const GaussianClassificationConfig& config);

// Linear-model regression: y = <w*, x> + b* + noise. Feature j's true weight
// is scaled by `feature_scales[j]` (default all-ones), so a vertical
// participant owning low-scale columns contributes genuinely less — the
// lever behind distinguishable VFL Shapley values.
struct SyntheticRegressionConfig {
  size_t num_samples = 500;
  size_t num_features = 10;
  double noise_stddev = 0.1;
  // Per-feature signal multiplier; empty = all 1.0. Size must match
  // num_features when non-empty.
  std::vector<double> feature_scales;
  uint64_t seed = 1;
};

Result<Dataset> MakeSyntheticRegression(const SyntheticRegressionConfig& config);

// Logistic ground truth: P(y=1|x) = sigmoid(<w*, x>), same feature-scale
// lever as the regression generator. num_classes is fixed at 2.
struct SyntheticLogisticConfig {
  size_t num_samples = 500;
  size_t num_features = 10;
  std::vector<double> feature_scales;
  // Flip each label with this probability after sampling (label noise).
  double label_noise = 0.0;
  uint64_t seed = 1;
};

Result<Dataset> MakeSyntheticLogistic(const SyntheticLogisticConfig& config);

// Geometrically decaying per-feature scales: scale_j = decay^(block of j),
// with `num_features` split into `num_blocks` contiguous blocks. Used to
// give VFL participants graded informativeness.
std::vector<double> DecayingFeatureScales(size_t num_features,
                                          size_t num_blocks, double decay);

}  // namespace digfl

#endif  // DIGFL_DATA_SYNTHETIC_H_
