#include "ckpt/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "telemetry/telemetry.h"

namespace digfl {
namespace ckpt {
namespace {

// Directory component of `path` ("." when the path has no slash), for the
// parent-directory fsync that makes the rename durable.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write to " + path + " failed: " +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + tmp + " for writing: " +
                            std::strerror(errno));
  }
  // Split the write so the mid-write crash site leaves a genuinely torn temp
  // file (the target is still untouched at that point).
  const std::string_view first_half = data.substr(0, data.size() / 2);
  const std::string_view second_half = data.substr(data.size() / 2);
  Status status = WriteAll(fd, first_half, tmp);
  MaybeCrash("ckpt.atomic.mid_write");
  if (status.ok()) status = WriteAll(fd, second_half, tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal("fsync " + tmp + " failed: " +
                              std::strerror(errno));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal("close " + tmp + " failed: " +
                              std::strerror(errno));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }

  MaybeCrash("ckpt.atomic.pre_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_status = Status::Internal(
        "rename " + tmp + " -> " + path + " failed: " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return rename_status;
  }
  MaybeCrash("ckpt.atomic.post_rename");

  // Make the rename itself durable: fsync the parent directory. Failure to
  // open the directory (exotic filesystems) is not fatal to the write.
  const std::string dir = ParentDir(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }

  DIGFL_COUNTER_ADD("ckpt.atomic_writes_total", 1);
  DIGFL_COUNTER_ADD("ckpt.atomic_bytes_total", data.size());
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read of " + path + " failed");
  return std::move(buffer).str();
}

}  // namespace ckpt
}  // namespace digfl
