// Crash-safe checkpointing for HFL training + incremental evaluation.
//
// A checkpoint is one DIGFLCKP1 framed file (ckpt/frame.h) whose records
// capture everything a deterministic resume needs:
//
//   kMetaTag  format version, protocol id, next epoch, next learning rate
//   kLogTag   the training-log prefix as a v2 log blob (hfl/log_io.h) —
//             θ so far, all per-epoch records, traces, fault bookkeeping
//   kRngTag   per-participant minibatch RNG stream states (Rng::SaveState)
//   kCommTag  CommMeter channel totals (not part of the log blob)
//   kPhiTag   the incremental DIG-FL φ̂ accumulator (totals + per-epoch)
//
// RunFedSgdWithCheckpoints drives RunFedSgd with a store-backed hook that
// (a) folds every committed epoch into an HflPhiAccumulator and (b) commits
// a checkpoint every `every` epochs (and always at the final epoch) through
// CheckpointStore. Resuming from the latest valid checkpoint and finishing
// the run produces bitwise-identical final parameters, training log, and φ̂
// estimates to the uninterrupted run — see DESIGN.md §9 for the contract.

#ifndef DIGFL_CKPT_HFL_RESUME_H_
#define DIGFL_CKPT_HFL_RESUME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/contribution.h"
#include "core/phi_accumulator.h"
#include "hfl/fed_sgd.h"

namespace digfl {
namespace ckpt {

// Record tags inside a DIGFLCKP1 payload (shared by the HFL and VFL codecs;
// kEndTag = 0 lives in frame.h).
inline constexpr uint32_t kMetaTag = 1;
inline constexpr uint32_t kLogTag = 2;
inline constexpr uint32_t kRngTag = 3;
inline constexpr uint32_t kCommTag = 4;
inline constexpr uint32_t kPhiTag = 5;

inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr uint32_t kProtocolHfl = 1;
inline constexpr uint32_t kProtocolVfl = 2;

// Decoded checkpoint state (the exact inverse of EncodeHflCheckpoint).
struct HflCheckpointState {
  uint64_t next_epoch = 0;
  double learning_rate = 0.0;
  std::vector<std::string> batch_rng_states;
  HflTrainingLog log;  // comm meter already restored from kCommTag
  std::vector<double> phi_total;
  std::vector<std::vector<double>> phi_per_epoch;
};

// Serializes one checkpoint to a complete framed byte image, ready for
// CheckpointStore::Commit. Fails on a ragged log.
Result<std::string> EncodeHflCheckpoint(
    uint64_t next_epoch, double learning_rate,
    const std::vector<std::string>& batch_rng_states,
    const HflTrainingLog& log, const HflPhiAccumulator& phi);

// Parses + validates a framed checkpoint image: frame CRCs, version and
// protocol id, cross-record consistency (next_epoch == log prefix length ==
// φ̂ rows). Typed errors, never garbage.
Result<HflCheckpointState> DecodeHflCheckpoint(const std::string& payload);

class CheckpointStore;

// The store-backed checkpoint hook: folds each committed epoch into the φ̂
// accumulator, then commits a framed checkpoint on the configured cadence
// (every `every` epochs, and always at the final epoch). Shared by the
// in-process driver below and the distributed coordinator (src/net/), so
// both checkpoint through exactly the same commit path.
class HflStoreHook : public HflCheckpointHook {
 public:
  HflStoreHook(CheckpointStore* store, const HflServer* server,
               HflPhiAccumulator* accumulator, size_t every,
               size_t total_epochs)
      : store_(store),
        server_(server),
        accumulator_(accumulator),
        every_(every),
        total_epochs_(total_epochs) {}

  Status OnEpoch(const HflTrainerView& view) override;

  size_t written() const { return written_; }

 private:
  CheckpointStore* store_;
  const HflServer* server_;
  HflPhiAccumulator* accumulator_;
  size_t every_;
  size_t total_epochs_;
  size_t written_ = 0;
};

// Result of probing a store for a warm start (LoadHflResumePoint).
struct HflResumeLoad {
  bool resumed = false;           // false = cold start (store had nothing)
  uint64_t epoch = 0;             // epoch the point resumes at
  size_t rejected = 0;            // corrupt newer checkpoints skipped
  HflResumePoint point;
};

// Converts an already-decoded checkpoint state into a warm-start resume
// point and restores `accumulator` to match. Shared by LoadHflResumePoint
// (the disk path) and by a promoted standby warm-starting from its
// replicated in-memory state (net/standby.h), so both resume flavors go
// through exactly the same code.
Result<HflResumeLoad> ResumeFromState(HflCheckpointState state,
                                      HflPhiAccumulator& accumulator);

// Loads + decodes the newest valid checkpoint into a resume point and
// restores `accumulator` to match; prunes any newer abandoned-timeline
// entries. A store with no valid checkpoint is a cold start (resumed ==
// false), not an error.
Result<HflResumeLoad> LoadHflResumePoint(CheckpointStore& store,
                                         HflPhiAccumulator& accumulator);

// How a checkpointed run uses its store (shared by HFL and VFL).
struct CheckpointRunOptions {
  std::string dir;     // checkpoint directory (created if needed)
  size_t every = 1;    // commit every k epochs; the final epoch always
  size_t keep = 2;     // retention window (>= 2, see CheckpointStore)
  bool resume = false; // warm-start from the newest valid checkpoint
};

struct HflCheckpointedRun {
  HflTrainingLog log;
  // Resource-saving (Algorithm #2) φ̂, accumulated epoch-by-epoch alongside
  // training — bitwise equal to EvaluateHflContributions on the final log.
  ContributionReport contributions;
  bool resumed = false;
  uint64_t resumed_from_epoch = 0;   // meaningful when resumed
  size_t checkpoints_written = 0;
  size_t checkpoints_rejected = 0;   // corrupt newer checkpoints skipped
};

// RunFedSgd + store-backed checkpoint hook + incremental φ̂. `config`'s
// checkpoint_hook/resume fields are managed by this driver and must be
// null; record_log is required.
Result<HflCheckpointedRun> RunFedSgdWithCheckpoints(
    const Model& model, const std::vector<HflParticipant>& participants,
    HflServer& server, const Vec& init_params, FedSgdConfig config,
    const CheckpointRunOptions& options, AggregationPolicy* policy = nullptr);

}  // namespace ckpt
}  // namespace digfl

#endif  // DIGFL_CKPT_HFL_RESUME_H_
