// CRC32-framed, versioned checkpoint container.
//
// File layout ("DIGFLCKP1" format):
//
//   magic[9] = "DIGFLCKP1"
//   record*  = u32 tag | u64 payload_len | payload | u32 crc
//   (the last record must carry kEndTag with an empty payload)
//
// The CRC covers tag, length, and payload, so a bit flip anywhere in a
// record — including its header — is detected. The mandatory end record
// distinguishes a fully committed file from one whose tail was torn off:
// a reader only trusts a file whose every record checks out AND that ends
// with the terminator. Readers return typed Status errors, never garbage.
//
// ByteSink/ByteSource are the little-endian primitive codec shared by the
// checkpoint state serializers (and mirror the layout discipline of
// hfl/log_io.cc).

#ifndef DIGFL_CKPT_FRAME_H_
#define DIGFL_CKPT_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace digfl {
namespace ckpt {

inline constexpr char kCheckpointMagic[] = "DIGFLCKP1";  // 9 bytes, no NUL
inline constexpr size_t kCheckpointMagicLen = 9;

// Record tags. kEndTag terminates every well-formed file; the rest are
// assigned by the state serializers (ckpt/hfl_resume.h, ckpt/vfl_resume.h,
// ckpt/store.cc for the manifest).
inline constexpr uint32_t kEndTag = 0;

struct FrameRecord {
  uint32_t tag = 0;
  std::string_view payload;  // view into the parsed buffer
};

// Appends the magic (call once, first) and framed records to `out`.
void AppendMagic(std::string* out);
void AppendRecord(std::string* out, uint32_t tag, std::string_view payload);
// Appends the kEndTag terminator; call last.
void AppendEndRecord(std::string* out);

// Parses a complete framed file: validates the magic, every record's CRC,
// and the trailing terminator. Returned payload views alias `bytes`, which
// must outlive them. The terminator is not included in the result.
Result<std::vector<FrameRecord>> ReadFramedFile(std::string_view bytes);

// ---------------------------------------------------------------------------
// Little-endian primitive codec for record payloads.

class ByteSink {
 public:
  explicit ByteSink(std::string* out) : out_(out) {}

  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  // Doubles are written as raw IEEE-754 bits, so round trips are bitwise.
  void PutDouble(double value);
  void PutDoubles(const std::vector<double>& values);  // length-prefixed
  void PutBytes(const std::vector<uint8_t>& values);   // length-prefixed
  void PutString(std::string_view value);              // length-prefixed

 private:
  std::string* out_;
};

class ByteSource {
 public:
  explicit ByteSource(std::string_view data) : data_(data) {}

  Status GetU32(uint32_t* value);
  Status GetU64(uint64_t* value);
  Status GetDouble(double* value);
  Status GetDoubles(std::vector<double>* values);
  Status GetBytes(std::vector<uint8_t>* values);
  Status GetString(std::string* value);

  bool Exhausted() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  Status Take(size_t count, const char** out);

  std::string_view data_;
};

}  // namespace ckpt
}  // namespace digfl

#endif  // DIGFL_CKPT_FRAME_H_
