// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Every framed checkpoint record and the manifest carry a CRC32 so torn
// writes and bit flips are detected at load time and recovery can fall back
// to the previous good checkpoint instead of consuming garbage.

#ifndef DIGFL_CKPT_CRC32_H_
#define DIGFL_CKPT_CRC32_H_

#include <cstdint>
#include <string_view>

namespace digfl {
namespace ckpt {

// CRC32 of `data`, optionally chaining a previous partial result: passing
// the crc of a prefix as `seed` yields the crc of the concatenation.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace ckpt
}  // namespace digfl

#endif  // DIGFL_CKPT_CRC32_H_
