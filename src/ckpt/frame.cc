#include "ckpt/frame.h"

#include <cstring>

#include "ckpt/crc32.h"

namespace digfl {
namespace ckpt {
namespace {

// The two allocation caps defend frame parsing against an implausible
// length field in a corrupted header (same discipline as the log readers).
constexpr uint64_t kMaxRecordPayload = 1ull << 40;
constexpr uint64_t kMaxSequenceLength = 1ull << 32;

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

}  // namespace

void AppendMagic(std::string* out) {
  out->append(kCheckpointMagic, kCheckpointMagicLen);
}

void AppendRecord(std::string* out, uint32_t tag, std::string_view payload) {
  const size_t header_offset = out->size();
  AppendRaw(out, &tag, sizeof(tag));
  const uint64_t length = payload.size();
  AppendRaw(out, &length, sizeof(length));
  out->append(payload);
  const uint32_t crc = Crc32(
      std::string_view(out->data() + header_offset, out->size() - header_offset));
  AppendRaw(out, &crc, sizeof(crc));
}

void AppendEndRecord(std::string* out) { AppendRecord(out, kEndTag, {}); }

Result<std::vector<FrameRecord>> ReadFramedFile(std::string_view bytes) {
  if (bytes.size() < kCheckpointMagicLen ||
      std::memcmp(bytes.data(), kCheckpointMagic, kCheckpointMagicLen) != 0) {
    return Status::InvalidArgument("not a DIGFLCKP1 checkpoint file");
  }
  std::string_view cursor = bytes.substr(kCheckpointMagicLen);

  std::vector<FrameRecord> records;
  bool terminated = false;
  while (!cursor.empty()) {
    constexpr size_t kHeaderLen = sizeof(uint32_t) + sizeof(uint64_t);
    if (cursor.size() < kHeaderLen) {
      return Status::InvalidArgument("truncated checkpoint record header");
    }
    uint32_t tag = 0;
    uint64_t length = 0;
    std::memcpy(&tag, cursor.data(), sizeof(tag));
    std::memcpy(&length, cursor.data() + sizeof(tag), sizeof(length));
    if (length > kMaxRecordPayload ||
        cursor.size() < kHeaderLen + length + sizeof(uint32_t)) {
      return Status::InvalidArgument("truncated checkpoint record");
    }
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, cursor.data() + kHeaderLen + length,
                sizeof(stored_crc));
    const uint32_t actual_crc =
        Crc32(cursor.substr(0, kHeaderLen + length));
    if (stored_crc != actual_crc) {
      return Status::InvalidArgument("checkpoint record CRC mismatch");
    }
    const std::string_view payload = cursor.substr(kHeaderLen, length);
    cursor = cursor.substr(kHeaderLen + length + sizeof(uint32_t));
    if (tag == kEndTag) {
      if (!cursor.empty()) {
        return Status::InvalidArgument("data after checkpoint terminator");
      }
      terminated = true;
      break;
    }
    records.push_back(FrameRecord{tag, payload});
  }
  if (!terminated) {
    return Status::InvalidArgument("checkpoint file missing terminator");
  }
  return records;
}

// ---------------------------------------------------------------------------
// ByteSink / ByteSource.

void ByteSink::PutU32(uint32_t value) { AppendRaw(out_, &value, sizeof(value)); }

void ByteSink::PutU64(uint64_t value) { AppendRaw(out_, &value, sizeof(value)); }

void ByteSink::PutDouble(double value) {
  AppendRaw(out_, &value, sizeof(value));
}

void ByteSink::PutDoubles(const std::vector<double>& values) {
  PutU64(values.size());
  AppendRaw(out_, values.data(), values.size() * sizeof(double));
}

void ByteSink::PutBytes(const std::vector<uint8_t>& values) {
  PutU64(values.size());
  AppendRaw(out_, values.data(), values.size());
}

void ByteSink::PutString(std::string_view value) {
  PutU64(value.size());
  out_->append(value);
}

Status ByteSource::Take(size_t count, const char** out) {
  if (data_.size() < count) {
    return Status::InvalidArgument("truncated checkpoint payload");
  }
  *out = data_.data();
  data_ = data_.substr(count);
  return Status::OK();
}

Status ByteSource::GetU32(uint32_t* value) {
  const char* raw = nullptr;
  DIGFL_RETURN_IF_ERROR(Take(sizeof(*value), &raw));
  std::memcpy(value, raw, sizeof(*value));
  return Status::OK();
}

Status ByteSource::GetU64(uint64_t* value) {
  const char* raw = nullptr;
  DIGFL_RETURN_IF_ERROR(Take(sizeof(*value), &raw));
  std::memcpy(value, raw, sizeof(*value));
  return Status::OK();
}

Status ByteSource::GetDouble(double* value) {
  const char* raw = nullptr;
  DIGFL_RETURN_IF_ERROR(Take(sizeof(*value), &raw));
  std::memcpy(value, raw, sizeof(*value));
  return Status::OK();
}

Status ByteSource::GetDoubles(std::vector<double>* values) {
  uint64_t count = 0;
  DIGFL_RETURN_IF_ERROR(GetU64(&count));
  if (count > kMaxSequenceLength) {
    return Status::InvalidArgument("implausible sequence length");
  }
  const char* raw = nullptr;
  DIGFL_RETURN_IF_ERROR(Take(count * sizeof(double), &raw));
  values->resize(count);
  std::memcpy(values->data(), raw, count * sizeof(double));
  return Status::OK();
}

Status ByteSource::GetBytes(std::vector<uint8_t>* values) {
  uint64_t count = 0;
  DIGFL_RETURN_IF_ERROR(GetU64(&count));
  if (count > kMaxSequenceLength) {
    return Status::InvalidArgument("implausible sequence length");
  }
  const char* raw = nullptr;
  DIGFL_RETURN_IF_ERROR(Take(count, &raw));
  values->assign(raw, raw + count);
  return Status::OK();
}

Status ByteSource::GetString(std::string* value) {
  uint64_t count = 0;
  DIGFL_RETURN_IF_ERROR(GetU64(&count));
  if (count > kMaxSequenceLength) {
    return Status::InvalidArgument("implausible sequence length");
  }
  const char* raw = nullptr;
  DIGFL_RETURN_IF_ERROR(Take(count, &raw));
  value->assign(raw, count);
  return Status::OK();
}

}  // namespace ckpt
}  // namespace digfl
