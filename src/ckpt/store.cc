#include "ckpt/store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "ckpt/atomic_file.h"
#include "ckpt/frame.h"
#include "common/fault.h"
#include "telemetry/telemetry.h"

namespace digfl {
namespace ckpt {
namespace {

constexpr uint32_t kManifestTag = 100;
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".digflckp";

std::string CheckpointFilename(uint64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kCheckpointPrefix,
                static_cast<unsigned long long>(epoch), kCheckpointSuffix);
  return name;
}

// Validates a checkpoint byte image: magic, per-record CRCs, terminator.
bool CheckpointValidates(const std::string& bytes) {
  return ReadFramedFile(bytes).ok();
}

// Parses the single-record manifest image: entry list plus the optional
// trailing leader-generation claim (absent on pre-HA manifests => 0).
bool ParseManifest(const std::string& bytes,
                   std::vector<CheckpointStore::Entry>* entries,
                   uint64_t* generation) {
  auto records = ReadFramedFile(bytes);
  if (!records.ok() || records->size() != 1 ||
      (*records)[0].tag != kManifestTag) {
    return false;
  }
  ByteSource source((*records)[0].payload);
  uint64_t count = 0;
  Status status = source.GetU64(&count);
  std::vector<CheckpointStore::Entry> parsed;
  for (uint64_t i = 0; status.ok() && i < count; ++i) {
    CheckpointStore::Entry entry;
    status = source.GetU64(&entry.epoch);
    if (status.ok()) status = source.GetString(&entry.filename);
    if (status.ok()) parsed.push_back(std::move(entry));
  }
  if (!status.ok()) return false;
  uint64_t claimed = 0;
  if (!source.Exhausted() && !source.GetU64(&claimed).ok()) return false;
  if (!source.Exhausted()) return false;
  *entries = std::move(parsed);
  *generation = claimed;
  return true;
}

// Parses "ckpt-<epoch>.digflckp"; returns false for any other filename.
bool ParseCheckpointFilename(const std::string& name, uint64_t* epoch) {
  const size_t prefix_len = std::strlen(kCheckpointPrefix);
  const size_t suffix_len = std::strlen(kCheckpointSuffix);
  if (name.size() <= prefix_len + suffix_len ||
      name.compare(0, prefix_len, kCheckpointPrefix) != 0 ||
      name.compare(name.size() - suffix_len, suffix_len, kCheckpointSuffix) !=
          0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

Result<CheckpointStore> CheckpointStore::Open(std::string dir, size_t keep,
                                              uint64_t generation) {
  if (dir.empty()) return Status::InvalidArgument("empty checkpoint dir");
  if (keep < 2) {
    return Status::InvalidArgument(
        "checkpoint retention must keep >= 2 (a corrupted latest needs a "
        "fallback)");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create checkpoint dir " + dir + ": " +
                            std::strerror(errno));
  }

  CheckpointStore store(std::move(dir), keep);
  store.generation_ = generation;
  // Recover the committed history from the manifest; a missing manifest is a
  // fresh store, a corrupt one degrades to a directory scan so the files a
  // previous process committed are not stranded.
  Result<std::string> manifest = ReadFileToString(store.ManifestPath());
  bool manifest_ok = false;
  uint64_t disk_generation = 0;
  if (manifest.ok() &&
      ParseManifest(*manifest, &store.entries_, &disk_generation)) {
    manifest_ok = true;
  }
  if (manifest_ok && generation > 0) {
    if (disk_generation > generation) {
      return Status::FailedPrecondition(
          "checkpoint store " + store.dir_ + " is fenced: manifest claimed "
          "by leader generation " + std::to_string(disk_generation) +
          " > " + std::to_string(generation));
    }
    if (disk_generation < generation) {
      // Durably claim the store before serving, so a partitioned ex-primary
      // that re-reads the manifest at its next Commit sees the new owner.
      DIGFL_RETURN_IF_ERROR(store.WriteManifest());
    }
  }
  if (!manifest_ok) {
    if (manifest.ok()) {
      // The manifest exists but failed validation (torn or bit-flipped).
      DIGFL_COUNTER_ADD("ckpt.manifest_rejected_total", 1);
    }
    std::error_code ec;
    std::vector<Entry> scanned;
    for (const auto& dirent :
         std::filesystem::directory_iterator(store.dir_, ec)) {
      uint64_t epoch = 0;
      const std::string name = dirent.path().filename().string();
      if (ParseCheckpointFilename(name, &epoch)) {
        scanned.push_back(Entry{epoch, name});
      }
    }
    std::sort(scanned.begin(), scanned.end(),
              [](const Entry& a, const Entry& b) { return a.epoch < b.epoch; });
    store.entries_ = std::move(scanned);
    if (generation > 0) {
      // Fresh or unreadable manifest: durably claim the store here too.
      DIGFL_RETURN_IF_ERROR(store.WriteManifest());
    }
  }
  return store;
}

std::string CheckpointStore::CheckpointPath(uint64_t epoch) const {
  return dir_ + "/" + CheckpointFilename(epoch);
}

Status CheckpointStore::WriteManifest() const {
  std::string payload;
  ByteSink sink(&payload);
  sink.PutU64(entries_.size());
  for (const Entry& entry : entries_) {
    sink.PutU64(entry.epoch);
    sink.PutString(entry.filename);
  }
  if (generation_ > 0) {
    // Trailing claim; pre-HA stores omit it so their manifests stay
    // bitwise identical to what older binaries wrote.
    sink.PutU64(generation_);
  }
  std::string bytes;
  AppendMagic(&bytes);
  AppendRecord(&bytes, kManifestTag, payload);
  AppendEndRecord(&bytes);
  return AtomicWriteFile(ManifestPath(), bytes);
}

Status CheckpointStore::CheckFence() const {
  if (generation_ == 0) return Status::OK();
  Result<std::string> manifest = ReadFileToString(ManifestPath());
  if (!manifest.ok()) return Status::OK();  // missing/unreadable: no claim
  std::vector<Entry> entries;
  uint64_t disk_generation = 0;
  if (!ParseManifest(*manifest, &entries, &disk_generation)) {
    return Status::OK();  // corrupt manifest carries no trustworthy claim
  }
  if (disk_generation > generation_) {
    DIGFL_COUNTER_ADD("ckpt.fenced_writes_total", 1);
    return Status::FailedPrecondition(
        "checkpoint store " + dir_ + " is fenced: manifest claimed by "
        "leader generation " + std::to_string(disk_generation) + " > " +
        std::to_string(generation_));
  }
  return Status::OK();
}

Status CheckpointStore::Commit(uint64_t epoch, const std::string& payload) {
  if (!entries_.empty() && epoch <= entries_.back().epoch) {
    return Status::InvalidArgument("checkpoint epochs must increase");
  }
  DIGFL_RETURN_IF_ERROR(CheckFence());
  DIGFL_TRACE_SPAN("ckpt.commit");

  const std::string filename = CheckpointFilename(epoch);
  DIGFL_RETURN_IF_ERROR(AtomicWriteFile(dir_ + "/" + filename, payload));
  // Crash here: the file is complete but unreferenced — the previous
  // manifest still names the last good checkpoint.
  MaybeCrash("ckpt.store.pre_manifest");

  entries_.push_back(Entry{epoch, filename});
  std::vector<Entry> pruned;
  if (entries_.size() > keep_) {
    pruned.assign(entries_.begin(), entries_.end() - keep_);
    entries_.erase(entries_.begin(), entries_.end() - keep_);
  }
  DIGFL_RETURN_IF_ERROR(WriteManifest());
  MaybeCrash("ckpt.store.post_manifest");

  // Retention: only after the manifest stopped referencing them.
  for (const Entry& old : pruned) {
    ::unlink((dir_ + "/" + old.filename).c_str());
  }

  DIGFL_COUNTER_ADD("ckpt.commits_total", 1);
  DIGFL_COUNTER_ADD("ckpt.bytes_total", payload.size());
  return Status::OK();
}

Status CheckpointStore::TruncateAfter(uint64_t epoch) {
  DIGFL_RETURN_IF_ERROR(CheckFence());
  std::vector<Entry> dropped;
  while (!entries_.empty() && entries_.back().epoch > epoch) {
    dropped.push_back(std::move(entries_.back()));
    entries_.pop_back();
  }
  if (dropped.empty()) return Status::OK();
  DIGFL_RETURN_IF_ERROR(WriteManifest());
  // Unlink only after the manifest stopped referencing them (same ordering
  // as retention, so a crash mid-truncate never strands the manifest).
  for (const Entry& old : dropped) {
    ::unlink((dir_ + "/" + old.filename).c_str());
  }
  DIGFL_COUNTER_ADD("ckpt.truncated_total", dropped.size());
  return Status::OK();
}

Result<CheckpointStore::Loaded> CheckpointStore::LoadLatest() const {
  Loaded loaded;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Result<std::string> bytes = ReadFileToString(dir_ + "/" + it->filename);
    if (bytes.ok() && CheckpointValidates(*bytes)) {
      loaded.epoch = it->epoch;
      loaded.payload = std::move(*bytes);
      if (loaded.rejected > 0) {
        DIGFL_COUNTER_ADD("ckpt.recoveries_total", 1);
      }
      return loaded;
    }
    ++loaded.rejected;
    DIGFL_COUNTER_ADD("ckpt.crc_rejected_total", 1);
  }
  return Status::NotFound("no valid checkpoint in " + dir_);
}

}  // namespace ckpt
}  // namespace digfl
