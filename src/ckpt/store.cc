#include "ckpt/store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "ckpt/atomic_file.h"
#include "ckpt/frame.h"
#include "common/fault.h"
#include "telemetry/telemetry.h"

namespace digfl {
namespace ckpt {
namespace {

constexpr uint32_t kManifestTag = 100;
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".digflckp";

std::string CheckpointFilename(uint64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kCheckpointPrefix,
                static_cast<unsigned long long>(epoch), kCheckpointSuffix);
  return name;
}

// Validates a checkpoint byte image: magic, per-record CRCs, terminator.
bool CheckpointValidates(const std::string& bytes) {
  return ReadFramedFile(bytes).ok();
}

// Parses "ckpt-<epoch>.digflckp"; returns false for any other filename.
bool ParseCheckpointFilename(const std::string& name, uint64_t* epoch) {
  const size_t prefix_len = std::strlen(kCheckpointPrefix);
  const size_t suffix_len = std::strlen(kCheckpointSuffix);
  if (name.size() <= prefix_len + suffix_len ||
      name.compare(0, prefix_len, kCheckpointPrefix) != 0 ||
      name.compare(name.size() - suffix_len, suffix_len, kCheckpointSuffix) !=
          0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

Result<CheckpointStore> CheckpointStore::Open(std::string dir, size_t keep) {
  if (dir.empty()) return Status::InvalidArgument("empty checkpoint dir");
  if (keep < 2) {
    return Status::InvalidArgument(
        "checkpoint retention must keep >= 2 (a corrupted latest needs a "
        "fallback)");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create checkpoint dir " + dir + ": " +
                            std::strerror(errno));
  }

  CheckpointStore store(std::move(dir), keep);
  // Recover the committed history from the manifest; a missing manifest is a
  // fresh store, a corrupt one degrades to a directory scan so the files a
  // previous process committed are not stranded.
  Result<std::string> manifest = ReadFileToString(store.ManifestPath());
  bool manifest_ok = false;
  if (manifest.ok()) {
    auto records = ReadFramedFile(*manifest);
    if (records.ok() && records->size() == 1 &&
        (*records)[0].tag == kManifestTag) {
      ByteSource source((*records)[0].payload);
      uint64_t count = 0;
      Status status = source.GetU64(&count);
      std::vector<Entry> entries;
      for (uint64_t i = 0; status.ok() && i < count; ++i) {
        Entry entry;
        status = source.GetU64(&entry.epoch);
        if (status.ok()) status = source.GetString(&entry.filename);
        if (status.ok()) entries.push_back(std::move(entry));
      }
      if (status.ok() && source.Exhausted()) {
        store.entries_ = std::move(entries);
        manifest_ok = true;
      }
    }
  }
  if (!manifest_ok) {
    if (manifest.ok()) {
      // The manifest exists but failed validation (torn or bit-flipped).
      DIGFL_COUNTER_ADD("ckpt.manifest_rejected_total", 1);
    }
    std::error_code ec;
    std::vector<Entry> scanned;
    for (const auto& dirent :
         std::filesystem::directory_iterator(store.dir_, ec)) {
      uint64_t epoch = 0;
      const std::string name = dirent.path().filename().string();
      if (ParseCheckpointFilename(name, &epoch)) {
        scanned.push_back(Entry{epoch, name});
      }
    }
    std::sort(scanned.begin(), scanned.end(),
              [](const Entry& a, const Entry& b) { return a.epoch < b.epoch; });
    store.entries_ = std::move(scanned);
  }
  return store;
}

std::string CheckpointStore::CheckpointPath(uint64_t epoch) const {
  return dir_ + "/" + CheckpointFilename(epoch);
}

Status CheckpointStore::WriteManifest() const {
  std::string payload;
  ByteSink sink(&payload);
  sink.PutU64(entries_.size());
  for (const Entry& entry : entries_) {
    sink.PutU64(entry.epoch);
    sink.PutString(entry.filename);
  }
  std::string bytes;
  AppendMagic(&bytes);
  AppendRecord(&bytes, kManifestTag, payload);
  AppendEndRecord(&bytes);
  return AtomicWriteFile(ManifestPath(), bytes);
}

Status CheckpointStore::Commit(uint64_t epoch, const std::string& payload) {
  if (!entries_.empty() && epoch <= entries_.back().epoch) {
    return Status::InvalidArgument("checkpoint epochs must increase");
  }
  DIGFL_TRACE_SPAN("ckpt.commit");

  const std::string filename = CheckpointFilename(epoch);
  DIGFL_RETURN_IF_ERROR(AtomicWriteFile(dir_ + "/" + filename, payload));
  // Crash here: the file is complete but unreferenced — the previous
  // manifest still names the last good checkpoint.
  MaybeCrash("ckpt.store.pre_manifest");

  entries_.push_back(Entry{epoch, filename});
  std::vector<Entry> pruned;
  if (entries_.size() > keep_) {
    pruned.assign(entries_.begin(), entries_.end() - keep_);
    entries_.erase(entries_.begin(), entries_.end() - keep_);
  }
  DIGFL_RETURN_IF_ERROR(WriteManifest());
  MaybeCrash("ckpt.store.post_manifest");

  // Retention: only after the manifest stopped referencing them.
  for (const Entry& old : pruned) {
    ::unlink((dir_ + "/" + old.filename).c_str());
  }

  DIGFL_COUNTER_ADD("ckpt.commits_total", 1);
  DIGFL_COUNTER_ADD("ckpt.bytes_total", payload.size());
  return Status::OK();
}

Status CheckpointStore::TruncateAfter(uint64_t epoch) {
  std::vector<Entry> dropped;
  while (!entries_.empty() && entries_.back().epoch > epoch) {
    dropped.push_back(std::move(entries_.back()));
    entries_.pop_back();
  }
  if (dropped.empty()) return Status::OK();
  DIGFL_RETURN_IF_ERROR(WriteManifest());
  // Unlink only after the manifest stopped referencing them (same ordering
  // as retention, so a crash mid-truncate never strands the manifest).
  for (const Entry& old : dropped) {
    ::unlink((dir_ + "/" + old.filename).c_str());
  }
  DIGFL_COUNTER_ADD("ckpt.truncated_total", dropped.size());
  return Status::OK();
}

Result<CheckpointStore::Loaded> CheckpointStore::LoadLatest() const {
  Loaded loaded;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Result<std::string> bytes = ReadFileToString(dir_ + "/" + it->filename);
    if (bytes.ok() && CheckpointValidates(*bytes)) {
      loaded.epoch = it->epoch;
      loaded.payload = std::move(*bytes);
      if (loaded.rejected > 0) {
        DIGFL_COUNTER_ADD("ckpt.recoveries_total", 1);
      }
      return loaded;
    }
    ++loaded.rejected;
    DIGFL_COUNTER_ADD("ckpt.crc_rejected_total", 1);
  }
  return Status::NotFound("no valid checkpoint in " + dir_);
}

}  // namespace ckpt
}  // namespace digfl
