#include "ckpt/vfl_resume.h"

#include <utility>

#include "ckpt/codec_internal.h"
#include "ckpt/frame.h"
#include "ckpt/store.h"
#include "telemetry/telemetry.h"
#include "vfl/vfl_log_io.h"

namespace digfl {
namespace ckpt {

Result<std::string> EncodeVflCheckpoint(uint64_t next_epoch,
                                        double learning_rate,
                                        const VflTrainingLog& log,
                                        const VflPhiAccumulator& phi) {
  DIGFL_ASSIGN_OR_RETURN(std::string log_blob, SerializeVflTrainingLog(log));
  std::string out;
  AppendMagic(&out);
  AppendRecord(&out, kMetaTag,
               internal::EncodeMeta(kProtocolVfl, next_epoch, learning_rate));
  AppendRecord(&out, kLogTag, log_blob);
  AppendRecord(&out, kCommTag, internal::EncodeComm(log.comm));
  AppendRecord(&out, kPhiTag,
               internal::EncodePhi(phi.total(), phi.per_epoch()));
  AppendEndRecord(&out);
  return out;
}

Result<VflCheckpointState> DecodeVflCheckpoint(const std::string& payload) {
  DIGFL_ASSIGN_OR_RETURN(auto by_tag, internal::CollectRecords(payload));

  VflCheckpointState state;
  DIGFL_ASSIGN_OR_RETURN(std::string_view meta,
                         internal::RequireRecord(by_tag, kMetaTag));
  DIGFL_RETURN_IF_ERROR(internal::DecodeMeta(meta, kProtocolVfl,
                                             &state.next_epoch,
                                             &state.learning_rate));

  DIGFL_ASSIGN_OR_RETURN(std::string_view log_blob,
                         internal::RequireRecord(by_tag, kLogTag));
  DIGFL_ASSIGN_OR_RETURN(
      state.log,
      ParseVflTrainingLog(std::string(log_blob), "checkpoint log record"));

  DIGFL_ASSIGN_OR_RETURN(std::string_view comm,
                         internal::RequireRecord(by_tag, kCommTag));
  DIGFL_RETURN_IF_ERROR(internal::DecodeComm(comm, &state.log.comm));

  DIGFL_ASSIGN_OR_RETURN(std::string_view phi,
                         internal::RequireRecord(by_tag, kPhiTag));
  DIGFL_RETURN_IF_ERROR(
      internal::DecodePhi(phi, &state.phi_total, &state.phi_per_epoch));

  // Cross-record consistency: one coherent epoch boundary.
  if (state.next_epoch != state.log.num_epochs()) {
    return Status::InvalidArgument(
        "checkpoint epoch does not match its log prefix");
  }
  if (state.phi_per_epoch.size() != state.log.num_epochs()) {
    return Status::InvalidArgument(
        "checkpoint phi rows do not match its log prefix");
  }
  if (state.log.num_epochs() > 0 &&
      state.phi_total.size() != state.log.epochs[0].weights.size()) {
    return Status::InvalidArgument(
        "checkpoint phi width does not match participant count");
  }
  return state;
}

namespace {

class StoreBackedVflHook : public VflCheckpointHook {
 public:
  StoreBackedVflHook(CheckpointStore* store, const Model* model,
                     const VflBlockModel* blocks, const Dataset* validation,
                     VflPhiAccumulator* accumulator, size_t every,
                     size_t total_epochs)
      : store_(store),
        model_(model),
        blocks_(blocks),
        validation_(validation),
        accumulator_(accumulator),
        every_(every),
        total_epochs_(total_epochs) {}

  Status OnEpoch(const VflTrainerView& view) override {
    while (accumulator_->epochs_consumed() < view.log.num_epochs()) {
      DIGFL_RETURN_IF_ERROR(accumulator_->Consume(
          *model_, *blocks_, *validation_,
          view.log.epochs[accumulator_->epochs_consumed()]));
    }
    const bool final_epoch = view.next_epoch >= total_epochs_;
    if (!final_epoch && view.next_epoch % every_ != 0) return Status::OK();

    DIGFL_ASSIGN_OR_RETURN(
        std::string payload,
        EncodeVflCheckpoint(view.next_epoch, view.learning_rate, view.log,
                            *accumulator_));
    DIGFL_RETURN_IF_ERROR(store_->Commit(view.next_epoch, payload));
    ++written_;
    return Status::OK();
  }

  size_t written() const { return written_; }

 private:
  CheckpointStore* store_;
  const Model* model_;
  const VflBlockModel* blocks_;
  const Dataset* validation_;
  VflPhiAccumulator* accumulator_;
  size_t every_;
  size_t total_epochs_;
  size_t written_ = 0;
};

}  // namespace

Result<VflCheckpointedRun> RunVflTrainingWithCheckpoints(
    const Model& model, const VflBlockModel& blocks, const Dataset& train,
    const Dataset& validation, VflTrainConfig config,
    const CheckpointRunOptions& options, const std::vector<bool>* active,
    VflAggregationPolicy* policy) {
  if (!config.record_log) {
    return Status::InvalidArgument("checkpointed runs require record_log");
  }
  if (config.checkpoint_hook != nullptr || config.resume != nullptr) {
    return Status::InvalidArgument(
        "checkpoint_hook/resume are managed by RunVflTrainingWithCheckpoints");
  }
  if (options.every == 0) {
    return Status::InvalidArgument("checkpoint interval must be >= 1");
  }
  DIGFL_TRACE_SPAN("ckpt.vfl.run");
  DIGFL_ASSIGN_OR_RETURN(CheckpointStore store,
                         CheckpointStore::Open(options.dir, options.keep));

  VflCheckpointedRun run;
  VflPhiAccumulator accumulator(blocks.num_participants());
  VflResumePoint resume_point;
  if (options.resume) {
    Result<CheckpointStore::Loaded> loaded = store.LoadLatest();
    if (loaded.ok()) {
      run.checkpoints_rejected = loaded->rejected;
      // Any newer-but-rejected checkpoints belong to an abandoned timeline;
      // drop them so the rerun epochs can commit again.
      DIGFL_RETURN_IF_ERROR(store.TruncateAfter(loaded->epoch));
      DIGFL_ASSIGN_OR_RETURN(VflCheckpointState state,
                             DecodeVflCheckpoint(loaded->payload));
      DIGFL_RETURN_IF_ERROR(accumulator.Restore(
          std::move(state.phi_total), std::move(state.phi_per_epoch)));
      resume_point.start_epoch = state.next_epoch;
      resume_point.learning_rate = state.learning_rate;
      resume_point.log = std::move(state.log);
      config.resume = &resume_point;
      run.resumed = true;
      run.resumed_from_epoch = resume_point.start_epoch;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    } else {
      // NotFound: nothing valid committed — a cold start, not an error. The
      // manifest may still reference corrupt files; clear them so epoch
      // numbering can restart from scratch.
      DIGFL_RETURN_IF_ERROR(store.TruncateAfter(0));
    }
  }

  StoreBackedVflHook hook(&store, &model, &blocks, &validation, &accumulator,
                          options.every, config.epochs);
  config.checkpoint_hook = &hook;
  DIGFL_ASSIGN_OR_RETURN(run.log,
                         RunVflTraining(model, blocks, train, validation,
                                        config, active, policy));
  run.contributions.total = accumulator.total();
  run.contributions.per_epoch = accumulator.per_epoch();
  run.checkpoints_written = hook.written();
  return run;
}

}  // namespace ckpt
}  // namespace digfl
