// Crash-safe checkpointing for VFL training + incremental evaluation — the
// vertical counterpart of ckpt/hfl_resume.h. Same DIGFLCKP1 container and
// record tags (no kRngTag: the VFL loop holds no RNG state; corruption
// payload streams are derived per cell from the FaultPlan), same
// determinism contract: resume + finish is bitwise-identical to the
// uninterrupted run in final parameters, training log, and φ̂.

#ifndef DIGFL_CKPT_VFL_RESUME_H_
#define DIGFL_CKPT_VFL_RESUME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/hfl_resume.h"  // tags, version ids, CheckpointRunOptions
#include "common/result.h"
#include "core/contribution.h"
#include "core/phi_accumulator.h"
#include "vfl/plain_trainer.h"

namespace digfl {
namespace ckpt {

// Decoded checkpoint state (the exact inverse of EncodeVflCheckpoint).
struct VflCheckpointState {
  uint64_t next_epoch = 0;
  double learning_rate = 0.0;
  VflTrainingLog log;  // comm meter already restored from kCommTag
  std::vector<double> phi_total;
  std::vector<std::vector<double>> phi_per_epoch;
};

// Serializes one checkpoint to a complete framed byte image, ready for
// CheckpointStore::Commit. Fails on a ragged log.
Result<std::string> EncodeVflCheckpoint(uint64_t next_epoch,
                                        double learning_rate,
                                        const VflTrainingLog& log,
                                        const VflPhiAccumulator& phi);

// Parses + validates a framed checkpoint image (frame CRCs, version and
// protocol id, cross-record consistency). Typed errors, never garbage.
Result<VflCheckpointState> DecodeVflCheckpoint(const std::string& payload);

struct VflCheckpointedRun {
  VflTrainingLog log;
  // First-order (Eq. 27) φ̂, accumulated epoch-by-epoch alongside training —
  // bitwise equal to EvaluateVflContributions (first-order) on the final log.
  ContributionReport contributions;
  bool resumed = false;
  uint64_t resumed_from_epoch = 0;   // meaningful when resumed
  size_t checkpoints_written = 0;
  size_t checkpoints_rejected = 0;   // corrupt newer checkpoints skipped
};

// RunVflTraining + store-backed checkpoint hook + incremental φ̂. `config`'s
// checkpoint_hook/resume fields are managed by this driver and must be
// null; record_log is required.
Result<VflCheckpointedRun> RunVflTrainingWithCheckpoints(
    const Model& model, const VflBlockModel& blocks, const Dataset& train,
    const Dataset& validation, VflTrainConfig config,
    const CheckpointRunOptions& options,
    const std::vector<bool>* active = nullptr,
    VflAggregationPolicy* policy = nullptr);

}  // namespace ckpt
}  // namespace digfl

#endif  // DIGFL_CKPT_VFL_RESUME_H_
