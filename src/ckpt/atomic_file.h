// Atomic durable file writes.
//
// AtomicWriteFile implements the classic crash-safe publication protocol:
// write the full payload to a temp file in the target's directory, fsync the
// temp file, rename(2) it over the target (atomic on POSIX), then fsync the
// parent directory so the rename itself is durable. A crash at any point
// leaves either the old file intact or the new file fully in place — never
// a half-written target. Crash-point injection sites (common/fault.h) are
// threaded through the protocol so the kill/resume harness can die mid
// write, pre rename, and post rename.

#ifndef DIGFL_CKPT_ATOMIC_FILE_H_
#define DIGFL_CKPT_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace digfl {
namespace ckpt {

// Durably replaces `path` with `data` (see file comment for the protocol).
// The temp file is `path` + ".tmp"; a stale temp from a previous crash is
// silently overwritten.
Status AtomicWriteFile(const std::string& path, std::string_view data);

// Reads the whole of `path` into memory. NotFound when the file is missing.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace ckpt
}  // namespace digfl

#endif  // DIGFL_CKPT_ATOMIC_FILE_H_
