// CheckpointStore: a directory of committed checkpoints plus a manifest.
//
// Commit protocol (every step crash-safe):
//   1. write ckpt-<epoch>.digflckp via AtomicWriteFile,
//   2. rewrite MANIFEST (atomic, CRC-framed) appending the new entry,
//   3. unlink checkpoints that fell out of the retention window.
// The manifest always points at the last fully committed checkpoint: a crash
// between (1) and (2) leaves a complete-but-unreferenced file (the previous
// manifest still names a good checkpoint), and a crash inside either atomic
// write leaves the old version of that file intact.
//
// LoadLatest walks the manifest newest -> oldest and returns the first
// checkpoint whose framing and CRCs validate, so a torn or bit-flipped
// latest file degrades to the previous good one (counted in
// `ckpt.crc_rejected_total` / reported in Loaded::rejected). A missing or
// corrupt manifest degrades further to a directory scan.

#ifndef DIGFL_CKPT_STORE_H_
#define DIGFL_CKPT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace digfl {
namespace ckpt {

class CheckpointStore {
 public:
  // Opens (creating if needed) the checkpoint directory. `keep` is the
  // number of committed checkpoints retained; at least 2 so a corrupted
  // latest always has a fallback.
  //
  // `generation` is the opener's leader generation (DESIGN.md §14); 0 means
  // fencing is off (the pre-HA behavior, bitwise-identical manifest). With a
  // positive generation, Open refuses a manifest claimed by a newer
  // generation (kFailedPrecondition) and otherwise durably records its own
  // claim, so a partitioned ex-primary sharing the directory is fenced at
  // its next Commit.
  static Result<CheckpointStore> Open(std::string dir, size_t keep = 2,
                                      uint64_t generation = 0);

  // Durably commits `payload` (a complete DIGFLCKP1 byte image) as the
  // checkpoint for `epoch`. Epochs must be strictly increasing per store.
  // When fencing is on, the on-disk manifest's generation is re-read first;
  // a newer claim yields kFailedPrecondition and writes nothing.
  Status Commit(uint64_t epoch, const std::string& payload);

  struct Loaded {
    uint64_t epoch = 0;
    std::string payload;
    // Newer checkpoints skipped because they failed CRC/frame validation.
    size_t rejected = 0;
  };

  // Newest checkpoint that validates; NotFound when the store has none.
  Result<Loaded> LoadLatest() const;

  // Drops every committed entry with epoch > `epoch` — stale checkpoints
  // from an abandoned timeline (e.g. a bit-flipped latest that LoadLatest
  // rejected) — rewrites the manifest, and unlinks their files. A resume
  // driver calls this with the epoch it actually resumed from so the rerun
  // epochs can commit again; a no-op when nothing newer exists.
  Status TruncateAfter(uint64_t epoch);

  // Committed (manifest-listed) checkpoint count.
  size_t NumCommitted() const { return entries_.size(); }

  // Leader generation this store was opened with (0 = fencing off).
  uint64_t generation() const { return generation_; }

  const std::string& dir() const { return dir_; }

  // Path of the checkpoint file for `epoch` (for tests and tooling).
  std::string CheckpointPath(uint64_t epoch) const;

  struct Entry {
    uint64_t epoch = 0;
    std::string filename;
  };

 private:
  CheckpointStore(std::string dir, size_t keep)
      : dir_(std::move(dir)), keep_(keep) {}

  Status WriteManifest() const;
  // Re-reads the on-disk manifest's generation claim; kFailedPrecondition
  // when a newer generation owns the store. No-op with fencing off.
  Status CheckFence() const;
  std::string ManifestPath() const { return dir_ + "/MANIFEST"; }

  std::string dir_;
  size_t keep_ = 2;
  uint64_t generation_ = 0;
  std::vector<Entry> entries_;  // oldest first
};

}  // namespace ckpt
}  // namespace digfl

#endif  // DIGFL_CKPT_STORE_H_
