#include "ckpt/hfl_resume.h"

#include <cmath>
#include <map>
#include <utility>

#include "ckpt/codec_internal.h"
#include "ckpt/frame.h"
#include "ckpt/store.h"
#include "hfl/log_io.h"
#include "telemetry/telemetry.h"

namespace digfl {
namespace ckpt {
namespace internal {

std::string EncodeMeta(uint32_t protocol, uint64_t next_epoch, double lr) {
  std::string meta;
  ByteSink sink(&meta);
  sink.PutU32(kCheckpointVersion);
  sink.PutU32(protocol);
  sink.PutU64(next_epoch);
  sink.PutDouble(lr);
  return meta;
}

std::string EncodeComm(const CommMeter& comm) {
  // ByChannel() is keyed by label, so the encoding is independent of the
  // channel interning order of the producing process.
  const std::map<std::string, uint64_t> by_channel = comm.ByChannel();
  std::string payload;
  ByteSink sink(&payload);
  sink.PutU64(by_channel.size());
  for (const auto& [name, bytes] : by_channel) {
    sink.PutString(name);
    sink.PutU64(bytes);
  }
  return payload;
}

std::string EncodePhi(const std::vector<double>& total,
                      const std::vector<std::vector<double>>& per_epoch) {
  std::string payload;
  ByteSink sink(&payload);
  sink.PutDoubles(total);
  sink.PutU64(per_epoch.size());
  for (const std::vector<double>& row : per_epoch) sink.PutDoubles(row);
  return payload;
}

Status DecodeMeta(std::string_view payload, uint32_t expected_protocol,
                  uint64_t* next_epoch, double* learning_rate) {
  ByteSource source(payload);
  uint32_t version = 0, protocol = 0;
  DIGFL_RETURN_IF_ERROR(source.GetU32(&version));
  DIGFL_RETURN_IF_ERROR(source.GetU32(&protocol));
  DIGFL_RETURN_IF_ERROR(source.GetU64(next_epoch));
  DIGFL_RETURN_IF_ERROR(source.GetDouble(learning_rate));
  if (!source.Exhausted()) {
    return Status::InvalidArgument("trailing bytes in checkpoint meta record");
  }
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (protocol != expected_protocol) {
    return Status::InvalidArgument("checkpoint protocol mismatch");
  }
  if (!std::isfinite(*learning_rate)) {
    return Status::InvalidArgument("non-finite learning rate in checkpoint");
  }
  return Status::OK();
}

Status DecodeComm(std::string_view payload, CommMeter* comm) {
  ByteSource source(payload);
  uint64_t count = 0;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t bytes = 0;
    DIGFL_RETURN_IF_ERROR(source.GetString(&name));
    DIGFL_RETURN_IF_ERROR(source.GetU64(&bytes));
    comm->Record(name, bytes);
  }
  if (!source.Exhausted()) {
    return Status::InvalidArgument("trailing bytes in checkpoint comm record");
  }
  return Status::OK();
}

Status DecodePhi(std::string_view payload, std::vector<double>* total,
                 std::vector<std::vector<double>>* per_epoch) {
  ByteSource source(payload);
  DIGFL_RETURN_IF_ERROR(source.GetDoubles(total));
  uint64_t rows = 0;
  DIGFL_RETURN_IF_ERROR(source.GetU64(&rows));
  per_epoch->clear();
  for (uint64_t t = 0; t < rows; ++t) {
    std::vector<double> row;
    DIGFL_RETURN_IF_ERROR(source.GetDoubles(&row));
    if (row.size() != total->size()) {
      return Status::InvalidArgument("ragged phi row in checkpoint");
    }
    per_epoch->push_back(std::move(row));
  }
  if (!source.Exhausted()) {
    return Status::InvalidArgument("trailing bytes in checkpoint phi record");
  }
  return Status::OK();
}

// Collects the framed records of a checkpoint by tag, rejecting duplicates.
Result<std::map<uint32_t, std::string_view>> CollectRecords(
    const std::string& payload) {
  DIGFL_ASSIGN_OR_RETURN(std::vector<FrameRecord> records,
                         ReadFramedFile(payload));
  std::map<uint32_t, std::string_view> by_tag;
  for (const FrameRecord& record : records) {
    if (!by_tag.emplace(record.tag, record.payload).second) {
      return Status::InvalidArgument("duplicate record tag in checkpoint");
    }
  }
  return by_tag;
}

Result<std::string_view> RequireRecord(
    const std::map<uint32_t, std::string_view>& by_tag, uint32_t tag) {
  const auto it = by_tag.find(tag);
  if (it == by_tag.end()) {
    return Status::InvalidArgument("checkpoint record missing (tag " +
                                   std::to_string(tag) + ")");
  }
  return it->second;
}

}  // namespace internal

namespace {

std::string EncodeRngStates(const std::vector<std::string>& states) {
  std::string payload;
  ByteSink sink(&payload);
  sink.PutU64(states.size());
  for (const std::string& state : states) sink.PutString(state);
  return payload;
}

}  // namespace

Result<std::string> EncodeHflCheckpoint(
    uint64_t next_epoch, double learning_rate,
    const std::vector<std::string>& batch_rng_states,
    const HflTrainingLog& log, const HflPhiAccumulator& phi) {
  DIGFL_ASSIGN_OR_RETURN(std::string log_blob, SerializeTrainingLog(log));
  std::string out;
  AppendMagic(&out);
  AppendRecord(&out, kMetaTag,
               internal::EncodeMeta(kProtocolHfl, next_epoch, learning_rate));
  AppendRecord(&out, kLogTag, log_blob);
  AppendRecord(&out, kRngTag, EncodeRngStates(batch_rng_states));
  AppendRecord(&out, kCommTag, internal::EncodeComm(log.comm));
  AppendRecord(&out, kPhiTag,
               internal::EncodePhi(phi.total(), phi.per_epoch()));
  AppendEndRecord(&out);
  return out;
}

Result<HflCheckpointState> DecodeHflCheckpoint(const std::string& payload) {
  DIGFL_ASSIGN_OR_RETURN(auto by_tag, internal::CollectRecords(payload));

  HflCheckpointState state;
  DIGFL_ASSIGN_OR_RETURN(std::string_view meta,
                         internal::RequireRecord(by_tag, kMetaTag));
  DIGFL_RETURN_IF_ERROR(internal::DecodeMeta(meta, kProtocolHfl,
                                             &state.next_epoch,
                                             &state.learning_rate));

  DIGFL_ASSIGN_OR_RETURN(std::string_view log_blob,
                         internal::RequireRecord(by_tag, kLogTag));
  DIGFL_ASSIGN_OR_RETURN(
      state.log,
      ParseTrainingLog(std::string(log_blob), "checkpoint log record"));

  DIGFL_ASSIGN_OR_RETURN(std::string_view rng,
                         internal::RequireRecord(by_tag, kRngTag));
  {
    ByteSource source(rng);
    uint64_t count = 0;
    DIGFL_RETURN_IF_ERROR(source.GetU64(&count));
    for (uint64_t i = 0; i < count; ++i) {
      std::string rng_state;
      DIGFL_RETURN_IF_ERROR(source.GetString(&rng_state));
      state.batch_rng_states.push_back(std::move(rng_state));
    }
    if (!source.Exhausted()) {
      return Status::InvalidArgument(
          "trailing bytes in checkpoint rng record");
    }
  }

  DIGFL_ASSIGN_OR_RETURN(std::string_view comm,
                         internal::RequireRecord(by_tag, kCommTag));
  DIGFL_RETURN_IF_ERROR(internal::DecodeComm(comm, &state.log.comm));

  DIGFL_ASSIGN_OR_RETURN(std::string_view phi,
                         internal::RequireRecord(by_tag, kPhiTag));
  DIGFL_RETURN_IF_ERROR(
      internal::DecodePhi(phi, &state.phi_total, &state.phi_per_epoch));

  // Cross-record consistency: the checkpoint must describe one coherent
  // epoch boundary.
  if (state.next_epoch != state.log.num_epochs()) {
    return Status::InvalidArgument(
        "checkpoint epoch does not match its log prefix");
  }
  if (state.phi_per_epoch.size() != state.log.num_epochs()) {
    return Status::InvalidArgument(
        "checkpoint phi rows do not match its log prefix");
  }
  if (state.log.num_epochs() > 0 &&
      state.phi_total.size() != state.log.num_participants()) {
    return Status::InvalidArgument(
        "checkpoint phi width does not match participant count");
  }
  if (!state.batch_rng_states.empty() &&
      state.log.num_epochs() > 0 &&
      state.batch_rng_states.size() != state.log.num_participants()) {
    return Status::InvalidArgument(
        "checkpoint rng stream count does not match participant count");
  }
  return state;
}

Status HflStoreHook::OnEpoch(const HflTrainerView& view) {
  // Catch the accumulator up to the log (exactly one new epoch per call,
  // but written as a loop so a resumed accumulator can never desync).
  while (accumulator_->epochs_consumed() < view.log.num_epochs()) {
    DIGFL_RETURN_IF_ERROR(accumulator_->Consume(
        *server_, view.log.epochs[accumulator_->epochs_consumed()]));
  }
  const bool final_epoch = view.next_epoch >= total_epochs_;
  if (!final_epoch && view.next_epoch % every_ != 0) return Status::OK();

  std::vector<std::string> rng_states;
  rng_states.reserve(view.batch_rngs.size());
  for (const Rng& rng : view.batch_rngs) {
    rng_states.push_back(rng.SaveState());
  }
  DIGFL_ASSIGN_OR_RETURN(
      std::string payload,
      EncodeHflCheckpoint(view.next_epoch, view.learning_rate, rng_states,
                          view.log, *accumulator_));
  DIGFL_RETURN_IF_ERROR(store_->Commit(view.next_epoch, payload));
  ++written_;
  return Status::OK();
}

Result<HflResumeLoad> LoadHflResumePoint(CheckpointStore& store,
                                         HflPhiAccumulator& accumulator) {
  HflResumeLoad load;
  Result<CheckpointStore::Loaded> loaded = store.LoadLatest();
  if (!loaded.ok()) {
    if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
    // NotFound: nothing valid committed — a cold start, not an error. The
    // manifest may still reference corrupt files; clear them so epoch
    // numbering can restart from scratch.
    DIGFL_RETURN_IF_ERROR(store.TruncateAfter(0));
    return load;
  }
  load.rejected = loaded->rejected;
  // Any newer-but-rejected checkpoints belong to an abandoned timeline;
  // drop them so the rerun epochs can commit again.
  DIGFL_RETURN_IF_ERROR(store.TruncateAfter(loaded->epoch));
  DIGFL_ASSIGN_OR_RETURN(HflCheckpointState state,
                         DecodeHflCheckpoint(loaded->payload));
  DIGFL_ASSIGN_OR_RETURN(HflResumeLoad resumed,
                         ResumeFromState(std::move(state), accumulator));
  resumed.rejected = load.rejected;
  return resumed;
}

Result<HflResumeLoad> ResumeFromState(HflCheckpointState state,
                                      HflPhiAccumulator& accumulator) {
  HflResumeLoad load;
  DIGFL_RETURN_IF_ERROR(accumulator.Restore(std::move(state.phi_total),
                                            std::move(state.phi_per_epoch)));
  load.point.start_epoch = state.next_epoch;
  load.point.learning_rate = state.learning_rate;
  load.point.batch_rng_states = std::move(state.batch_rng_states);
  load.point.log = std::move(state.log);
  load.epoch = load.point.start_epoch;
  load.resumed = true;
  return load;
}

Result<HflCheckpointedRun> RunFedSgdWithCheckpoints(
    const Model& model, const std::vector<HflParticipant>& participants,
    HflServer& server, const Vec& init_params, FedSgdConfig config,
    const CheckpointRunOptions& options, AggregationPolicy* policy) {
  if (!config.record_log) {
    return Status::InvalidArgument("checkpointed runs require record_log");
  }
  if (config.checkpoint_hook != nullptr || config.resume != nullptr) {
    return Status::InvalidArgument(
        "checkpoint_hook/resume are managed by RunFedSgdWithCheckpoints");
  }
  if (options.every == 0) {
    return Status::InvalidArgument("checkpoint interval must be >= 1");
  }
  DIGFL_TRACE_SPAN("ckpt.hfl.run");
  DIGFL_ASSIGN_OR_RETURN(CheckpointStore store,
                         CheckpointStore::Open(options.dir, options.keep));

  HflCheckpointedRun run;
  HflPhiAccumulator accumulator(participants.size());
  HflResumeLoad resume_load;
  if (options.resume) {
    DIGFL_ASSIGN_OR_RETURN(resume_load,
                           LoadHflResumePoint(store, accumulator));
    run.checkpoints_rejected = resume_load.rejected;
    if (resume_load.resumed) {
      config.resume = &resume_load.point;
      run.resumed = true;
      run.resumed_from_epoch = resume_load.epoch;
    }
  }

  HflStoreHook hook(&store, &server, &accumulator, options.every,
                    config.epochs);
  config.checkpoint_hook = &hook;
  DIGFL_ASSIGN_OR_RETURN(run.log, RunFedSgd(model, participants, server,
                                            init_params, config, policy));
  run.contributions.total = accumulator.total();
  run.contributions.per_epoch = accumulator.per_epoch();
  run.checkpoints_written = hook.written();
  return run;
}

}  // namespace ckpt
}  // namespace digfl
