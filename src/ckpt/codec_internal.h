// Shared record codecs for the HFL/VFL checkpoint serializers. Internal to
// src/ckpt; include hfl_resume.h / vfl_resume.h instead.

#ifndef DIGFL_CKPT_CODEC_INTERNAL_H_
#define DIGFL_CKPT_CODEC_INTERNAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/comm_meter.h"
#include "common/result.h"

namespace digfl {
namespace ckpt {
namespace internal {

std::string EncodeMeta(uint32_t protocol, uint64_t next_epoch, double lr);
std::string EncodeComm(const CommMeter& comm);
std::string EncodePhi(const std::vector<double>& total,
                      const std::vector<std::vector<double>>& per_epoch);

Status DecodeMeta(std::string_view payload, uint32_t expected_protocol,
                  uint64_t* next_epoch, double* learning_rate);
Status DecodeComm(std::string_view payload, CommMeter* comm);
Status DecodePhi(std::string_view payload, std::vector<double>* total,
                 std::vector<std::vector<double>>* per_epoch);

// Collects the framed records of a checkpoint by tag, rejecting duplicates.
Result<std::map<uint32_t, std::string_view>> CollectRecords(
    const std::string& payload);
Result<std::string_view> RequireRecord(
    const std::map<uint32_t, std::string_view>& by_tag, uint32_t tag);

}  // namespace internal
}  // namespace ckpt
}  // namespace digfl

#endif  // DIGFL_CKPT_CODEC_INTERNAL_H_
