#include "ckpt/crc32.h"

#include <array>

namespace digfl {
namespace ckpt {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = ~seed;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ckpt
}  // namespace digfl
