# Empty dependencies file for bench_table5_vfl_comparison.
# This may be replaced when dependencies are built.
