# Empty dependencies file for bench_table4_hfl_comparison.
# This may be replaced when dependencies are built.
