file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hfl_comparison.dir/bench_table4_hfl_comparison.cc.o"
  "CMakeFiles/bench_table4_hfl_comparison.dir/bench_table4_hfl_comparison.cc.o.d"
  "bench_table4_hfl_comparison"
  "bench_table4_hfl_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hfl_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
