file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_reweight.dir/bench_fig7_reweight.cc.o"
  "CMakeFiles/bench_fig7_reweight.dir/bench_fig7_reweight.cc.o.d"
  "bench_fig7_reweight"
  "bench_fig7_reweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_reweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
