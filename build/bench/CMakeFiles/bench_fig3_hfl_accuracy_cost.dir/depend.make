# Empty dependencies file for bench_fig3_hfl_accuracy_cost.
# This may be replaced when dependencies are built.
