# Empty dependencies file for bench_fig2_second_term.
# This may be replaced when dependencies are built.
