file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_second_term.dir/bench_fig2_second_term.cc.o"
  "CMakeFiles/bench_fig2_second_term.dir/bench_fig2_second_term.cc.o.d"
  "bench_fig2_second_term"
  "bench_fig2_second_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_second_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
