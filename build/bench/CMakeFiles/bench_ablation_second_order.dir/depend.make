# Empty dependencies file for bench_ablation_second_order.
# This may be replaced when dependencies are built.
