# Empty compiler generated dependencies file for bench_ablation_encryption.
# This may be replaced when dependencies are built.
