file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_encryption.dir/bench_ablation_encryption.cc.o"
  "CMakeFiles/bench_ablation_encryption.dir/bench_ablation_encryption.cc.o.d"
  "bench_ablation_encryption"
  "bench_ablation_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
