file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_second_term_error.dir/bench_table2_second_term_error.cc.o"
  "CMakeFiles/bench_table2_second_term_error.dir/bench_table2_second_term_error.cc.o.d"
  "bench_table2_second_term_error"
  "bench_table2_second_term_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_second_term_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
