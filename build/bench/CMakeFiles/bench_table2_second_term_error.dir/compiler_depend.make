# Empty compiler generated dependencies file for bench_table2_second_term_error.
# This may be replaced when dependencies are built.
