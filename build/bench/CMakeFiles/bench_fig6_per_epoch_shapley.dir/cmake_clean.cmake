file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_per_epoch_shapley.dir/bench_fig6_per_epoch_shapley.cc.o"
  "CMakeFiles/bench_fig6_per_epoch_shapley.dir/bench_fig6_per_epoch_shapley.cc.o.d"
  "bench_fig6_per_epoch_shapley"
  "bench_fig6_per_epoch_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_per_epoch_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
