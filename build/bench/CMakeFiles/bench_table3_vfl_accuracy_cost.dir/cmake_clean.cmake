file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_vfl_accuracy_cost.dir/bench_table3_vfl_accuracy_cost.cc.o"
  "CMakeFiles/bench_table3_vfl_accuracy_cost.dir/bench_table3_vfl_accuracy_cost.cc.o.d"
  "bench_table3_vfl_accuracy_cost"
  "bench_table3_vfl_accuracy_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_vfl_accuracy_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
