# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/hfl_test[1]_include.cmake")
include("/root/repo/build/tests/vfl_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/paper_properties_test[1]_include.cmake")
