file(REMOVE_RECURSE
  "CMakeFiles/hfl_test.dir/hfl_test.cc.o"
  "CMakeFiles/hfl_test.dir/hfl_test.cc.o.d"
  "hfl_test"
  "hfl_test.pdb"
  "hfl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
