# Empty compiler generated dependencies file for hfl_test.
# This may be replaced when dependencies are built.
