# Empty dependencies file for hfl_test.
# This may be replaced when dependencies are built.
