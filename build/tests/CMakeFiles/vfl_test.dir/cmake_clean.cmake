file(REMOVE_RECURSE
  "CMakeFiles/vfl_test.dir/vfl_test.cc.o"
  "CMakeFiles/vfl_test.dir/vfl_test.cc.o.d"
  "vfl_test"
  "vfl_test.pdb"
  "vfl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
