# Empty dependencies file for vfl_test.
# This may be replaced when dependencies are built.
