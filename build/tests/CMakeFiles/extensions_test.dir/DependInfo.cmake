
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/extensions_test.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/extensions_test.dir/extensions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/digfl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_hfl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_vfl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
