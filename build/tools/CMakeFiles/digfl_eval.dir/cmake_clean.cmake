file(REMOVE_RECURSE
  "CMakeFiles/digfl_eval.dir/digfl_eval.cc.o"
  "CMakeFiles/digfl_eval.dir/digfl_eval.cc.o.d"
  "digfl_eval"
  "digfl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digfl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
