# Empty dependencies file for digfl_eval.
# This may be replaced when dependencies are built.
