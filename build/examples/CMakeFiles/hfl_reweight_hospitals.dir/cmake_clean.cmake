file(REMOVE_RECURSE
  "CMakeFiles/hfl_reweight_hospitals.dir/hfl_reweight_hospitals.cpp.o"
  "CMakeFiles/hfl_reweight_hospitals.dir/hfl_reweight_hospitals.cpp.o.d"
  "hfl_reweight_hospitals"
  "hfl_reweight_hospitals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_reweight_hospitals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
