# Empty dependencies file for hfl_reweight_hospitals.
# This may be replaced when dependencies are built.
