# Empty dependencies file for data_marketplace.
# This may be replaced when dependencies are built.
