file(REMOVE_RECURSE
  "CMakeFiles/data_marketplace.dir/data_marketplace.cpp.o"
  "CMakeFiles/data_marketplace.dir/data_marketplace.cpp.o.d"
  "data_marketplace"
  "data_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
