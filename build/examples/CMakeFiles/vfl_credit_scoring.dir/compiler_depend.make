# Empty compiler generated dependencies file for vfl_credit_scoring.
# This may be replaced when dependencies are built.
