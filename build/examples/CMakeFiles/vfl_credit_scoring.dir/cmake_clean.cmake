file(REMOVE_RECURSE
  "CMakeFiles/vfl_credit_scoring.dir/vfl_credit_scoring.cpp.o"
  "CMakeFiles/vfl_credit_scoring.dir/vfl_credit_scoring.cpp.o.d"
  "vfl_credit_scoring"
  "vfl_credit_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfl_credit_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
