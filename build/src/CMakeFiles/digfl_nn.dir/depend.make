# Empty dependencies file for digfl_nn.
# This may be replaced when dependencies are built.
