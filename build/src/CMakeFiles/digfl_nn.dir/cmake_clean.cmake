file(REMOVE_RECURSE
  "CMakeFiles/digfl_nn.dir/nn/hvp.cc.o"
  "CMakeFiles/digfl_nn.dir/nn/hvp.cc.o.d"
  "CMakeFiles/digfl_nn.dir/nn/linear_regression.cc.o"
  "CMakeFiles/digfl_nn.dir/nn/linear_regression.cc.o.d"
  "CMakeFiles/digfl_nn.dir/nn/logistic_regression.cc.o"
  "CMakeFiles/digfl_nn.dir/nn/logistic_regression.cc.o.d"
  "CMakeFiles/digfl_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/digfl_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/digfl_nn.dir/nn/model.cc.o"
  "CMakeFiles/digfl_nn.dir/nn/model.cc.o.d"
  "CMakeFiles/digfl_nn.dir/nn/sgd.cc.o"
  "CMakeFiles/digfl_nn.dir/nn/sgd.cc.o.d"
  "CMakeFiles/digfl_nn.dir/nn/softmax_regression.cc.o"
  "CMakeFiles/digfl_nn.dir/nn/softmax_regression.cc.o.d"
  "libdigfl_nn.a"
  "libdigfl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digfl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
