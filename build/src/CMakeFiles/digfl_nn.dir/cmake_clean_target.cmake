file(REMOVE_RECURSE
  "libdigfl_nn.a"
)
