
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/hvp.cc" "src/CMakeFiles/digfl_nn.dir/nn/hvp.cc.o" "gcc" "src/CMakeFiles/digfl_nn.dir/nn/hvp.cc.o.d"
  "/root/repo/src/nn/linear_regression.cc" "src/CMakeFiles/digfl_nn.dir/nn/linear_regression.cc.o" "gcc" "src/CMakeFiles/digfl_nn.dir/nn/linear_regression.cc.o.d"
  "/root/repo/src/nn/logistic_regression.cc" "src/CMakeFiles/digfl_nn.dir/nn/logistic_regression.cc.o" "gcc" "src/CMakeFiles/digfl_nn.dir/nn/logistic_regression.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/digfl_nn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/digfl_nn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/CMakeFiles/digfl_nn.dir/nn/model.cc.o" "gcc" "src/CMakeFiles/digfl_nn.dir/nn/model.cc.o.d"
  "/root/repo/src/nn/sgd.cc" "src/CMakeFiles/digfl_nn.dir/nn/sgd.cc.o" "gcc" "src/CMakeFiles/digfl_nn.dir/nn/sgd.cc.o.d"
  "/root/repo/src/nn/softmax_regression.cc" "src/CMakeFiles/digfl_nn.dir/nn/softmax_regression.cc.o" "gcc" "src/CMakeFiles/digfl_nn.dir/nn/softmax_regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/digfl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
