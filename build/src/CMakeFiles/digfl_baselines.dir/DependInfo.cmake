
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/exact_shapley.cc" "src/CMakeFiles/digfl_baselines.dir/baselines/exact_shapley.cc.o" "gcc" "src/CMakeFiles/digfl_baselines.dir/baselines/exact_shapley.cc.o.d"
  "/root/repo/src/baselines/gt_shapley.cc" "src/CMakeFiles/digfl_baselines.dir/baselines/gt_shapley.cc.o" "gcc" "src/CMakeFiles/digfl_baselines.dir/baselines/gt_shapley.cc.o.d"
  "/root/repo/src/baselines/im_contribution.cc" "src/CMakeFiles/digfl_baselines.dir/baselines/im_contribution.cc.o" "gcc" "src/CMakeFiles/digfl_baselines.dir/baselines/im_contribution.cc.o.d"
  "/root/repo/src/baselines/mr_shapley.cc" "src/CMakeFiles/digfl_baselines.dir/baselines/mr_shapley.cc.o" "gcc" "src/CMakeFiles/digfl_baselines.dir/baselines/mr_shapley.cc.o.d"
  "/root/repo/src/baselines/retrain_oracle.cc" "src/CMakeFiles/digfl_baselines.dir/baselines/retrain_oracle.cc.o" "gcc" "src/CMakeFiles/digfl_baselines.dir/baselines/retrain_oracle.cc.o.d"
  "/root/repo/src/baselines/tmc_shapley.cc" "src/CMakeFiles/digfl_baselines.dir/baselines/tmc_shapley.cc.o" "gcc" "src/CMakeFiles/digfl_baselines.dir/baselines/tmc_shapley.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/digfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_hfl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_vfl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/digfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
